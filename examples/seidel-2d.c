params N, T;
array a[N][N];
for (t = 0; t <= T - 1; t++)
  for (i = 1; i <= N - 2; i++)
    for (j = 1; j <= N - 2; j++)
      a[i][j] = 0.2 * (a[i][j] + a[i-1][j] + a[i+1][j] + a[i][j-1] + a[i][j+1]);
