//! Quickstart: build a polyhedral program, run the Pluto optimizer, print
//! the transformation and the generated OpenMP C, and verify the
//! transformed program computes exactly what the original does.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pluto::Optimizer;
use pluto_codegen::{emit_c, generate, original_schedule};
use pluto_frontend::kernels;
use pluto_machine::{run_sequential, Arrays};

fn main() {
    // The paper's flagship example: imperfectly nested 1-d Jacobi (Fig. 3).
    let kernel = kernels::jacobi_1d_imperfect();
    let prog = &kernel.program;
    println!("input program:\n{prog}");

    // Full pipeline: dependence analysis, ILP hyperplane search, tiling,
    // tile-space wavefront, vectorization reorder.
    let optimized = Optimizer::new()
        .tile_size(32)
        .optimize(prog)
        .expect("jacobi transforms");
    println!(
        "transformation found:\n{}",
        optimized.result.transform.display(prog)
    );

    // Generate and show the OpenMP C (cf. the paper's Fig. 3(d)).
    let ast = generate(prog, &optimized.result.transform);
    println!("generated code:\n{}", emit_c(prog, &ast));

    // Execute both versions and compare bitwise.
    let params = [20i64, 500]; // T, N
    let mut reference = Arrays::new((kernel.extents)(&params));
    reference.seed_with(kernels::seed_value);
    let orig_ast = generate(prog, &original_schedule(prog));
    let st = run_sequential(prog, &orig_ast, &params, &mut reference);

    let mut transformed = Arrays::new((kernel.extents)(&params));
    transformed.seed_with(kernels::seed_value);
    let st2 = run_sequential(prog, &ast, &params, &mut transformed);

    assert_eq!(st.instances, st2.instances);
    assert!(
        transformed.bitwise_eq(&reference),
        "transformed execution must match the original exactly"
    );
    println!(
        "verified: {} statement instances, transformed result bitwise-identical ✓",
        st.instances
    );
}
