//! Ablation study: how tile size, fusion policy and the wavefront degree
//! change the modelled performance — the design-choice knobs DESIGN.md
//! calls out (the paper leaves tile-size selection to "rough thumb
//! rules"; this shows why that is good enough and where it stops being).
//!
//! ```text
//! cargo run --release --example tile_ablation
//! ```

use pluto::{FusionPolicy, Optimizer, PlutoOptions};
use pluto_codegen::generate;
use pluto_frontend::kernels;
use pluto_machine::{simulate, Arrays, MachineConfig};

fn run(k: &kernels::Kernel, opt: &Optimizer, params: &[i64], cores: usize) -> u64 {
    let o = opt.optimize(&k.program).expect("optimizes");
    let ast = generate(&k.program, &o.result.transform);
    let mut arrays = Arrays::new((k.extents)(params));
    arrays.seed_with(kernels::seed_value);
    simulate(
        &k.program,
        &ast,
        params,
        &mut arrays,
        MachineConfig::default().with_cores(cores),
    )
    .cycles
}

fn main() {
    // 1. Tile-size sweep on seidel (time-skewed stencil).
    let k = kernels::seidel_2d();
    let params = [16i64, 150];
    println!("tile-size sweep, seidel-2d (T=16, N=150), 4 cores:");
    println!("{:>8} {:>14}", "tile", "cycles");
    for tile in [4, 8, 16, 32, 64] {
        let cyc = run(&k, &Optimizer::new().tile_size(tile), &params, 4);
        println!("{tile:>8} {cyc:>14}");
    }

    // 2. Fusion policy on MVT (the Sec. 4.1 input-dependence story).
    let k = kernels::mvt();
    let params = [500i64];
    println!("\nfusion policy, mvt (N=500), 1 core:");
    let smart = run(&k, &Optimizer::new().tile_size(16), &params, 1);
    let nofuse = run(
        &k,
        &Optimizer::new().tile_size(16).search_options(PlutoOptions {
            fuse: FusionPolicy::NoFuse,
            ..PlutoOptions::default()
        }),
        &params,
        1,
    );
    println!("  smart fuse (ij/ji): {smart:>12} cycles");
    println!("  no fuse:            {nofuse:>12} cycles");
    println!(
        "  fusion wins by {:.2}x (reuse on A)",
        nofuse as f64 / smart as f64
    );

    // 3. Wavefront degree on seidel (Fig. 13's 1-d vs 2-d pipelined).
    let k = kernels::seidel_2d();
    let params = [16i64, 150];
    println!("\nwavefront degrees, seidel-2d, 4 cores:");
    for m in [1usize, 2] {
        let cyc = run(
            &k,
            &Optimizer::new().tile_size(8).wavefront_degrees(m),
            &params,
            4,
        );
        println!("  m = {m}: {cyc:>12} cycles");
    }

    // 4. Input dependences on/off for MVT: without them the cost function
    // cannot see the reuse on A and fuses without the permutation.
    let k = kernels::mvt();
    let params = [500i64];
    let without = run(
        &k,
        &Optimizer::new().tile_size(16).search_options(PlutoOptions {
            use_input_deps: false,
            ..PlutoOptions::default()
        }),
        &params,
        1,
    );
    let with = run(&k, &Optimizer::new().tile_size(16), &params, 1);
    println!("\nRAR dependences in the bounding objective (Sec. 4.1), mvt:");
    println!("  with input deps:    {with:>12} cycles");
    println!("  without input deps: {without:>12} cycles");
}
