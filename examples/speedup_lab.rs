//! Speedup lab: run every paper kernel through the simulated quad-core
//! machine at 1, 2 and 4 cores, original vs Pluto-optimized, and print a
//! compact locality + parallelism report.
//!
//! ```text
//! cargo run --release --example speedup_lab
//! ```

use pluto::Optimizer;
use pluto_codegen::{generate, original_schedule};
use pluto_frontend::kernels;
use pluto_machine::{simulate, Arrays, CacheConfig, MachineConfig};

fn main() {
    // Smaller-than-benchmark sizes so the lab finishes in seconds; the
    // simulated caches are scaled down with them (8 KB L1 / 64 KB L2, as
    // in the benchmark harness) so working sets overflow the hierarchy
    // like the paper's full-size problems did.
    let machine = |cores: usize| MachineConfig {
        cores,
        cache: CacheConfig {
            line: 64,
            l1_size: 8 * 1024,
            l1_assoc: 8,
            l2_size: 64 * 1024,
            l2_assoc: 16,
        },
        barrier: 500,
        ..MachineConfig::default()
    };
    let sizes: &[(&str, Vec<i64>)] = &[
        ("jacobi-1d-imper", vec![32, 40_000]),
        ("fdtd-2d", vec![16, 100, 100]),
        ("lu", vec![150]),
        ("mvt", vec![500]),
        ("seidel-2d", vec![16, 150]),
        ("matmul", vec![110]),
        ("sor-2d", vec![320]),
        ("jacobi-2d-imper", vec![10, 110]),
        ("gemver", vec![450]),
        ("trmm", vec![160]),
        ("syrk", vec![110]),
        ("trisolv", vec![700]),
        ("doitgen", vec![42]),
    ];
    println!(
        "{:<16} {:>12} {:>12} {:>8} {:>8} {:>8} {:>10}",
        "kernel", "orig cyc", "pluto cyc", "seq x", "2-core x", "4-core x", "L2miss ÷"
    );
    for (name, params) in sizes {
        let (_, k) = kernels::all()
            .into_iter()
            .find(|(n, _)| n == name)
            .expect("kernel");
        let orig = original_schedule(&k.program);
        let orig_ast = generate(&k.program, &orig);
        let o = Optimizer::new()
            .tile_size(8)
            .optimize(&k.program)
            .expect("optimizes");
        let ast = generate(&k.program, &o.result.transform);

        let run = |ast: &pluto_codegen::Ast, cores: usize| {
            let mut arrays = Arrays::new((k.extents)(params));
            arrays.seed_with(kernels::seed_value);
            simulate(&k.program, ast, params, &mut arrays, machine(cores))
        };
        let base = run(&orig_ast, 1);
        let p1 = run(&ast, 1);
        let p2 = run(&ast, 2);
        let p4 = run(&ast, 4);
        println!(
            "{:<16} {:>12} {:>12} {:>8.2} {:>8.2} {:>8.2} {:>10.1}",
            name,
            base.cycles,
            p1.cycles,
            base.cycles as f64 / p1.cycles as f64,
            base.cycles as f64 / p2.cycles as f64,
            base.cycles as f64 / p4.cycles as f64,
            base.cache.l2_misses as f64 / p1.cache.l2_misses.max(1) as f64,
        );
    }
    println!("\n(x = modelled speedup over the sequential original;");
    println!(" L2miss ÷ = factor by which tiling cut simulated L2 misses)");
}
