//! Source-to-source use, like the original PLuTo tool: affine C in,
//! OpenMP-parallel tiled C out.
//!
//! ```text
//! cargo run --release --example source_to_source
//! ```

use pluto::Optimizer;
use pluto_codegen::{emit_c, generate};

const SOURCE: &str = "
  // 2-d Gauss-Seidel-style sweep (the paper's Fig. 4 kernel shape).
  params N;
  array a[N][N];
  for (i = 1; i < N; i++)
    for (j = 1; j < N; j++)
      a[i][j] = a[i-1][j] + a[i][j-1];
";

fn main() {
    println!("----- input (affine C) -----\n{SOURCE}");
    let prog = pluto_frontend::parse(SOURCE).expect("valid affine source");

    let optimized = Optimizer::new()
        .tile_size(32)
        .wavefront_degrees(1)
        .optimize(&prog)
        .expect("transformable");
    println!("----- transformation -----");
    println!("{}", optimized.result.transform.display(&prog));

    let ast = generate(&prog, &optimized.result.transform);
    println!("----- output (OpenMP C) -----");
    println!("{}", emit_c(&prog, &ast));
    println!(
        "note the tile-space wavefront: the outer tile loop is sequential,\n\
         the inner tile loop carries `#pragma omp parallel for`, and the\n\
         barrier is implicit at the end of each wavefront (paper Fig. 4)."
    );
}
