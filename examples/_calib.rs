use pluto_codegen::{generate, original_schedule};
use pluto_frontend::kernels;
use pluto_machine::{
    run_parallel, run_sequential, run_with_cache, Arrays, CacheConfig, ParallelConfig,
};
use std::time::Instant;
fn main() {
    let k = kernels::jacobi_1d_imperfect();
    let params = [100i64, 20000];
    let ast = generate(&k.program, &original_schedule(&k.program));
    let mut arrays = Arrays::new((k.extents)(&params));
    arrays.seed_with(kernels::seed_value);
    let t0 = Instant::now();
    let st = run_sequential(&k.program, &ast, &params, &mut arrays);
    let dt = t0.elapsed();
    println!(
        "orig seq: {} instances in {:?} = {:.1} M/s",
        st.instances,
        dt,
        st.instances as f64 / dt.as_secs_f64() / 1e6
    );

    // Pluto tiled
    let o = pluto::Optimizer::new()
        .tile_size(32)
        .optimize(&k.program)
        .unwrap();
    let past = generate(&k.program, &o.result.transform);
    let mut a2 = Arrays::new((k.extents)(&params));
    a2.seed_with(kernels::seed_value);
    let t0 = Instant::now();
    let st = run_sequential(&k.program, &past, &params, &mut a2);
    println!(
        "pluto seq: {} in {:?} = {:.1} M/s",
        st.instances,
        t0.elapsed(),
        st.instances as f64 / t0.elapsed().as_secs_f64() / 1e6
    );
    assert!(arrays.bitwise_eq(&a2));
    let mut a3 = Arrays::new((k.extents)(&params));
    a3.seed_with(kernels::seed_value);
    let t0 = Instant::now();
    let st = run_parallel(
        &k.program,
        &past,
        &params,
        &mut a3,
        ParallelConfig {
            threads: 4,
            collapse: 1,
        },
    );
    println!(
        "pluto par4: {} in {:?}, regions {}",
        st.instances,
        t0.elapsed(),
        st.parallel_regions
    );
    assert!(arrays.bitwise_eq(&a3));
    // cache sim speed
    let small = [20i64, 5000];
    let mut a4 = Arrays::new((k.extents)(&small));
    let t0 = Instant::now();
    let (st, cs) = run_with_cache(&k.program, &ast, &small, &mut a4, CacheConfig::default());
    println!(
        "cache sim: {} inst in {:?}; L1miss {} L2miss {}",
        st.instances,
        t0.elapsed(),
        cs.l1_misses,
        cs.l2_misses
    );
    println!("ncores={}", std::thread::available_parallelism().unwrap());
}
