params N;
array A[N][N]; array B[N][N]; array C[N][N];
for (i = 0; i <= N - 1; i++)
  for (j = 0; j <= N - 1; j++)
    for (k = 0; k <= N - 1; k++)
      C[i][j] = C[i][j] + A[i][k] * B[k][j];
