params N, T;
array a[N]; array b[N];
for (t = 0; t < T; t++) {
  for (i = 2; i <= N - 2; i++)
    b[i] = 0.333 * (a[i-1] + a[i] + a[i+1]);
  for (j = 2; j <= N - 2; j++)
    a[j] = b[j];
}
