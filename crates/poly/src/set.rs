//! The [`ConstraintSet`] type and its exact set operations.

use pluto_ilp::IlpProblem;
use pluto_linalg::int::{normalize_ineq, normalize_row};
use pluto_linalg::{gcd, Int};
use pluto_obs::counters;
use std::collections::BTreeSet;
use std::fmt;

/// A conjunction of affine equalities and inequalities over integer
/// variables.
///
/// Rows use the layout `[a_1, …, a_n, c]`: an inequality row means
/// `a·x + c >= 0`, an equality row `a·x + c == 0`. The set is the integer
/// points satisfying all rows. An internal `infeasible` flag records
/// syntactic contradictions discovered during normalization (e.g. the row
/// `0 >= 1` produced by elimination); [`is_empty`](ConstraintSet::is_empty)
/// additionally runs an exact integer feasibility test.
#[derive(Clone, PartialEq, Eq)]
pub struct ConstraintSet {
    num_vars: usize,
    eqs: Vec<Vec<Int>>,
    ineqs: Vec<Vec<Int>>,
    infeasible: bool,
}

impl ConstraintSet {
    /// The universe set (no constraints) over `num_vars` variables.
    pub fn new(num_vars: usize) -> ConstraintSet {
        ConstraintSet {
            num_vars,
            eqs: Vec::new(),
            ineqs: Vec::new(),
            infeasible: false,
        }
    }

    /// A syntactically empty set over `num_vars` variables.
    pub fn empty(num_vars: usize) -> ConstraintSet {
        ConstraintSet {
            num_vars,
            eqs: Vec::new(),
            ineqs: Vec::new(),
            infeasible: true,
        }
    }

    /// Number of variables (columns excluding the constant).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The equality rows.
    pub fn eqs(&self) -> &[Vec<Int>] {
        &self.eqs
    }

    /// The inequality rows.
    pub fn ineqs(&self) -> &[Vec<Int>] {
        &self.ineqs
    }

    /// Adds `row[..n]·x + row[n] >= 0`, normalizing and detecting trivial
    /// contradictions.
    ///
    /// # Panics
    /// Panics if the row width is not `num_vars + 1`.
    pub fn add_ineq(&mut self, mut row: Vec<Int>) {
        assert_eq!(row.len(), self.num_vars + 1, "constraint width mismatch");
        normalize_ineq(&mut row);
        if row[..self.num_vars].iter().all(|&v| v == 0) {
            if row[self.num_vars] < 0 {
                self.infeasible = true;
            }
            return; // trivially true (or recorded as infeasible)
        }
        self.ineqs.push(row);
    }

    /// Adds `row[..n]·x + row[n] == 0`, normalizing and detecting trivial
    /// contradictions.
    ///
    /// # Panics
    /// Panics if the row width is not `num_vars + 1`.
    pub fn add_eq(&mut self, mut row: Vec<Int>) {
        assert_eq!(row.len(), self.num_vars + 1, "constraint width mismatch");
        // Equality rows may be scaled by the gcd of *all* entries including
        // the constant only when it divides evenly; otherwise gcd of the
        // coefficients must divide the constant or the row is infeasible.
        let mut g = 0;
        for &v in &row[..self.num_vars] {
            g = gcd(g, v);
        }
        if g == 0 {
            if row[self.num_vars] != 0 {
                self.infeasible = true;
            }
            return;
        }
        if row[self.num_vars] % g != 0 {
            self.infeasible = true; // e.g. 2x + 1 = 0 has no integer solution
            return;
        }
        normalize_row(&mut row);
        self.eqs.push(row);
    }

    /// Intersection with another set over the same variables.
    ///
    /// # Panics
    /// Panics if variable counts differ.
    pub fn intersect(&self, other: &ConstraintSet) -> ConstraintSet {
        assert_eq!(self.num_vars, other.num_vars, "dimension mismatch");
        let mut out = self.clone();
        out.infeasible |= other.infeasible;
        for e in &other.eqs {
            out.add_eq(e.clone());
        }
        for i in &other.ineqs {
            out.add_ineq(i.clone());
        }
        out
    }

    /// Whether the integer point `x` satisfies all constraints.
    ///
    /// # Panics
    /// Panics if `x.len() != num_vars`.
    pub fn contains(&self, x: &[Int]) -> bool {
        assert_eq!(x.len(), self.num_vars, "point dimension mismatch");
        if self.infeasible {
            return false;
        }
        let eval = |row: &[Int]| -> Int {
            let mut v = row[self.num_vars];
            for (i, &xi) in x.iter().enumerate() {
                v += row[i] * xi;
            }
            v
        };
        self.eqs.iter().all(|r| eval(r) == 0) && self.ineqs.iter().all(|r| eval(r) >= 0)
    }

    /// Exact integer emptiness (ILP-backed, answered from the
    /// canonicalized [`cache`](crate::cache) when possible).
    ///
    /// Cache hits skip the feasibility ILP entirely (and record no
    /// `ilp.latency.emptiness` sample — the histogram counts probes
    /// actually paid for). The verdict is independent of cache state:
    /// keys are full canonical row sets, so a hit can only return what a
    /// fresh solve would have. Misses delegate to
    /// [`sample_point`](ConstraintSet::sample_point), whose unit-pivot
    /// equality substitution shrinks the feasibility ILP without changing
    /// the verdict (the substitution is an integer bijection).
    pub fn is_empty(&self) -> bool {
        counters::EMPTINESS_CHECKS.bump();
        if self.infeasible {
            return true;
        }
        if self.eqs.is_empty() && self.ineqs.is_empty() {
            return false;
        }
        let key = crate::cache::enabled().then(|| crate::cache::key_of(self));
        if let Some(k) = &key {
            if let Some(hit) = crate::cache::lookup(k) {
                counters::ILP_CACHE_HITS.bump();
                return hit;
            }
            counters::ILP_CACHE_MISSES.bump();
        }
        let empty = {
            let _t = pluto_obs::hist::EMPTINESS.timer();
            self.sample_point().is_none()
        };
        if let Some(k) = key {
            crate::cache::insert(k, empty);
        }
        empty
    }

    /// Inserts `count` fresh unconstrained variables starting at column
    /// `pos` (existing columns at `pos..` shift right).
    ///
    /// # Panics
    /// Panics if `pos > num_vars`.
    pub fn insert_dims(&self, pos: usize, count: usize) -> ConstraintSet {
        assert!(pos <= self.num_vars, "insert position out of range");
        let widen = |row: &Vec<Int>| -> Vec<Int> {
            let mut r = Vec::with_capacity(row.len() + count);
            r.extend_from_slice(&row[..pos]);
            r.extend(std::iter::repeat_n(0, count));
            r.extend_from_slice(&row[pos..]);
            r
        };
        ConstraintSet {
            num_vars: self.num_vars + count,
            eqs: self.eqs.iter().map(widen).collect(),
            ineqs: self.ineqs.iter().map(widen).collect(),
            infeasible: self.infeasible,
        }
    }

    /// Projects out the `count` variables starting at column `first`
    /// (Fourier–Motzkin with Gaussian substitution through equalities).
    ///
    /// The result is the *rational shadow* strengthened to integers row-wise
    /// (constants floored); this is the standard sound over-approximation of
    /// the integer projection used by polyhedral code generators.
    ///
    /// ```
    /// use pluto_poly::ConstraintSet;
    ///
    /// // { (i, j) : 0 <= i <= j <= 9 } — project out j (column 1):
    /// let mut s = ConstraintSet::new(2);
    /// s.add_ineq(vec![1, 0, 0]);   //  i      >= 0
    /// s.add_ineq(vec![-1, 1, 0]);  //  j - i  >= 0
    /// s.add_ineq(vec![0, -1, 9]);  //  9 - j  >= 0
    /// let shadow = s.project_out(1, 1);
    /// // The shadow is { i : 0 <= i <= 9 }:
    /// assert_eq!(shadow.num_vars(), 1);
    /// assert!(shadow.contains(&[0]) && shadow.contains(&[9]));
    /// assert!(!shadow.contains(&[10]) && !shadow.contains(&[-1]));
    /// ```
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn project_out(&self, first: usize, count: usize) -> ConstraintSet {
        assert!(
            first + count <= self.num_vars,
            "projection range out of bounds"
        );
        let mut cur = self.clone();
        // Columns still to eliminate, as indices into `cur`.
        let mut cols: Vec<usize> = (first..first + count).collect();
        // When the next elimination would be expensive and the system has
        // grown, fall back to exact redundancy removal once per step: FM
        // intermediates are dominated by redundant rows (observed: thousands
        // of rows where the true projection has dozens), and eliminating
        // from the irredundant core keeps the product growth polynomial.
        let mut pruned_this_step = false;
        while !cols.is_empty() {
            // Greedy elimination order: Gaussian substitutions are free;
            // otherwise minimize the Fourier–Motzkin growth estimate
            // lowers·uppers − lowers − uppers. A fixed order explodes on the
            // Farkas-multiplier systems (observed: millions of rows where
            // the true projection has dozens).
            let mut best = 0;
            let mut best_score = Int::MAX;
            for (ci, &v) in cols.iter().enumerate() {
                let score = if cur.eqs.iter().any(|e| e[v] != 0) {
                    -1
                } else {
                    let mut lo: Int = 0;
                    let mut up: Int = 0;
                    for r in &cur.ineqs {
                        match r[v].signum() {
                            1 => lo += 1,
                            -1 => up += 1,
                            _ => {}
                        }
                    }
                    lo * up - lo - up
                };
                if score < best_score {
                    best_score = score;
                    best = ci;
                }
            }
            if !pruned_this_step && best_score > 16 && cur.ineqs.len() > 48 {
                cur.remove_redundant();
                pruned_this_step = true;
                continue; // re-score columns on the pruned system
            }
            let v = cols.swap_remove(best);
            cur = cur.eliminate_var(v);
            if cur.infeasible {
                return ConstraintSet::empty(self.num_vars - count);
            }
            for c in cols.iter_mut() {
                if *c > v {
                    *c -= 1;
                }
            }
            cur.prune_dominated();
            pruned_this_step = false;
        }
        cur
    }

    /// Eliminates a single variable, dropping its column.
    fn eliminate_var(&self, v: usize) -> ConstraintSet {
        counters::FM_ELIMINATIONS.bump();
        let n = self.num_vars;
        let drop_col = |row: &[Int]| -> Vec<Int> {
            let mut r = Vec::with_capacity(row.len() - 1);
            r.extend_from_slice(&row[..v]);
            r.extend_from_slice(&row[v + 1..]);
            r
        };
        let mut out = ConstraintSet::new(n - 1);
        out.infeasible = self.infeasible;

        // 1. Gaussian: if some equality mentions v, use it to substitute.
        if let Some(pivot_idx) = self.eqs.iter().position(|e| e[v] != 0) {
            let e = &self.eqs[pivot_idx];
            let alpha = e[v];
            for (idx, other) in self.eqs.iter().enumerate() {
                if idx == pivot_idx {
                    continue;
                }
                let combined = combine_eliminating(other, e, v, alpha);
                out.add_eq(drop_col(&combined));
            }
            for ineq in &self.ineqs {
                let combined = combine_eliminating(ineq, e, v, alpha);
                out.add_ineq(drop_col(&combined));
            }
            return out;
        }

        // 2. Fourier–Motzkin on inequalities.
        let mut lowers = Vec::new(); // coeff > 0: v >= ...
        let mut uppers = Vec::new(); // coeff < 0: v <= ...
        for e in &self.eqs {
            debug_assert_eq!(e[v], 0);
            out.add_eq(drop_col(e));
        }
        for ineq in &self.ineqs {
            match ineq[v].signum() {
                0 => out.add_ineq(drop_col(ineq)),
                1 => lowers.push(ineq),
                _ => uppers.push(ineq),
            }
        }
        for l in &lowers {
            for u in &uppers {
                // l: a v + L >= 0 (a>0);  u: -b v + U >= 0 (b>0 after negate)
                let a = l[v];
                let b = -u[v];
                debug_assert!(a > 0 && b > 0);
                let mut row = vec![0; n + 1];
                for k in 0..=n {
                    row[k] = b
                        .checked_mul(l[k])
                        .and_then(|x| a.checked_mul(u[k]).and_then(|y| x.checked_add(y)))
                        .expect("fourier-motzkin overflow");
                }
                debug_assert_eq!(row[v], 0);
                out.add_ineq(drop_col(&row));
            }
        }
        // Peak is measured before dedup: it is the blowup the dedup pass
        // has to absorb.
        counters::FM_ROWS_PEAK.record_max(out.ineqs.len() as u64);
        out.dedup();
        out
    }

    /// Drops inequalities dominated by a row with the *same* coefficient
    /// vector and a tighter constant (`a·x + c₁ >= 0` implies
    /// `a·x + c₂ >= 0` when `c₁ <= c₂`). Rows are gcd-normalized on entry,
    /// so the coefficient-vector comparison is canonical. Cheap enough to
    /// run between Fourier–Motzkin steps.
    fn prune_dominated(&mut self) {
        use std::collections::BTreeMap;
        let n = self.num_vars;
        let mut tightest: BTreeMap<&[Int], Int> = BTreeMap::new();
        for r in &self.ineqs {
            tightest
                .entry(&r[..n])
                .and_modify(|c| *c = (*c).min(r[n]))
                .or_insert(r[n]);
        }
        let mut keep: BTreeMap<Vec<Int>, Int> =
            tightest.into_iter().map(|(k, c)| (k.to_vec(), c)).collect();
        self.ineqs.retain(|r| {
            if keep.get(&r[..n]) == Some(&r[n]) {
                keep.remove(&r[..n]); // drop later duplicates of this row
                true
            } else {
                false
            }
        });
    }

    /// Removes exact duplicate rows (cheap syntactic pass run after FM).
    pub fn dedup(&mut self) {
        let mut seen: BTreeSet<Vec<Int>> = BTreeSet::new();
        self.ineqs.retain(|r| seen.insert(r.clone()));
        let mut seen_eq: BTreeSet<Vec<Int>> = BTreeSet::new();
        self.eqs.retain(|r| {
            let neg: Vec<Int> = r.iter().map(|&v| -v).collect();
            !seen_eq.contains(&neg) && seen_eq.insert(r.clone())
        });
    }

    /// Removes inequalities that are implied by the rest of the system
    /// (exact integer redundancy: `S ∧ ¬c` empty ⇒ `c` redundant).
    ///
    /// Quadratic in the number of rows with an ILP per row — use on the
    /// small systems handed to the code generator, not inside FM loops.
    pub fn remove_redundant(&mut self) {
        counters::REDUNDANCY_CALLS.bump();
        self.dedup();
        let mut i = 0;
        while i < self.ineqs.len() {
            let row = self.ineqs[i].clone();
            // ¬(a·x + c >= 0)  over Z  is  a·x + c <= -1.
            let mut neg: Vec<Int> = row.iter().map(|&v| -v).collect();
            let n = self.num_vars;
            neg[n] -= 1;
            let mut test = self.clone();
            test.ineqs.remove(i);
            test.add_ineq(neg);
            if test.is_empty() {
                self.ineqs.remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Total number of constraint rows.
    pub fn num_rows(&self) -> usize {
        self.eqs.len() + self.ineqs.len()
    }

    /// Renders the set with the given variable names (for diagnostics).
    ///
    /// # Panics
    /// Panics if `names.len() != num_vars`.
    pub fn display_with(&self, names: &[&str]) -> String {
        assert_eq!(names.len(), self.num_vars);
        if self.infeasible {
            return "false".to_string();
        }
        let term = |row: &[Int]| -> String {
            let mut s = String::new();
            for (i, &a) in row[..self.num_vars].iter().enumerate() {
                if a == 0 {
                    continue;
                }
                if !s.is_empty() {
                    s.push_str(if a > 0 { " + " } else { " - " });
                } else if a < 0 {
                    s.push('-');
                }
                let m = a.abs();
                if m != 1 {
                    s.push_str(&format!("{m}*"));
                }
                s.push_str(names[i]);
            }
            let c = row[self.num_vars];
            if c != 0 || s.is_empty() {
                if s.is_empty() {
                    s.push_str(&c.to_string());
                } else {
                    s.push_str(if c > 0 { " + " } else { " - " });
                    s.push_str(&c.abs().to_string());
                }
            }
            s
        };
        let mut parts = Vec::new();
        for e in &self.eqs {
            parts.push(format!("{} == 0", term(e)));
        }
        for i in &self.ineqs {
            parts.push(format!("{} >= 0", term(i)));
        }
        if parts.is_empty() {
            "true".to_string()
        } else {
            parts.join("  &&  ")
        }
    }
}

/// Positive combination of `row` with equality `eq` eliminating column `v`
/// (`alpha = eq[v] != 0`); the multiplier on `row` is `|alpha| > 0` so
/// inequality direction is preserved.
fn combine_eliminating(row: &[Int], eq: &[Int], v: usize, alpha: Int) -> Vec<Int> {
    let beta = row[v];
    let m_row = alpha.abs();
    let m_eq = -alpha.signum() * beta;
    let mut out = vec![0; row.len()];
    for k in 0..row.len() {
        out[k] = m_row
            .checked_mul(row[k])
            .and_then(|x| m_eq.checked_mul(eq[k]).and_then(|y| x.checked_add(y)))
            .expect("gaussian elimination overflow");
    }
    debug_assert_eq!(out[v], 0);
    out
}

impl fmt::Debug for ConstraintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = (0..self.num_vars).map(|i| format!("x{i}")).collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        write!(f, "ConstraintSet({})", self.display_with(&refs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(n: Int) -> ConstraintSet {
        let mut s = ConstraintSet::new(2);
        s.add_ineq(vec![1, 0, 0]);
        s.add_ineq(vec![-1, 0, n]);
        s.add_ineq(vec![0, 1, 0]);
        s.add_ineq(vec![0, -1, n]);
        s
    }

    #[test]
    fn membership() {
        let s = square(5);
        assert!(s.contains(&[0, 0]));
        assert!(s.contains(&[5, 5]));
        assert!(!s.contains(&[6, 0]));
        assert!(!s.contains(&[-1, 3]));
    }

    #[test]
    fn emptiness() {
        assert!(!square(5).is_empty());
        let mut s = ConstraintSet::new(1);
        s.add_ineq(vec![1, -4]); // x >= 4
        s.add_ineq(vec![-1, 2]); // x <= 2
        assert!(s.is_empty());
        // Integer-empty, rational-nonempty: 0 < 2x < 2.
        let mut t = ConstraintSet::new(1);
        t.add_ineq(vec![2, -1]); // 2x >= 1
        t.add_ineq(vec![-2, 1]); // 2x <= 1
        assert!(t.is_empty());
    }

    #[test]
    fn equality_gcd_infeasibility() {
        let mut s = ConstraintSet::new(1);
        s.add_eq(vec![2, -1]); // 2x = 1
        assert!(s.is_empty());
        let mut ok = ConstraintSet::new(1);
        ok.add_eq(vec![2, -4]); // 2x = 4 -> x = 2
        assert!(ok.contains(&[2]));
        assert!(!ok.contains(&[1]));
    }

    #[test]
    fn projection_of_triangle() {
        // 0 <= i <= j <= 9: projecting j out leaves 0 <= i <= 9.
        let mut s = ConstraintSet::new(2);
        s.add_ineq(vec![1, 0, 0]);
        s.add_ineq(vec![-1, 1, 0]);
        s.add_ineq(vec![0, -1, 9]);
        let p = s.project_out(1, 1);
        assert_eq!(p.num_vars(), 1);
        for i in 0..=9 {
            assert!(p.contains(&[i]), "i={i}");
        }
        assert!(!p.contains(&[10]));
        assert!(!p.contains(&[-1]));
    }

    #[test]
    fn projection_through_equality() {
        // j = i + 3, 0 <= j <= 10  =>  -3 <= i <= 7.
        let mut s = ConstraintSet::new(2);
        s.add_eq(vec![-1, 1, -3]);
        s.add_ineq(vec![0, 1, 0]);
        s.add_ineq(vec![0, -1, 10]);
        let p = s.project_out(1, 1);
        assert!(p.contains(&[-3]));
        assert!(p.contains(&[7]));
        assert!(!p.contains(&[8]));
        assert!(!p.contains(&[-4]));
    }

    #[test]
    fn projection_detects_emptiness() {
        let mut s = ConstraintSet::new(2);
        s.add_ineq(vec![1, 0, 0]); // i >= 0
        s.add_ineq(vec![-1, 0, -1]); // i <= -1
        let p = s.project_out(0, 2);
        assert!(p.is_empty());
    }

    #[test]
    fn insert_dims_shifts() {
        let mut s = ConstraintSet::new(2);
        s.add_ineq(vec![1, 2, 3]);
        let w = s.insert_dims(1, 2);
        assert_eq!(w.num_vars(), 4);
        assert_eq!(w.ineqs()[0], vec![1, 0, 0, 2, 3]);
    }

    #[test]
    fn redundancy_removal() {
        let mut s = ConstraintSet::new(1);
        s.add_ineq(vec![1, 0]); // x >= 0
        s.add_ineq(vec![1, 5]); // x >= -5 (redundant)
        s.add_ineq(vec![-1, 10]); // x <= 10
        s.remove_redundant();
        assert_eq!(s.ineqs().len(), 2);
        assert!(s.contains(&[0]) && s.contains(&[10]) && !s.contains(&[11]));
    }

    #[test]
    fn display_round_trip_smoke() {
        let mut s = ConstraintSet::new(2);
        s.add_ineq(vec![1, -2, 3]);
        s.add_eq(vec![1, 1, 0]);
        let d = s.display_with(&["i", "j"]);
        assert!(d.contains("i + j == 0"));
        assert!(d.contains("i - 2*j + 3 >= 0"));
    }

    #[test]
    fn intersect_combines() {
        let a = square(5);
        let mut b = ConstraintSet::new(2);
        b.add_ineq(vec![1, 1, -8]); // i + j >= 8
        let c = a.intersect(&b);
        assert!(c.contains(&[4, 4]));
        assert!(!c.contains(&[1, 1]));
    }

    #[test]
    fn trivial_rows_filtered() {
        let mut s = ConstraintSet::new(1);
        s.add_ineq(vec![0, 5]); // 5 >= 0: dropped
        assert_eq!(s.num_rows(), 0);
        s.add_ineq(vec![0, -1]); // -1 >= 0: infeasible
        assert!(s.is_empty());
    }
}

impl ConstraintSet {
    /// An integer point of the set, or `None` when empty.
    ///
    /// Equality rows with a ±1 coefficient are eliminated by exact
    /// substitution first (each removes one variable and one equality
    /// from the ILP), which keeps large equality-heavy systems — e.g. the
    /// analyzer's carried-dependence queries over two tiled iteration
    /// spaces — inside the solver's pivot budget.
    pub fn sample_point(&self) -> Option<Vec<Int>> {
        if self.infeasible {
            return None;
        }
        let n = self.num_vars;
        let mut eqs = self.eqs.clone();
        let mut ineqs = self.ineqs.clone();
        // Elimination stack: `(var, expr)` with `var = expr · [x…, 1]`
        // and `expr[var] == 0`. Later entries may only reference vars
        // never eliminated, so back-substitution runs in reverse.
        let mut elim: Vec<(usize, Vec<Int>)> = Vec::new();
        let mut gone = vec![false; n];
        loop {
            let found = eqs.iter().enumerate().find_map(|(ei, e)| {
                (0..n)
                    .find(|&v| !gone[v] && e[v].abs() == 1)
                    .map(|v| (ei, v))
            });
            let Some((ei, v)) = found else { break };
            let e = eqs.swap_remove(ei);
            let s = e[v]; // ±1: v = -s·(e − e[v]·v)
            let mut expr = vec![0; n + 1];
            for (j, x) in expr.iter_mut().enumerate() {
                if j != v {
                    *x = -s * e[j];
                }
            }
            for r in eqs.iter_mut().chain(ineqs.iter_mut()) {
                let c = r[v];
                if c != 0 {
                    r[v] = 0;
                    for j in 0..=n {
                        r[j] += c * expr[j];
                    }
                }
            }
            gone[v] = true;
            elim.push((v, expr));
        }
        let kept: Vec<usize> = (0..n).filter(|&v| !gone[v]).collect();
        let mut rows: Vec<Vec<Int>> = Vec::with_capacity(ineqs.len() + 2 * eqs.len());
        let compress = |r: &[Int]| -> Vec<Int> {
            let mut out: Vec<Int> = kept.iter().map(|&v| r[v]).collect();
            out.push(r[n]);
            out
        };
        for r in &ineqs {
            rows.push(compress(r));
        }
        for e in &eqs {
            let c = compress(e);
            rows.push(c.iter().map(|&v| -v).collect());
            rows.push(c);
        }
        // Constant rows decide themselves (this also covers the
        // all-vars-eliminated case).
        if rows
            .iter()
            .any(|r| r[..kept.len()].iter().all(|&a| a == 0) && r[kept.len()] < 0)
        {
            return None;
        }
        rows.retain(|r| r[..kept.len()].iter().any(|&a| a != 0));
        let sol_kept = if kept.is_empty() || rows.is_empty() {
            vec![0; kept.len()]
        } else {
            IlpProblem::sample_with_free_vars(kept.len(), &rows)?
        };
        let mut x = vec![0; n];
        for (i, &v) in kept.iter().enumerate() {
            x[v] = sol_kept[i];
        }
        for (v, expr) in elim.iter().rev() {
            let mut val = expr[n];
            for (j, &c) in expr[..n].iter().enumerate() {
                val += c * x[j];
            }
            x[*v] = val;
        }
        Some(x)
    }

    /// Exact integer-set inclusion: every integer point of `self` satisfies
    /// `other`'s constraints.
    ///
    /// # Panics
    /// Panics if variable counts differ.
    pub fn is_subset_of(&self, other: &ConstraintSet) -> bool {
        assert_eq!(self.num_vars, other.num_vars, "dimension mismatch");
        if self.infeasible {
            return true;
        }
        let implies = |row: &[Int], eq: bool| -> bool {
            // self ∧ ¬row must be empty.
            let mut t = self.clone();
            let mut neg: Vec<Int> = row.iter().map(|&v| -v).collect();
            neg[self.num_vars] -= 1; // row <= -1
            t.add_ineq(neg);
            if !t.is_empty() {
                return false;
            }
            if eq {
                let mut t = self.clone();
                let mut pos = row.to_vec();
                pos[self.num_vars] -= 1; // row >= 1
                t.add_ineq(pos);
                if !t.is_empty() {
                    return false;
                }
            }
            true
        };
        other.ineqs.iter().all(|r| implies(r, false)) && other.eqs.iter().all(|r| implies(r, true))
    }

    /// Detects implicit equalities: inequality rows whose opposite
    /// direction is also implied are promoted to equality rows (the affine
    /// hull becomes explicit). Useful before Gaussian elimination.
    pub fn detect_equalities(&mut self) {
        let mut i = 0;
        while i < self.ineqs.len() {
            // row >= 0 always; is row <= 0 forced (row >= 1 empty)?
            let mut t = self.clone();
            let mut pos = self.ineqs[i].clone();
            pos[self.num_vars] -= 1;
            t.add_ineq(pos);
            if t.is_empty() {
                let row = self.ineqs.remove(i);
                self.add_eq(row);
            } else {
                i += 1;
            }
        }
        // Promoting both directions of a pair produces sign-mirrored
        // equality duplicates; dedup collapses them.
        self.dedup();
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;

    #[test]
    fn sample_point_in_set() {
        let mut s = ConstraintSet::new(2);
        s.add_ineq(vec![1, 0, 5]); // x >= -5
        s.add_ineq(vec![-1, 0, -2]); // x <= -2
        s.add_ineq(vec![0, 1, -3]); // y >= 3
        let p = s.sample_point().expect("nonempty");
        assert!(s.contains(&p), "{p:?}");
        assert!(ConstraintSet::empty(2).sample_point().is_none());
        // Universe.
        assert_eq!(ConstraintSet::new(1).sample_point(), Some(vec![0]));
    }

    #[test]
    fn subset_relation() {
        let mut small = ConstraintSet::new(1);
        small.add_ineq(vec![1, 0]); // x >= 0
        small.add_ineq(vec![-1, 5]); // x <= 5
        let mut big = ConstraintSet::new(1);
        big.add_ineq(vec![1, 2]); // x >= -2
        big.add_ineq(vec![-1, 9]); // x <= 9
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(small.is_subset_of(&small));
        assert!(ConstraintSet::empty(1).is_subset_of(&small));
    }

    #[test]
    fn implicit_equality_detected() {
        // x >= 3 and x <= 3 become x == 3.
        let mut s = ConstraintSet::new(1);
        s.add_ineq(vec![1, -3]);
        s.add_ineq(vec![-1, 3]);
        s.detect_equalities();
        assert_eq!(s.eqs().len(), 1);
        assert!(s.contains(&[3]));
        assert!(!s.contains(&[4]));
    }
}
