//! Integer polyhedra in constraint form — the `pluto-rs` stand-in for
//! PolyLib.
//!
//! A [`ConstraintSet`] is a conjunction of affine equalities and
//! inequalities over a fixed number of integer variables; geometrically, the
//! integer points of a (possibly unbounded) convex polyhedron. The paper's
//! tool-chain uses PolyLib (Chernikova dual conversion) for its set
//! operations; we instead keep everything in constraint (H) form and use
//!
//! * exact **Fourier–Motzkin elimination** (with Gaussian substitution
//!   through equalities first) for projection — the workhorse behind both
//!   loop-bound generation and Farkas-multiplier elimination;
//! * the workspace **ILP solver** for exact integer emptiness and
//!   redundancy queries.
//!
//! # Examples
//!
//! ```
//! use pluto_poly::ConstraintSet;
//! // The triangle 0 <= i <= j <= 10 in (i, j).
//! let mut s = ConstraintSet::new(2);
//! s.add_ineq(vec![1, 0, 0]);   // i >= 0
//! s.add_ineq(vec![-1, 1, 0]);  // j - i >= 0
//! s.add_ineq(vec![0, -1, 10]); // j <= 10
//! assert!(!s.is_empty());
//! // Projecting out j leaves 0 <= i <= 10.
//! let p = s.project_out(1, 1);
//! assert!(p.contains(&[10]));
//! assert!(!p.contains(&[11]));
//! ```
//!
//! Emptiness queries are answered through a process-wide canonicalized
//! verdict cache ([`cache`], DESIGN.md §11) — repeated dependence
//! polyhedra hit instead of re-solving.
//!
//! DESIGN.md §1 and §5 place this crate; the FM counters it feeds are in PERFORMANCE.md §4.

// Every public item in the exact-arithmetic substrate is API other
// crates (and DESIGN.md) reason about; undocumented surface is a bug.
#![deny(missing_docs)]
pub mod cache;
mod set;

pub use set::ConstraintSet;
