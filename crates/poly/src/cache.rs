//! The process-wide canonicalized emptiness cache (DESIGN.md §11).
//!
//! Dependence analysis and the hyperplane search ask
//! [`ConstraintSet::is_empty`](crate::ConstraintSet::is_empty) about the
//! *same* polyhedra over and over — the two orientations of an access
//! pair produce row-permuted copies of one system, every per-level
//! candidate shares its base rows, and the satisfaction bookkeeping
//! re-probes each dependence per row. Each probe is an ILP solve; this
//! module remembers the verdicts.
//!
//! Keys are **canonical forms**, not hashes of incidental row order:
//! equality rows are sign-normalized (first nonzero coefficient made
//! positive — `x − y = 0` and `y − x = 0` denote the same hyperplane),
//! then both row lists are sorted. Coefficient gcd normalization already
//! happened at insertion ([`ConstraintSet::add_ineq`] floors constants,
//! [`ConstraintSet::add_eq`] divides rows by their gcd), so scaled
//! duplicates collapse before they get here. The full canonical rows are
//! the map key — a colliding 64-bit digest could silently flip an
//! emptiness verdict, and everything downstream (legality, pruning,
//! satisfaction) trusts that verdict.
//!
//! Entries are theorems ("this integer system is (in)feasible"), never
//! invalidated by later compilations — but *where* they are stored
//! depends on the observability context. When an
//! [`ObsSession`](pluto_obs::ObsSession) is installed on the probing
//! thread, the cache lives in that session
//! ([`pluto_obs::session_ext`]): each concurrent compile gets its own
//! verdict store, so its `ilp.cache_hits`/`ilp.cache_misses` counters
//! are attributable to that compile alone and deterministic run to run,
//! and the store is freed with the session. With no session installed,
//! probes fall back to a process-global monotonic map — bare library
//! callers still amortize across compiles. The [`set_enabled`] knob
//! (`plutoc --no-solver-cache` differential/debug compiles) and
//! [`clear`] follow the same resolution, so toggling one session's
//! cache never perturbs another compile. Capacity is capped at
//! [`MAX_ENTRIES`] per store; a full store stops inserting but keeps
//! answering, counting each discarded insert as `ilp.cache_evictions`
//! so thrashing is visible in profiles and service stats.
//!
//! [`ConstraintSet::add_ineq`]: crate::ConstraintSet::add_ineq
//! [`ConstraintSet::add_eq`]: crate::ConstraintSet::add_eq

use crate::set::ConstraintSet;
use pluto_linalg::Int;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Hard cap on resident entries; inserts beyond it are discarded and
/// counted as `ilp.cache_evictions` (resident entries are never
/// replaced — they are theorems, and compiles are short, so keeping the
/// first [`MAX_ENTRIES`] is both deterministic and safe).
pub const MAX_ENTRIES: usize = 1 << 16;

/// The canonical form of one constraint system — the cache key.
///
/// Two [`ConstraintSet`]s get equal keys iff they hold the same rows up
/// to row order and equality-row sign; distinct systems always get
/// distinct keys (the rows *are* the key).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Key {
    num_vars: usize,
    eqs: Vec<Vec<Int>>,
    ineqs: Vec<Vec<Int>>,
}

/// Computes the canonical key of a set: sign-normalize equality rows,
/// sort both row lists.
pub fn key_of(set: &ConstraintSet) -> Key {
    let mut eqs: Vec<Vec<Int>> = set
        .eqs()
        .iter()
        .map(|row| {
            let mut r = row.clone();
            if let Some(&lead) = r.iter().find(|&&v| v != 0) {
                if lead < 0 {
                    for v in &mut r {
                        *v = -*v;
                    }
                }
            }
            r
        })
        .collect();
    eqs.sort_unstable();
    let mut ineqs: Vec<Vec<Int>> = set.ineqs().to_vec();
    ineqs.sort_unstable();
    Key {
        num_vars: set.num_vars(),
        eqs,
        ineqs,
    }
}

/// One verdict store: the session-scoped cache state
/// ([`pluto_obs::session_ext`] instantiates one per
/// [`ObsSession`](pluto_obs::ObsSession) on first probe) and the shape
/// of the process-global fallback.
#[derive(Debug)]
pub struct Scope {
    enabled: AtomicBool,
    map: Mutex<HashMap<Key, bool>>,
}

impl Default for Scope {
    fn default() -> Scope {
        Scope {
            enabled: AtomicBool::new(true),
            map: Mutex::new(HashMap::new()),
        }
    }
}

/// The process-global fallback store used by sessionless callers.
fn global() -> &'static Scope {
    static GLOBAL: OnceLock<Scope> = OnceLock::new();
    GLOBAL.get_or_init(Scope::default)
}

/// Whether probes on this thread consult the cache (default: yes).
pub fn enabled() -> bool {
    match pluto_obs::session_ext::<Scope>() {
        Some(s) => s.enabled.load(Ordering::Relaxed),
        None => global().enabled.load(Ordering::Relaxed),
    }
}

/// Turns the cache on or off for the current scope — the installed
/// session if any (`plutoc --no-solver-cache`, differential tests),
/// else process-wide. Disabling does not drop stored entries;
/// re-enabling resumes hits.
pub fn set_enabled(on: bool) {
    match pluto_obs::session_ext::<Scope>() {
        Some(s) => s.enabled.store(on, Ordering::Relaxed),
        None => global().enabled.store(on, Ordering::Relaxed),
    }
}

/// Drops every verdict stored in the current scope.
pub fn clear() {
    match pluto_obs::session_ext::<Scope>() {
        Some(s) => s.map.lock().unwrap().clear(),
        None => global().map.lock().unwrap().clear(),
    }
}

/// Number of verdicts resident in the current scope.
pub fn len() -> usize {
    match pluto_obs::session_ext::<Scope>() {
        Some(s) => s.map.lock().unwrap().len(),
        None => global().map.lock().unwrap().len(),
    }
}

/// Looks up a canonical key in the current scope; `Some(is_empty)` on a
/// hit.
pub fn lookup(key: &Key) -> Option<bool> {
    match pluto_obs::session_ext::<Scope>() {
        Some(s) => s.map.lock().unwrap().get(key).copied(),
        None => global().map.lock().unwrap().get(key).copied(),
    }
}

/// Stores a verdict in the current scope. Once [`MAX_ENTRIES`] verdicts
/// are resident the insert is discarded and `ilp.cache_evictions` is
/// bumped — resident entries keep answering, but a nonzero eviction
/// counter in a profile (or in the `pluto-stats/1` service aggregate)
/// says the workload has outgrown the store and miss rates will climb.
pub fn insert(key: Key, is_empty: bool) {
    let store = |s: &Scope| {
        let mut m = s.map.lock().unwrap();
        if m.len() < MAX_ENTRIES {
            m.insert(key, is_empty);
        } else {
            pluto_obs::counters::ILP_CACHE_EVICTIONS.add(1);
        }
    };
    match pluto_obs::session_ext::<Scope>() {
        Some(s) => store(&s),
        None => store(global()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(eqs: &[&[Int]], ineqs: &[&[Int]]) -> ConstraintSet {
        let n = eqs
            .first()
            .or_else(|| ineqs.first())
            .map_or(0, |r| r.len() - 1);
        let mut s = ConstraintSet::new(n);
        for e in eqs {
            s.add_eq(e.to_vec());
        }
        for i in ineqs {
            s.add_ineq(i.to_vec());
        }
        s
    }

    #[test]
    fn permuted_rows_share_a_key() {
        let a = set(&[], &[&[1, 0, 0], &[0, 1, -2], &[-1, -1, 9]]);
        let b = set(&[], &[&[-1, -1, 9], &[1, 0, 0], &[0, 1, -2]]);
        assert_eq!(key_of(&a), key_of(&b));
    }

    #[test]
    fn scaled_rows_share_a_key() {
        // add_ineq divides by the coefficient gcd (flooring the
        // constant), add_eq by the row gcd — scaling collapses there.
        let a = set(&[&[1, -1, 0]], &[&[1, 1, -4]]);
        let b = set(&[&[3, -3, 0]], &[&[2, 2, -8]]);
        assert_eq!(key_of(&a), key_of(&b));
    }

    #[test]
    fn equality_sign_is_canonical() {
        // x - y = 0 and y - x = 0 are the same constraint.
        let a = set(&[&[1, -1, 0]], &[]);
        let b = set(&[&[-1, 1, 0]], &[]);
        assert_eq!(key_of(&a), key_of(&b));
        // ...but an inequality's sign is meaning, not presentation.
        let c = set(&[], &[&[1, -1, 0]]);
        let d = set(&[], &[&[-1, 1, 0]]);
        assert_ne!(key_of(&c), key_of(&d));
    }

    #[test]
    fn distinct_systems_get_distinct_keys() {
        let a = set(&[], &[&[1, 0, 0], &[0, 1, 0]]);
        let b = set(&[], &[&[1, 0, 0], &[0, 1, -1]]);
        assert_ne!(key_of(&a), key_of(&b));
        // Same rows, different dimensionality: still distinct.
        let mut widened = ConstraintSet::new(3);
        widened.add_ineq(vec![1, 0, 0, 0]);
        widened.add_ineq(vec![0, 1, 0, 0]);
        assert_ne!(key_of(&a), key_of(&widened));
    }

    #[test]
    fn cached_verdicts_match_fresh_ones() {
        // An empty and a nonempty system, probed twice each: the second
        // probe (whether it hit or not) must agree with the first.
        let empty = set(&[], &[&[1, 0, 0], &[-1, 0, -1]]); // x >= 0, x <= -1
        let full = set(&[], &[&[1, 0, 0], &[0, 1, 0]]);
        for s in [&empty, &full] {
            let first = s.is_empty();
            assert_eq!(s.is_empty(), first);
            assert_eq!(lookup(&key_of(s)), Some(first));
        }
        assert!(empty.is_empty());
        assert!(!full.is_empty());
    }

    #[test]
    fn sessions_get_isolated_stores() {
        let probe = set(&[], &[&[1, 0, 0], &[0, 1, 0]]);
        let key = key_of(&probe);
        let s1 = pluto_obs::ObsSession::builder().build();
        let s2 = pluto_obs::ObsSession::builder().build();
        {
            let _g = s1.install();
            assert_eq!(lookup(&key), None, "fresh session store not empty");
            insert(key.clone(), false);
            assert_eq!(lookup(&key), Some(false));
            assert_eq!(len(), 1);
        }
        {
            // A different session sees none of s1's verdicts, and its
            // enabled toggle is its own.
            let _g = s2.install();
            assert_eq!(lookup(&key), None);
            assert_eq!(len(), 0);
            assert!(enabled());
            set_enabled(false);
            assert!(!enabled());
        }
        {
            // s1's store and toggle survive untouched.
            let _g = s1.install();
            assert_eq!(lookup(&key), Some(false));
            assert!(enabled());
            clear();
            assert_eq!(len(), 0);
        }
    }

    #[test]
    fn capacity_bound_discards_and_counts() {
        // One-variable systems { x >= c } give MAX_ENTRIES+2 distinct
        // canonical keys cheaply.
        let key_for = |c: Int| {
            let mut s = ConstraintSet::new(1);
            s.add_ineq(vec![1, c]);
            key_of(&s)
        };
        let session = pluto_obs::ObsSession::builder().profile().build();
        let _g = session.install();
        for c in 0..MAX_ENTRIES as Int {
            insert(key_for(c), false);
        }
        assert_eq!(len(), MAX_ENTRIES);
        assert_eq!(pluto_obs::counters::ILP_CACHE_EVICTIONS.get(), 0);
        // At the cap: the insert is discarded, the eviction counter
        // ticks, and every resident verdict keeps answering.
        insert(key_for(MAX_ENTRIES as Int), true);
        assert_eq!(len(), MAX_ENTRIES);
        assert_eq!(lookup(&key_for(MAX_ENTRIES as Int)), None);
        assert_eq!(pluto_obs::counters::ILP_CACHE_EVICTIONS.get(), 1);
        assert_eq!(lookup(&key_for(0)), Some(false));
        assert_eq!(lookup(&key_for(MAX_ENTRIES as Int - 1)), Some(false));
        // The discard shows up in the session profile like any counter.
        drop(_g);
        let profile = session.finish_profile();
        assert_eq!(profile.counter("ilp.cache_evictions"), Some(1));
    }
}
