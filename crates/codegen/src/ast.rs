//! The executable loop AST produced by the code generator.

use pluto_linalg::{ceil_div, floor_div, Int};

/// An affine expression over numbered variables with an optional exact or
/// floor/ceil division: `(Σ terms + konst) / div`.
///
/// Variable numbering is global to one generated [`Ast`]: ids
/// `0..num_params` are the program parameters; every loop and let binding
/// allocates a fresh id. How the division rounds is decided by context
/// (lower bounds use `ceild`, upper bounds and lets use `floord`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffExpr {
    /// `(variable id, coefficient)` pairs.
    pub terms: Vec<(usize, Int)>,
    /// Constant term.
    pub konst: Int,
    /// Divisor (`>= 1`; `1` means no division).
    pub div: Int,
}

impl AffExpr {
    /// A constant expression.
    pub fn constant(c: Int) -> AffExpr {
        AffExpr {
            terms: Vec::new(),
            konst: c,
            div: 1,
        }
    }

    /// Evaluates the numerator at the given variable values.
    fn numer(&self, vals: &[Int]) -> Int {
        let mut v = self.konst;
        for &(var, c) in &self.terms {
            v += c * vals[var];
        }
        v
    }

    /// Evaluates with floor division.
    pub fn eval_floor(&self, vals: &[Int]) -> Int {
        let n = self.numer(vals);
        if self.div == 1 {
            n
        } else {
            floor_div(n, self.div)
        }
    }

    /// Evaluates with ceiling division.
    pub fn eval_ceil(&self, vals: &[Int]) -> Int {
        let n = self.numer(vals);
        if self.div == 1 {
            n
        } else {
            ceil_div(n, self.div)
        }
    }
}

/// A loop bound: for lower bounds, `min` over statements of `max` over
/// each statement's bound expressions (with `ceild` rounding); for upper
/// bounds, `max` over statements of `min` (with `floord`).
///
/// The two-level structure scans the *union* of the active statements'
/// projections: the inner level intersects one statement's constraints,
/// the outer level unions statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bound {
    /// One inner list per contributing statement.
    pub groups: Vec<Vec<AffExpr>>,
}

impl Bound {
    /// Evaluates as a lower bound (`min` of `max`, `ceild` rounding).
    ///
    /// # Panics
    /// Panics if any group is empty or there are no groups (an unbounded
    /// loop — rejected at generation time).
    pub fn eval_lower(&self, vals: &[Int]) -> Int {
        self.groups
            .iter()
            .map(|g| {
                g.iter()
                    .map(|e| e.eval_ceil(vals))
                    .max()
                    .expect("empty max")
            })
            .min()
            .expect("unbounded lower bound")
    }

    /// Evaluates as an upper bound (`max` of `min`, `floord` rounding).
    ///
    /// # Panics
    /// Panics like [`eval_lower`](Bound::eval_lower).
    pub fn eval_upper(&self, vals: &[Int]) -> Int {
        self.groups
            .iter()
            .map(|g| {
                g.iter()
                    .map(|e| e.eval_floor(vals))
                    .min()
                    .expect("empty min")
            })
            .max()
            .expect("unbounded upper bound")
    }
}

/// A guard condition: `Σ terms + konst >= 0` (or `== 0` when `eq`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CondRow {
    /// `(variable id, coefficient)` pairs.
    pub terms: Vec<(usize, Int)>,
    /// Constant term.
    pub konst: Int,
    /// Equality instead of `>=`.
    pub eq: bool,
}

impl CondRow {
    /// Whether the condition holds at the given variable values.
    pub fn holds(&self, vals: &[Int]) -> bool {
        let mut v = self.konst;
        for &(var, c) in &self.terms {
            v += c * vals[var];
        }
        if self.eq {
            v == 0
        } else {
            v >= 0
        }
    }
}

/// A `for` loop node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopNode {
    /// Variable id bound by the loop.
    pub var: usize,
    /// Display name (e.g. `c2` or `i`).
    pub name: String,
    /// Lower bound.
    pub lb: Bound,
    /// Upper bound (inclusive).
    pub ub: Bound,
    /// May iterations run concurrently (`omp parallel for`)?
    pub parallel: bool,
    /// Marked for vectorization (moved innermost by the Sec. 5.4 pass).
    pub vector: bool,
    /// Unroll factor (1 = not unrolled). Set by the syntactic post-pass
    /// of paper Sec. 6; execution is unchanged, but each unrolled chunk
    /// pays loop overhead once.
    pub unroll: usize,
    /// Scattering row this loop scans (`Some(r)` for loops over
    /// transformation dimension `r`; `None` for leaf domain-recovery
    /// loops over original iterators). Consumed by the static analyzer
    /// to re-derive parallelism verdicts per scattering level.
    pub level: Option<usize>,
    /// Loop body.
    pub body: Box<Ast>,
}

/// The generated program tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// Sequential composition.
    Seq(Vec<Ast>),
    /// A `for` loop.
    Loop(LoopNode),
    /// Binds `var := expr` (exact integer division via `floord`).
    Let {
        /// Variable id bound.
        var: usize,
        /// Display name.
        name: String,
        /// Defining expression.
        expr: AffExpr,
        /// Scope of the binding.
        body: Box<Ast>,
    },
    /// Conditional execution.
    Guard {
        /// Conjunction of conditions.
        conds: Vec<CondRow>,
        /// Guarded subtree.
        body: Box<Ast>,
    },
    /// Statement filter: within `body`, instances of `stmt` execute only
    /// if `conds` hold. Evaluated once where it appears (e.g. per tile),
    /// not per instance — the executable analogue of the loop-invariant
    /// statement conditions CLooG hoists out of inner loops.
    Filter {
        /// The statement being gated.
        stmt: usize,
        /// Conjunction of conditions.
        conds: Vec<CondRow>,
        /// Subtree in which the statement may be suppressed.
        body: Box<Ast>,
    },
    /// One statement instance.
    Stmt {
        /// Statement id in the program.
        stmt: usize,
        /// Variable ids holding the statement's *original* iterator
        /// values (what its accesses and body consume).
        orig_dims: Vec<usize>,
    },
}

impl Ast {
    /// Total number of [`Ast::Stmt`] leaves (diagnostics).
    pub fn num_stmt_leaves(&self) -> usize {
        match self {
            Ast::Seq(v) => v.iter().map(Ast::num_stmt_leaves).sum(),
            Ast::Loop(l) => l.body.num_stmt_leaves(),
            Ast::Let { body, .. } | Ast::Guard { body, .. } | Ast::Filter { body, .. } => {
                body.num_stmt_leaves()
            }
            Ast::Stmt { .. } => 1,
        }
    }

    /// Maximum variable id referenced plus one (slot-vector size for the
    /// executor).
    pub fn num_vars(&self) -> usize {
        fn expr_max(e: &AffExpr) -> usize {
            e.terms.iter().map(|&(v, _)| v + 1).max().unwrap_or(0)
        }
        fn bound_max(b: &Bound) -> usize {
            b.groups
                .iter()
                .flat_map(|g| g.iter().map(expr_max))
                .max()
                .unwrap_or(0)
        }
        match self {
            Ast::Seq(v) => v.iter().map(Ast::num_vars).max().unwrap_or(0),
            Ast::Loop(l) => (l.var + 1)
                .max(bound_max(&l.lb))
                .max(bound_max(&l.ub))
                .max(l.body.num_vars()),
            Ast::Let {
                var, expr, body, ..
            } => (var + 1).max(expr_max(expr)).max(body.num_vars()),
            Ast::Guard { conds, body } | Ast::Filter { conds, body, .. } => conds
                .iter()
                .flat_map(|c| c.terms.iter().map(|&(v, _)| v + 1))
                .max()
                .unwrap_or(0)
                .max(body.num_vars()),
            Ast::Stmt { orig_dims, .. } => orig_dims.iter().map(|&v| v + 1).max().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affexpr_divisions() {
        let e = AffExpr {
            terms: vec![(0, 2)],
            konst: 1,
            div: 3,
        };
        // (2*5 + 1)/3 = 11/3
        assert_eq!(e.eval_floor(&[5]), 3);
        assert_eq!(e.eval_ceil(&[5]), 4);
    }

    #[test]
    fn bound_min_of_max() {
        // lb = min( max(v0, 3), max(0) )
        let b = Bound {
            groups: vec![
                vec![
                    AffExpr {
                        terms: vec![(0, 1)],
                        konst: 0,
                        div: 1,
                    },
                    AffExpr::constant(3),
                ],
                vec![AffExpr::constant(0)],
            ],
        };
        assert_eq!(b.eval_lower(&[10]), 0);
        let ub = Bound {
            groups: vec![vec![AffExpr::constant(7)], vec![AffExpr::constant(9)]],
        };
        assert_eq!(ub.eval_upper(&[]), 9);
    }

    #[test]
    fn cond_rows() {
        let ge = CondRow {
            terms: vec![(0, 1)],
            konst: -2,
            eq: false,
        };
        assert!(ge.holds(&[2]));
        assert!(!ge.holds(&[1]));
        let eq = CondRow {
            terms: vec![(0, 2)],
            konst: -4,
            eq: true,
        };
        assert!(eq.holds(&[2]));
        assert!(!eq.holds(&[3]));
    }

    #[test]
    fn var_accounting() {
        let ast = Ast::Loop(LoopNode {
            var: 1,
            name: "c1".into(),
            lb: Bound {
                groups: vec![vec![AffExpr::constant(0)]],
            },
            ub: Bound {
                groups: vec![vec![AffExpr {
                    terms: vec![(0, 1)],
                    konst: -1,
                    div: 1,
                }]],
            },
            parallel: false,
            vector: false,
            unroll: 1,
            level: Some(0),
            body: Box::new(Ast::Stmt {
                stmt: 0,
                orig_dims: vec![1],
            }),
        });
        assert_eq!(ast.num_vars(), 2);
        assert_eq!(ast.num_stmt_leaves(), 1);
    }
}

/// Static code-complexity statistics of a generated AST — the paper's
/// recurring "code complexity" concern (e.g. scheduling-based LU "performs
/// poorly mainly due to code complexity"), made measurable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AstStats {
    /// `for` loops.
    pub loops: usize,
    /// Guard nodes.
    pub guards: usize,
    /// Guard condition rows (summed over guards and filters).
    pub conds: usize,
    /// Let bindings.
    pub lets: usize,
    /// Statement activity filters.
    pub filters: usize,
    /// Statement leaves.
    pub stmts: usize,
}

impl Ast {
    /// Collects static complexity statistics.
    pub fn stats(&self) -> AstStats {
        let mut s = AstStats::default();
        fn walk(a: &Ast, s: &mut AstStats) {
            match a {
                Ast::Seq(v) => v.iter().for_each(|x| walk(x, s)),
                Ast::Loop(l) => {
                    s.loops += 1;
                    walk(&l.body, s);
                }
                Ast::Let { body, .. } => {
                    s.lets += 1;
                    walk(body, s);
                }
                Ast::Guard { conds, body } => {
                    s.guards += 1;
                    s.conds += conds.len();
                    walk(body, s);
                }
                Ast::Filter { conds, body, .. } => {
                    s.filters += 1;
                    s.conds += conds.len();
                    walk(body, s);
                }
                Ast::Stmt { .. } => s.stmts += 1,
            }
        }
        walk(self, &mut s);
        s
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;

    #[test]
    fn stats_count_nodes() {
        let leaf = Ast::Stmt {
            stmt: 0,
            orig_dims: vec![],
        };
        let guarded = Ast::Guard {
            conds: vec![
                CondRow {
                    terms: vec![],
                    konst: 0,
                    eq: false,
                },
                CondRow {
                    terms: vec![],
                    konst: 1,
                    eq: true,
                },
            ],
            body: Box::new(leaf),
        };
        let ast = Ast::Seq(vec![guarded]);
        let s = ast.stats();
        assert_eq!(s.stmts, 1);
        assert_eq!(s.guards, 1);
        assert_eq!(s.conds, 2);
        assert_eq!(s.loops, 0);
    }
}
