//! The scanning algorithm: recursive per-dimension generation.

use crate::ast::{AffExpr, Ast, Bound, CondRow, LoopNode};
use pluto::{Band, Parallelism, RowInfo, RowKind, StmtScattering, Transformation};
use pluto_ir::Program;
use pluto_linalg::Int;
use pluto_poly::ConstraintSet;

/// A raw guard row at one scattering level:
/// `(terms-without-var, konst, var coefficient, is-equality)`.
type GuardRow = (Vec<(usize, Int)>, Int, Int, bool);

/// Generates the loop AST scanning all statements of `prog` in the
/// lexicographic order of their scatterings.
///
/// # Panics
/// Panics if a scattering dimension is unbounded (the parameter context
/// must bound every domain) — indicates a malformed transformation.
pub fn generate(prog: &Program, t: &Transformation) -> Ast {
    let _span = pluto_obs::span("codegen");
    let ast = Gen::new(prog, t).run();
    if pluto_obs::enabled() {
        pluto_obs::counters::CODEGEN_LOOPS.add(ast.stats().loops as u64);
    }
    ast
}

/// Builds the identity transformation reproducing the *original* program
/// order from the statements' `beta` vectors (the classic 2d+1 schedule:
/// `β0, i1, β1, …, id, βd`). Running it through [`generate`] and the
/// machine substrate executes the untransformed program — the paper's
/// native-compiler baseline.
pub fn original_schedule(prog: &Program) -> Transformation {
    let np = prog.num_params();
    let maxd = prog.stmts.iter().map(|s| s.num_iters()).max().unwrap_or(0);
    let nrows = 2 * maxd + 1;
    let mut stmts = Vec::with_capacity(prog.stmts.len());
    for s in &prog.stmts {
        let d = s.num_iters();
        let width = d + np + 1;
        let mut rows = Vec::with_capacity(nrows);
        for r in 0..nrows {
            let mut row = vec![0; width];
            if r % 2 == 0 {
                // Scalar row: beta position (0 beyond the statement depth).
                let j = r / 2;
                if j < s.beta.len() {
                    row[width - 1] = s.beta[j];
                }
            } else {
                let j = r / 2;
                if j < d {
                    row[j] = 1;
                }
            }
            rows.push(row);
        }
        stmts.push(StmtScattering { rows });
    }
    let rows: Vec<RowInfo> = (0..nrows)
        .map(|r| RowInfo {
            kind: if r % 2 == 0 {
                RowKind::Scalar
            } else {
                RowKind::Loop
            },
            par: Parallelism::Sequential,
            tile_level: 0,
            skewed: false,
        })
        .collect();
    let stmt_par = Transformation::uniform_stmt_par(&rows, prog.stmts.len());
    Transformation {
        stmts,
        domains: prog.stmts.iter().map(|s| s.domain.clone()).collect(),
        dim_names: prog.stmts.iter().map(|s| s.iters.clone()).collect(),
        num_orig_dims: prog.stmts.iter().map(|s| s.num_iters()).collect(),
        rows,
        stmt_par,
        bands: Vec::<Band>::new(),
    }
}

struct Gen<'a> {
    prog: &'a Program,
    t: &'a Transformation,
    nrows: usize,
    np: usize,
    /// Per-statement domain dimensionality (supernodes + originals).
    ndims: Vec<usize>,
    /// Extended systems over `[c_0..c_R-1, dims, params, 1]`.
    ext: Vec<ConstraintSet>,
    /// `projc[s][k]`: projection onto `[c_0..c_k, params, 1]`.
    projc: Vec<Vec<ConstraintSet>>,
    next_var: usize,
    /// Variable ids of the scattering dims along the current path.
    c_vars: Vec<usize>,
    /// Per-statement guard rows accumulated along the current path.
    guards: Vec<Vec<CondRow>>,
}

impl<'a> Gen<'a> {
    fn new(prog: &'a Program, t: &'a Transformation) -> Gen<'a> {
        let np = prog.num_params();
        let nrows = t.num_rows();
        let nstmts = prog.stmts.len();
        let mut ndims = Vec::with_capacity(nstmts);
        let mut ext = Vec::with_capacity(nstmts);
        for s in 0..nstmts {
            let d = t.domains[s].num_vars() - np;
            ndims.push(d);
            let width = nrows + d + np + 1;
            // Lift the domain and add one equality per scattering row.
            let mut e = t.domains[s].insert_dims(0, nrows);
            // Parameter context.
            let ctx = prog.context.insert_dims(0, nrows + d);
            e = e.intersect(&ctx);
            for (r, srow) in t.stmts[s].rows.iter().enumerate() {
                let mut row = vec![0; width];
                row[r] = -1;
                row[nrows..nrows + d + np + 1].copy_from_slice(&srow[..d + np + 1]);
                e.add_eq(row);
            }
            ext.push(e);
        }
        // Projection chains: first drop the domain dims, then peel the
        // scattering dims from the back.
        let mut projc = Vec::with_capacity(nstmts);
        for s in 0..nstmts {
            let mut chain = vec![ConstraintSet::new(0); nrows];
            let mut cur = ext[s].project_out(nrows, ndims[s]);
            cur = compact(cur);
            for k in (0..nrows).rev() {
                chain[k] = cur.clone();
                if k > 0 {
                    cur = compact(cur.project_out(k, 1));
                }
            }
            projc.push(chain);
        }
        Gen {
            prog,
            t,
            nrows,
            np,
            ndims,
            ext,
            projc,
            next_var: np,
            c_vars: Vec::new(),
            guards: vec![Vec::new(); nstmts],
        }
    }

    fn run(mut self) -> Ast {
        let active: Vec<usize> = (0..self.prog.stmts.len()).collect();
        self.rec(0, &active)
    }

    fn alloc(&mut self) -> usize {
        let v = self.next_var;
        self.next_var += 1;
        v
    }

    /// Maps a projection row (over `[c_0..c_k, params, 1]`) into AST terms.
    fn row_terms(&self, row: &[Int], k: usize, skip: usize) -> (Vec<(usize, Int)>, Int) {
        let mut terms = Vec::new();
        for (j, &coef) in row.iter().enumerate().take(k + 1) {
            if j != skip && coef != 0 {
                terms.push((self.c_vars[j], coef));
            }
        }
        for p in 0..self.np {
            if row[k + 1 + p] != 0 {
                terms.push((p, row[k + 1 + p]));
            }
        }
        (terms, row[k + 1 + self.np])
    }

    fn rec(&mut self, level: usize, active: &[usize]) -> Ast {
        if active.is_empty() {
            return Ast::Seq(Vec::new());
        }
        if level == self.nrows {
            return self.leaves(active);
        }
        if self.t.rows[level].kind == RowKind::Scalar {
            return self.scalar_level(level, active);
        }
        self.loop_level(level, active)
    }

    fn scalar_level(&mut self, level: usize, active: &[usize]) -> Ast {
        // Group by the row's constant value (scalar rows have no variable
        // coefficients by construction).
        let mut groups: Vec<(Int, Vec<usize>)> = Vec::new();
        for &s in active {
            let srow = &self.t.stmts[s].rows[level];
            let nd = self.ndims[s];
            debug_assert!(
                srow[..nd + self.np].iter().all(|&v| v == 0),
                "scalar row with variable coefficients"
            );
            let c = srow[nd + self.np];
            match groups.iter_mut().find(|(v, _)| *v == c) {
                Some((_, g)) => g.push(s),
                None => groups.push((c, vec![s])),
            }
        }
        groups.sort_by_key(|(v, _)| *v);
        let mut seq = Vec::with_capacity(groups.len());
        for (c, group) in groups {
            let var = self.alloc();
            self.c_vars.push(var);
            let body = self.rec(level + 1, &group);
            self.c_vars.pop();
            seq.push(Ast::Let {
                var,
                name: format!("c{}", level + 1),
                expr: AffExpr::constant(c),
                body: Box::new(body),
            });
        }
        if seq.len() == 1 {
            seq.pop().expect("single group")
        } else {
            Ast::Seq(seq)
        }
    }

    fn loop_level(&mut self, level: usize, active: &[usize]) -> Ast {
        self.loop_level_with(level, active, &[], &[])
    }

    /// Emits the loop(s) for `level` over `active`, with optional extra
    /// bound expressions capping the range (used by the degenerate-point
    /// splitting below).
    fn loop_level_with(
        &mut self,
        level: usize,
        active: &[usize],
        extra_lb: &[AffExpr],
        extra_ub: &[AffExpr],
    ) -> Ast {
        // Per-statement bound expressions and raw guard rows at this level.
        let mut lowers_per: Vec<Vec<AffExpr>> = Vec::with_capacity(active.len());
        let mut uppers_per: Vec<Vec<AffExpr>> = Vec::with_capacity(active.len());
        let mut grows_per: Vec<Vec<GuardRow>> = Vec::new();
        for &s in active {
            let proj = &self.projc[s][level];
            let mut lowers = Vec::new();
            let mut uppers = Vec::new();
            let mut grows = Vec::new();
            let rows: Vec<(Vec<Int>, bool)> = proj
                .ineqs()
                .iter()
                .map(|r| (r.clone(), false))
                .chain(proj.eqs().iter().map(|r| (r.clone(), true)))
                .collect();
            for (row, is_eq) in rows {
                let a = row[level];
                if a == 0 {
                    continue;
                }
                let (terms, konst) = self.row_terms(&row, level, level);
                if a > 0 || is_eq {
                    // a·c + rest >= 0  =>  c >= ceil(−rest / a)   (a > 0)
                    let aa = a.abs();
                    let sign = if a > 0 { -1 } else { 1 };
                    lowers.push(AffExpr {
                        terms: terms.iter().map(|&(v, c)| (v, sign * c)).collect(),
                        konst: sign * konst,
                        div: aa,
                    });
                }
                if a < 0 || is_eq {
                    // c <= floor(rest / −a)   (a < 0)
                    let aa = a.abs();
                    let sign = if a < 0 { 1 } else { -1 };
                    uppers.push(AffExpr {
                        terms: terms.iter().map(|&(v, c)| (v, sign * c)).collect(),
                        konst: sign * konst,
                        div: aa,
                    });
                }
                // Guard-row parts: (terms-without-var, konst, var coeff, eq).
                grows.push((terms, konst, a, is_eq));
            }
            assert!(
                !lowers.is_empty() && !uppers.is_empty(),
                "statement {s}: unbounded scattering dimension c{}",
                level + 1
            );
            lowers_per.push(lowers);
            uppers_per.push(uppers);
            grows_per.push(grows);
        }

        // Cap every statement's range with the region bounds, if any.
        for e in extra_lb {
            for l in lowers_per.iter_mut() {
                l.push(e.clone());
            }
        }
        for e in extra_ub {
            for u in uppers_per.iter_mut() {
                u.push(e.clone());
            }
        }

        // A loop is parallel iff it is parallel for every statement that
        // actually shares it (the active set is exactly one fission group).
        let parallel = active
            .iter()
            .all(|&s| self.t.par_for(s, level) != Parallelism::Sequential);
        let vector = parallel
            && active
                .iter()
                .all(|&s| self.t.par_for(s, level) == Parallelism::Vector);
        let name = format!("c{}", level + 1);

        // Single statement, or all statements with identical bounds: one
        // guard-free loop over the (common) range.
        let bounds_uniform = lowers_per.iter().all(|l| *l == lowers_per[0])
            && uppers_per.iter().all(|u| *u == uppers_per[0]);
        if active.len() == 1 || bounds_uniform {
            let var = self.alloc();
            self.c_vars.push(var);
            let body = self.rec(level + 1, active);
            self.c_vars.pop();
            return Ast::Loop(LoopNode {
                var,
                name,
                lb: Bound {
                    groups: vec![lowers_per[0].clone()],
                },
                ub: Bound {
                    groups: vec![uppers_per[0].clone()],
                },
                parallel,
                vector,
                unroll: 1,
                level: Some(level),
                body: Box::new(body),
            });
        }

        // A statement whose range at this level is a single point (an
        // equality row, e.g. LU's sunk S1 with c3 == c1, or FDTD's S1)
        // would stretch the shared loop's bounds across the whole union
        // and force guards on every iteration. Split the range around the
        // point instead — before / at / after — so the other statements
        // scan their own exact bounds and the point region reduces to a
        // guarded single instance (CLooG's `if (c1 == c2+c3)` structure in
        // the paper's Fig. 9(c)).
        if active.len() > 1 {
            let degen = (0..active.len()).find(|&ai| grows_per[ai].iter().any(|(_, _, _, eq)| *eq));
            if let Some(ai) = degen {
                return self.split_on_point(level, active, ai, &grows_per, extra_lb, extra_ub);
            }
        }

        // Prologue/kernel/epilogue separation only pays off when every
        // statement covers essentially the same range up to constant
        // shifts (fusion alignment, as in Figs. 3/7); with genuinely
        // different shapes the kernel intersection can be empty and the
        // split would double-scan the range. It also multiplies the code
        // 3x per level, so — like CLooG's -f/-l control used in the paper
        // ("cloog -f 3 -l 5") — we only separate the *innermost* loop
        // level, where iterations (and thus guard evaluations) dominate;
        // outer levels use per-statement activity filters, evaluated once
        // per iteration of that loop.
        let innermost = (level + 1..self.nrows).all(|r| self.t.rows[r].kind != RowKind::Loop);
        if !innermost || !shifted_uniform(&lowers_per) || !shifted_uniform(&uppers_per) {
            let var = self.alloc();
            self.c_vars.push(var);
            let mut body = self.rec(level + 1, active);
            // Per-statement activity conditions, evaluated once per
            // iteration of *this* loop (not per instance below it).
            for (ai, &s) in active.iter().enumerate() {
                let rows: Vec<CondRow> = grows_per[ai]
                    .iter()
                    .filter(|g| !grows_per.iter().all(|other| other.contains(g)))
                    .map(|(terms, konst, a, is_eq)| {
                        let mut t = terms.clone();
                        t.push((var, *a));
                        CondRow {
                            terms: t,
                            konst: *konst,
                            eq: *is_eq,
                        }
                    })
                    .collect();
                if !rows.is_empty() {
                    body = Ast::Filter {
                        stmt: s,
                        conds: rows,
                        body: Box::new(body),
                    };
                }
            }
            self.c_vars.pop();
            return Ast::Loop(LoopNode {
                var,
                name,
                lb: Bound { groups: lowers_per },
                ub: Bound { groups: uppers_per },
                parallel,
                vector,
                unroll: 1,
                level: Some(level),
                body: Box::new(body),
            });
        }

        // Statements share the loop with differing bounds: split the range
        // into prologue / kernel / epilogue (the classic CLooG separation
        // visible in the paper's Fig. 3(d)). The kernel — where *every*
        // statement's bounds hold by construction (max of lowers, min of
        // uppers) — runs guard-free; the boundary loops carry per-statement
        // guard rows.
        let all_lowers: Vec<AffExpr> = lowers_per.iter().flatten().cloned().collect();
        let all_uppers: Vec<AffExpr> = uppers_per.iter().flatten().cloned().collect();

        // Prologue: [union lb, kernel lb − 1]. max(lowers) − 1 as an upper
        // bound: one singleton group per (ceil-)lower converted to a floor
        // expression (ceil(n/d) − 1 == floor((n−1)/d)).
        let prologue_ub = Bound {
            groups: all_lowers
                .iter()
                .map(|e| {
                    let mut g = vec![AffExpr {
                        terms: e.terms.clone(),
                        konst: e.konst - 1,
                        div: e.div,
                    }];
                    // Enclosing region caps apply to the boundary loops too
                    // (min within the group).
                    g.extend(extra_ub.iter().cloned());
                    g
                })
                .collect(),
        };
        // Epilogue: [kernel ub + 1, union ub]. min(uppers) + 1 as a lower
        // bound: singleton groups per (floor-)upper converted to a ceil
        // expression (floor(n/d) + 1 == ceil((n+1)/d)).
        let epilogue_lb = Bound {
            groups: all_uppers
                .iter()
                .map(|e| {
                    let mut g = vec![AffExpr {
                        terms: e.terms.clone(),
                        konst: e.konst + 1,
                        div: e.div,
                    }];
                    g.extend(extra_lb.iter().cloned());
                    g
                })
                .collect(),
        };

        let mut seq = Vec::with_capacity(3);
        for region in 0..3 {
            let var = self.alloc();
            self.c_vars.push(var);
            let guarded = region != 1;
            let mut body = self.rec(level + 1, active);
            if guarded {
                for (ai, &s) in active.iter().enumerate() {
                    let rows: Vec<CondRow> = grows_per[ai]
                        .iter()
                        .map(|(terms, konst, a, is_eq)| {
                            let mut t = terms.clone();
                            t.push((var, *a));
                            CondRow {
                                terms: t,
                                konst: *konst,
                                eq: *is_eq,
                            }
                        })
                        .collect();
                    if !rows.is_empty() {
                        body = Ast::Filter {
                            stmt: s,
                            conds: rows,
                            body: Box::new(body),
                        };
                    }
                }
            }
            self.c_vars.pop();
            let (lb, ub) = match region {
                0 => (
                    Bound {
                        groups: lowers_per.clone(),
                    },
                    prologue_ub.clone(),
                ),
                1 => (
                    Bound {
                        groups: vec![all_lowers.clone()],
                    },
                    Bound {
                        groups: vec![all_uppers.clone()],
                    },
                ),
                _ => (
                    epilogue_lb.clone(),
                    Bound {
                        groups: uppers_per.clone(),
                    },
                ),
            };
            if region == 2 {
                // Guard against re-executing the overlap when the kernel is
                // empty (kernel lb − 1 >= kernel ub + 1): the epilogue only
                // owns iterations with c >= max(lowers), i.e. d·c − n >= 0
                // for every lower expression.
                let conds: Vec<CondRow> = all_lowers
                    .iter()
                    .map(|e| {
                        let mut terms: Vec<(usize, Int)> =
                            e.terms.iter().map(|&(v, c)| (v, -c)).collect();
                        terms.push((var, e.div));
                        CondRow {
                            terms,
                            konst: -e.konst,
                            eq: false,
                        }
                    })
                    .collect();
                body = Ast::Guard {
                    conds,
                    body: Box::new(body),
                };
            }
            seq.push(Ast::Loop(LoopNode {
                var,
                name: name.clone(),
                lb,
                ub,
                parallel,
                vector,
                unroll: 1,
                level: Some(level),
                body: Box::new(body),
            }));
        }
        Ast::Seq(seq)
    }

    /// Splits a shared loop level around a statement whose range is a
    /// single point `p` (it has an equality row): regions `c < p`, `c ==
    /// p`, `c > p` in order. The other statements scan their exact bounds
    /// in the outer regions; the point region is a `Let` with per-statement
    /// guards — the structure CLooG emits for LU's sunk S1 (Fig. 9(c)).
    #[allow(clippy::type_complexity)]
    fn split_on_point(
        &mut self,
        level: usize,
        active: &[usize],
        d_ai: usize,
        grows_per: &[Vec<GuardRow>],
        extra_lb: &[AffExpr],
        extra_ub: &[AffExpr],
    ) -> Ast {
        let d = active[d_ai];
        let rest: Vec<usize> = active.iter().copied().filter(|&s| s != d).collect();
        let (terms, konst, a, _) = grows_per[d_ai]
            .iter()
            .find(|(_, _, _, eq)| *eq)
            .expect("degenerate statement has an equality row")
            .clone();
        // a*c + rest == 0  =>  c = (-rest)/a, exact on the integer points.
        let sign = -a.signum();
        let p = AffExpr {
            terms: terms.iter().map(|&(v, c)| (v, sign * c)).collect(),
            konst: sign * konst,
            div: a.abs(),
        };
        // The point region executes c = floord(n, d) (the `Let` below), so
        // the complements are relative to the *floor*: as a floor-evaluated
        // upper bound, q − 1 = floord(n − d, d); as a ceil-evaluated lower
        // bound, q + 1 = ceild(n + 1, d). (Using n + d for the latter is
        // wrong at non-divisible points: ceild(n + d, d) = q + 2.)
        let p_minus_1 = AffExpr {
            konst: p.konst - p.div,
            ..p.clone()
        };
        let p_plus_1 = AffExpr {
            konst: p.konst + 1,
            ..p.clone()
        };

        // Region 1: c < p.
        let mut ub1 = extra_ub.to_vec();
        ub1.push(p_minus_1);
        let r1 = self.loop_level_with(level, &rest, extra_lb, &ub1);

        // Region 2: c == p -- a single guarded instance of every statement.
        let var = self.alloc();
        self.c_vars.push(var);
        let mut body2 = self.rec(level + 1, active);
        for (ai, &s) in active.iter().enumerate() {
            // Every statement keeps its own rows at this level as an
            // activity filter (for `d` these include tile/context
            // constraints linking the point to outer dims, and the
            // divisibility of the equality).
            let rows: Vec<CondRow> = grows_per[ai]
                .iter()
                .map(|(t, k, coeff, eq)| {
                    let mut tt = t.clone();
                    tt.push((var, *coeff));
                    CondRow {
                        terms: tt,
                        konst: *k,
                        eq: *eq,
                    }
                })
                .collect();
            if !rows.is_empty() {
                body2 = Ast::Filter {
                    stmt: s,
                    conds: rows,
                    body: Box::new(body2),
                };
            }
        }
        self.c_vars.pop();
        // Region-wide caps (from enclosing splits) on the point itself.
        let mut conds = Vec::new();
        for e in extra_lb {
            let mut t: Vec<(usize, Int)> = e.terms.iter().map(|&(v, c)| (v, -c)).collect();
            t.push((var, e.div));
            conds.push(CondRow {
                terms: t,
                konst: -e.konst,
                eq: false,
            });
        }
        for e in extra_ub {
            let mut t: Vec<(usize, Int)> = e.terms.clone();
            t.push((var, -e.div));
            conds.push(CondRow {
                terms: t,
                konst: e.konst,
                eq: false,
            });
        }
        let inner2 = if conds.is_empty() {
            body2
        } else {
            Ast::Guard {
                conds,
                body: Box::new(body2),
            }
        };
        let r2 = Ast::Let {
            var,
            name: format!("c{}", level + 1),
            expr: p.clone(),
            body: Box::new(inner2),
        };

        // Region 3: c > p.
        let mut lb3 = extra_lb.to_vec();
        lb3.push(p_plus_1);
        let r3 = self.loop_level_with(level, &rest, &lb3, extra_ub);

        Ast::Seq(vec![r1, r2, r3])
    }

    /// Innermost: recover each active statement's domain dims and emit it.
    fn leaves(&mut self, active: &[usize]) -> Ast {
        let mut order: Vec<usize> = active.to_vec();
        order.sort_unstable();
        let mut seq = Vec::with_capacity(order.len());
        for s in order {
            seq.push(self.leaf(s));
        }
        if seq.len() == 1 {
            seq.pop().expect("single leaf")
        } else {
            Ast::Seq(seq)
        }
    }

    fn leaf(&mut self, s: usize) -> Ast {
        let nd = self.ndims[s];
        let width = self.nrows + nd + self.np + 1;
        let mut dim_var: Vec<Option<usize>> = vec![None; nd];
        // (wrapping order: lets/loops created first are outermost)
        enum Wrap {
            Let {
                var: usize,
                name: String,
                expr: AffExpr,
            },
            Loop {
                var: usize,
                name: String,
                lb: Bound,
                ub: Bound,
            },
        }
        let mut wraps: Vec<Wrap> = Vec::new();
        let mut conds: Vec<CondRow> = self.guards[s].clone();
        let mut any_loop = false;

        // Translate an extended-system row into AST terms given the
        // current dim bindings; returns None if it mentions unbound dims.
        let (nrows, np) = (self.nrows, self.np);
        let to_terms = move |row: &[Int],
                             dim_var: &[Option<usize>],
                             c_vars: &[usize],
                             skip_dim: Option<usize>|
              -> Option<(Vec<(usize, Int)>, Int)> {
            let mut terms = Vec::new();
            for j in 0..nrows {
                if row[j] != 0 {
                    terms.push((c_vars[j], row[j]));
                }
            }
            for d in 0..nd {
                if Some(d) == skip_dim || row[nrows + d] == 0 {
                    continue;
                }
                terms.push((dim_var[d]?, row[nrows + d]));
            }
            for p in 0..np {
                if row[nrows + nd + p] != 0 {
                    terms.push((p, row[nrows + nd + p]));
                }
            }
            Some((terms, row[width - 1]))
        };

        let eqs: Vec<Vec<Int>> = self.ext[s].eqs().to_vec();
        loop {
            // Fixed point: resolve every dim an equality now determines
            // (order-independent — a wavefronted scattering like
            // c1 = kT + jT determines kT only after c2 = jT resolves jT).
            let mut progress = true;
            while progress {
                progress = false;
                for d in 0..nd {
                    if dim_var[d].is_some() {
                        continue;
                    }
                    for row in &eqs {
                        let a = row[self.nrows + d];
                        if a == 0 {
                            continue;
                        }
                        let Some((terms, konst)) = to_terms(row, &dim_var, &self.c_vars, Some(d))
                        else {
                            continue;
                        };
                        // a·d + rest == 0  =>  d = (−rest)/a, exact on
                        // integer points; emitted as floord with a
                        // sign-normalized divisor.
                        let sign = -a.signum();
                        let var = self.alloc();
                        let expr = AffExpr {
                            terms: terms.iter().map(|&(v, c)| (v, sign * c)).collect(),
                            konst: sign * konst,
                            div: a.abs(),
                        };
                        wraps.push(Wrap::Let {
                            var,
                            name: self.t.dim_names[s][d].clone(),
                            expr,
                        });
                        dim_var[d] = Some(var);
                        if a.abs() > 1 {
                            // Divisibility guard: the equality must hold
                            // exactly.
                            let mut gterms = terms;
                            gterms.push((var, a));
                            conds.push(CondRow {
                                terms: gterms,
                                konst,
                                eq: true,
                            });
                        }
                        progress = true;
                        break;
                    }
                }
            }
            let Some(d) = (0..nd).find(|&d| dim_var[d].is_none()) else {
                break;
            };
            // Fall back to a loop over dim d: bounds from the projection
            // of the extended system onto [c…, dims..=d, params].
            any_loop = true;
            let q = compact(self.ext[s].project_out(self.nrows + d + 1, nd - d - 1));
            let var = self.alloc();
            let mut lowers = Vec::new();
            let mut uppers = Vec::new();
            let col = self.nrows + d;
            let rows: Vec<(Vec<Int>, bool)> = q
                .ineqs()
                .iter()
                .map(|r| (r.clone(), false))
                .chain(q.eqs().iter().map(|r| (r.clone(), true)))
                .collect();
            for (row, is_eq) in rows {
                let a = row[col];
                if a == 0 {
                    continue;
                }
                // Rebuild with the projected width (dims > d removed).
                let mut full = vec![0; width];
                full[..col].copy_from_slice(&row[..col]);
                for p in 0..=self.np {
                    full[self.nrows + nd + p] = row[col + 1 + p];
                }
                let Some((terms, konst)) = to_terms(&full, &dim_var, &self.c_vars, Some(d)) else {
                    continue;
                };
                let aa = a.abs();
                if a > 0 || is_eq {
                    let sign = if a > 0 { -1 } else { 1 };
                    lowers.push(AffExpr {
                        terms: terms.iter().map(|&(v, c)| (v, sign * c)).collect(),
                        konst: sign * konst,
                        div: aa,
                    });
                }
                if a < 0 || is_eq {
                    let sign = if a < 0 { 1 } else { -1 };
                    uppers.push(AffExpr {
                        terms: terms.iter().map(|&(v, c)| (v, sign * c)).collect(),
                        konst: sign * konst,
                        div: aa,
                    });
                }
                // The skipped `full` row also holds dim d's coefficient —
                // include the raw row as a guard for exactness below.
            }
            assert!(
                !lowers.is_empty() && !uppers.is_empty(),
                "statement {s}: unbounded domain dim {d}"
            );
            wraps.push(Wrap::Loop {
                var,
                name: self.t.dim_names[s][d].clone(),
                lb: Bound {
                    groups: vec![lowers],
                },
                ub: Bound {
                    groups: vec![uppers],
                },
            });
            dim_var[d] = Some(var);
        }

        if any_loop {
            // The unique-rational-solution argument no longer applies:
            // guard with every remaining constraint of the extended system
            // that mentions a domain dim.
            for row in self.ext[s].ineqs() {
                if (0..nd).any(|d| row[self.nrows + d] != 0) {
                    if let Some((terms, konst)) = to_terms(row, &dim_var, &self.c_vars, None) {
                        conds.push(CondRow {
                            terms,
                            konst,
                            eq: false,
                        });
                    }
                }
            }
        }

        let n_orig = self.t.num_orig_dims[s];
        let orig_dims: Vec<usize> = (nd - n_orig..nd)
            .map(|d| dim_var[d].expect("all dims bound"))
            .collect();
        let mut node = Ast::Stmt { stmt: s, orig_dims };
        if !conds.is_empty() {
            // Most-selective first for short-circuit evaluation: equality
            // rows, then inner-level bound rows (pushed last).
            conds.reverse();
            conds.sort_by_key(|c| !c.eq);
            node = Ast::Guard {
                conds,
                body: Box::new(node),
            };
        }
        for w in wraps.into_iter().rev() {
            node = match w {
                Wrap::Let { var, name, expr } => Ast::Let {
                    var,
                    name,
                    expr,
                    body: Box::new(node),
                },
                Wrap::Loop { var, name, lb, ub } => Ast::Loop(LoopNode {
                    var,
                    name,
                    lb,
                    ub,
                    parallel: false,
                    vector: false,
                    unroll: 1,
                    level: None,
                    body: Box::new(node),
                }),
            };
        }
        node
    }
}

/// Whether every statement's bound-expression list matches the first's up
/// to constant offsets (same variable terms and divisors after sorting) —
/// the precondition for profitable prologue/kernel/epilogue separation.
fn shifted_uniform(per: &[Vec<AffExpr>]) -> bool {
    let key = |e: &AffExpr| (e.terms.clone(), e.div, e.konst);
    let mut first: Vec<AffExpr> = per[0].clone();
    first.sort_by_key(key);
    per.iter().all(|l| {
        if l.len() != first.len() {
            return false;
        }
        let mut sorted = l.clone();
        sorted.sort_by_key(key);
        sorted
            .iter()
            .zip(&first)
            .all(|(a, b)| a.terms == b.terms && a.div == b.div)
    })
}

/// Cheap redundancy control between projection steps: syntactic dedup plus
/// exact (ILP) redundancy elimination once the system grows past a
/// threshold.
fn compact(mut s: ConstraintSet) -> ConstraintSet {
    s.dedup();
    if s.ineqs().len() > 24 {
        s.remove_redundant();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_copy_program() -> Program {
        use pluto_ir::{Expr, ProgramBuilder, StatementSpec};
        let mut b = ProgramBuilder::new("copy", &["N"]);
        b.add_context_ineq(vec![1, -2]);
        b.add_array("a", 1);
        b.add_array("b", 1);
        b.add_statement(StatementSpec {
            name: "S1".into(),
            iters: vec!["i".into()],
            domain_ineqs: vec![vec![1, 0, 0], vec![-1, 1, -1]],
            beta: vec![0, 0],
            write: ("b".into(), vec![vec![1, 0, 0]]),
            reads: vec![("a".into(), vec![vec![1, 0, 0]])],
            body: Expr::Read(0),
        });
        b.build()
    }

    #[test]
    fn original_schedule_shape() {
        let p = simple_copy_program();
        let t = original_schedule(&p);
        assert_eq!(t.num_rows(), 3); // β0, i, β1
        assert_eq!(t.rows[0].kind, RowKind::Scalar);
        assert_eq!(t.rows[1].kind, RowKind::Loop);
        assert_eq!(t.stmts[0].rows[1], vec![1, 0, 0]);
    }

    #[test]
    fn generates_single_loop() {
        let p = simple_copy_program();
        let t = original_schedule(&p);
        let ast = generate(&p, &t);
        assert_eq!(ast.num_stmt_leaves(), 1);
        // Find the loop and check its bounds at N = 7: 0..=6.
        fn find_loop(a: &Ast) -> Option<&LoopNode> {
            match a {
                Ast::Loop(l) => Some(l),
                Ast::Seq(v) => v.iter().find_map(find_loop),
                Ast::Let { body, .. } | Ast::Guard { body, .. } | Ast::Filter { body, .. } => {
                    find_loop(body)
                }
                Ast::Stmt { .. } => None,
            }
        }
        let l = find_loop(&ast).expect("loop");
        // vals: slot 0 = param N.
        let mut vals = vec![0; ast.num_vars()];
        vals[0] = 7;
        assert_eq!(l.lb.eval_lower(&vals), 0);
        assert_eq!(l.ub.eval_upper(&vals), 6);
    }
}
