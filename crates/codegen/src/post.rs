//! Syntactic post-processing on the generated AST (paper Sec. 6: the
//! annotation-driven register-tiling / unroll-jam pass whose "preview of
//! the potential performance improvement" appears in the MVT experiment).

use crate::ast::Ast;

/// Marks every innermost loop (no loop nested inside) for unrolling by
/// `factor`. Semantics are unchanged — the executor runs the same
/// iterations — but each unrolled chunk pays loop overhead once, the
/// effect register-level unroll-jam has on compiled code.
///
/// Legality needs no extra checking: unrolling never reorders iterations.
///
/// # Panics
/// Panics if `factor == 0`.
pub fn unroll_innermost(ast: &mut Ast, factor: usize) {
    assert!(factor >= 1, "unroll factor must be at least 1");
    mark(ast, factor);
}

/// Returns true if the subtree contains a loop.
fn mark(ast: &mut Ast, factor: usize) -> bool {
    match ast {
        Ast::Seq(v) => {
            let mut any = false;
            for a in v {
                any |= mark(a, factor);
            }
            any
        }
        Ast::Loop(l) => {
            if !mark(&mut l.body, factor) {
                l.unroll = factor;
            }
            true
        }
        Ast::Let { body, .. } | Ast::Guard { body, .. } | Ast::Filter { body, .. } => {
            mark(body, factor)
        }
        Ast::Stmt { .. } => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AffExpr, Bound, LoopNode};

    fn simple_loop(body: Ast) -> Ast {
        Ast::Loop(LoopNode {
            var: 0,
            name: "c1".into(),
            lb: Bound {
                groups: vec![vec![AffExpr::constant(0)]],
            },
            ub: Bound {
                groups: vec![vec![AffExpr::constant(9)]],
            },
            parallel: false,
            vector: false,
            unroll: 1,
            level: Some(0),
            body: Box::new(body),
        })
    }

    #[test]
    fn marks_only_innermost() {
        let inner = simple_loop(Ast::Stmt {
            stmt: 0,
            orig_dims: vec![],
        });
        let mut nest = simple_loop(inner);
        unroll_innermost(&mut nest, 4);
        let Ast::Loop(outer) = &nest else { panic!() };
        assert_eq!(outer.unroll, 1);
        let Ast::Loop(inner) = &*outer.body else {
            panic!()
        };
        assert_eq!(inner.unroll, 4);
    }
}
