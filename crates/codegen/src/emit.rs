//! OpenMP C pretty-printer for generated ASTs (the paper's target form,
//! cf. Figs. 3(d), 4(b), 9(c)).

use crate::ast::{AffExpr, Ast, Bound, CondRow, LoopNode};
use pluto_ir::{Expr, Program};
use std::fmt::Write as _;

/// Renders the AST as compilable-looking OpenMP C, with statement macros
/// built from the program's accesses and bodies.
pub fn emit_c(prog: &Program, ast: &Ast) -> String {
    let mut names: Vec<String> = prog.params.clone();
    names.resize(ast.num_vars().max(names.len()), String::new());
    let mut out = String::new();
    out.push_str("#define floord(n,d) (((n) < 0) ? -((-(n)+(d)-1)/(d)) : (n)/(d))\n");
    out.push_str("#define ceild(n,d) (-floord(-(n),(d)))\n");
    out.push_str("#define pmax(a,b) ((a) > (b) ? (a) : (b))\n");
    out.push_str("#define pmin(a,b) ((a) < (b) ? (a) : (b))\n\n");
    for (i, s) in prog.stmts.iter().enumerate() {
        let args = s.iters.join(",");
        let lhs = access_text(prog, s, &s.write);
        let rhs = expr_text(prog, s, &s.body);
        let _ = writeln!(out, "#define S{}({args}) {{ {lhs} = {rhs}; }}", i + 1);
    }
    out.push('\n');
    emit(ast, &mut names, 0, &mut out);
    out
}

fn access_text(prog: &Program, s: &pluto_ir::Statement, a: &pluto_ir::Access) -> String {
    let mut t = prog.arrays[a.array].name.clone();
    for row in &a.map {
        t.push('[');
        t.push_str(&affine_text(row, &s.iters, &prog.params));
        t.push(']');
    }
    t
}

fn expr_text(prog: &Program, s: &pluto_ir::Statement, e: &Expr) -> String {
    match e {
        Expr::Read(i) => access_text(prog, s, &s.reads[*i]),
        Expr::Lit(v) => format!("{v}"),
        Expr::Iter(k) => s.iters[*k].clone(),
        Expr::Add(a, b) => format!("({} + {})", expr_text(prog, s, a), expr_text(prog, s, b)),
        Expr::Sub(a, b) => format!("({} - {})", expr_text(prog, s, a), expr_text(prog, s, b)),
        Expr::Mul(a, b) => format!("({} * {})", expr_text(prog, s, a), expr_text(prog, s, b)),
        Expr::Div(a, b) => format!("({} / {})", expr_text(prog, s, a), expr_text(prog, s, b)),
    }
}

/// Renders a raw affine row over `[iters…, params…, 1]`.
fn affine_text(row: &[i128], iters: &[String], params: &[String]) -> String {
    let mut t = String::new();
    let push = |t: &mut String, c: i128, name: &str| {
        if c == 0 {
            return;
        }
        if !t.is_empty() {
            t.push_str(if c > 0 { "+" } else { "-" });
        } else if c < 0 {
            t.push('-');
        }
        if c.abs() != 1 {
            let _ = write!(t, "{}*", c.abs());
        }
        t.push_str(name);
    };
    for (k, it) in iters.iter().enumerate() {
        push(&mut t, row[k], it);
    }
    for (k, p) in params.iter().enumerate() {
        push(&mut t, row[iters.len() + k], p);
    }
    let c = row[iters.len() + params.len()];
    if c != 0 || t.is_empty() {
        if t.is_empty() {
            let _ = write!(t, "{c}");
        } else {
            let _ = write!(t, "{}{}", if c > 0 { "+" } else { "-" }, c.abs());
        }
    }
    t
}

fn term_text(terms: &[(usize, i128)], konst: i128, names: &[String]) -> String {
    let mut t = String::new();
    for &(v, c) in terms {
        if c == 0 {
            continue;
        }
        if !t.is_empty() {
            t.push_str(if c > 0 { "+" } else { "-" });
        } else if c < 0 {
            t.push('-');
        }
        if c.abs() != 1 {
            let _ = write!(t, "{}*", c.abs());
        }
        t.push_str(&names[v]);
    }
    if konst != 0 || t.is_empty() {
        if t.is_empty() {
            let _ = write!(t, "{konst}");
        } else {
            let _ = write!(t, "{}{}", if konst > 0 { "+" } else { "-" }, konst.abs());
        }
    }
    t
}

fn expr_c(e: &AffExpr, names: &[String], lower: bool) -> String {
    let lin = term_text(&e.terms, e.konst, names);
    if e.div == 1 {
        lin
    } else if lower {
        format!("ceild({lin},{})", e.div)
    } else {
        format!("floord({lin},{})", e.div)
    }
}

fn bound_c(b: &Bound, names: &[String], lower: bool) -> String {
    let inner = if lower { "pmax" } else { "pmin" };
    let outer = if lower { "pmin" } else { "pmax" };
    let groups: Vec<String> = b
        .groups
        .iter()
        .map(|g| {
            let mut it = g.iter().map(|e| expr_c(e, names, lower));
            let first = it.next().expect("non-empty bound group");
            it.fold(first, |acc, x| format!("{inner}({acc},{x})"))
        })
        .collect();
    let mut it = groups.into_iter();
    let first = it.next().expect("non-empty bound");
    it.fold(first, |acc, x| format!("{outer}({acc},{x})"))
}

fn cond_c(c: &CondRow, names: &[String]) -> String {
    let lin = term_text(&c.terms, c.konst, names);
    if c.eq {
        format!("({lin} == 0)")
    } else {
        format!("({lin} >= 0)")
    }
}

fn emit(ast: &Ast, names: &mut Vec<String>, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match ast {
        Ast::Seq(v) => {
            for a in v {
                emit(a, names, indent, out);
            }
        }
        Ast::Loop(LoopNode {
            var,
            name,
            lb,
            ub,
            parallel,
            vector,
            unroll,
            level: _,
            body,
        }) => {
            names[*var] = name.clone();
            if *parallel {
                let _ = writeln!(out, "{pad}#pragma omp parallel for");
            }
            if *vector {
                let _ = writeln!(out, "{pad}#pragma ivdep\n{pad}#pragma vector always");
            }
            if *unroll > 1 {
                let _ = writeln!(out, "{pad}#pragma unroll({unroll})");
            }
            let _ = writeln!(
                out,
                "{pad}for (int {name} = {}; {name} <= {}; {name}++) {{",
                bound_c(lb, names, true),
                bound_c(ub, names, false)
            );
            emit(body, names, indent + 1, out);
            let _ = writeln!(out, "{pad}}}");
        }
        Ast::Let {
            var,
            name,
            expr,
            body,
        } => {
            names[*var] = name.clone();
            let _ = writeln!(out, "{pad}{{ int {name} = {};", expr_c(expr, names, false));
            emit(body, names, indent + 1, out);
            let _ = writeln!(out, "{pad}}}");
        }
        Ast::Guard { conds, body } => {
            let cs: Vec<String> = conds.iter().map(|c| cond_c(c, names)).collect();
            let _ = writeln!(out, "{pad}if ({}) {{", cs.join(" && "));
            emit(body, names, indent + 1, out);
            let _ = writeln!(out, "{pad}}}");
        }
        Ast::Filter { stmt, conds, body } => {
            // Hoisted per-statement activity flag (evaluated once here);
            // leaves of this statement test it.
            let cs: Vec<String> = conds.iter().map(|c| cond_c(c, names)).collect();
            let _ = writeln!(
                out,
                "{pad}{{ const int S{}_ok_{indent} = {};",
                stmt + 1,
                cs.join(" && ")
            );
            emit(body, names, indent + 1, out);
            let _ = writeln!(out, "{pad}}}");
        }
        Ast::Stmt { stmt, orig_dims } => {
            let args: Vec<String> = orig_dims.iter().map(|&v| names[v].clone()).collect();
            let _ = writeln!(out, "{pad}S{}({});", stmt + 1, args.join(","));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_text_formats() {
        let row = vec![1, -2, 0, 3];
        let t = affine_text(&row, &["i".into(), "j".into()], &["N".into()]);
        assert_eq!(t, "i-2*j+3");
        assert_eq!(affine_text(&[0, 0], &[], &["N".into()]), "0");
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::ast::{AffExpr, Bound, CondRow};

    #[test]
    fn bound_c_nests_min_max() {
        let names = vec!["N".to_string(), "c1".to_string()];
        let b = Bound {
            groups: vec![
                vec![
                    AffExpr {
                        terms: vec![(1, 1)],
                        konst: 0,
                        div: 1,
                    },
                    AffExpr::constant(0),
                ],
                vec![AffExpr {
                    terms: vec![(0, 1)],
                    konst: -1,
                    div: 2,
                }],
            ],
        };
        let lower = bound_c(&b, &names, true);
        assert_eq!(lower, "pmin(pmax(c1,0),ceild(N-1,2))");
        let upper = bound_c(&b, &names, false);
        assert_eq!(upper, "pmax(pmin(c1,0),floord(N-1,2))");
    }

    #[test]
    fn cond_c_formats_relations() {
        let names = vec!["i".to_string()];
        let ge = CondRow {
            terms: vec![(0, 2)],
            konst: -3,
            eq: false,
        };
        assert_eq!(cond_c(&ge, &names), "(2*i-3 >= 0)");
        let eq = CondRow {
            terms: vec![(0, -1)],
            konst: 0,
            eq: true,
        };
        assert_eq!(cond_c(&eq, &names), "(-i == 0)");
    }

    #[test]
    fn expr_c_rounding_direction() {
        let names = vec!["n".to_string()];
        let e = AffExpr {
            terms: vec![(0, 1)],
            konst: 1,
            div: 4,
        };
        assert_eq!(expr_c(&e, &names, true), "ceild(n+1,4)");
        assert_eq!(expr_c(&e, &names, false), "floord(n+1,4)");
        let plain = AffExpr {
            terms: vec![(0, 3)],
            konst: 0,
            div: 1,
        };
        assert_eq!(expr_c(&plain, &names, true), "3*n");
    }
}
