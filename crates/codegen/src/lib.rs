//! Polyhedral code generation — the `pluto-rs` stand-in for CLooG.
//!
//! Given a [`Program`](pluto_ir::Program) and a
//! [`Transformation`](pluto::Transformation) (scattering functions per
//! statement), this crate scans the union of the transformed statement
//! polyhedra in the new lexicographic order and produces an executable
//! loop [`Ast`]:
//!
//! * loop bounds come from exact Fourier–Motzkin projections of each
//!   statement's *extended* polyhedron (scattering dimensions prepended to
//!   the domain, CLooG-style), with `max`/`min` of affine expressions and
//!   exact `floord`/`ceild` divisions;
//! * scalar scattering dimensions split the statement set into sequenced
//!   groups (fusion structure / textual order);
//! * domain dimensions that the scattering determines are recovered with
//!   `Let` bindings (exact integer division), the rest with inner loops;
//! * statements sharing a loop carry hoisted guard conditions for their
//!   own bounds; single-statement loops are guard-free.
//!
//! The same AST both executes (see `pluto-machine`) and pretty-prints as
//! OpenMP-annotated C ([`emit_c`]), reproducing the paper's source-to-
//! source behaviour (Figs. 3, 4, 9).
//!
//! DESIGN.md §6 ("Codegen") specifies the scanning and separation mechanisms.

mod ast;
mod emit;
mod gen;
mod post;

pub use ast::{AffExpr, Ast, AstStats, Bound, CondRow, LoopNode};
pub use emit::emit_c;
pub use gen::{generate, original_schedule};
pub use post::unroll_innermost;
