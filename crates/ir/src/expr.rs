//! Executable statement bodies.

use std::fmt;

/// The right-hand side of a statement, as an arithmetic expression tree
/// over that statement's read accesses.
///
/// Every statement in the polyhedral input class is a single assignment
/// `A[f(i)] = expr(reads…)`; the leaves of `expr` are indices into the
/// statement's read-access list, literals, and original iterator values
/// (e.g. FDTD's source statement `ey[0][j] = f(t)`). This keeps the IR fully
/// executable — the machine substrate evaluates bodies directly, which lets
/// the test-suite check that *transformed programs compute identical
/// results* to the originals.
///
/// # Examples
/// ```
/// use pluto_ir::Expr;
/// // 0.5 * (reads[0] + reads[1])
/// let e = Expr::Lit(0.5) * (Expr::Read(0) + Expr::Read(1));
/// assert_eq!(e.max_read_index(), Some(1));
/// ```
#[derive(Clone, PartialEq)]
pub enum Expr {
    /// The value loaded by the statement's `n`-th read access.
    Read(usize),
    /// A floating-point literal.
    Lit(f64),
    /// The value of the statement's `k`-th original iterator, as `f64`.
    Iter(usize),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Division.
    Div(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Evaluates the expression given the loaded read values and the
    /// statement's original iterator values.
    ///
    /// # Panics
    /// Panics if a [`Expr::Read`] / [`Expr::Iter`] index is out of bounds.
    pub fn eval(&self, reads: &[f64], iters: &[i64]) -> f64 {
        match self {
            Expr::Read(i) => reads[*i],
            Expr::Lit(v) => *v,
            Expr::Iter(k) => iters[*k] as f64,
            Expr::Add(a, b) => a.eval(reads, iters) + b.eval(reads, iters),
            Expr::Sub(a, b) => a.eval(reads, iters) - b.eval(reads, iters),
            Expr::Mul(a, b) => a.eval(reads, iters) * b.eval(reads, iters),
            Expr::Div(a, b) => a.eval(reads, iters) / b.eval(reads, iters),
        }
    }

    /// The largest read index referenced, if any (used to validate that a
    /// statement body is consistent with its access list).
    pub fn max_read_index(&self) -> Option<usize> {
        match self {
            Expr::Read(i) => Some(*i),
            Expr::Lit(_) | Expr::Iter(_) => None,
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                match (a.max_read_index(), b.max_read_index()) {
                    (None, r) | (r, None) => r,
                    (Some(x), Some(y)) => Some(x.max(y)),
                }
            }
        }
    }

    /// Counts arithmetic operations (used for FLOP accounting in benches).
    pub fn num_ops(&self) -> usize {
        match self {
            Expr::Read(_) | Expr::Lit(_) | Expr::Iter(_) => 0,
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                1 + a.num_ops() + b.num_ops()
            }
        }
    }
}

impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr::Div(Box::new(self), Box::new(rhs))
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Read(i) => write!(f, "r{i}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Iter(k) => write!(f, "it{k}"),
            Expr::Add(a, b) => write!(f, "({a:?} + {b:?})"),
            Expr::Sub(a, b) => write!(f, "({a:?} - {b:?})"),
            Expr::Mul(a, b) => write!(f, "({a:?} * {b:?})"),
            Expr::Div(a, b) => write!(f, "({a:?} / {b:?})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_tree() {
        let e = (Expr::Read(0) + Expr::Read(1)) * Expr::Lit(0.5);
        assert_eq!(e.eval(&[3.0, 5.0], &[]), 4.0);
        assert_eq!(e.num_ops(), 2);
        assert_eq!(e.max_read_index(), Some(1));
    }

    #[test]
    fn literal_only() {
        let e = Expr::Lit(2.0) / Expr::Lit(4.0);
        assert_eq!(e.eval(&[], &[]), 0.5);
        assert_eq!(e.max_read_index(), None);
    }

    #[test]
    fn iterator_leaves() {
        let e = Expr::Iter(0) * Expr::Lit(2.0) + Expr::Read(0);
        assert_eq!(e.eval(&[1.0], &[5]), 11.0);
        assert_eq!(e.max_read_index(), Some(0));
    }
}
