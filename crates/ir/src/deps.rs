//! Exact polyhedral dependence analysis (the paper's Sec. 2.1 dependence
//! model, computed candl-style).
//!
//! For an ordered pair of accesses touching the same array, a dependence
//! exists from source instance `s` of `S_i` to target instance `t` of `S_j`
//! when both instances are in their domains, they touch the same element,
//! and `s` executes before `t` in the original program. "Executes before"
//! is decomposed, as is standard, into one case per *common loop depth*
//! (dependence carried by loop `l`: equal outer iterators, strictly smaller
//! at depth `l`) plus the *loop-independent* case (all common iterators
//! equal, source textually earlier). Each feasible case becomes one
//! [`Dependence`] with its own dependence polyhedron `P_e`.
//!
//! Two compile-time shortcuts ride on top of the exact model (see
//! DESIGN.md §11; both are output-invariant and can be switched off with
//! [`DepAnalysisOptions`] / `--no-solver-cache`):
//!
//! * **candidate pruning** — before any polyhedron is built, the
//!   subscript-equality rows of an access pair are scanned for *uniform
//!   distances*: rows that pin `t_d − s_d` to a known constant (or prove
//!   the footprints disjoint outright). A candidate level whose ordering
//!   constraints contradict a known distance is rejected for the cost of
//!   an interval comparison instead of an ILP emptiness probe
//!   ([`counters::IR_PRUNED_CANDIDATES`]);
//! * **parallel pair analysis** — access pairs are independent, so with
//!   `threads > 1` they are dispatched over the process-wide
//!   [`pluto_pool`] worker team and merged back in enumeration order,
//!   making the result bit-identical to the serial run.

use crate::program::{lift_context, Access, Program, Statement};
use pluto_linalg::int::normalize_ineq;
use pluto_linalg::Int;
use pluto_obs::counters;
use pluto_poly::ConstraintSet;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Classification of a dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Read-after-write (true dependence).
    Flow,
    /// Write-after-read.
    Anti,
    /// Write-after-write.
    Output,
    /// Read-after-read — carries no legality constraint but drives the
    /// locality cost function (paper Sec. 4.1).
    Input,
}

impl DepKind {
    /// Whether this dependence constrains legality (everything but input).
    pub fn constrains_legality(self) -> bool {
        !matches!(self, DepKind::Input)
    }
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DepKind::Flow => "flow",
            DepKind::Anti => "anti",
            DepKind::Output => "output",
            DepKind::Input => "input",
        };
        f.write_str(s)
    }
}

/// One edge of the Data Dependence Graph.
#[derive(Debug, Clone)]
pub struct Dependence {
    /// Source statement id.
    pub src: usize,
    /// Target statement id.
    pub dst: usize,
    /// Kind of dependence.
    pub kind: DepKind,
    /// 1-based common-loop level carrying the dependence;
    /// `common_loops + 1` marks a loop-independent dependence.
    pub level: usize,
    /// The dependence polyhedron over `[src iters…, dst iters…, params…, 1]`.
    pub poly: ConstraintSet,
}

impl Dependence {
    /// Whether this is a self-dependence (same statement at both ends).
    pub fn is_self(&self) -> bool {
        self.src == self.dst
    }
}

/// Knobs for [`analyze_dependences_with`].
#[derive(Debug, Clone)]
pub struct DepAnalysisOptions {
    /// Analyze read-after-read pairs too (paper Sec. 4.1 locality model).
    pub include_input: bool,
    /// Run the uniform-distance candidate pre-tests (output-invariant;
    /// off reproduces the probe-everything baseline for differentials).
    pub prune: bool,
    /// Worker-team width for per-pair dispatch; `1` analyzes serially on
    /// the calling thread and is the deterministic default.
    pub threads: usize,
}

impl Default for DepAnalysisOptions {
    fn default() -> DepAnalysisOptions {
        DepAnalysisOptions {
            include_input: true,
            prune: true,
            threads: 1,
        }
    }
}

/// Runs dependence analysis over a program.
///
/// When `include_input` is false, read-after-read pairs are skipped —
/// useful to reproduce the paper's "existing techniques do not consider
/// input dependences" baseline for the MVT experiment (Sec. 7).
pub fn analyze_dependences(prog: &Program, include_input: bool) -> Vec<Dependence> {
    analyze_dependences_with(
        prog,
        &DepAnalysisOptions {
            include_input,
            ..DepAnalysisOptions::default()
        },
    )
}

/// One access pair to test, named by statement / access indices so jobs
/// are `Copy` and can cross the pool boundary without borrowing rows.
#[derive(Clone, Copy)]
struct PairJob {
    si: usize,
    sj: usize,
    acc_s: usize,
    acc_t: usize,
    kind: DepKind,
}

/// Runs dependence analysis with explicit [`DepAnalysisOptions`].
///
/// The returned edge list is identical — same edges, same order, same
/// polyhedra — for every combination of `prune` and `threads`: pruning
/// only rejects candidates whose polyhedra are provably empty, and
/// parallel results are merged back in enumeration order.
pub fn analyze_dependences_with(prog: &Program, opts: &DepAnalysisOptions) -> Vec<Dependence> {
    let mut jobs: Vec<PairJob> = Vec::new();
    for (si, stmt_s) in prog.stmts.iter().enumerate() {
        for (sj, stmt_t) in prog.stmts.iter().enumerate() {
            for acc_s in 0..1 + stmt_s.reads.len() {
                for acc_t in 0..1 + stmt_t.reads.len() {
                    if nth_access(stmt_s, acc_s).array != nth_access(stmt_t, acc_t).array {
                        continue;
                    }
                    let kind = match (acc_s == 0, acc_t == 0) {
                        (true, true) => DepKind::Output,
                        (true, false) => DepKind::Flow,
                        (false, true) => DepKind::Anti,
                        (false, false) => DepKind::Input,
                    };
                    if kind == DepKind::Input && !opts.include_input {
                        continue;
                    }
                    jobs.push(PairJob {
                        si,
                        sj,
                        acc_s,
                        acc_t,
                        kind,
                    });
                }
            }
        }
    }
    let run = |job: PairJob| -> Vec<Dependence> {
        let si = &prog.stmts[job.si];
        let sj = &prog.stmts[job.sj];
        let mut found = Vec::new();
        collect_pair(
            prog,
            si,
            sj,
            nth_access(si, job.acc_s),
            nth_access(sj, job.acc_t),
            job.kind,
            opts.prune,
            &mut found,
        );
        found
    };
    let mut out = Vec::new();
    if opts.threads > 1 && jobs.len() > 1 {
        // Fan the pairs out over the process-wide team (the same pool the
        // compiled executor uses, so `threads = n` never spawns more than
        // `n − 1` workers per process). Jobs are claimed off an atomic
        // counter; each worker's findings are gathered with the job index
        // and sorted back into enumeration order, so the merged edge list
        // is bit-identical to the serial one.
        let pool = pluto_pool::global();
        pool.ensure_width(opts.threads - 1);
        let next = AtomicUsize::new(0);
        let gathered: Mutex<Vec<(usize, Vec<Dependence>)>> =
            Mutex::new(Vec::with_capacity(jobs.len()));
        pool.run(opts.threads - 1, &|_member| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= jobs.len() {
                break;
            }
            let found = run(jobs[i]);
            gathered.lock().unwrap().push((i, found));
        });
        let mut gathered = gathered.into_inner().unwrap();
        gathered.sort_unstable_by_key(|&(i, _)| i);
        for (_, mut found) in gathered {
            out.append(&mut found);
        }
    } else {
        for &job in &jobs {
            out.extend(run(job));
        }
    }
    out
}

/// The `idx`-th access of a statement: `0` is the write, `1..` the reads.
fn nth_access(s: &Statement, idx: usize) -> &Access {
    if idx == 0 {
        &s.write
    } else {
        &s.reads[idx - 1]
    }
}

/// What the cheap footprint pre-test learned about an access pair.
enum Footprint {
    /// The subscript equalities are unsatisfiable on their own (constant
    /// subscripts differ, or two rows pin conflicting distances): every
    /// candidate of the pair is empty and no polyhedron need be built.
    Disjoint,
    /// Uniform distances `t_d − s_d` pinned to a constant, per iterator
    /// dimension `d`. Dimensions not present are unconstrained.
    Uniform(BTreeMap<usize, Int>),
}

/// Scans the subscript-equality rows of an access pair for *uniform
/// distances* — the interval/bounding-box pre-test run before any
/// polyhedron is built (DESIGN.md §11).
///
/// A row pins `t_d − s_d` when both sides use a single iterator, the
/// *same* dimension `d`, with the same coefficient, and identical
/// parameter coefficients: `a·s_d + c_s = a·t_d + c_t` forces
/// `t_d − s_d = (c_s − c_t)/a` (non-divisible ⇒ no integer solution).
/// Rows using no iterator at all compare constants outright. Everything
/// the test learns is an *implied equality* of the dependence polyhedron,
/// so any candidate level whose ordering constraints contradict a pinned
/// distance has an empty polyhedron — pruning on it is a relaxation
/// argument, never a guess. Rows that fit neither shape contribute
/// nothing (the pair falls through to the exact ILP path).
fn footprint(
    prog: &Program,
    si: &Statement,
    sj: &Statement,
    acc_s: &Access,
    acc_t: &Access,
) -> Footprint {
    let ms = si.num_iters();
    let mt = sj.num_iters();
    let np = prog.num_params();
    let mut deltas: BTreeMap<usize, Int> = BTreeMap::new();
    for (rs, rt) in acc_s.map.iter().zip(acc_t.map.iter()) {
        if rs[ms..ms + np] != rt[mt..mt + np] {
            continue; // parameter-dependent subscript difference: no info
        }
        let s_nz: Vec<usize> = (0..ms).filter(|&k| rs[k] != 0).collect();
        let t_nz: Vec<usize> = (0..mt).filter(|&k| rt[k] != 0).collect();
        let diff = rs[ms + np] - rt[mt + np];
        match (s_nz.as_slice(), t_nz.as_slice()) {
            ([], []) if diff != 0 => {
                return Footprint::Disjoint; // a[3] never aliases a[7]
            }
            ([d], [e]) if d == e && rs[*d] == rt[*d] => {
                let a = rs[*d];
                if diff % a != 0 {
                    return Footprint::Disjoint; // 2i vs 2i' + 1: parity
                }
                let delta = diff / a;
                match deltas.insert(*d, delta) {
                    Some(prev) if prev != delta => return Footprint::Disjoint,
                    _ => {}
                }
            }
            _ => {}
        }
    }
    Footprint::Uniform(deltas)
}

/// Whether a carried-level candidate contradicts the pinned distances:
/// level `l` demands `t_k = s_k` for `k < l − 1` and `t_{l−1} > s_{l−1}`.
fn prune_carried(deltas: &BTreeMap<usize, Int>, level: usize) -> bool {
    deltas
        .iter()
        .any(|(&d, &v)| (d < level - 1 && v != 0) || (d == level - 1 && v <= 0))
}

/// Whether the loop-independent candidate (all common iterators equal)
/// contradicts the pinned distances.
fn prune_independent(deltas: &BTreeMap<usize, Int>, common: usize) -> bool {
    deltas.iter().any(|(&d, &v)| d < common && v != 0)
}

#[allow(clippy::too_many_arguments)]
fn collect_pair(
    prog: &Program,
    si: &Statement,
    sj: &Statement,
    acc_s: &Access,
    acc_t: &Access,
    kind: DepKind,
    prune: bool,
    out: &mut Vec<Dependence>,
) {
    let common = si.common_loops(sj);
    let has_li = si.id != sj.id && si.precedes_textually(sj, common);
    let candidates = common + usize::from(has_li);
    let deltas = match prune.then(|| footprint(prog, si, sj, acc_s, acc_t)) {
        Some(Footprint::Disjoint) => {
            // Every candidate of the pair is empty; charge them all to
            // the pruning counter and skip the polyhedra entirely.
            counters::IR_PRUNED_CANDIDATES.add(candidates as u64);
            return;
        }
        Some(Footprint::Uniform(d)) => Some(d),
        None => None,
    };
    let keep_carried = |level: usize| match &deltas {
        Some(d) => !prune_carried(d, level),
        None => true,
    };
    let keep_li = match &deltas {
        Some(d) => !prune_independent(d, common),
        None => true,
    };
    let kept: Vec<usize> = (1..=common).filter(|&l| keep_carried(l)).collect();
    let pruned = common - kept.len() + usize::from(has_li && !keep_li);
    counters::IR_PRUNED_CANDIDATES.add(pruned as u64);
    if kept.is_empty() && !(has_li && keep_li) {
        return;
    }
    let base = base_polyhedron(prog, si, sj, acc_s, acc_t);
    if base.is_empty() {
        return;
    }
    let ms = si.num_iters();
    let cols = base.num_vars() + 1;
    // Carried levels.
    for level in kept {
        let mut p = base.clone();
        for k in 0..level - 1 {
            let mut row = vec![0; cols];
            row[k] = -1;
            row[ms + k] = 1;
            p.add_eq(row); // s_k == t_k
        }
        let mut strict = vec![0; cols];
        strict[level - 1] = -1;
        strict[ms + level - 1] = 1;
        strict[cols - 1] = -1;
        p.add_ineq(strict); // t_l - s_l - 1 >= 0
        if si.id == sj.id {
            // With `t_l − s_l` pinned to a constant the refinement is a
            // proven no-op — δ = 1 makes the gap-2 slice empty, δ ≥ 2
            // makes the inclusion test reject on the pinned row itself,
            // δ ≤ 0 makes p empty — so skip its ILPs outright.
            let pinned = deltas
                .as_ref()
                .is_some_and(|d| d.contains_key(&(level - 1)));
            if !pinned {
                refine_to_chain(&mut p, ms, level);
            }
        }
        counters::DEP_CANDIDATES.bump();
        if p.is_empty() {
            counters::DEPS_EMPTY.bump();
        } else {
            counters::DEPS_BUILT.bump();
            out.push(Dependence {
                src: si.id,
                dst: sj.id,
                kind,
                level,
                poly: p,
            });
        }
    }
    // Loop-independent level (textual order must place si before sj).
    if has_li && keep_li {
        let mut p = base;
        for k in 0..common {
            let mut row = vec![0; cols];
            row[k] = -1;
            row[ms + k] = 1;
            p.add_eq(row);
        }
        counters::DEP_CANDIDATES.bump();
        if p.is_empty() {
            counters::DEPS_EMPTY.bump();
        } else {
            counters::DEPS_BUILT.bump();
            out.push(Dependence {
                src: si.id,
                dst: sj.id,
                kind,
                level: common + 1,
                poly: p,
            });
        }
    }
}

/// Last-conflicting-access refinement for self-dependences (paper
/// Sec. 2.1: "it is possible to express the source iteration as an affine
/// function of the target iteration, i.e., to find the last conflicting
/// access").
///
/// A memory-based dependence polyhedron at carried level `l` pairs a target
/// with *every* earlier conflicting source, so a reduction like
/// `x[i] += …` appears to have a parametric dependence distance even
/// though consecutive iterations chain it. When every pair `(s, t)` with a
/// level-`l` gap of two or more is transitively covered — i.e. the
/// intermediate point `m = s + e_l` satisfies both `(s, m) ∈ P` and
/// `(m, t) ∈ P` — the polyhedron may soundly be restricted to gap exactly
/// one (lexicographic positivity composes along the chain). This check is
/// performed exactly with ILP inclusion tests; the refinement is applied
/// only when it is proven sound, so non-uniform self-dependences keep
/// their full polyhedra.
fn refine_to_chain(p: &mut ConstraintSet, ms: usize, level: usize) {
    let l = level - 1;
    let cols = p.num_vars() + 1;
    // P2: the pairs with gap >= 2.
    let mut p2 = p.clone();
    let mut gap2 = vec![0; cols];
    gap2[l] = -1;
    gap2[ms + l] = 1;
    gap2[cols - 1] = -2;
    p2.add_ineq(gap2);
    if p2.is_empty() {
        return; // gap is already at most 1
    }
    // Substituted constraint rows for (s, m) and (m, t), m = s + e_l.
    // (self-dependence: source and target iterate over the same space.)
    let mut required: Vec<Vec<Int>> = Vec::new();
    let rows: Vec<(Vec<Int>, bool)> = p
        .ineqs()
        .iter()
        .map(|r| (r.clone(), false))
        .chain(p.eqs().iter().map(|r| (r.clone(), true)))
        .collect();
    for (r, is_eq) in rows {
        // (s, m): target vars := s + e_l.
        let mut sm = vec![0; cols];
        for k in 0..ms {
            sm[k] = r[k] + r[ms + k];
        }
        sm[(2 * ms)..cols].copy_from_slice(&r[(2 * ms)..cols]);
        sm[cols - 1] += r[ms + l];
        // (m, t): source vars := s + e_l.
        let mut mt = r.clone();
        mt[cols - 1] += r[l];
        for q in [sm, mt] {
            required.push(q.clone());
            if is_eq {
                required.push(q.iter().map(|&v| -v).collect());
            }
        }
    }
    // Inclusion: P2 must imply every required row (q >= 0). Two classes
    // are decided without an ILP probe, with the outcome the probe would
    // have had:
    //
    // * constant rows (all coefficients zero) hold iff the constant is
    //   non-negative — a negative constant is exactly the probe finding
    //   `q <= -1` everywhere, so the refinement aborts;
    // * rows dominated by a row of `p2` itself (same normalized
    //   coefficient vector, weaker constant) are implied outright, so
    //   the probe would be empty.
    //
    // Only rows needing a real multi-row implication reach the solver.
    let nv = cols - 1;
    let mut tightest: BTreeMap<&[Int], Int> = BTreeMap::new();
    let flipped: Vec<Vec<Int>> = p2
        .eqs()
        .iter()
        .map(|e| e.iter().map(|&v| -v).collect())
        .collect();
    for r in p2.ineqs().iter().chain(p2.eqs()).chain(flipped.iter()) {
        tightest
            .entry(&r[..nv])
            .and_modify(|c| *c = (*c).min(r[nv]))
            .or_insert(r[nv]);
    }
    for q in required {
        if q[..nv].iter().all(|&v| v == 0) {
            if q[nv] < 0 {
                return; // constant row violated everywhere
            }
            continue; // constant row holds everywhere
        }
        let mut norm = q.clone();
        normalize_ineq(&mut norm);
        if tightest.get(&norm[..nv]).is_some_and(|&c| c <= norm[nv]) {
            continue; // dominated by a row of p2: implied
        }
        let mut test = p2.clone();
        let mut neg: Vec<Int> = q.iter().map(|&v| -v).collect();
        neg[cols - 1] -= 1; // q <= -1 reachable?
        test.add_ineq(neg);
        if !test.is_empty() {
            return; // not transitively covered: keep the full polyhedron
        }
    }
    // Sound: restrict to the immediately preceding conflicting iteration.
    let mut gap1 = vec![0; cols];
    gap1[l] = 1;
    gap1[ms + l] = -1;
    gap1[cols - 1] = 1;
    p.add_ineq(gap1); // t_l - s_l <= 1
}

/// Domains + context + subscript equality, before any ordering constraint.
fn base_polyhedron(
    prog: &Program,
    si: &Statement,
    sj: &Statement,
    acc_s: &crate::program::Access,
    acc_t: &crate::program::Access,
) -> ConstraintSet {
    let ms = si.num_iters();
    let mt = sj.num_iters();
    let np = prog.num_params();
    // Columns: [s iters, t iters, params, 1].
    let dom_s = si.domain.insert_dims(ms, mt);
    let dom_t = sj.domain.insert_dims(0, ms);
    let ctx = lift_context(&prog.context, ms + mt);
    let mut p = dom_s.intersect(&dom_t).intersect(&ctx);
    // Subscript equality rows: acc_s(s) - acc_t(t) == 0 per array dim.
    for (rs, rt) in acc_s.map.iter().zip(acc_t.map.iter()) {
        let mut row: Vec<Int> = Vec::with_capacity(ms + mt + np + 1);
        row.extend_from_slice(&rs[..ms]);
        row.extend(rt[..mt].iter().map(|&v| -v));
        for k in 0..np {
            row.push(rs[ms + k] - rt[mt + k]);
        }
        row.push(rs[ms + np] - rt[mt + np]);
        p.add_eq(row);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::program::{ProgramBuilder, StatementSpec};

    /// `for i in 0..N { for j in 0..N { a[i][j] = a[i-1][j] } }`
    fn vertical_stencil() -> Program {
        let mut b = ProgramBuilder::new("vert", &["N"]);
        b.add_context_ineq(vec![1, -2]); // N >= 2
        b.add_array("a", 2);
        b.add_statement(StatementSpec {
            name: "S1".into(),
            iters: vec!["i".into(), "j".into()],
            domain_ineqs: vec![
                vec![1, 0, 0, -1],  // i >= 1
                vec![-1, 0, 1, -1], // i <= N-1
                vec![0, 1, 0, 0],   // j >= 0
                vec![0, -1, 1, -1], // j <= N-1
            ],
            beta: vec![0, 0, 0],
            write: ("a".into(), vec![vec![1, 0, 0, 0], vec![0, 1, 0, 0]]),
            reads: vec![("a".into(), vec![vec![1, 0, 0, -1], vec![0, 1, 0, 0]])],
            body: Expr::Read(0),
        });
        b.build()
    }

    #[test]
    fn flow_dep_carried_by_outer_loop() {
        let p = vertical_stencil();
        let deps = analyze_dependences(&p, false);
        // Expect flow (write a[i][j] -> read a[i-1][j]) and anti carried at
        // level 1; no level-2 carried dependence (distance (1, 0)).
        assert!(deps.iter().any(|d| d.kind == DepKind::Flow && d.level == 1));
        assert!(!deps.iter().any(|d| d.level == 2));
        // Output deps of a non-rewriting statement: none (write is
        // injective per iteration).
        assert!(!deps.iter().any(|d| d.kind == DepKind::Output));
        // The flow polyhedron contains (s=(1,3), t=(2,3), N=10).
        let flow = deps
            .iter()
            .find(|d| d.kind == DepKind::Flow)
            .expect("flow dep");
        assert!(flow.poly.contains(&[1, 3, 2, 3, 10]));
        assert!(!flow.poly.contains(&[1, 3, 2, 4, 10]));
    }

    /// `a[i][j] = a[i-1][j] + a[i][j-1]` — two reads of the same array give
    /// rise to read/read (input) dependences between *distinct* instances.
    #[test]
    fn input_deps_optional() {
        let mut b = ProgramBuilder::new("sor", &["N"]);
        b.add_context_ineq(vec![1, -3]);
        b.add_array("a", 2);
        b.add_statement(StatementSpec {
            name: "S1".into(),
            iters: vec!["i".into(), "j".into()],
            domain_ineqs: vec![
                vec![1, 0, 0, -1],
                vec![-1, 0, 1, -1],
                vec![0, 1, 0, -1],
                vec![0, -1, 1, -1],
            ],
            beta: vec![0, 0, 0],
            write: ("a".into(), vec![vec![1, 0, 0, 0], vec![0, 1, 0, 0]]),
            reads: vec![
                ("a".into(), vec![vec![1, 0, 0, -1], vec![0, 1, 0, 0]]),
                ("a".into(), vec![vec![1, 0, 0, 0], vec![0, 1, 0, -1]]),
            ],
            body: Expr::Read(0) + Expr::Read(1),
        });
        let p = b.build();
        let with = analyze_dependences(&p, true);
        let without = analyze_dependences(&p, false);
        assert!(with.len() > without.len());
        assert!(with.iter().any(|d| d.kind == DepKind::Input));
        // Input deps never constrain legality.
        assert!(with
            .iter()
            .filter(|d| d.kind == DepKind::Input)
            .all(|d| !d.kind.constrains_legality()));
    }

    /// Producer/consumer: `for i: b[i] = a[i]; for j: c[j] = b[j];`
    #[test]
    fn loop_independent_dep_between_nests() {
        let mut bl = ProgramBuilder::new("pc", &["N"]);
        bl.add_context_ineq(vec![1, -1]);
        bl.add_array("a", 1);
        bl.add_array("b", 1);
        bl.add_array("c", 1);
        bl.add_statement(StatementSpec {
            name: "S1".into(),
            iters: vec!["i".into()],
            domain_ineqs: vec![vec![1, 0, 0], vec![-1, 1, -1]],
            beta: vec![0, 0],
            write: ("b".into(), vec![vec![1, 0, 0]]),
            reads: vec![("a".into(), vec![vec![1, 0, 0]])],
            body: Expr::Read(0),
        });
        bl.add_statement(StatementSpec {
            name: "S2".into(),
            iters: vec!["j".into()],
            domain_ineqs: vec![vec![1, 0, 0], vec![-1, 1, -1]],
            beta: vec![1, 0],
            write: ("c".into(), vec![vec![1, 0, 0]]),
            reads: vec![("b".into(), vec![vec![1, 0, 0]])],
            body: Expr::Read(0),
        });
        let p = bl.build();
        let deps = analyze_dependences(&p, false);
        // One flow dep S1 -> S2, loop-independent (level common+1 = 1).
        let flows: Vec<_> = deps.iter().filter(|d| d.kind == DepKind::Flow).collect();
        assert_eq!(flows.len(), 1);
        assert_eq!((flows[0].src, flows[0].dst, flows[0].level), (0, 1, 1));
        // No reverse dependence S2 -> S1.
        assert!(!deps.iter().any(|d| d.src == 1 && d.dst == 0));
    }

    /// Uniform self-dependence in a 1-d loop: s = t - 1 (h-transformation
    /// equalities live inside the polyhedron).
    #[test]
    fn self_dep_distance_one() {
        let mut bl = ProgramBuilder::new("scan", &["N"]);
        bl.add_context_ineq(vec![1, -2]);
        bl.add_array("a", 1);
        bl.add_statement(StatementSpec {
            name: "S1".into(),
            iters: vec!["i".into()],
            domain_ineqs: vec![vec![1, 0, -1], vec![-1, 1, -1]],
            beta: vec![0, 0],
            write: ("a".into(), vec![vec![1, 0, 0]]),
            reads: vec![("a".into(), vec![vec![1, 0, -1]])],
            body: Expr::Read(0),
        });
        let p = bl.build();
        let deps = analyze_dependences(&p, false);
        let flow = deps
            .iter()
            .find(|d| d.kind == DepKind::Flow)
            .expect("flow dep");
        // (s, t) pairs satisfy t = s + 1.
        assert!(flow.poly.contains(&[1, 2, 10]));
        assert!(!flow.poly.contains(&[1, 3, 10]));
        assert!(!flow.poly.contains(&[2, 1, 10]));
    }

    /// Edge lists must be bit-identical across every knob combination:
    /// pruning only rejects provably-empty candidates, and parallel
    /// results are merged back in enumeration order.
    fn assert_knob_invariant(p: &Program) {
        let baseline = analyze_dependences_with(
            p,
            &DepAnalysisOptions {
                include_input: true,
                prune: false,
                threads: 1,
            },
        );
        for (prune, threads) in [(true, 1), (false, 3), (true, 3)] {
            let got = analyze_dependences_with(
                p,
                &DepAnalysisOptions {
                    include_input: true,
                    prune,
                    threads,
                },
            );
            assert_eq!(baseline.len(), got.len(), "prune={prune} threads={threads}");
            for (a, b) in baseline.iter().zip(&got) {
                assert_eq!(
                    (a.src, a.dst, a.kind, a.level),
                    (b.src, b.dst, b.kind, b.level)
                );
                assert_eq!(a.poly.eqs(), b.poly.eqs());
                assert_eq!(a.poly.ineqs(), b.poly.ineqs());
            }
        }
    }

    #[test]
    fn pruning_and_parallelism_are_output_invariant() {
        assert_knob_invariant(&vertical_stencil());
    }

    /// A uniform stencil where the footprint pre-test fires: the pinned
    /// distance (1, 0) rejects the level-2 candidate (δ_1 = 1 ≠ 0) and
    /// the whole a[i-1][j] → a[i-1][j] input pair never leaves level 1.
    /// Counters are session-scoped, so concurrent tests can't bleed in.
    #[test]
    fn uniform_stencil_prunes_candidates() {
        let p = vertical_stencil();
        let session = pluto_obs::Session::start();
        let _ = analyze_dependences(&p, true);
        let report = session.finish();
        let count = |name: &str| report.counter(name).unwrap_or(0);
        assert!(count("ir.pruned_candidates") > 0, "pre-test never fired");
        // Pruned candidates are not dependence candidates: the two
        // counters partition the enumerated (pair, level) space.
        assert!(count("ir.dep_candidates") > 0);
    }

    /// Disjoint constant subscripts — a[0] vs a[1] — are rejected without
    /// building a single polyhedron.
    #[test]
    fn disjoint_footprints_prune_whole_pair() {
        let mut bl = ProgramBuilder::new("disjoint", &["N"]);
        bl.add_context_ineq(vec![1, -2]);
        bl.add_array("a", 1);
        bl.add_statement(StatementSpec {
            name: "S1".into(),
            iters: vec!["i".into()],
            domain_ineqs: vec![vec![1, 0, 0], vec![-1, 1, -1]],
            beta: vec![0, 0],
            write: ("a".into(), vec![vec![0, 0, 0]]), // a[0]
            reads: vec![("a".into(), vec![vec![0, 0, 1]])], // a[1]
            body: Expr::Read(0),
        });
        let p = bl.build();
        let session = pluto_obs::Session::start();
        let deps = analyze_dependences(&p, false);
        let report = session.finish();
        // Flow/anti between a[0] and a[1] are pruned; the write/write
        // and read/read self-pairs on the same cell remain real.
        assert!(deps
            .iter()
            .all(|d| d.kind == DepKind::Output || d.kind == DepKind::Input));
        let pruned = report.counter("ir.pruned_candidates").unwrap_or(0);
        assert!(
            pruned >= 2,
            "expected both cross-cell pairs pruned, got {pruned}"
        );
        assert_knob_invariant(&p);
    }
}
