//! Exact polyhedral dependence analysis (the paper's Sec. 2.1 dependence
//! model, computed candl-style).
//!
//! For an ordered pair of accesses touching the same array, a dependence
//! exists from source instance `s` of `S_i` to target instance `t` of `S_j`
//! when both instances are in their domains, they touch the same element,
//! and `s` executes before `t` in the original program. "Executes before"
//! is decomposed, as is standard, into one case per *common loop depth*
//! (dependence carried by loop `l`: equal outer iterators, strictly smaller
//! at depth `l`) plus the *loop-independent* case (all common iterators
//! equal, source textually earlier). Each feasible case becomes one
//! [`Dependence`] with its own dependence polyhedron `P_e`.

use crate::program::{lift_context, Program, Statement};
use pluto_linalg::Int;
use pluto_obs::counters;
use pluto_poly::ConstraintSet;
use std::fmt;

/// Classification of a dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Read-after-write (true dependence).
    Flow,
    /// Write-after-read.
    Anti,
    /// Write-after-write.
    Output,
    /// Read-after-read — carries no legality constraint but drives the
    /// locality cost function (paper Sec. 4.1).
    Input,
}

impl DepKind {
    /// Whether this dependence constrains legality (everything but input).
    pub fn constrains_legality(self) -> bool {
        !matches!(self, DepKind::Input)
    }
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DepKind::Flow => "flow",
            DepKind::Anti => "anti",
            DepKind::Output => "output",
            DepKind::Input => "input",
        };
        f.write_str(s)
    }
}

/// One edge of the Data Dependence Graph.
#[derive(Debug, Clone)]
pub struct Dependence {
    /// Source statement id.
    pub src: usize,
    /// Target statement id.
    pub dst: usize,
    /// Kind of dependence.
    pub kind: DepKind,
    /// 1-based common-loop level carrying the dependence;
    /// `common_loops + 1` marks a loop-independent dependence.
    pub level: usize,
    /// The dependence polyhedron over `[src iters…, dst iters…, params…, 1]`.
    pub poly: ConstraintSet,
}

impl Dependence {
    /// Whether this is a self-dependence (same statement at both ends).
    pub fn is_self(&self) -> bool {
        self.src == self.dst
    }
}

/// Runs dependence analysis over a program.
///
/// When `include_input` is false, read-after-read pairs are skipped —
/// useful to reproduce the paper's "existing techniques do not consider
/// input dependences" baseline for the MVT experiment (Sec. 7).
pub fn analyze_dependences(prog: &Program, include_input: bool) -> Vec<Dependence> {
    let mut out = Vec::new();
    for si in &prog.stmts {
        for sj in &prog.stmts {
            for (acc_s, s_writes) in accesses(si) {
                for (acc_t, t_writes) in accesses(sj) {
                    if acc_s.array != acc_t.array {
                        continue;
                    }
                    let kind = match (s_writes, t_writes) {
                        (true, true) => DepKind::Output,
                        (true, false) => DepKind::Flow,
                        (false, true) => DepKind::Anti,
                        (false, false) => DepKind::Input,
                    };
                    if kind == DepKind::Input && !include_input {
                        continue;
                    }
                    collect_pair(prog, si, sj, acc_s, acc_t, kind, &mut out);
                }
            }
        }
    }
    out
}

/// Enumerates `(access, is_write)` for a statement, write first.
fn accesses(s: &Statement) -> Vec<(&crate::program::Access, bool)> {
    let mut v = vec![(&s.write, true)];
    v.extend(s.reads.iter().map(|r| (r, false)));
    v
}

fn collect_pair(
    prog: &Program,
    si: &Statement,
    sj: &Statement,
    acc_s: &crate::program::Access,
    acc_t: &crate::program::Access,
    kind: DepKind,
    out: &mut Vec<Dependence>,
) {
    let common = si.common_loops(sj);
    let base = base_polyhedron(prog, si, sj, acc_s, acc_t);
    if base.is_empty() {
        return;
    }
    let ms = si.num_iters();
    let cols = base.num_vars() + 1;
    // Carried levels 1..=common.
    for level in 1..=common {
        let mut p = base.clone();
        for k in 0..level - 1 {
            let mut row = vec![0; cols];
            row[k] = -1;
            row[ms + k] = 1;
            p.add_eq(row); // s_k == t_k
        }
        let mut strict = vec![0; cols];
        strict[level - 1] = -1;
        strict[ms + level - 1] = 1;
        strict[cols - 1] = -1;
        p.add_ineq(strict); // t_l - s_l - 1 >= 0
        if si.id == sj.id {
            refine_to_chain(&mut p, ms, level);
        }
        counters::DEP_CANDIDATES.bump();
        if p.is_empty() {
            counters::DEPS_EMPTY.bump();
        } else {
            counters::DEPS_BUILT.bump();
            out.push(Dependence {
                src: si.id,
                dst: sj.id,
                kind,
                level,
                poly: p,
            });
        }
    }
    // Loop-independent level (textual order must place si before sj).
    if si.id != sj.id && si.precedes_textually(sj, common) {
        let mut p = base;
        for k in 0..common {
            let mut row = vec![0; cols];
            row[k] = -1;
            row[ms + k] = 1;
            p.add_eq(row);
        }
        counters::DEP_CANDIDATES.bump();
        if p.is_empty() {
            counters::DEPS_EMPTY.bump();
        } else {
            counters::DEPS_BUILT.bump();
            out.push(Dependence {
                src: si.id,
                dst: sj.id,
                kind,
                level: common + 1,
                poly: p,
            });
        }
    }
}

/// Last-conflicting-access refinement for self-dependences (paper
/// Sec. 2.1: "it is possible to express the source iteration as an affine
/// function of the target iteration, i.e., to find the last conflicting
/// access").
///
/// A memory-based dependence polyhedron at carried level `l` pairs a target
/// with *every* earlier conflicting source, so a reduction like
/// `x[i] += …` appears to have a parametric dependence distance even
/// though consecutive iterations chain it. When every pair `(s, t)` with a
/// level-`l` gap of two or more is transitively covered — i.e. the
/// intermediate point `m = s + e_l` satisfies both `(s, m) ∈ P` and
/// `(m, t) ∈ P` — the polyhedron may soundly be restricted to gap exactly
/// one (lexicographic positivity composes along the chain). This check is
/// performed exactly with ILP inclusion tests; the refinement is applied
/// only when it is proven sound, so non-uniform self-dependences keep
/// their full polyhedra.
fn refine_to_chain(p: &mut ConstraintSet, ms: usize, level: usize) {
    let l = level - 1;
    let cols = p.num_vars() + 1;
    // P2: the pairs with gap >= 2.
    let mut p2 = p.clone();
    let mut gap2 = vec![0; cols];
    gap2[l] = -1;
    gap2[ms + l] = 1;
    gap2[cols - 1] = -2;
    p2.add_ineq(gap2);
    if p2.is_empty() {
        return; // gap is already at most 1
    }
    // Substituted constraint rows for (s, m) and (m, t), m = s + e_l.
    // (self-dependence: source and target iterate over the same space.)
    let mut required: Vec<Vec<Int>> = Vec::new();
    let rows: Vec<(Vec<Int>, bool)> = p
        .ineqs()
        .iter()
        .map(|r| (r.clone(), false))
        .chain(p.eqs().iter().map(|r| (r.clone(), true)))
        .collect();
    for (r, is_eq) in rows {
        // (s, m): target vars := s + e_l.
        let mut sm = vec![0; cols];
        for k in 0..ms {
            sm[k] = r[k] + r[ms + k];
        }
        sm[(2 * ms)..cols].copy_from_slice(&r[(2 * ms)..cols]);
        sm[cols - 1] += r[ms + l];
        // (m, t): source vars := s + e_l.
        let mut mt = r.clone();
        mt[cols - 1] += r[l];
        for q in [sm, mt] {
            required.push(q.clone());
            if is_eq {
                required.push(q.iter().map(|&v| -v).collect());
            }
        }
    }
    // Inclusion: P2 must imply every required row (q >= 0).
    for q in required {
        let mut test = p2.clone();
        let mut neg: Vec<Int> = q.iter().map(|&v| -v).collect();
        neg[cols - 1] -= 1; // q <= -1 reachable?
        test.add_ineq(neg);
        if !test.is_empty() {
            return; // not transitively covered: keep the full polyhedron
        }
    }
    // Sound: restrict to the immediately preceding conflicting iteration.
    let mut gap1 = vec![0; cols];
    gap1[l] = 1;
    gap1[ms + l] = -1;
    gap1[cols - 1] = 1;
    p.add_ineq(gap1); // t_l - s_l <= 1
}

/// Domains + context + subscript equality, before any ordering constraint.
fn base_polyhedron(
    prog: &Program,
    si: &Statement,
    sj: &Statement,
    acc_s: &crate::program::Access,
    acc_t: &crate::program::Access,
) -> ConstraintSet {
    let ms = si.num_iters();
    let mt = sj.num_iters();
    let np = prog.num_params();
    // Columns: [s iters, t iters, params, 1].
    let dom_s = si.domain.insert_dims(ms, mt);
    let dom_t = sj.domain.insert_dims(0, ms);
    let ctx = lift_context(&prog.context, ms + mt);
    let mut p = dom_s.intersect(&dom_t).intersect(&ctx);
    // Subscript equality rows: acc_s(s) - acc_t(t) == 0 per array dim.
    for (rs, rt) in acc_s.map.iter().zip(acc_t.map.iter()) {
        let mut row: Vec<Int> = Vec::with_capacity(ms + mt + np + 1);
        row.extend_from_slice(&rs[..ms]);
        row.extend(rt[..mt].iter().map(|&v| -v));
        for k in 0..np {
            row.push(rs[ms + k] - rt[mt + k]);
        }
        row.push(rs[ms + np] - rt[mt + np]);
        p.add_eq(row);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::program::{ProgramBuilder, StatementSpec};

    /// `for i in 0..N { for j in 0..N { a[i][j] = a[i-1][j] } }`
    fn vertical_stencil() -> Program {
        let mut b = ProgramBuilder::new("vert", &["N"]);
        b.add_context_ineq(vec![1, -2]); // N >= 2
        b.add_array("a", 2);
        b.add_statement(StatementSpec {
            name: "S1".into(),
            iters: vec!["i".into(), "j".into()],
            domain_ineqs: vec![
                vec![1, 0, 0, -1],  // i >= 1
                vec![-1, 0, 1, -1], // i <= N-1
                vec![0, 1, 0, 0],   // j >= 0
                vec![0, -1, 1, -1], // j <= N-1
            ],
            beta: vec![0, 0, 0],
            write: ("a".into(), vec![vec![1, 0, 0, 0], vec![0, 1, 0, 0]]),
            reads: vec![("a".into(), vec![vec![1, 0, 0, -1], vec![0, 1, 0, 0]])],
            body: Expr::Read(0),
        });
        b.build()
    }

    #[test]
    fn flow_dep_carried_by_outer_loop() {
        let p = vertical_stencil();
        let deps = analyze_dependences(&p, false);
        // Expect flow (write a[i][j] -> read a[i-1][j]) and anti carried at
        // level 1; no level-2 carried dependence (distance (1, 0)).
        assert!(deps.iter().any(|d| d.kind == DepKind::Flow && d.level == 1));
        assert!(!deps.iter().any(|d| d.level == 2));
        // Output deps of a non-rewriting statement: none (write is
        // injective per iteration).
        assert!(!deps.iter().any(|d| d.kind == DepKind::Output));
        // The flow polyhedron contains (s=(1,3), t=(2,3), N=10).
        let flow = deps
            .iter()
            .find(|d| d.kind == DepKind::Flow)
            .expect("flow dep");
        assert!(flow.poly.contains(&[1, 3, 2, 3, 10]));
        assert!(!flow.poly.contains(&[1, 3, 2, 4, 10]));
    }

    /// `a[i][j] = a[i-1][j] + a[i][j-1]` — two reads of the same array give
    /// rise to read/read (input) dependences between *distinct* instances.
    #[test]
    fn input_deps_optional() {
        let mut b = ProgramBuilder::new("sor", &["N"]);
        b.add_context_ineq(vec![1, -3]);
        b.add_array("a", 2);
        b.add_statement(StatementSpec {
            name: "S1".into(),
            iters: vec!["i".into(), "j".into()],
            domain_ineqs: vec![
                vec![1, 0, 0, -1],
                vec![-1, 0, 1, -1],
                vec![0, 1, 0, -1],
                vec![0, -1, 1, -1],
            ],
            beta: vec![0, 0, 0],
            write: ("a".into(), vec![vec![1, 0, 0, 0], vec![0, 1, 0, 0]]),
            reads: vec![
                ("a".into(), vec![vec![1, 0, 0, -1], vec![0, 1, 0, 0]]),
                ("a".into(), vec![vec![1, 0, 0, 0], vec![0, 1, 0, -1]]),
            ],
            body: Expr::Read(0) + Expr::Read(1),
        });
        let p = b.build();
        let with = analyze_dependences(&p, true);
        let without = analyze_dependences(&p, false);
        assert!(with.len() > without.len());
        assert!(with.iter().any(|d| d.kind == DepKind::Input));
        // Input deps never constrain legality.
        assert!(with
            .iter()
            .filter(|d| d.kind == DepKind::Input)
            .all(|d| !d.kind.constrains_legality()));
    }

    /// Producer/consumer: `for i: b[i] = a[i]; for j: c[j] = b[j];`
    #[test]
    fn loop_independent_dep_between_nests() {
        let mut bl = ProgramBuilder::new("pc", &["N"]);
        bl.add_context_ineq(vec![1, -1]);
        bl.add_array("a", 1);
        bl.add_array("b", 1);
        bl.add_array("c", 1);
        bl.add_statement(StatementSpec {
            name: "S1".into(),
            iters: vec!["i".into()],
            domain_ineqs: vec![vec![1, 0, 0], vec![-1, 1, -1]],
            beta: vec![0, 0],
            write: ("b".into(), vec![vec![1, 0, 0]]),
            reads: vec![("a".into(), vec![vec![1, 0, 0]])],
            body: Expr::Read(0),
        });
        bl.add_statement(StatementSpec {
            name: "S2".into(),
            iters: vec!["j".into()],
            domain_ineqs: vec![vec![1, 0, 0], vec![-1, 1, -1]],
            beta: vec![1, 0],
            write: ("c".into(), vec![vec![1, 0, 0]]),
            reads: vec![("b".into(), vec![vec![1, 0, 0]])],
            body: Expr::Read(0),
        });
        let p = bl.build();
        let deps = analyze_dependences(&p, false);
        // One flow dep S1 -> S2, loop-independent (level common+1 = 1).
        let flows: Vec<_> = deps.iter().filter(|d| d.kind == DepKind::Flow).collect();
        assert_eq!(flows.len(), 1);
        assert_eq!((flows[0].src, flows[0].dst, flows[0].level), (0, 1, 1));
        // No reverse dependence S2 -> S1.
        assert!(!deps.iter().any(|d| d.src == 1 && d.dst == 0));
    }

    /// Uniform self-dependence in a 1-d loop: s = t - 1 (h-transformation
    /// equalities live inside the polyhedron).
    #[test]
    fn self_dep_distance_one() {
        let mut bl = ProgramBuilder::new("scan", &["N"]);
        bl.add_context_ineq(vec![1, -2]);
        bl.add_array("a", 1);
        bl.add_statement(StatementSpec {
            name: "S1".into(),
            iters: vec!["i".into()],
            domain_ineqs: vec![vec![1, 0, -1], vec![-1, 1, -1]],
            beta: vec![0, 0],
            write: ("a".into(), vec![vec![1, 0, 0]]),
            reads: vec![("a".into(), vec![vec![1, 0, -1]])],
            body: Expr::Read(0),
        });
        let p = bl.build();
        let deps = analyze_dependences(&p, false);
        let flow = deps
            .iter()
            .find(|d| d.kind == DepKind::Flow)
            .expect("flow dep");
        // (s, t) pairs satisfy t = s + 1.
        assert!(flow.poly.contains(&[1, 2, 10]));
        assert!(!flow.poly.contains(&[1, 3, 10]));
        assert!(!flow.poly.contains(&[2, 1, 10]));
    }
}
