//! Polyhedral program representation and exact dependence analysis — the
//! `pluto-rs` stand-in for the LooPo front-end infrastructure.
//!
//! A [`Program`] is a sequence of [`Statement`]s, each with
//!
//! * an iteration [domain](Statement::domain) — the integer polytope of its
//!   dynamic instances over `[iterators…, parameters…, 1]`;
//! * affine array [accesses](Access) (one write target plus reads);
//! * a static position vector `β` (the classic 2d+1 encoding) recording the
//!   original imperfectly nested loop structure and textual order;
//! * an executable body ([`Expr`]) so the machine substrate can actually
//!   run original and transformed programs and compare results.
//!
//! [`analyze_dependences`] builds the Data Dependence Graph of the paper
//! (Sec. 2.1): for every pair of accesses to the same array it emits one
//! *dependence polyhedron* per common-loop depth plus the loop-independent
//! level, keeping exactly the integer-feasible ones (ILP-backed, like the
//! paper's use of PIP inside the LooPo dependence tester). Flow, anti,
//! output **and input** (read-after-read) dependences are all produced —
//! input dependences drive Pluto's locality cost function (Sec. 4.1).
//!
//! DESIGN.md §6 ("Dependence analysis") specifies the dependence model, including the last-conflicting-access refinement.

// The IR is the boundary every other crate builds on; its public
// surface stays fully documented (extended here from poly/ilp/obs).
#![deny(missing_docs)]
mod deps;
mod expr;
mod program;

pub use deps::{
    analyze_dependences, analyze_dependences_with, DepAnalysisOptions, DepKind, Dependence,
};
pub use expr::Expr;
pub use program::{Access, ArrayDecl, Program, ProgramBuilder, Statement, StatementSpec};
