//! The polyhedral program representation.

use crate::expr::Expr;
use pluto_linalg::Int;
use pluto_poly::ConstraintSet;
use std::fmt;

/// A declared array with its dimensionality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Source-level name, e.g. `"a"`.
    pub name: String,
    /// Number of subscript dimensions.
    pub ndim: usize,
}

/// An affine array access `A[f(i, p)]`.
///
/// `map` holds one row per array dimension over the columns
/// `[iterators…, parameters…, 1]` of the owning statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Access {
    /// Index into [`Program::arrays`].
    pub array: usize,
    /// One affine row per array dimension.
    pub map: Vec<Vec<Int>>,
}

impl Access {
    /// Creates an access after checking row widths against `ndim`.
    pub fn new(array: usize, map: Vec<Vec<Int>>) -> Access {
        Access { array, map }
    }

    /// Evaluates subscripts at a concrete iteration/parameter point.
    ///
    /// `vals` is `[iter values…, param values…]`; the implicit trailing `1`
    /// multiplies the constant column.
    pub fn eval(&self, vals: &[Int]) -> Vec<Int> {
        self.map
            .iter()
            .map(|row| {
                debug_assert_eq!(row.len(), vals.len() + 1);
                let mut v = row[vals.len()];
                for (k, &x) in vals.iter().enumerate() {
                    v += row[k] * x;
                }
                v
            })
            .collect()
    }
}

/// One statement of the input program.
#[derive(Debug, Clone)]
pub struct Statement {
    /// Position in [`Program::stmts`].
    pub id: usize,
    /// Diagnostic name, e.g. `"S1"`.
    pub name: String,
    /// Loop iterator names, outermost first.
    pub iters: Vec<String>,
    /// Iteration domain over `[iters…, params…, 1]`.
    pub domain: ConstraintSet,
    /// Static position vector of length `iters.len() + 1` (the `β` of the
    /// classic 2d+1 schedule encoding): `beta[k]` is the statement subtree's
    /// position inside the depth-`k` loop body. Statements share their first
    /// `l` loops iff their `beta[..=l-1]`… prefixes (and iterator count)
    /// agree, and textual order is the lexicographic order of `beta`.
    pub beta: Vec<Int>,
    /// The single write access (left-hand side).
    pub write: Access,
    /// Read accesses (right-hand side leaves).
    pub reads: Vec<Access>,
    /// Executable right-hand side over `reads`.
    pub body: Expr,
}

impl Statement {
    /// Number of enclosing loops (domain dimensionality `m_S`).
    pub fn num_iters(&self) -> usize {
        self.iters.len()
    }

    /// Length of common `beta`-prefix with `other` — the number of loops
    /// the two statements share in the original nest.
    pub fn common_loops(&self, other: &Statement) -> usize {
        let lim = self.num_iters().min(other.num_iters());
        let mut d = 0;
        while d < lim && self.beta[d] == other.beta[d] {
            d += 1;
        }
        d
    }

    /// Whether `self` textually precedes `other` once they share
    /// `common` loops (lexicographic `beta` comparison from that depth).
    pub fn precedes_textually(&self, other: &Statement, common: usize) -> bool {
        let a = &self.beta[common..];
        let b = &other.beta[common..];
        a < b
    }
}

/// A full static-control program part (SCoP).
#[derive(Debug, Clone)]
pub struct Program {
    /// Diagnostic name, e.g. `"jacobi-1d"`.
    pub name: String,
    /// Symbolic parameter names (problem sizes), e.g. `["T", "N"]`.
    pub params: Vec<String>,
    /// Constraints over `[params…, 1]` known to hold (e.g. `N >= 4`).
    pub context: ConstraintSet,
    /// Declared arrays.
    pub arrays: Vec<ArrayDecl>,
    /// Statements in textual order.
    pub stmts: Vec<Statement>,
}

impl Program {
    /// Number of symbolic parameters.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Looks up an array index by name.
    pub fn array_index(&self, name: &str) -> Option<usize> {
        self.arrays.iter().position(|a| a.name == name)
    }

    /// The statement's domain intersected with the parameter context,
    /// still over `[iters…, params…, 1]`.
    pub fn domain_in_context(&self, s: &Statement) -> ConstraintSet {
        let lifted = lift_context(&self.context, s.num_iters());
        s.domain.intersect(&lifted)
    }
}

/// Lifts a context over `[params…, 1]` to `[iters…, params…, 1]` by
/// inserting `num_iters` leading unconstrained columns.
pub(crate) fn lift_context(context: &ConstraintSet, num_iters: usize) -> ConstraintSet {
    context.insert_dims(0, num_iters)
}

/// Everything needed to declare one statement through [`ProgramBuilder`].
#[derive(Debug, Clone)]
pub struct StatementSpec {
    /// Diagnostic name.
    pub name: String,
    /// Iterator names, outermost first.
    pub iters: Vec<String>,
    /// Domain inequality rows over `[iters…, params…, 1]`.
    pub domain_ineqs: Vec<Vec<Int>>,
    /// Static position vector (length `iters.len() + 1`).
    pub beta: Vec<Int>,
    /// Write target: array name and affine subscript rows.
    pub write: (String, Vec<Vec<Int>>),
    /// Reads: array name and affine subscript rows, in body order.
    pub reads: Vec<(String, Vec<Vec<Int>>)>,
    /// Executable body over the reads.
    pub body: Expr,
}

/// Incremental construction of a [`Program`].
///
/// # Examples
/// ```
/// use pluto_ir::{Expr, ProgramBuilder, StatementSpec};
/// let mut b = ProgramBuilder::new("copy", &["N"]);
/// b.add_context_ineq(vec![1, -1]); // N >= 1
/// b.add_array("a", 1);
/// b.add_array("b", 1);
/// b.add_statement(StatementSpec {
///     name: "S1".into(),
///     iters: vec!["i".into()],
///     domain_ineqs: vec![vec![1, 0, 0], vec![-1, 1, -1]], // 0 <= i <= N-1
///     beta: vec![0, 0],
///     write: ("b".into(), vec![vec![1, 0, 0]]),
///     reads: vec![("a".into(), vec![vec![1, 0, 0]])],
///     body: Expr::Read(0),
/// });
/// let p = b.build();
/// assert_eq!(p.stmts.len(), 1);
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    params: Vec<String>,
    context: ConstraintSet,
    arrays: Vec<ArrayDecl>,
    stmts: Vec<Statement>,
}

impl ProgramBuilder {
    /// Starts a program over the given symbolic parameters.
    pub fn new(name: &str, params: &[&str]) -> ProgramBuilder {
        ProgramBuilder {
            name: name.to_string(),
            params: params.iter().map(|s| s.to_string()).collect(),
            context: ConstraintSet::new(params.len()),
            arrays: Vec::new(),
            stmts: Vec::new(),
        }
    }

    /// Adds a context inequality over `[params…, 1]`.
    pub fn add_context_ineq(&mut self, row: Vec<Int>) -> &mut Self {
        self.context.add_ineq(row);
        self
    }

    /// Declares an array; returns its index.
    pub fn add_array(&mut self, name: &str, ndim: usize) -> usize {
        self.arrays.push(ArrayDecl {
            name: name.to_string(),
            ndim,
        });
        self.arrays.len() - 1
    }

    /// Adds a statement from a [`StatementSpec`].
    ///
    /// # Panics
    /// Panics if the spec references unknown arrays, has subscript row
    /// counts that do not match array ranks, a `beta` of the wrong length,
    /// or a body reading outside its access list.
    pub fn add_statement(&mut self, spec: StatementSpec) -> &mut Self {
        let id = self.stmts.len();
        let cols = spec.iters.len() + self.params.len() + 1;
        assert_eq!(
            spec.beta.len(),
            spec.iters.len() + 1,
            "{}: beta length must be iters + 1",
            spec.name
        );
        let mut domain = ConstraintSet::new(cols - 1);
        for row in spec.domain_ineqs {
            domain.add_ineq(row);
        }
        let resolve = |(name, map): (String, Vec<Vec<Int>>)| -> Access {
            let array = self
                .arrays
                .iter()
                .position(|a| a.name == name)
                .unwrap_or_else(|| panic!("unknown array `{name}`"));
            assert_eq!(
                map.len(),
                self.arrays[array].ndim,
                "subscript count mismatch for `{name}`"
            );
            for row in &map {
                assert_eq!(row.len(), cols, "subscript width mismatch for `{name}`");
            }
            Access::new(array, map)
        };
        let write = resolve(spec.write);
        let reads: Vec<Access> = spec.reads.into_iter().map(resolve).collect();
        if let Some(max) = spec.body.max_read_index() {
            assert!(
                max < reads.len(),
                "{}: body reads r{max} but only {} reads declared",
                spec.name,
                reads.len()
            );
        }
        self.stmts.push(Statement {
            id,
            name: spec.name,
            iters: spec.iters,
            domain,
            beta: spec.beta,
            write,
            reads,
            body: spec.body,
        });
        self
    }

    /// Finishes construction.
    pub fn build(self) -> Program {
        Program {
            name: self.name,
            params: self.params,
            context: self.context,
            arrays: self.arrays,
            stmts: self.stmts,
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "program {} (params: {})",
            self.name,
            self.params.join(", ")
        )?;
        for s in &self.stmts {
            let mut names: Vec<&str> = s.iters.iter().map(|x| x.as_str()).collect();
            names.extend(self.params.iter().map(|x| x.as_str()));
            writeln!(
                f,
                "  {} [{}] beta={:?}: {}",
                s.name,
                s.iters.join(","),
                s.beta,
                s.domain.display_with(&names)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_stmt_program() -> Program {
        // for t: { for i: S1; for j: S2; }  (imperfect nest)
        let mut b = ProgramBuilder::new("p", &["N"]);
        b.add_array("a", 1);
        b.add_array("b", 1);
        b.add_statement(StatementSpec {
            name: "S1".into(),
            iters: vec!["t".into(), "i".into()],
            domain_ineqs: vec![vec![1, 0, 0, 0], vec![0, 1, 0, 0]],
            beta: vec![0, 0, 0],
            write: ("b".into(), vec![vec![0, 1, 0, 0]]),
            reads: vec![("a".into(), vec![vec![0, 1, 0, 0]])],
            body: Expr::Read(0),
        });
        b.add_statement(StatementSpec {
            name: "S2".into(),
            iters: vec!["t".into(), "j".into()],
            domain_ineqs: vec![vec![1, 0, 0, 0], vec![0, 1, 0, 0]],
            beta: vec![0, 1, 0],
            write: ("a".into(), vec![vec![0, 1, 0, 0]]),
            reads: vec![("b".into(), vec![vec![0, 1, 0, 0]])],
            body: Expr::Read(0),
        });
        b.build()
    }

    #[test]
    fn beta_commonality() {
        let p = two_stmt_program();
        let (s1, s2) = (&p.stmts[0], &p.stmts[1]);
        assert_eq!(s1.common_loops(s2), 1); // share only the t loop
        assert!(s1.precedes_textually(s2, 1));
        assert!(!s2.precedes_textually(s1, 1));
        assert_eq!(s1.common_loops(s1), 2);
    }

    #[test]
    fn access_eval() {
        let a = Access::new(0, vec![vec![1, -1, 0, 2]]);
        // subscript = i - j + 2 at (i=5, j=3, N=100)
        assert_eq!(a.eval(&[5, 3, 100]), vec![4]);
    }

    #[test]
    #[should_panic(expected = "unknown array")]
    fn unknown_array_panics() {
        let mut b = ProgramBuilder::new("p", &[]);
        b.add_statement(StatementSpec {
            name: "S1".into(),
            iters: vec![],
            domain_ineqs: vec![],
            beta: vec![0],
            write: ("nope".into(), vec![]),
            reads: vec![],
            body: Expr::Lit(0.0),
        });
    }

    #[test]
    fn domain_in_context_restricts() {
        let mut b = ProgramBuilder::new("p", &["N"]);
        b.add_context_ineq(vec![1, -10]); // N >= 10
        b.add_array("a", 1);
        b.add_statement(StatementSpec {
            name: "S1".into(),
            iters: vec!["i".into()],
            domain_ineqs: vec![vec![1, 0, 0], vec![-1, 1, -1]],
            beta: vec![0, 0],
            write: ("a".into(), vec![vec![1, 0, 0]]),
            reads: vec![],
            body: Expr::Lit(1.0),
        });
        let p = b.build();
        let d = p.domain_in_context(&p.stmts[0]);
        assert!(d.contains(&[0, 10]));
        assert!(!d.contains(&[0, 5])); // violates N >= 10
    }
}
