//! The compared transformation variants, per the paper's Sec. 7
//! methodology (forced baseline transformations share Pluto's code
//! generator and machine model).

use pluto::baselines::{forced_search_result, forced_transformation, validate_legality};
use pluto::{
    carried_at, tile_band, wavefront, Band, FusionPolicy, Optimizer, Parallelism, PlutoOptions,
    RowKind, SearchResult,
};
use pluto_codegen::original_schedule;
use pluto_ir::{analyze_dependences, Dependence, Program};
use pluto_linalg::Int;

/// One compared approach: a name, a complete transformation, and the
/// parallel-collapse depth its execution should use.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Display name (matches the paper's legend).
    pub name: String,
    /// The transformation to generate code from.
    pub result: SearchResult,
    /// Collapse depth for the thread team (2 = two degrees of pipelined
    /// parallelism, Fig. 13).
    pub collapse: usize,
    /// Innermost unroll factor applied as a syntactic post-pass
    /// (paper Sec. 6); 1 = none.
    pub unroll: usize,
}

impl Variant {
    fn new(name: &str, result: SearchResult) -> Variant {
        Variant {
            name: name.to_string(),
            result,
            collapse: 1,
            unroll: 1,
        }
    }
}

/// The untransformed program, sequential — the paper's `icc -fast` line.
pub fn orig(prog: &Program) -> Variant {
    let t = original_schedule(prog);
    let deps = analyze_dependences(prog, false);
    Variant::new("orig (icc-like)", forced_search_result(prog, &deps, t))
}

/// The untransformed program with every dependence-free loop marked
/// parallel — the "inner parallel / no time tiling" strategy the paper
/// attributes to auto-parallelizers and non-cost-guided partitioning
/// (barriers at every outer iteration, no locality optimization).
pub fn inner_parallel(prog: &Program) -> Variant {
    let deps = analyze_dependences(prog, false);
    let mut t = original_schedule(prog);
    for r in 0..t.num_rows() {
        if t.rows[r].kind != RowKind::Loop {
            continue;
        }
        let parallel = deps.iter().all(|d| {
            !d.kind.constrains_legality()
                || !carried_at(d, prog, &t.stmts[d.src].rows, &t.stmts[d.dst].rows, r)
        });
        if parallel {
            t.rows[r].par = Parallelism::Parallel;
            for sp in t.stmt_par.iter_mut() {
                sp[r] = Parallelism::Parallel;
            }
        }
    }
    Variant::new(
        "inner-parallel (max par, no cost fn)",
        forced_search_result(prog, &deps, t),
    )
}

/// The full Pluto pipeline (tiling + wavefront + vector reorder).
pub fn pluto(prog: &Program, tile: Int, degrees: usize) -> Variant {
    let opt = Optimizer::new().tile_size(tile).wavefront_degrees(degrees);
    let o = opt.optimize(prog).expect("pluto pipeline");
    let mut v = Variant::new("pluto", o.result);
    v.collapse = degrees;
    v
}

/// The full pipeline plus the Sec. 6 syntactic unroll-jam post-pass —
/// the "further syntactic transformations" preview of the MVT experiment.
pub fn pluto_unrolled(prog: &Program, tile: Int, factor: usize) -> Variant {
    let mut v = pluto(prog, tile, 1);
    v.name = format!("pluto + unroll-jam x{factor}");
    v.unroll = factor;
    v
}

/// Pluto's transformation without tiling (locality-transform only).
pub fn pluto_untiled(prog: &Program) -> Variant {
    let opt = Optimizer::new()
        .tiling(false)
        .parallel(false)
        .vectorization(false);
    let o = opt.optimize(prog).expect("pluto untiled");
    Variant::new("pluto (no tiling)", o.result)
}

/// Pluto with fusion disabled (every SCC distributed) — the "existing
/// techniques" side of the MVT experiment.
pub fn pluto_nofuse(prog: &Program, tile: Int) -> Variant {
    let opt = Optimizer::new()
        .tile_size(tile)
        .search_options(PlutoOptions {
            use_input_deps: false,
            fuse: FusionPolicy::NoFuse,
            ..PlutoOptions::default()
        });
    let o = opt.optimize(prog).expect("pluto nofuse");
    Variant::new("unfused (sync-free par)", o.result)
}

/// The *automatic* scheduling-based baseline: a genuine Feautrier
/// multidimensional schedule (min-latency greedy, computed by
/// [`pluto::feautrier_schedule`]) with the statements' space dimensions
/// inner-parallel and no tiling — the class of approaches the paper's
/// Sec. 8 contrasts against ("geared towards maximum fine-grained
/// parallelism, as opposed to tileability").
pub fn feautrier(prog: &Program) -> Variant {
    let deps = analyze_dependences(prog, false);
    let res = pluto::feautrier_schedule(prog, &deps).expect("schedulable");
    Variant::new("feautrier (min-latency schedule)", res)
}

/// Scheduling-based time tiling for the imperfect 1-d Jacobi (paper: the
/// Feautrier schedule θ = 2t / 2t+1 with Griebl's FCO allocation 2t+i,
/// then tiled and wavefronted).
pub fn jacobi_sched_fco(prog: &Program, tile: Int) -> Variant {
    // Rows over [t, i|j, T, N, 1].
    let rows_s1 = vec![vec![2, 0, 0, 0, 0], vec![2, 1, 0, 0, 0]];
    let rows_s2 = vec![vec![2, 0, 0, 0, 1], vec![2, 1, 0, 0, 1]];
    let t = forced_transformation(
        prog,
        vec![rows_s1, rows_s2],
        vec![RowKind::Loop, RowKind::Loop],
        vec![Band { start: 0, width: 2 }],
    );
    let deps = analyze_dependences(prog, true);
    assert!(
        validate_legality(prog, &deps, &t).is_empty(),
        "sched-fco baseline must be legal"
    );
    let mut res = forced_search_result(prog, &deps, t);
    let tb = tile_band(&mut res, prog, &deps, 0, &[tile, tile]);
    if res.transform.rows[tb.start].par == Parallelism::Sequential {
        wavefront(&mut res.transform, tb, 1);
    }
    Variant::new("scheduling-based (time tiling)", res)
}

/// Lim/Lam-style affine partitioning for the imperfect 1-d Jacobi:
/// maximally independent time partitions (the paper reports θ_S1, θ_S2
/// from Algorithm A of reference 37) with the space loop parallel and *no tiling
/// or cost function* — maximum parallelism degree only.
pub fn jacobi_affine_partitioning(prog: &Program) -> Variant {
    // Time partition: 2t / 2t+1 satisfies all dependences; space loop
    // parallel under it.
    let rows_s1 = vec![vec![2, 0, 0, 0, 0], vec![0, 1, 0, 0, 0]];
    let rows_s2 = vec![vec![2, 0, 0, 0, 1], vec![0, 1, 0, 0, 0]];
    let t = forced_transformation(
        prog,
        vec![rows_s1, rows_s2],
        vec![RowKind::Loop, RowKind::Loop],
        vec![],
    );
    let deps = analyze_dependences(prog, true);
    assert!(
        validate_legality(prog, &deps, &t).is_empty(),
        "affine-partitioning baseline must be legal"
    );
    let mut res = forced_search_result(prog, &deps, t);
    res.transform.rows[1].par = Parallelism::Parallel;
    for sp in res.transform.stmt_par.iter_mut() {
        sp[1] = Parallelism::Parallel;
    }
    Variant::new("affine partitioning (max par)", res)
}

/// MVT fused without permutation (`ij` with `ij`) — exploits no reuse on
/// `A` (paper Fig. 12's middle variant), tiled like the others.
pub fn mvt_fused_ij_ij(prog: &Program, tile: Int) -> Variant {
    // Rows over [i, j, N, 1]; trailing scalar row fixes textual order.
    let rows = vec![vec![1, 0, 0, 0], vec![0, 1, 0, 0]];
    let mk = |c: Int| {
        let mut r = rows.clone();
        r.push(vec![0, 0, 0, c]);
        r
    };
    let t = forced_transformation(
        prog,
        vec![mk(0), mk(1)],
        vec![RowKind::Loop, RowKind::Loop, RowKind::Scalar],
        vec![Band { start: 0, width: 2 }],
    );
    let deps = analyze_dependences(prog, true);
    assert!(
        validate_legality(prog, &deps, &t).is_empty(),
        "ij/ij fusion must be legal"
    );
    let mut res = forced_search_result(prog, &deps, t);
    tile_band(&mut res, prog, &deps, 0, &[tile, tile]);
    Variant::new("fused ij/ij (no permutation)", res)
}

/// Scheduling-based LU: the minimum-latency schedule `2k / 2k+1` with the
/// remaining dimensions parallel but untiled (the paper: "scheduling-based
/// parallelization performs poorly, mainly due to code complexity arising
/// out of a non-unimodular transformation").
pub fn lu_sched(prog: &Program) -> Variant {
    // S1 over [k, j, N, 1]; S2 over [k, i, j, N, 1].
    let rows_s1 = vec![vec![2, 0, 0, 0], vec![0, 1, 0, 0], vec![0, 1, 0, 0]];
    let rows_s2 = vec![
        vec![2, 0, 0, 0, 1],
        vec![0, 1, 0, 0, 0],
        vec![0, 0, 1, 0, 0],
    ];
    let t = forced_transformation(
        prog,
        vec![rows_s1, rows_s2],
        vec![RowKind::Loop, RowKind::Loop, RowKind::Loop],
        vec![],
    );
    let deps = analyze_dependences(prog, true);
    assert!(
        validate_legality(prog, &deps, &t).is_empty(),
        "lu schedule baseline must be legal"
    );
    let mut res = forced_search_result(prog, &deps, t);
    // Everything after the strict schedule dimension is parallel.
    res.transform.rows[1].par = Parallelism::Parallel;
    for sp in res.transform.stmt_par.iter_mut() {
        sp[1] = Parallelism::Parallel;
    }
    Variant::new("scheduling-based", res)
}

/// Exact legality of an *untiled* variant against freshly computed
/// dependences. Tiled variants carry supernode dimensions the dependence
/// polyhedra do not speak about; their legality is established before
/// tiling (builders assert it) and preserved by Theorem 1 — use
/// [`matches_original`] for the end-to-end check instead.
pub fn is_legal(prog: &Program, v: &Variant) -> bool {
    let deps: Vec<Dependence> = analyze_dependences(prog, false);
    validate_legality(prog, &deps, &v.result.transform).is_empty()
}

/// The strongest check: executing the variant produces arrays bitwise
/// identical to executing the original program.
pub fn matches_original(k: &pluto_frontend::Kernel, v: &Variant, params: &[i64]) -> bool {
    use pluto_codegen::generate;
    use pluto_frontend::kernels::seed_value;
    use pluto_machine::{run_sequential, Arrays};
    let orig_ast = generate(&k.program, &original_schedule(&k.program));
    let mut reference = Arrays::new((k.extents)(params));
    reference.seed_with(seed_value);
    run_sequential(&k.program, &orig_ast, params, &mut reference);
    let ast = generate(&k.program, &v.result.transform);
    let mut arrays = Arrays::new((k.extents)(params));
    arrays.seed_with(seed_value);
    run_sequential(&k.program, &ast, params, &mut arrays);
    arrays.bitwise_eq(&reference)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pluto_frontend::kernels;

    #[test]
    fn all_jacobi_variants_equivalent() {
        let k = kernels::jacobi_1d_imperfect();
        let params = [7i64, 25];
        for v in [
            orig(&k.program),
            inner_parallel(&k.program),
            pluto(&k.program, 4, 1),
            jacobi_sched_fco(&k.program, 4),
            jacobi_affine_partitioning(&k.program),
        ] {
            assert!(matches_original(&k, &v, &params), "{} diverges", v.name);
        }
    }

    #[test]
    fn mvt_variants_equivalent() {
        let k = kernels::mvt();
        let params = [21i64];
        for v in [
            pluto(&k.program, 4, 1),
            pluto_nofuse(&k.program, 4),
            mvt_fused_ij_ij(&k.program, 4),
            inner_parallel(&k.program),
        ] {
            assert!(matches_original(&k, &v, &params), "{} diverges", v.name);
        }
    }

    #[test]
    fn lu_variants_equivalent() {
        let k = kernels::lu();
        let params = [18i64];
        for v in [lu_sched(&k.program), pluto(&k.program, 4, 1)] {
            assert!(matches_original(&k, &v, &params), "{} diverges", v.name);
        }
    }

    #[test]
    fn untiled_variants_legal() {
        let k = kernels::jacobi_1d_imperfect();
        for v in [
            orig(&k.program),
            inner_parallel(&k.program),
            jacobi_affine_partitioning(&k.program),
            pluto_untiled(&k.program),
        ] {
            assert!(is_legal(&k.program, &v), "{} illegal", v.name);
        }
    }

    #[test]
    fn inner_parallel_marks_space_loops() {
        let k = kernels::jacobi_1d_imperfect();
        let v = inner_parallel(&k.program);
        // Original 2d+1: rows [β0, t, β1, i|j, β2]; the space row (3) is
        // parallel, the time row (1) is not.
        assert_eq!(v.result.transform.rows[1].par, Parallelism::Sequential);
        assert_eq!(v.result.transform.rows[3].par, Parallelism::Parallel);
    }
}

#[cfg(test)]
mod feautrier_tests {
    use super::*;
    use pluto_frontend::kernels;

    #[test]
    fn feautrier_variant_is_equivalent_on_kernels() {
        for name in ["fdtd-2d", "sor-2d", "seidel-2d"] {
            let (_, k) = kernels::all()
                .into_iter()
                .find(|(n, _)| *n == name)
                .unwrap();
            let v = feautrier(&k.program);
            let params: Vec<i64> = match name {
                "fdtd-2d" => vec![3, 7, 8],
                "seidel-2d" => vec![4, 9],
                _ => vec![13],
            };
            assert!(matches_original(&k, &v, &params), "{name} diverges");
        }
    }
}
