//! `bench_json` — emits the machine-readable perf trajectory at the repo
//! root: `BENCH_pipeline.json` (per-kernel compile-phase breakdown and
//! solver counters, schema `pluto-bench-pipeline/1`) and
//! `BENCH_kernels.json` (original-sequential vs pluto-sequential vs
//! pluto-wavefront interpreter run times from the in-tree sampler,
//! schema `pluto-bench-kernels/1`).
//!
//! `cargo run -p pluto-bench --release` runs it (the crate's default
//! binary). Both files are re-validated through `pluto_obs::json` before
//! the process exits, so a malformed emitter fails loudly here rather
//! than in a consumer. Schemas, kernel set and sampler policy are
//! documented in PERFORMANCE.md; EXPERIMENTS.md records the trajectory
//! across PRs.

use pluto::Optimizer;
use pluto_bench::timing::{sample, Stats};
use pluto_bench::variants;
use pluto_codegen::generate;
use pluto_frontend::kernels::{self, Kernel};
use pluto_machine::{run_parallel, run_sequential, Arrays, ParallelConfig};
use pluto_obs::{json, Session};

/// Timed samples per variant (after one warm-up); small because the
/// emitter runs inside the CI smoke gate.
const SAMPLES: usize = 5;
/// Tile size for the transformed variants: the bench-scale default used
/// throughout `benches/figures.rs`.
const TILE: i128 = 8;
/// Thread-team width for the wavefront variant (the paper's 4 cores).
const THREADS: usize = 4;

/// The measured kernel set: name, kernel, bench-scale parameter values.
fn bench_set() -> Vec<(&'static str, Kernel, Vec<i64>)> {
    vec![
        (
            "jacobi-1d-imper",
            kernels::jacobi_1d_imperfect(),
            vec![16, 6000],
        ),
        ("seidel-2d", kernels::seidel_2d(), vec![12, 100]),
        ("mvt", kernels::mvt(), vec![300]),
        ("lu", kernels::lu(), vec![100]),
    ]
}

fn main() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let set = bench_set();

    let pipeline = emit_pipeline(&set);
    let kernels_doc = emit_kernels(&set);

    for (name, text) in [
        ("BENCH_pipeline.json", &pipeline),
        ("BENCH_kernels.json", &kernels_doc),
    ] {
        json::parse(text).unwrap_or_else(|e| panic!("emitted {name} is malformed: {e}"));
        let path = root.join(name);
        std::fs::write(&path, text).unwrap_or_else(|e| panic!("cannot write {name}: {e}"));
        println!("wrote {}", path.display());
    }
}

/// Compiles every kernel under an observability session and serializes
/// each profile (phases + full counter registry).
fn emit_pipeline(set: &[(&'static str, Kernel, Vec<i64>)]) -> String {
    let mut out = String::from("{\n  \"schema\": \"pluto-bench-pipeline/1\",\n  \"kernels\": [");
    for (i, (name, k, _)) in set.iter().enumerate() {
        let session = Session::start();
        let optimized = Optimizer::new()
            .tile_size(TILE)
            .optimize(&k.program)
            .unwrap_or_else(|e| panic!("{name}: transformation failed: {e}"));
        let _ast = generate(&k.program, &optimized.result.transform);
        let profile = session.finish();

        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\n      \"kernel\": {},\n      \"total_ns\": {},\n      \"phases\": [",
            json::escape(name),
            profile.total_ns
        ));
        for (j, p) in profile.phases.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n        {{\"path\": {}, \"calls\": {}, \"wall_ns\": {}}}",
                json::escape(&p.path),
                p.calls,
                p.wall_ns
            ));
        }
        out.push_str("\n      ],\n      \"counters\": [");
        for (j, c) in profile.counters.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n        {{\"name\": {}, \"value\": {}}}",
                json::escape(c.name),
                c.value
            ));
        }
        out.push_str("\n      ]\n    }");
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Samples original-sequential, pluto-sequential and pluto-wavefront
/// interpreter runs for every kernel.
fn emit_kernels(set: &[(&'static str, Kernel, Vec<i64>)]) -> String {
    let mut out = String::from("{\n  \"schema\": \"pluto-bench-kernels/1\",\n");
    out.push_str(&format!("  \"samples\": {SAMPLES},\n  \"kernels\": ["));
    for (i, (name, k, params)) in set.iter().enumerate() {
        let orig = variants::orig(&k.program);
        let pluto = variants::pluto(&k.program, TILE, 1);
        let orig_ast = generate(&k.program, &orig.result.transform);
        let pluto_ast = generate(&k.program, &pluto.result.transform);

        let fresh = || {
            let mut a = Arrays::new((k.extents)(params));
            a.seed_with(kernels::seed_value);
            a
        };
        let seq = sample(SAMPLES, || {
            run_sequential(&k.program, &orig_ast, params, &mut fresh());
        });
        let tra = sample(SAMPLES, || {
            run_sequential(&k.program, &pluto_ast, params, &mut fresh());
        });
        let cfg = ParallelConfig {
            threads: THREADS,
            collapse: pluto.collapse,
        };
        let par = sample(SAMPLES, || {
            run_parallel(&k.program, &pluto_ast, params, &mut fresh(), cfg);
        });

        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\n      \"kernel\": {},\n      \"params\": [{}],\n      \"variants\": [",
            json::escape(name),
            params
                .iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
        let rows = [
            ("original-sequential", seq),
            ("pluto-sequential", tra),
            ("pluto-wavefront", par),
        ];
        for (j, (vname, st)) in rows.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&variant_json(vname, st));
        }
        out.push_str("\n      ]\n    }");
    }
    out.push_str("\n  ]\n}\n");
    out
}

fn variant_json(name: &str, st: &Stats) -> String {
    format!(
        "\n        {{\"name\": {}, \"min_ns\": {}, \"median_ns\": {}, \"max_ns\": {}}}",
        json::escape(name),
        st.min_ns,
        st.median_ns,
        st.max_ns
    )
}
