//! `bench_json` — emits the machine-readable perf trajectory at the repo
//! root: `BENCH_pipeline.json` (per-kernel compile-phase breakdown,
//! solver counters, and ILP latency histograms with p50/p95 estimates,
//! schema `pluto-bench-pipeline/3`) and
//! `BENCH_kernels.json` (original-sequential vs pluto-sequential
//! tree-walk run times against the pluto-wavefront variant on the
//! compiled bytecode executor + persistent worker pool — compiled once,
//! sampled many times — plus the per-kernel runtime-execution section:
//! load imbalance, barrier wait, per-array cache attribution; schema
//! `pluto-bench-kernels/2`).
//!
//! Both documents carry a `meta` object (kernel-set hash, thread count,
//! sample count, tile size) so `bench_diff` can refuse to compare
//! incompatible runs instead of silently diffing apples to oranges.
//!
//! `cargo run -p pluto-bench --release` runs it (the crate's default
//! binary). Both files are re-validated through `pluto_obs::json` before
//! the process exits, so a malformed emitter fails loudly here rather
//! than in a consumer. Schemas, kernel set and sampler policy are
//! documented in PERFORMANCE.md; EXPERIMENTS.md records the trajectory
//! across PRs.

use pluto::Optimizer;
use pluto_bench::timing::{sample, Stats};
use pluto_bench::variants;
use pluto_codegen::generate;
use pluto_frontend::kernels::{self, Kernel};
use pluto_machine::{
    compile_kernel, pool, run_compiled_parallel, run_compiled_parallel_profiled, run_sequential,
    run_with_cache_attributed, Arrays, CacheConfig, ParallelConfig,
};
use pluto_obs::aggregate::fnv1a;
use pluto_obs::{exec_json, json, Session};

/// Timed samples per variant (after one warm-up); small because the
/// emitter runs inside the CI smoke gate.
const SAMPLES: usize = 5;
/// Tile size for the transformed variants: the bench-scale default used
/// throughout `benches/figures.rs`.
const TILE: i128 = 8;
/// Thread-team width for the wavefront variant (the paper's 4 cores).
const THREADS: usize = 4;

/// Bench-scale cache geometry for the per-array attribution: shrunk with
/// the problem sizes (see the crate docs) so interpreter-scale working
/// sets overflow it the way the paper's arrays overflowed the Q6600's.
const BENCH_CACHE: CacheConfig = CacheConfig {
    line: 64,
    l1_size: 8 * 1024,
    l1_assoc: 8,
    l2_size: 256 * 1024,
    l2_assoc: 16,
};

/// The measured kernel set: name, kernel, bench-scale parameter values.
fn bench_set() -> Vec<(&'static str, Kernel, Vec<i64>)> {
    vec![
        (
            "jacobi-1d-imper",
            kernels::jacobi_1d_imperfect(),
            vec![16, 6000],
        ),
        ("seidel-2d", kernels::seidel_2d(), vec![12, 100]),
        ("mvt", kernels::mvt(), vec![300]),
        ("lu", kernels::lu(), vec![100]),
    ]
}

/// Identity of the measured configuration: kernel names + parameter
/// values + tile size. Two documents with different hashes measured
/// different things and must not be diffed.
fn kernel_set_hash(set: &[(&'static str, Kernel, Vec<i64>)]) -> String {
    let mut desc = String::new();
    for (name, _, params) in set {
        desc.push_str(name);
        desc.push(':');
        for p in params {
            desc.push_str(&p.to_string());
            desc.push(',');
        }
        desc.push(';');
    }
    desc.push_str(&format!("tile={TILE}"));
    format!("{:016x}", fnv1a(desc.as_bytes()))
}

/// The shared `meta` object (identical in both documents).
/// `pool_spawns` records the process-lifetime thread budget: one
/// persistent pool of `THREADS - 1` workers, warmed on the first
/// wavefront dispatch and never grown again — `main` asserts the real
/// spawn counter matches after all sampling.
fn meta_json(set: &[(&'static str, Kernel, Vec<i64>)]) -> String {
    format!(
        "  \"meta\": {{\n    \"kernel_set_hash\": \"{}\",\n    \"tile\": {TILE},\n    \
         \"threads\": {THREADS},\n    \"samples\": {SAMPLES},\n    \"pool_spawns\": {}\n  }},\n",
        kernel_set_hash(set),
        THREADS - 1
    )
}

fn main() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let set = bench_set();

    let pipeline = emit_pipeline(&set);
    let kernels_doc = emit_kernels(&set);

    // Acceptance: the whole bench run — every kernel, every wavefront
    // sample — cost exactly one pool warm-up of THREADS - 1 threads.
    assert_eq!(
        pool::spawn_count(),
        THREADS - 1,
        "thread spawns observed after pool init"
    );

    for (name, text) in [
        ("BENCH_pipeline.json", &pipeline),
        ("BENCH_kernels.json", &kernels_doc),
    ] {
        json::parse(text).unwrap_or_else(|e| panic!("emitted {name} is malformed: {e}"));
        let path = root.join(name);
        std::fs::write(&path, text).unwrap_or_else(|e| panic!("cannot write {name}: {e}"));
        println!("wrote {}", path.display());
    }
}

/// Compiles every kernel under an observability session and serializes
/// each profile (phases + full counter registry + full histogram
/// registry with log2-bucket p50/p95 estimates, so `bench_diff` can
/// track latency-distribution drift alongside the counter gates).
fn emit_pipeline(set: &[(&'static str, Kernel, Vec<i64>)]) -> String {
    let mut out = String::from("{\n  \"schema\": \"pluto-bench-pipeline/3\",\n");
    out.push_str(&meta_json(set));
    out.push_str("  \"kernels\": [");
    for (i, (name, k, _)) in set.iter().enumerate() {
        let session = Session::start();
        let optimized = Optimizer::new()
            .tile_size(TILE)
            .optimize(&k.program)
            .unwrap_or_else(|e| panic!("{name}: transformation failed: {e}"));
        let _ast = generate(&k.program, &optimized.result.transform);
        let profile = session.finish();

        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\n      \"kernel\": {},\n      \"total_ns\": {},\n      \"phases\": [",
            json::escape(name),
            profile.total_ns
        ));
        for (j, p) in profile.phases.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n        {{\"path\": {}, \"calls\": {}, \"wall_ns\": {}}}",
                json::escape(&p.path),
                p.calls,
                p.wall_ns
            ));
        }
        out.push_str("\n      ],\n      \"counters\": [");
        for (j, c) in profile.counters.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n        {{\"name\": {}, \"value\": {}}}",
                json::escape(c.name),
                c.value
            ));
        }
        out.push_str("\n      ],\n      \"hists\": [");
        for (j, h) in profile.hists.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n        {{\"name\": {}, \"count\": {}, \"sum_ns\": {}, \"p50_ns\": {}, \
                 \"p95_ns\": {}, \"buckets\": [{}]}}",
                json::escape(h.name),
                h.count,
                h.sum_ns,
                h.p50_ns(),
                h.quantile_ns(0.95),
                h.buckets
                    .iter()
                    .map(|b| b.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        out.push_str("\n      ]\n    }");
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Samples original-sequential, pluto-sequential and pluto-wavefront
/// interpreter runs for every kernel, then measures the wavefront
/// variant's execution profile (imbalance, barrier wait, per-array
/// attribution) in one additional instrumented run per kernel.
fn emit_kernels(set: &[(&'static str, Kernel, Vec<i64>)]) -> String {
    let mut out = String::from("{\n  \"schema\": \"pluto-bench-kernels/2\",\n");
    out.push_str(&meta_json(set));
    out.push_str(&format!("  \"samples\": {SAMPLES},\n  \"kernels\": ["));
    for (i, (name, k, params)) in set.iter().enumerate() {
        let orig = variants::orig(&k.program);
        let pluto = variants::pluto(&k.program, TILE, 1);
        let orig_ast = generate(&k.program, &orig.result.transform);
        let pluto_ast = generate(&k.program, &pluto.result.transform);

        let fresh = || {
            let mut a = Arrays::new((k.extents)(params));
            a.seed_with(kernels::seed_value);
            a
        };
        let seq = sample(SAMPLES, || {
            run_sequential(&k.program, &orig_ast, params, &mut fresh());
        });
        let tra = sample(SAMPLES, || {
            run_sequential(&k.program, &pluto_ast, params, &mut fresh());
        });
        let cfg = ParallelConfig {
            threads: THREADS,
            collapse: pluto.collapse,
        };
        // Compile the wavefront variant once; every timed sample then
        // pays only bytecode execution — the deployment pattern (and the
        // reason the wavefront beats the tree-walk sequential baseline).
        let ck = compile_kernel(&k.program, &pluto_ast, params, &fresh());
        let par = sample(SAMPLES, || {
            run_compiled_parallel(&ck, &mut fresh(), cfg);
        });
        // One instrumented run each for the execution profile: dispatch
        // metrics from the thread team, cache attribution from the
        // (sequential-interleaving) simulator at bench geometry.
        let (_, mut eprof) = run_compiled_parallel_profiled(&ck, &mut fresh(), cfg);
        let (_, _, per) =
            run_with_cache_attributed(&k.program, &pluto_ast, params, &mut fresh(), BENCH_CACHE);
        eprof.arrays = per
            .iter()
            .map(|(aname, s)| pluto_obs::exec::ArrayCache {
                name: aname.clone(),
                accesses: s.accesses,
                l1_misses: s.l1_misses,
                l2_misses: s.l2_misses,
            })
            .collect();

        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\n      \"kernel\": {},\n      \"params\": [{}],\n      \"variants\": [",
            json::escape(name),
            params
                .iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
        let rows = [
            ("original-sequential", seq),
            ("pluto-sequential", tra),
            ("pluto-wavefront", par),
        ];
        for (j, (vname, st)) in rows.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&variant_json(vname, st));
        }
        out.push_str("\n      ],\n      \"exec\": ");
        out.push_str(&exec_json(&eprof, "      "));
        out.push_str("\n    }");
    }
    out.push_str("\n  ]\n}\n");
    out
}

fn variant_json(name: &str, st: &Stats) -> String {
    format!(
        "\n        {{\"name\": {}, \"min_ns\": {}, \"median_ns\": {}, \"max_ns\": {}}}",
        json::escape(name),
        st.min_ns,
        st.median_ns,
        st.max_ns
    )
}
