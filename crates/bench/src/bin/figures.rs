//! Regenerates every figure of the paper's evaluation (Sec. 7) on the
//! simulated machine.
//!
//! ```text
//! cargo run -p pluto-bench --release --bin figures -- all
//! cargo run -p pluto-bench --release --bin figures -- fig6
//! cargo run -p pluto-bench --release --bin figures -- fig13 --trace wf.json
//! ```
//!
//! Code figures (3, 4, 9) print generated OpenMP C; performance figures
//! (6, 8, 10, 12, 13) print one table each with modelled GFLOP/s, cache
//! misses, barrier counts and speedups. `--trace <out.json>`
//! additionally executes the Fig. 13 wavefront kernel (seidel-2d,
//! 2-d pipelined) on the real thread team and writes a Chrome Trace
//! Event Format document (`trace_event/1`) for Perfetto (walkthrough in
//! PERFORMANCE.md).

use pluto_bench::variants::{self, Variant};
use pluto_bench::{harness, measure};
use pluto_codegen::{emit_c, generate};
use pluto_frontend::kernels::{self, Kernel};
use pluto_machine::{run_parallel, Arrays, ParallelConfig};

fn main() {
    let mut arg = "all".to_string();
    let mut trace_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace" => {
                trace_out = Some(args.next().unwrap_or_else(|| {
                    eprintln!("figures: --trace expects an output path");
                    std::process::exit(2);
                }));
            }
            other => arg = other.to_string(),
        }
    }
    let all = arg == "all";
    if all || arg == "fig3" {
        fig3();
    }
    if all || arg == "fig4" {
        fig4();
    }
    if all || arg == "fig6" {
        fig6();
    }
    if all || arg == "fig8" {
        fig8();
    }
    if all || arg == "fig9" {
        fig9();
    }
    if all || arg == "fig10" {
        fig10();
    }
    if all || arg == "fig12" {
        fig12();
    }
    if all || arg == "fig13" {
        fig13();
    }
    if let Some(path) = trace_out {
        trace_wavefront(&path);
    }
}

/// Executes the Fig. 13 wavefront kernel (seidel-2d, 2-d pipelined
/// parallelism) on the 4-thread team with tracing on and writes the
/// Chrome-trace document. Small parameters: the point is the wavefront
/// shape (ramp-up, full width, ramp-down), not the run time.
fn trace_wavefront(path: &str) {
    let k = kernels::seidel_2d();
    let params = [8i64, 64]; // T, N
    let v = variants::pluto(&k.program, 8, 2);
    let ast = generate(&k.program, &v.result.transform);
    let mut arrays = Arrays::new((k.extents)(&params));
    arrays.seed_with(kernels::seed_value);
    let obs = pluto_obs::ObsSession::builder().trace().build();
    {
        let _g = obs.install();
        run_parallel(
            &k.program,
            &ast,
            &params,
            &mut arrays,
            ParallelConfig {
                threads: 4,
                collapse: v.collapse,
            },
        );
    }
    let trace = obs.take_trace();
    let doc = trace.to_chrome_json();
    pluto_obs::json::parse(&doc).expect("emitted trace must be valid JSON");
    std::fs::write(path, &doc).unwrap_or_else(|e| panic!("figures: cannot write `{path}`: {e}"));
    println!(
        "wrote {} trace events on {} timelines to {path} (seidel-2d wavefront, T=8 N=64)",
        trace.events.len(),
        trace.distinct_tids()
    );
}

/// Runs a figure's variant list at 1..=4 cores (sequential baseline first)
/// and prints the table.
fn perf_figure(title: &str, k: &Kernel, params: &[i64], vs: &[Variant]) {
    let mut rows = Vec::new();
    for (i, v) in vs.iter().enumerate() {
        if i == 0 {
            rows.push(measure(k, v, params, 1));
        } else {
            for cores in [1usize, 2, 4] {
                rows.push(measure(k, v, params, cores));
            }
        }
    }
    harness::print_table(title, &rows);
}

fn fig3() {
    println!("\n===== Figure 3: tiled code for imperfectly nested 1-d Jacobi =====");
    let k = kernels::jacobi_1d_imperfect();
    let v = variants::pluto(&k.program, 256, 1);
    println!("{}", v.result.transform.display(&k.program));
    let ast = generate(&k.program, &v.result.transform);
    println!("{}", emit_c(&k.program, &ast));
}

fn fig4() {
    println!("\n===== Figure 4: coarse-grained tile-space wavefront (2-d SOR) =====");
    let k = kernels::sor_2d();
    let v = variants::pluto(&k.program, 32, 1);
    println!("{}", v.result.transform.display(&k.program));
    let ast = generate(&k.program, &v.result.transform);
    println!("{}", emit_c(&k.program, &ast));
}

/// Single-core problem-size sweep (the paper's "(a)" panels): original vs
/// Pluto at 1 core across sizes.
fn size_sweep(
    title: &str,
    k: &Kernel,
    sizes: &[Vec<i64>],
    mk_pluto: &dyn Fn(&kernels::Kernel) -> Variant,
) {
    println!(
        "
== {title} =="
    );
    println!(
        "{:<24} {:>12} {:>12} {:>8}",
        "params", "orig cyc", "pluto cyc", "speedup"
    );
    let orig = variants::orig(&k.program);
    let pl = mk_pluto(k);
    for params in sizes {
        let mo = measure(k, &orig, params, 1);
        let mp = measure(k, &pl, params, 1);
        println!(
            "{:<24} {:>12} {:>12} {:>8.2}",
            format!("{params:?}"),
            mo.cycles,
            mp.cycles,
            mo.cycles as f64 / mp.cycles as f64
        );
    }
}

fn fig6() {
    let k = kernels::jacobi_1d_imperfect();
    size_sweep(
        "Figure 6(a): jacobi-1d single core across N (T=32)",
        &k,
        &[
            vec![32, 2_000],
            vec![32, 6_000],
            vec![32, 20_000],
            vec![32, 60_000],
            vec![32, 120_000],
        ],
        &|k| variants::pluto(&k.program, 16, 1),
    );
    let params = [64i64, 120_000]; // T, N (scaled from the paper's 10^5-10^6)
    let vs = vec![
        variants::orig(&k.program),
        variants::inner_parallel(&k.program),
        variants::jacobi_affine_partitioning(&k.program),
        variants::jacobi_sched_fco(&k.program, 16),
        variants::pluto(&k.program, 16, 1),
    ];
    perf_figure(
        "Figure 6: imperfectly nested 1-d Jacobi (T=64, N=120000)",
        &k,
        &params,
        &vs,
    );
}

fn fig8() {
    let k = kernels::fdtd_2d();
    let params = [32i64, 200, 200]; // tmax, nx, ny (paper: 500, 2000, 2000)
    let vs = vec![
        variants::orig(&k.program),
        variants::inner_parallel(&k.program),
        variants::feautrier(&k.program),
        variants::pluto(&k.program, 8, 1),
    ];
    perf_figure("Figure 8: 2-d FDTD (tmax=32, nx=ny=200)", &k, &params, &vs);
}

fn fig9() {
    println!("\n===== Figure 9: LU, 1-d pipelined parallel + tiled =====");
    let k = kernels::lu();
    let v = variants::pluto(&k.program, 32, 1);
    println!("{}", v.result.transform.display(&k.program));
    let ast = generate(&k.program, &v.result.transform);
    println!("{}", emit_c(&k.program, &ast));
}

fn fig10() {
    let k = kernels::lu();
    size_sweep(
        "Figure 10(a): LU single core across N",
        &k,
        &[vec![100], vec![200], vec![300], vec![400]],
        &|k| variants::pluto(&k.program, 16, 1),
    );
    let params = [350i64]; // paper: up to 8000
    let vs = [
        variants::orig(&k.program),
        variants::inner_parallel(&k.program),
        variants::lu_sched(&k.program),
        variants::pluto(&k.program, 16, 1),
    ];
    // LU's reuse distances are O(N) rows: at the scaled N the caches must
    // shrink further for the paper's memory-bound regime to appear.
    let mut rows = Vec::new();
    for (i, v) in vs.iter().enumerate() {
        let counts: &[usize] = if i == 0 { &[1] } else { &[1, 2, 4] };
        for &cores in counts {
            let mut cfg = pluto_bench::bench_machine(cores);
            cfg.cache.l1_size = 4 * 1024;
            cfg.cache.l2_size = 32 * 1024;
            rows.push(pluto_bench::measure_on(&k, v, &params, cfg));
        }
    }
    harness::print_table("Figure 10: LU decomposition (N=350)", &rows);
}

fn fig12() {
    let k = kernels::mvt();
    let params = [1200i64]; // paper: N=8000
    let vs = vec![
        variants::orig(&k.program),
        variants::inner_parallel(&k.program),
        variants::pluto_nofuse(&k.program, 32),
        variants::mvt_fused_ij_ij(&k.program, 32),
        variants::pluto(&k.program, 32, 1),
        variants::pluto_unrolled(&k.program, 32, 4),
    ];
    perf_figure("Figure 12: MVT (N=1200)", &k, &params, &vs);
}

fn fig13() {
    let k = kernels::seidel_2d();
    let params = [32i64, 300]; // paper: T=1000, Nx=Ny=2000
    let vs = [
        variants::orig(&k.program),
        variants::pluto(&k.program, 8, 1),
        variants::pluto(&k.program, 8, 2),
    ];
    let mut rows = Vec::new();
    rows.push(measure(&k, &vs[0], &params, 1));
    for v in &vs[1..] {
        for cores in [1usize, 2, 4] {
            rows.push(measure(&k, v, &params, cores));
        }
    }
    // Rename the pluto variants for the 1-d vs 2-d comparison.
    for r in rows.iter_mut() {
        if r.variant == "pluto" {
            r.variant = "pluto (1-d pipelined)".into();
        }
    }
    let n = rows.len();
    for r in rows[n - 3..].iter_mut() {
        r.variant = "pluto (2-d pipelined)".into();
    }
    harness::print_table("Figure 13: 3-D Gauss-Seidel (T=32, N=300)", &rows);
}
