//! `bench_diff` — the perf-regression gate over `BENCH_*.json`.
//!
//! ```text
//! bench_diff [--warn 0.10] [--fail 0.50] <baseline.json> <fresh.json>
//! ```
//!
//! Compares a committed baseline against a freshly emitted document of
//! the same schema (`pluto-bench-pipeline/2` or `pluto-bench-kernels/2`)
//! and prints the delta table. Gating policy (PERFORMANCE.md §6):
//! counter-based metrics are deterministic, so an increase ≥ the fail
//! threshold exits 1 and any change ≥ the warn threshold warns;
//! wall-time metrics only ever warn. Documents with mismatched `meta`
//! (kernel set, threads, samples, tile) are refused with exit 2 —
//! comparing different configurations would be meaningless.
//!
//! Exit codes: 0 clean (warnings allowed), 1 gated regression,
//! 2 refused / malformed / usage error.

use pluto_bench::diff::{self, DiffError};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("bench_diff: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut warn = diff::DEFAULT_WARN;
    let mut fail = diff::DEFAULT_FAIL;
    let mut paths: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--warn" => warn = parse_threshold(&a, it.next())?,
            "--fail" => fail = parse_threshold(&a, it.next())?,
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench_diff [--warn frac] [--fail frac] <baseline.json> <fresh.json>"
                );
                return Ok(ExitCode::SUCCESS);
            }
            other if !other.starts_with("--") => paths.push(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let [base_path, fresh_path] = paths.as_slice() else {
        return Err("expected exactly two paths: <baseline.json> <fresh.json>".to_string());
    };
    let base = std::fs::read_to_string(base_path)
        .map_err(|e| format!("cannot read `{base_path}`: {e}"))?;
    let fresh = std::fs::read_to_string(fresh_path)
        .map_err(|e| format!("cannot read `{fresh_path}`: {e}"))?;
    let report = match diff::diff_documents(&base, &fresh, warn, fail) {
        Ok(r) => r,
        Err(e @ (DiffError::Parse(_) | DiffError::Incompatible(_))) => {
            return Err(e.to_string());
        }
    };
    print!("{}", diff::render_report(&report));
    Ok(if report.fails() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn parse_threshold(flag: &str, v: Option<String>) -> Result<f64, String> {
    let s = v.ok_or_else(|| format!("{flag} expects a fraction (e.g. 0.10)"))?;
    let x: f64 = s
        .parse()
        .map_err(|_| format!("{flag} expects a number, got `{s}`"))?;
    if !(0.0..=100.0).contains(&x) {
        return Err(format!("{flag} out of range: `{s}`"));
    }
    Ok(x)
}
