//! Perf-regression diffing over the `BENCH_*.json` trajectory documents
//! — the machine check behind EXPERIMENTS.md's "the trend to watch
//! across PRs is this gap and the counter table".
//!
//! [`diff_documents`] compares two documents of the same schema
//! (`pluto-bench-pipeline/2` or `/3`, or `pluto-bench-kernels/2`)
//! metric by metric. The gating policy follows PERFORMANCE.md §6:
//!
//! * **counter-based metrics** (solver counters, dispatch counts,
//!   simulated cache accesses/misses) are deterministic for a given
//!   input, so they gate: an increase ≥ the fail threshold is a
//!   failure, any change ≥ the warn threshold is a warning;
//! * **wall-time metrics** (`total_ns`, phase `wall_ns`, variant
//!   `median_ns`, ILP-latency `p50_ns`/`p95_ns` quantiles, imbalance
//!   ratios, barrier wait) move with machine load, so they only ever
//!   warn.
//!
//! Documents whose `meta` sections disagree (different kernel set,
//! thread count, sample count or tile size) measured different things;
//! the diff refuses them ([`DiffError::Incompatible`]) instead of
//! silently comparing apples to oranges. The `bench_diff` binary maps
//! the outcomes to exit codes (0 clean, 1 failures, 2 refused).

use pluto_obs::json::{self, Json};

/// Default warn threshold (relative change).
pub const DEFAULT_WARN: f64 = 0.10;
/// Default fail threshold (relative increase, gated metrics only).
pub const DEFAULT_FAIL: f64 = 0.50;

/// Severity of one metric's change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Change ≥ warn threshold (or a gated decrease worth noting).
    Warn,
    /// Gated metric increased ≥ fail threshold.
    Fail,
}

/// One metric whose change crossed a threshold.
#[derive(Debug, Clone)]
pub struct DiffLine {
    /// Dotted metric path, e.g. `lu/counters/ilp.pivots`.
    pub metric: String,
    /// Baseline value.
    pub base: f64,
    /// Fresh value.
    pub fresh: f64,
    /// Relative change `(fresh − base) / base` (`inf` for 0 → nonzero).
    pub rel: f64,
    /// Whether this metric is counter-based (deterministic) and thus
    /// eligible to fail the gate.
    pub gated: bool,
    /// Outcome.
    pub level: Level,
}

/// The result of comparing two compatible documents.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// The shared schema of both documents.
    pub schema: String,
    /// Total metrics compared (including unchanged ones).
    pub compared: usize,
    /// Changes that crossed a threshold, in document order.
    pub lines: Vec<DiffLine>,
}

impl DiffReport {
    /// Number of warning-level changes.
    pub fn warns(&self) -> usize {
        self.lines.iter().filter(|l| l.level == Level::Warn).count()
    }

    /// Number of failure-level changes (gated counter regressions).
    pub fn fails(&self) -> usize {
        self.lines.iter().filter(|l| l.level == Level::Fail).count()
    }
}

/// Why two documents could not be compared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffError {
    /// A document is not valid JSON or not a known schema.
    Parse(String),
    /// Both documents parse but measured different configurations.
    Incompatible(String),
}

impl std::fmt::Display for DiffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffError::Parse(m) => write!(f, "parse error: {m}"),
            DiffError::Incompatible(m) => write!(f, "incompatible documents: {m}"),
        }
    }
}

/// Accumulates metric pairs and classifies their deltas.
struct Differ {
    warn: f64,
    fail: f64,
    compared: usize,
    lines: Vec<DiffLine>,
}

impl Differ {
    fn add(&mut self, metric: String, base: f64, fresh: f64, gated: bool) {
        self.compared += 1;
        let rel = if base == 0.0 {
            if fresh == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (fresh - base) / base
        };
        let level = if gated && rel >= self.fail {
            Some(Level::Fail)
        } else if rel.abs() >= self.warn {
            Some(Level::Warn)
        } else {
            None
        };
        if let Some(level) = level {
            self.lines.push(DiffLine {
                metric,
                base,
                fresh,
                rel,
                gated,
                level,
            });
        }
    }
}

fn num(v: &Json, what: &str) -> Result<f64, DiffError> {
    v.as_f64()
        .ok_or_else(|| DiffError::Parse(format!("{what} is not a number")))
}

fn field<'a>(v: &'a Json, key: &str, what: &str) -> Result<&'a Json, DiffError> {
    v.get(key)
        .ok_or_else(|| DiffError::Parse(format!("{what} has no `{key}` field")))
}

fn str_field<'a>(v: &'a Json, key: &str, what: &str) -> Result<&'a str, DiffError> {
    field(v, key, what)?
        .as_str()
        .ok_or_else(|| DiffError::Parse(format!("{what}.{key} is not a string")))
}

fn arr_field<'a>(v: &'a Json, key: &str, what: &str) -> Result<&'a [Json], DiffError> {
    field(v, key, what)?
        .as_array()
        .ok_or_else(|| DiffError::Parse(format!("{what}.{key} is not an array")))
}

/// Finds the element of `items` whose `key` field equals `value`.
fn find_by<'a>(items: &'a [Json], key: &str, value: &str) -> Option<&'a Json> {
    items
        .iter()
        .find(|it| it.get(key).and_then(|n| n.as_str()) == Some(value))
}

/// Checks the `meta` sections agree field-by-field.
fn check_meta(base: &Json, fresh: &Json) -> Result<(), DiffError> {
    let bm = field(base, "meta", "baseline document")?;
    let fm = field(fresh, "meta", "fresh document")?;
    for key in [
        "kernel_set_hash",
        "tile",
        "threads",
        "samples",
        "pool_spawns",
    ] {
        let bv = field(bm, key, "baseline meta")?;
        let fv = field(fm, key, "fresh meta")?;
        let same = match (bv.as_str(), fv.as_str()) {
            (Some(a), Some(b)) => a == b,
            _ => bv.as_f64() == fv.as_f64() && bv.as_f64().is_some(),
        };
        if !same {
            return Err(DiffError::Incompatible(format!(
                "meta.{key} differs — refusing to compare different measurement configurations"
            )));
        }
    }
    Ok(())
}

/// Compares two `BENCH_*.json` documents.
///
/// # Errors
/// [`DiffError::Parse`] if either document is malformed or has an
/// unknown schema; [`DiffError::Incompatible`] if the schemas or `meta`
/// sections disagree, or a baseline kernel/variant/counter is missing
/// from the fresh document.
pub fn diff_documents(
    base_text: &str,
    fresh_text: &str,
    warn: f64,
    fail: f64,
) -> Result<DiffReport, DiffError> {
    let base = json::parse(base_text).map_err(|e| DiffError::Parse(format!("baseline: {e}")))?;
    let fresh = json::parse(fresh_text).map_err(|e| DiffError::Parse(format!("fresh: {e}")))?;
    let bs = str_field(&base, "schema", "baseline document")?;
    let fs = str_field(&fresh, "schema", "fresh document")?;
    if bs != fs {
        return Err(DiffError::Incompatible(format!("schema `{bs}` vs `{fs}`")));
    }
    let is_pipeline = bs == "pluto-bench-pipeline/2" || bs == "pluto-bench-pipeline/3";
    if !is_pipeline && bs != "pluto-bench-kernels/2" {
        return Err(DiffError::Parse(format!("unknown schema `{bs}`")));
    }
    check_meta(&base, &fresh)?;
    let mut d = Differ {
        warn,
        fail,
        compared: 0,
        lines: Vec::new(),
    };
    let bks = arr_field(&base, "kernels", "baseline document")?;
    let fks = arr_field(&fresh, "kernels", "fresh document")?;
    for bk in bks {
        let name = str_field(bk, "kernel", "kernel entry")?;
        let fk = find_by(fks, "kernel", name).ok_or_else(|| {
            DiffError::Incompatible(format!("kernel `{name}` missing from fresh document"))
        })?;
        if is_pipeline {
            diff_pipeline_kernel(&mut d, name, bk, fk)?;
        } else {
            diff_kernels_kernel(&mut d, name, bk, fk)?;
        }
    }
    Ok(DiffReport {
        schema: bs.to_string(),
        compared: d.compared,
        lines: d.lines,
    })
}

fn diff_pipeline_kernel(d: &mut Differ, name: &str, bk: &Json, fk: &Json) -> Result<(), DiffError> {
    d.add(
        format!("{name}/total_ns"),
        num(field(bk, "total_ns", name)?, "total_ns")?,
        num(field(fk, "total_ns", name)?, "total_ns")?,
        false,
    );
    let fphases = arr_field(fk, "phases", name)?;
    for bp in arr_field(bk, "phases", name)? {
        let path = str_field(bp, "path", "phase entry")?;
        // Phases present only in one document (a pass gained/lost) are
        // structural, not a regression; skip rather than refuse.
        if let Some(fp) = find_by(fphases, "path", path) {
            d.add(
                format!("{name}/phases/{path}/wall_ns"),
                num(field(bp, "wall_ns", path)?, "wall_ns")?,
                num(field(fp, "wall_ns", path)?, "wall_ns")?,
                false,
            );
        }
    }
    let fcounters = arr_field(fk, "counters", name)?;
    for bc in arr_field(bk, "counters", name)? {
        let cname = str_field(bc, "name", "counter entry")?;
        let fc = find_by(fcounters, "name", cname).ok_or_else(|| {
            DiffError::Incompatible(format!("counter `{cname}` missing from fresh `{name}`"))
        })?;
        d.add(
            format!("{name}/counters/{cname}"),
            num(field(bc, "value", cname)?, "value")?,
            num(field(fc, "value", cname)?, "value")?,
            true,
        );
    }
    // ILP-latency quantile deltas (schema /3 adds `hists`): latency is
    // wall time, so these warn and never gate — the counters above stay
    // the deterministic regression fence. /2 baselines simply have no
    // `hists` section and skip this block, keeping old fixtures valid.
    if let (Some(bhists), Some(fhists)) = (bk.get("hists"), fk.get("hists")) {
        let bhists = bhists
            .as_array()
            .ok_or_else(|| DiffError::Parse(format!("{name}.hists is not an array")))?;
        let fhists = fhists
            .as_array()
            .ok_or_else(|| DiffError::Parse(format!("{name}.hists is not an array")))?;
        for bh in bhists {
            let hname = str_field(bh, "name", "hist entry")?;
            let Some(fh) = find_by(fhists, "name", hname) else {
                continue; // histogram registry grew/shrank: structural
            };
            // Empty-on-both histograms carry no signal; skip so the
            // compared-metric count reflects real comparisons.
            let bcount = num(field(bh, "count", hname)?, "count")?;
            let fcount = num(field(fh, "count", hname)?, "count")?;
            if bcount == 0.0 && fcount == 0.0 {
                continue;
            }
            for key in ["p50_ns", "p95_ns"] {
                d.add(
                    format!("{name}/hists/{hname}/{key}"),
                    num(field(bh, key, hname)?, key)?,
                    num(field(fh, key, hname)?, key)?,
                    false,
                );
            }
        }
    }
    Ok(())
}

fn diff_kernels_kernel(d: &mut Differ, name: &str, bk: &Json, fk: &Json) -> Result<(), DiffError> {
    let fvariants = arr_field(fk, "variants", name)?;
    for bv in arr_field(bk, "variants", name)? {
        let vname = str_field(bv, "name", "variant entry")?;
        let fv = find_by(fvariants, "name", vname).ok_or_else(|| {
            DiffError::Incompatible(format!("variant `{vname}` missing from fresh `{name}`"))
        })?;
        d.add(
            format!("{name}/{vname}/median_ns"),
            num(field(bv, "median_ns", vname)?, "median_ns")?,
            num(field(fv, "median_ns", vname)?, "median_ns")?,
            false,
        );
    }
    let be = field(bk, "exec", name)?;
    let fe = field(fk, "exec", name)?;
    for (key, gated) in [
        ("dispatches", true),
        ("imbalance_mean", false),
        ("imbalance_max", false),
        ("barrier_wait_ns", false),
    ] {
        d.add(
            format!("{name}/exec/{key}"),
            num(field(be, key, "exec")?, key)?,
            num(field(fe, key, "exec")?, key)?,
            gated,
        );
    }
    let farrays = arr_field(fe, "arrays", "exec")?;
    for ba in arr_field(be, "arrays", "exec")? {
        let aname = str_field(ba, "name", "array entry")?;
        let fa = find_by(farrays, "name", aname).ok_or_else(|| {
            DiffError::Incompatible(format!("array `{aname}` missing from fresh `{name}`"))
        })?;
        for key in ["accesses", "l1_misses", "l2_misses"] {
            d.add(
                format!("{name}/arrays/{aname}/{key}"),
                num(field(ba, key, aname)?, key)?,
                num(field(fa, key, aname)?, key)?,
                true,
            );
        }
    }
    Ok(())
}

/// Renders the human-readable delta table (only changes that crossed a
/// threshold; a clean diff renders the summary line alone).
pub fn render_report(r: &DiffReport) -> String {
    let mut out = format!(
        "bench_diff: {} — {} metrics compared\n",
        r.schema, r.compared
    );
    if !r.lines.is_empty() {
        out.push_str(&format!(
            "  {:<48} {:>14} {:>14} {:>9}\n",
            "metric", "base", "new", "delta"
        ));
        for l in &r.lines {
            let delta = if l.rel.is_infinite() {
                "+inf".to_string()
            } else {
                format!("{:+.1}%", l.rel * 100.0)
            };
            let tag = match l.level {
                Level::Fail => "  FAIL",
                Level::Warn if l.gated => "  warn",
                Level::Warn => "  warn (wall)",
            };
            out.push_str(&format!(
                "  {:<48} {:>14} {:>14} {:>9}{}\n",
                l.metric, l.base, l.fresh, delta, tag
            ));
        }
    }
    out.push_str(&format!(
        "  summary: {} warning(s), {} failure(s)\n",
        r.warns(),
        r.fails()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipeline_doc(pivots: u64, wall: u64) -> String {
        format!(
            r#"{{
  "schema": "pluto-bench-pipeline/2",
  "meta": {{"kernel_set_hash": "abc", "tile": 8, "threads": 4, "samples": 5, "pool_spawns": 3}},
  "kernels": [
    {{
      "kernel": "lu",
      "total_ns": {wall},
      "phases": [{{"path": "optimize", "calls": 1, "wall_ns": {wall}}}],
      "counters": [{{"name": "ilp.pivots", "value": {pivots}}}]
    }}
  ]
}}"#
        )
    }

    #[test]
    fn self_compare_is_clean() {
        let doc = pipeline_doc(1000, 5000);
        let r = diff_documents(&doc, &doc, DEFAULT_WARN, DEFAULT_FAIL).unwrap();
        assert_eq!(r.fails(), 0);
        assert_eq!(r.warns(), 0);
        assert!(r.compared >= 3);
    }

    #[test]
    fn counter_regression_fails_wall_regression_warns() {
        let base = pipeline_doc(1000, 5000);
        let fresh = pipeline_doc(1500, 50000); // +50% counter, 10x wall
        let r = diff_documents(&base, &fresh, DEFAULT_WARN, DEFAULT_FAIL).unwrap();
        assert_eq!(r.fails(), 1, "report: {}", render_report(&r));
        let fail = r.lines.iter().find(|l| l.level == Level::Fail).unwrap();
        assert_eq!(fail.metric, "lu/counters/ilp.pivots");
        // Wall-time metrics never fail, only warn.
        assert!(r.lines.iter().all(|l| l.level != Level::Fail || l.gated));
        assert!(r.warns() >= 2); // total_ns + phase wall_ns
    }

    #[test]
    fn counter_improvement_only_warns() {
        let base = pipeline_doc(1000, 5000);
        let fresh = pipeline_doc(200, 5000); // -80% counter
        let r = diff_documents(&base, &fresh, DEFAULT_WARN, DEFAULT_FAIL).unwrap();
        assert_eq!(r.fails(), 0);
        assert_eq!(r.warns(), 1);
    }

    fn pipeline3_doc(p50: u64, p95: u64) -> String {
        format!(
            r#"{{
  "schema": "pluto-bench-pipeline/3",
  "meta": {{"kernel_set_hash": "abc", "tile": 8, "threads": 4, "samples": 5, "pool_spawns": 3}},
  "kernels": [
    {{
      "kernel": "lu",
      "total_ns": 5000,
      "phases": [{{"path": "optimize", "calls": 1, "wall_ns": 5000}}],
      "counters": [{{"name": "ilp.pivots", "value": 1000}}],
      "hists": [
        {{"name": "ilp.latency.search_row", "count": 10, "sum_ns": 9000,
          "p50_ns": {p50}, "p95_ns": {p95}, "buckets": [10]}},
        {{"name": "ilp.latency.emptiness", "count": 0, "sum_ns": 0,
          "p50_ns": 0, "p95_ns": 0, "buckets": [0]}}
      ]
    }}
  ]
}}"#
        )
    }

    #[test]
    fn latency_quantile_regressions_warn_but_never_fail() {
        let base = pipeline3_doc(800, 900);
        let fresh = pipeline3_doc(800, 9000); // p95 x10
        let r = diff_documents(&base, &fresh, DEFAULT_WARN, DEFAULT_FAIL).unwrap();
        assert_eq!(r.fails(), 0, "report: {}", render_report(&r));
        let warn = r
            .lines
            .iter()
            .find(|l| l.metric == "lu/hists/ilp.latency.search_row/p95_ns")
            .expect("p95 delta reported");
        assert_eq!(warn.level, Level::Warn);
        assert!(!warn.gated);
        // Empty-on-both histograms are skipped, quantiles of the sampled
        // one are compared (p50 + p95).
        let hist_metrics = r.compared;
        let r2 = diff_documents(&base, &base, DEFAULT_WARN, DEFAULT_FAIL).unwrap();
        assert_eq!(r2.compared, hist_metrics);
        assert_eq!(r2.warns() + r2.fails(), 0);
    }

    #[test]
    fn meta_mismatch_is_refused() {
        let base = pipeline_doc(1000, 5000);
        let fresh = base.replace("\"threads\": 4", "\"threads\": 8");
        let err = diff_documents(&base, &fresh, DEFAULT_WARN, DEFAULT_FAIL).unwrap_err();
        assert!(matches!(err, DiffError::Incompatible(_)), "{err}");
    }

    #[test]
    fn v1_documents_are_rejected() {
        let doc = pipeline_doc(1000, 5000).replace("pipeline/2", "pipeline/1");
        let err = diff_documents(&doc, &doc, DEFAULT_WARN, DEFAULT_FAIL).unwrap_err();
        assert!(matches!(err, DiffError::Parse(_)), "{err}");
    }
}
