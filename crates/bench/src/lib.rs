//! Benchmark harness reproducing every figure of the paper's evaluation
//! (Sec. 7) on the simulated machine substrate.
//!
//! * [`variants`] builds the transformation each compared approach would
//!   produce — exactly the paper's methodology: "the input code was run
//!   through our system and the transformations were forced to be what
//!   those approaches would have generated", so every approach shares the
//!   same code generator and machine model;
//! * [`harness`] runs a variant on the simulated machine and collects
//!   modelled cycles, GFLOP/s, cache misses and synchronization counts;
//! * the `figures` binary (`cargo run -p pluto-bench --release --bin
//!   figures -- all`) prints one table per paper figure (6, 8, 10, 12, 13)
//!   and the generated-code listings for Figs. 3, 4 and 9;
//! * [`diff`] compares two `BENCH_*.json` trajectory documents with the
//!   PERFORMANCE.md §6 gating policy (counters gate, wall times warn);
//!   the `bench_diff` binary wires it into `ci.sh` as the
//!   perf-regression gate;
//! * `benches/figures.rs` and `benches/toolchain.rs` hold the
//!   `cargo bench` targets (on the hermetic [`timing`] sampler — no
//!   external benchmark framework): per-figure simulated-machine runs at
//!   reduced sizes plus tool-chain benchmarks (dependence analysis,
//!   transformation search, code generation — the paper's "runs in a
//!   fraction of a second" claim).
//!
//! Problem sizes and cache geometry are scaled down together from the
//! paper's (which targeted minutes-long native runs): the simulated
//! machine keeps the paper's 4-core topology but uses 8 KB L1 / 256 KB L2
//! so that the working sets of interpreter-scale problems overflow the
//! caches the same way the paper's 2000²-element arrays overflowed the
//! Q6600's. Shapes (who wins, crossover behaviour), not absolute GFLOP/s,
//! are the reproduction target.
//!
//! DESIGN.md §4 indexes every figure to its bench target; PERFORMANCE.md documents the BENCH_*.json trajectory files this crate emits.

pub mod diff;
pub mod harness;
pub mod timing;
pub mod variants;

pub use diff::{diff_documents, render_report, DiffError, DiffReport};
pub use harness::{bench_machine, measure, measure_on, Measurement};
pub use variants::Variant;
