//! Running variants on the simulated machine and collecting results.

use crate::variants::Variant;
use pluto_codegen::generate;
use pluto_frontend::kernels::{self, Kernel};
use pluto_machine::{simulate, Arrays, CacheConfig, MachineConfig};

/// One table cell: a variant run at a core count.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Variant name.
    pub variant: String,
    /// Cores used.
    pub cores: usize,
    /// Modelled cycles.
    pub cycles: u64,
    /// Modelled GFLOP/s.
    pub gflops: f64,
    /// L1 misses (all cores).
    pub l1_misses: u64,
    /// L2 misses (all cores).
    pub l2_misses: u64,
    /// Parallel regions entered (barrier count).
    pub regions: u64,
    /// Statement instances executed.
    pub instances: u64,
    /// Static loop count of the generated code (code complexity proxy).
    pub code_loops: usize,
}

/// The scaled-down benchmark machine: the paper's 4-core topology with
/// 8 KB L1 / 256 KB L2 per core (problem sizes are scaled down with it so
/// working sets overflow the hierarchy the same way; see the crate docs).
pub fn bench_machine(cores: usize) -> MachineConfig {
    MachineConfig {
        cores,
        cache: CacheConfig {
            line: 64,
            l1_size: 8 * 1024,
            l1_assoc: 8,
            l2_size: 64 * 1024,
            l2_assoc: 16,
        },
        // Scaled with the problem sizes (the paper's real barriers cost
        // O(µs) against minutes-long runs).
        barrier: 500,
        ..MachineConfig::default()
    }
}

/// Runs one variant of a kernel on the simulated machine.
pub fn measure(k: &Kernel, v: &Variant, params: &[i64], cores: usize) -> Measurement {
    let cfg = bench_machine(cores).with_collapse(v.collapse);
    measure_on(k, v, params, cfg)
}

/// Runs one variant on an explicit machine (figures with working sets that
/// need differently scaled caches).
pub fn measure_on(k: &Kernel, v: &Variant, params: &[i64], mut cfg: MachineConfig) -> Measurement {
    cfg.collapse = v.collapse;
    let cores = cfg.cores;
    let mut ast = generate(&k.program, &v.result.transform);
    if v.unroll > 1 {
        pluto_codegen::unroll_innermost(&mut ast, v.unroll);
    }
    let code_loops = ast.stats().loops;
    let mut arrays = Arrays::new((k.extents)(params));
    arrays.seed_with(kernels::seed_value);
    let st = simulate(&k.program, &ast, params, &mut arrays, cfg);
    Measurement {
        variant: v.name.clone(),
        cores,
        cycles: st.cycles,
        gflops: st.gflops(&cfg),
        l1_misses: st.cache.l1_misses,
        l2_misses: st.cache.l2_misses,
        regions: st.regions,
        instances: st.exec.instances,
        code_loops,
    }
}

/// Pretty-prints a figure's measurements as a table, with speedups
/// relative to the first row (the sequential baseline).
pub fn print_table(title: &str, rows: &[Measurement]) {
    println!("\n== {title} ==");
    println!(
        "{:<38} {:>5} {:>12} {:>8} {:>10} {:>10} {:>8} {:>6} {:>8}",
        "variant", "cores", "cycles", "GF/s", "L1miss", "L2miss", "barriers", "loops", "speedup"
    );
    let base = rows.first().map(|r| r.cycles).unwrap_or(1);
    for r in rows {
        println!(
            "{:<38} {:>5} {:>12} {:>8.3} {:>10} {:>10} {:>8} {:>6} {:>8.2}",
            r.variant,
            r.cores,
            r.cycles,
            r.gflops,
            r.l1_misses,
            r.l2_misses,
            r.regions,
            r.code_loops,
            base as f64 / r.cycles as f64
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variants;

    #[test]
    fn measure_runs_and_counts() {
        let k = kernels::sor_2d();
        let v = variants::pluto(&k.program, 8, 1);
        let m = measure(&k, &v, &[64], 2);
        assert_eq!(m.instances, 63 * 63);
        assert!(m.cycles > 0);
        assert!(m.regions > 0, "wavefront must parallelize");
    }

    #[test]
    fn pluto_beats_orig_on_locality() {
        // seidel with a working set larger than the bench L2.
        let k = kernels::seidel_2d();
        let params = [6i64, 260];
        let o = variants::orig(&k.program);
        let p = variants::pluto(&k.program, 16, 1);
        let mo = measure(&k, &o, &params, 1);
        let mp = measure(&k, &p, &params, 1);
        assert!(
            mp.l2_misses * 2 < mo.l2_misses,
            "tiling should cut L2 misses at least 2x: pluto {} vs orig {}",
            mp.l2_misses,
            mo.l2_misses
        );
    }
}
