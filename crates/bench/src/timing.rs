//! Minimal wall-clock benchmark runner for the `cargo bench` targets.
//!
//! The workspace is hermetic (path dependencies only), so the bench
//! targets use `harness = false` and this plain [`std::time::Instant`]
//! sampler instead of an external framework. Each benchmark is warmed up
//! once and then timed for a fixed number of samples; the report shows
//! min / median / max, which is enough to catch pipeline performance
//! regressions (absolute precision is not the target — the simulated
//! machine already reports modelled cycles deterministically).

use std::time::{Duration, Instant};

/// Wall-clock statistics over a fixed number of samples of one closure,
/// as produced by [`sample`].
///
/// Minimum, median and maximum are reported instead of a mean: the
/// distribution of interpreter runs is skewed by scheduler noise, and
/// min/median are the stable statistics (variance policy in
/// PERFORMANCE.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Fastest sample, in nanoseconds.
    pub min_ns: u128,
    /// Median sample, in nanoseconds.
    pub median_ns: u128,
    /// Slowest sample, in nanoseconds.
    pub max_ns: u128,
    /// Number of timed samples (excludes the warm-up run).
    pub samples: usize,
}

/// Times `f` for `samples` runs after one untimed warm-up run and
/// returns min / median / max wall times.
///
/// This is the programmatic core of the sampler: [`Group::bench`] prints
/// it, the `bench_json` binary serializes it into `BENCH_kernels.json`.
///
/// # Panics
/// Panics if `samples` is zero.
pub fn sample(samples: usize, mut f: impl FnMut()) -> Stats {
    assert!(samples > 0, "at least one sample required");
    f(); // warm-up
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    times.sort();
    Stats {
        min_ns: times[0].as_nanos(),
        median_ns: times[times.len() / 2].as_nanos(),
        max_ns: times[times.len() - 1].as_nanos(),
        samples,
    }
}

/// Top-level runner: parses CLI args (an optional substring filter;
/// cargo's `--bench` flag is ignored) and prints one line per benchmark.
pub struct Runner {
    filter: Option<String>,
    samples: usize,
}

impl Runner {
    /// Builds a runner from `std::env::args`, skipping harness flags.
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with("--"));
        Runner {
            filter,
            samples: 10,
        }
    }

    /// Starts a named group; benchmark ids are printed as `group/id`.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            runner: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks sharing the runner's configuration.
pub struct Group<'a> {
    runner: &'a mut Runner,
    name: String,
}

impl Group<'_> {
    /// Times `f` and prints one report line, unless filtered out.
    pub fn bench(&mut self, id: &str, mut f: impl FnMut()) {
        let full = format!("{}/{}", self.name, id);
        if let Some(flt) = &self.runner.filter {
            if !full.contains(flt.as_str()) {
                return;
            }
        }
        let st = sample(self.runner.samples, &mut f);
        println!(
            "{full:<44} min {:>9}  median {:>9}  max {:>9}  ({} samples)",
            fmt(Duration::from_nanos(st.min_ns as u64)),
            fmt(Duration::from_nanos(st.median_ns as u64)),
            fmt(Duration::from_nanos(st.max_ns as u64)),
            st.samples
        );
    }
}

fn fmt(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}
