//! Minimal wall-clock benchmark runner for the `cargo bench` targets.
//!
//! The workspace is hermetic (path dependencies only), so the bench
//! targets use `harness = false` and this plain [`std::time::Instant`]
//! sampler instead of an external framework. Each benchmark is warmed up
//! once and then timed for a fixed number of samples; the report shows
//! min / median / max, which is enough to catch pipeline performance
//! regressions (absolute precision is not the target — the simulated
//! machine already reports modelled cycles deterministically).

use std::time::{Duration, Instant};

/// Top-level runner: parses CLI args (an optional substring filter;
/// cargo's `--bench` flag is ignored) and prints one line per benchmark.
pub struct Runner {
    filter: Option<String>,
    samples: usize,
}

impl Runner {
    /// Builds a runner from `std::env::args`, skipping harness flags.
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with("--"));
        Runner {
            filter,
            samples: 10,
        }
    }

    /// Starts a named group; benchmark ids are printed as `group/id`.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            runner: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks sharing the runner's configuration.
pub struct Group<'a> {
    runner: &'a mut Runner,
    name: String,
}

impl Group<'_> {
    /// Times `f` and prints one report line, unless filtered out.
    pub fn bench(&mut self, id: &str, mut f: impl FnMut()) {
        let full = format!("{}/{}", self.name, id);
        if let Some(flt) = &self.runner.filter {
            if !full.contains(flt.as_str()) {
                return;
            }
        }
        f(); // warm-up
        let mut times: Vec<Duration> = (0..self.runner.samples)
            .map(|_| {
                let t0 = Instant::now();
                f();
                t0.elapsed()
            })
            .collect();
        times.sort();
        println!(
            "{full:<44} min {:>9}  median {:>9}  max {:>9}  ({} samples)",
            fmt(times[0]),
            fmt(times[times.len() / 2]),
            fmt(times[times.len() - 1]),
            times.len()
        );
    }
}

fn fmt(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}
