use pluto::{carried_at, find_transformation, PlutoOptions};
use pluto_frontend::kernels;
use pluto_ir::analyze_dependences;
fn main() {
    let (_, k) = kernels::all()
        .into_iter()
        .find(|(n, _)| *n == "gemver")
        .unwrap();
    let prog = &k.program;
    let deps = analyze_dependences(prog, true);
    let res = find_transformation(prog, &deps, &PlutoOptions::default()).unwrap();
    let t = &res.transform;
    println!("{}", t.display(prog));
    for r in 0..t.num_rows() {
        if t.rows[r].kind != pluto::RowKind::Loop {
            continue;
        }
        for (di, d) in deps.iter().enumerate() {
            if !d.kind.constrains_legality() {
                continue;
            }
            if let Some(s) = res.satisfied_at[di] {
                if s < r {
                    continue;
                }
            }
            if carried_at(d, prog, &t.stmts[d.src].rows, &t.stmts[d.dst].rows, r) {
                println!(
                    "row {r}: dep {di} S{}->S{} {} lvl{} sat={:?} carried",
                    d.src + 1,
                    d.dst + 1,
                    d.kind,
                    d.level,
                    res.satisfied_at[di]
                );
            }
        }
    }
}
