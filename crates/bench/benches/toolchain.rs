//! Criterion benchmarks for the compiler tool-chain itself — the paper's
//! Sec. 7 claim that "our transformation framework itself runs quite fast
//! — within a fraction of a second for all benchmarks considered here".
//!
//! Groups: dependence analysis, the ILP-driven transformation search, the
//! full optimizer pipeline (search + tiling + wavefront), and code
//! generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pluto::{find_transformation, Optimizer, PlutoOptions};
use pluto_codegen::generate;
use pluto_frontend::kernels::{self, Kernel};
use pluto_ir::analyze_dependences;
use std::time::Duration;

/// The paper's evaluation kernels (the wider example suite is exercised by
/// the test-suite and `speedup_lab`; benchmarking it would double the run
/// time of `cargo bench` for no extra signal).
fn paper_kernels() -> Vec<(&'static str, Kernel)> {
    kernels::all()
        .into_iter()
        .filter(|(n, _)| {
            matches!(
                *n,
                "jacobi-1d-imper" | "fdtd-2d" | "lu" | "mvt" | "seidel-2d" | "matmul" | "sor-2d"
            )
        })
        .collect()
}

fn dependence_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("dependence_analysis");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    for (name, k) in paper_kernels() {
        g.bench_with_input(BenchmarkId::from_parameter(name), &k, |b, k| {
            b.iter(|| analyze_dependences(&k.program, true));
        });
    }
    g.finish();
}

fn transformation_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("transformation_search");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    for (name, k) in paper_kernels() {
        let deps = analyze_dependences(&k.program, true);
        g.bench_with_input(BenchmarkId::from_parameter(name), &k, |b, k| {
            b.iter(|| find_transformation(&k.program, &deps, &PlutoOptions::default()).unwrap());
        });
    }
    g.finish();
}

fn full_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("optimizer_pipeline");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    for (name, k) in paper_kernels() {
        g.bench_with_input(BenchmarkId::from_parameter(name), &k, |b, k| {
            b.iter(|| Optimizer::new().tile_size(32).optimize(&k.program).unwrap());
        });
    }
    g.finish();
}

fn code_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("code_generation");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    for (name, k) in paper_kernels() {
        let o = Optimizer::new().tile_size(32).optimize(&k.program).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(name), &k, |b, k| {
            b.iter(|| generate(&k.program, &o.result.transform));
        });
    }
    g.finish();
}

criterion_group!(
    toolchain,
    dependence_analysis,
    transformation_search,
    full_pipeline,
    code_generation
);
criterion_main!(toolchain);
