//! Benchmarks for the compiler tool-chain itself — the paper's Sec. 7
//! claim that "our transformation framework itself runs quite fast —
//! within a fraction of a second for all benchmarks considered here".
//!
//! Groups: dependence analysis, the ILP-driven transformation search, the
//! full optimizer pipeline (search + tiling + wavefront), and code
//! generation. Runs on the hermetic `timing` sampler, no external
//! benchmark framework.
//!
//! `cargo bench --bench toolchain [-- <substring filter>]`

use pluto::{find_transformation, Optimizer, PlutoOptions};
use pluto_bench::timing::Runner;
use pluto_codegen::generate;
use pluto_frontend::kernels::{self, Kernel};
use pluto_ir::analyze_dependences;

/// The paper's evaluation kernels (the wider example suite is exercised by
/// the test-suite and `speedup_lab`; benchmarking it would double the run
/// time of `cargo bench` for no extra signal).
fn paper_kernels() -> Vec<(&'static str, Kernel)> {
    kernels::all()
        .into_iter()
        .filter(|(n, _)| {
            matches!(
                *n,
                "jacobi-1d-imper" | "fdtd-2d" | "lu" | "mvt" | "seidel-2d" | "matmul" | "sor-2d"
            )
        })
        .collect()
}

fn dependence_analysis(r: &mut Runner) {
    let mut g = r.group("dependence_analysis");
    for (name, k) in paper_kernels() {
        g.bench(name, || {
            analyze_dependences(&k.program, true);
        });
    }
}

fn transformation_search(r: &mut Runner) {
    let mut g = r.group("transformation_search");
    for (name, k) in paper_kernels() {
        let deps = analyze_dependences(&k.program, true);
        g.bench(name, || {
            find_transformation(&k.program, &deps, &PlutoOptions::default()).unwrap();
        });
    }
}

fn full_pipeline(r: &mut Runner) {
    let mut g = r.group("optimizer_pipeline");
    for (name, k) in paper_kernels() {
        g.bench(name, || {
            Optimizer::new().tile_size(32).optimize(&k.program).unwrap();
        });
    }
}

fn code_generation(r: &mut Runner) {
    let mut g = r.group("code_generation");
    for (name, k) in paper_kernels() {
        let o = Optimizer::new().tile_size(32).optimize(&k.program).unwrap();
        g.bench(name, || {
            generate(&k.program, &o.result.transform);
        });
    }
}

fn main() {
    let mut r = Runner::from_args();
    dependence_analysis(&mut r);
    transformation_search(&mut r);
    full_pipeline(&mut r);
    code_generation(&mut r);
}
