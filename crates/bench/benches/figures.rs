//! Criterion benchmarks — one group per paper figure, each benchmarking
//! every compared variant on the simulated machine at reduced sizes
//! (the `figures` binary runs the full-size tables; these catch
//! performance regressions in the whole pipeline and keep the
//! figure-variant set continuously exercised).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pluto_bench::variants::{self, Variant};
use pluto_bench::{bench_machine, measure_on};
use pluto_frontend::kernels::{self, Kernel};

fn run_group(
    c: &mut Criterion,
    group_name: &str,
    k: &Kernel,
    params: &[i64],
    vs: Vec<Variant>,
) {
    let mut g = c.benchmark_group(group_name);
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for v in vs {
        for cores in [1usize, 4] {
            let cfg = bench_machine(cores);
            g.bench_with_input(
                BenchmarkId::new(v.name.clone(), cores),
                &cores,
                |b, _| {
                    b.iter(|| measure_on(k, &v, params, cfg));
                },
            );
        }
    }
    g.finish();
}

fn fig6_jacobi(c: &mut Criterion) {
    let k = kernels::jacobi_1d_imperfect();
    let vs = vec![
        variants::orig(&k.program),
        variants::inner_parallel(&k.program),
        variants::jacobi_sched_fco(&k.program, 8),
        variants::pluto(&k.program, 8, 1),
    ];
    run_group(c, "fig6_jacobi", &k, &[16, 6000], vs);
}

fn fig8_fdtd(c: &mut Criterion) {
    let k = kernels::fdtd_2d();
    let vs = vec![
        variants::orig(&k.program),
        variants::inner_parallel(&k.program),
        variants::pluto(&k.program, 8, 1),
    ];
    run_group(c, "fig8_fdtd", &k, &[8, 60, 60], vs);
}

fn fig10_lu(c: &mut Criterion) {
    let k = kernels::lu();
    let vs = vec![
        variants::orig(&k.program),
        variants::lu_sched(&k.program),
        variants::pluto(&k.program, 8, 1),
    ];
    run_group(c, "fig10_lu", &k, &[100], vs);
}

fn fig12_mvt(c: &mut Criterion) {
    let k = kernels::mvt();
    let vs = vec![
        variants::orig(&k.program),
        variants::pluto_nofuse(&k.program, 8),
        variants::mvt_fused_ij_ij(&k.program, 8),
        variants::pluto(&k.program, 8, 1),
    ];
    run_group(c, "fig12_mvt", &k, &[300], vs);
}

fn fig13_seidel(c: &mut Criterion) {
    let k = kernels::seidel_2d();
    let mut p1 = variants::pluto(&k.program, 8, 1);
    p1.name = "pluto 1d-pipelined".into();
    let mut p2 = variants::pluto(&k.program, 8, 2);
    p2.name = "pluto 2d-pipelined".into();
    let vs = vec![variants::orig(&k.program), p1, p2];
    run_group(c, "fig13_seidel", &k, &[12, 100], vs);
}

/// Ablations: the design-choice knobs DESIGN.md calls out — tile size,
/// fusion policy, wavefront degree.
fn ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    let k = kernels::seidel_2d();
    for tile in [4i128, 16, 64] {
        let v = variants::pluto(&k.program, tile, 1);
        g.bench_with_input(
            BenchmarkId::new("seidel_tile", tile),
            &tile,
            |b, _| b.iter(|| measure_on(&k, &v, &[10, 100], bench_machine(4))),
        );
    }
    let mv = kernels::mvt();
    for (name, v) in [
        ("mvt_fused", variants::pluto(&mv.program, 8, 1)),
        ("mvt_nofuse", variants::pluto_nofuse(&mv.program, 8)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| measure_on(&mv, &v, &[300], bench_machine(1)))
        });
    }
    for m in [1usize, 2] {
        let v = variants::pluto(&k.program, 8, m);
        g.bench_with_input(
            BenchmarkId::new("seidel_wavefront_m", m),
            &m,
            |b, _| b.iter(|| measure_on(&k, &v, &[10, 100], bench_machine(4))),
        );
    }
    g.finish();
}

criterion_group!(
    figures,
    fig6_jacobi,
    fig8_fdtd,
    fig10_lu,
    fig12_mvt,
    fig13_seidel,
    ablations
);
criterion_main!(figures);
