//! Benchmarks — one group per paper figure, each timing every compared
//! variant on the simulated machine at reduced sizes (the `figures`
//! binary runs the full-size tables; these catch performance regressions
//! in the whole pipeline and keep the figure-variant set continuously
//! exercised). Runs on the hermetic `timing` sampler, no external
//! benchmark framework.
//!
//! `cargo bench --bench figures [-- <substring filter>]`

use pluto_bench::timing::Runner;
use pluto_bench::variants::{self, Variant};
use pluto_bench::{bench_machine, measure_on};
use pluto_frontend::kernels::{self, Kernel};

fn run_group(r: &mut Runner, group_name: &str, k: &Kernel, params: &[i64], vs: Vec<Variant>) {
    let mut g = r.group(group_name);
    for v in vs {
        for cores in [1usize, 4] {
            let cfg = bench_machine(cores);
            g.bench(&format!("{}/{cores}", v.name), || {
                measure_on(k, &v, params, cfg);
            });
        }
    }
}

fn fig6_jacobi(r: &mut Runner) {
    let k = kernels::jacobi_1d_imperfect();
    let vs = vec![
        variants::orig(&k.program),
        variants::inner_parallel(&k.program),
        variants::jacobi_sched_fco(&k.program, 8),
        variants::pluto(&k.program, 8, 1),
    ];
    run_group(r, "fig6_jacobi", &k, &[16, 6000], vs);
}

fn fig8_fdtd(r: &mut Runner) {
    let k = kernels::fdtd_2d();
    let vs = vec![
        variants::orig(&k.program),
        variants::inner_parallel(&k.program),
        variants::pluto(&k.program, 8, 1),
    ];
    run_group(r, "fig8_fdtd", &k, &[8, 60, 60], vs);
}

fn fig10_lu(r: &mut Runner) {
    let k = kernels::lu();
    let vs = vec![
        variants::orig(&k.program),
        variants::lu_sched(&k.program),
        variants::pluto(&k.program, 8, 1),
    ];
    run_group(r, "fig10_lu", &k, &[100], vs);
}

fn fig12_mvt(r: &mut Runner) {
    let k = kernels::mvt();
    let vs = vec![
        variants::orig(&k.program),
        variants::pluto_nofuse(&k.program, 8),
        variants::mvt_fused_ij_ij(&k.program, 8),
        variants::pluto(&k.program, 8, 1),
    ];
    run_group(r, "fig12_mvt", &k, &[300], vs);
}

fn fig13_seidel(r: &mut Runner) {
    let k = kernels::seidel_2d();
    let mut p1 = variants::pluto(&k.program, 8, 1);
    p1.name = "pluto 1d-pipelined".into();
    let mut p2 = variants::pluto(&k.program, 8, 2);
    p2.name = "pluto 2d-pipelined".into();
    let vs = vec![variants::orig(&k.program), p1, p2];
    run_group(r, "fig13_seidel", &k, &[12, 100], vs);
}

/// Ablations: the design-choice knobs DESIGN.md calls out — tile size,
/// fusion policy, wavefront degree.
fn ablations(r: &mut Runner) {
    let mut g = r.group("ablations");
    let k = kernels::seidel_2d();
    for tile in [4i128, 16, 64] {
        let v = variants::pluto(&k.program, tile, 1);
        g.bench(&format!("seidel_tile/{tile}"), || {
            measure_on(&k, &v, &[10, 100], bench_machine(4));
        });
    }
    let mv = kernels::mvt();
    for (name, v) in [
        ("mvt_fused", variants::pluto(&mv.program, 8, 1)),
        ("mvt_nofuse", variants::pluto_nofuse(&mv.program, 8)),
    ] {
        g.bench(name, || {
            measure_on(&mv, &v, &[300], bench_machine(1));
        });
    }
    for m in [1usize, 2] {
        let v = variants::pluto(&k.program, 8, m);
        g.bench(&format!("seidel_wavefront_m/{m}"), || {
            measure_on(&k, &v, &[10, 100], bench_machine(4));
        });
    }
}

fn main() {
    let mut r = Runner::from_args();
    fig6_jacobi(&mut r);
    fig8_fdtd(&mut r);
    fig10_lu(&mut r);
    fig12_mvt(&mut r);
    fig13_seidel(&mut r);
    ablations(&mut r);
}
