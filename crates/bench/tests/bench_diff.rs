//! End-to-end exercise of the `bench_diff` binary against the committed
//! fixtures: self-compare exits 0, a fabricated 50 % counter regression
//! exits 1, incompatible documents exit 2. `ci.sh` runs the same three
//! paths against the live `BENCH_*.json` baselines.

use std::process::Command;

fn fixture(name: &str) -> String {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
        .to_string_lossy()
        .into_owned()
}

fn bench_diff(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_bench_diff"))
        .args(args)
        .output()
        .expect("bench_diff runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn self_compare_exits_zero() {
    let base = fixture("pipeline_base.json");
    let (code, stdout, stderr) = bench_diff(&[&base, &base]);
    assert_eq!(code, Some(0), "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("0 failure(s)"), "stdout: {stdout}");
}

#[test]
fn fabricated_counter_regression_exits_nonzero() {
    let (code, stdout, _) = bench_diff(&[
        &fixture("pipeline_base.json"),
        &fixture("pipeline_regressed.json"),
    ]);
    assert_eq!(code, Some(1), "stdout: {stdout}");
    assert!(
        stdout.contains("lu/counters/ilp.pivots"),
        "the regressed counter must be named: {stdout}"
    );
    assert!(stdout.contains("FAIL"), "stdout: {stdout}");
}

#[test]
fn raised_fail_threshold_downgrades_to_warning() {
    let (code, stdout, _) = bench_diff(&[
        "--fail",
        "0.9",
        &fixture("pipeline_base.json"),
        &fixture("pipeline_regressed.json"),
    ]);
    assert_eq!(code, Some(0), "stdout: {stdout}");
    assert!(stdout.contains("0 failure(s)"), "stdout: {stdout}");
}

#[test]
fn missing_file_and_bad_usage_exit_two() {
    let (code, _, stderr) = bench_diff(&[&fixture("pipeline_base.json"), "/nonexistent.json"]);
    assert_eq!(code, Some(2), "stderr: {stderr}");
    let (code, _, _) = bench_diff(&[&fixture("pipeline_base.json")]);
    assert_eq!(code, Some(2));
}
