//! The lexicographic dual simplex with Gomory cuts.
//!
//! # Dictionary representation
//!
//! Every variable the solver has ever introduced — the `n` objective
//! variables, one slack per constraint, and any Gomory-cut slacks — owns a
//! *row* expressing it as an affine function of the current non-basic
//! variable set (the *column labels*). Non-basic variables own trivial unit
//! rows. The candidate solution is always "all non-basic variables = 0", so
//! a variable's current value is its row's constant term.
//!
//! The pivot rule is the classical lexicographic one: for a violated row
//! (negative constant), among the columns with a positive coefficient pick
//! the one whose column vector divided by that coefficient is
//! lexicographically smallest (rows compared in variable-id order, objective
//! variables first). This keeps every column lexico-positive, which both
//! prevents cycling and guarantees that the first feasible dictionary is the
//! rational lexicographic minimum of the objective vector.

use pluto_linalg::{Int, Ratio};
use pluto_obs::counters;
use std::fmt;

/// Error raised when the solver exceeds its iteration budget.
///
/// Pluto's ILPs are tiny and sparse; hitting this indicates a malformed
/// problem rather than an expected outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolveError {
    pivots: usize,
    cuts: usize,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ilp solver exceeded its budget ({} pivots, {} cuts)",
            self.pivots, self.cuts
        )
    }
}

impl std::error::Error for SolveError {}

/// An integer lexicographic-minimization problem over non-negative
/// variables.
///
/// Constraint rows use the layout `[a_1, …, a_n, c]` meaning
/// `a·x + c >= 0`. See the [crate docs](crate) for an example.
#[derive(Debug, Clone, Default)]
pub struct IlpProblem {
    num_vars: usize,
    ineqs: Vec<Vec<Int>>,
}

impl IlpProblem {
    /// Creates a problem over `num_vars` non-negative integer variables.
    pub fn new(num_vars: usize) -> IlpProblem {
        IlpProblem {
            num_vars,
            ineqs: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of inequality rows added so far (equalities count twice).
    pub fn num_ineqs(&self) -> usize {
        self.ineqs.len()
    }

    /// Adds an inequality `row[0..n]·x + row[n] >= 0`.
    ///
    /// # Panics
    /// Panics if `row.len() != num_vars + 1`.
    pub fn add_ineq(&mut self, row: Vec<Int>) {
        assert_eq!(row.len(), self.num_vars + 1, "constraint width mismatch");
        self.ineqs.push(row);
    }

    /// Adds an equality `row[0..n]·x + row[n] == 0` (as two inequalities).
    ///
    /// # Panics
    /// Panics if `row.len() != num_vars + 1`.
    pub fn add_eq(&mut self, row: Vec<Int>) {
        let neg: Vec<Int> = row.iter().map(|&v| -v).collect();
        self.add_ineq(row);
        self.add_ineq(neg);
    }

    /// The integer lexicographic minimum, or `None` if infeasible.
    ///
    /// # Panics
    /// Panics if the pivot/cut budget is exceeded (see [`try_lexmin`]).
    ///
    /// [`try_lexmin`]: IlpProblem::try_lexmin
    pub fn lexmin(&self) -> Option<Vec<Int>> {
        self.try_lexmin().expect("ilp solve failed")
    }

    /// The integer lexicographic minimum, or `Ok(None)` if infeasible.
    ///
    /// # Errors
    /// Returns [`SolveError`] if the pivot/cut budget is exceeded.
    pub fn try_lexmin(&self) -> Result<Option<Vec<Int>>, SolveError> {
        Tableau::new(self).solve()
    }

    /// Solves this problem once and keeps the optimal basis so later
    /// solves over *this system plus extra rows* can warm-start from it
    /// instead of re-pivoting from scratch (DESIGN.md §11).
    ///
    /// The returned [`WarmBase`] answers
    /// [`lexmin_with`](WarmBase::lexmin_with) queries; each is
    /// bit-identical to a cold [`try_lexmin`](IlpProblem::try_lexmin)
    /// over the combined row set, because the integer lexmin is unique
    /// and the dual simplex's column invariant (lexico-positivity)
    /// survives row addition at optimality.
    ///
    /// # Errors
    /// Returns [`SolveError`] if the pivot/cut budget is exceeded.
    pub fn solve_base(&self) -> Result<WarmBase, SolveError> {
        let mut t = Tableau::new(self);
        let sol = t.run()?;
        Ok(WarmBase {
            tab: sol.is_some().then_some(t),
        })
    }

    /// Whether the problem has any integer solution.
    pub fn is_feasible(&self) -> bool {
        self.lexmin().is_some()
    }

    /// Integer feasibility of `{x free : rows·(x,1) >= 0}` via the standard
    /// split `x = x⁺ − x⁻` into non-negative parts.
    ///
    /// Used by the dependence analyzer, where iteration variables are not
    /// a-priori non-negative.
    pub fn feasible_with_free_vars(num_vars: usize, rows: &[Vec<Int>]) -> bool {
        Self::sample_with_free_vars(num_vars, rows).is_some()
    }

    /// An integer point of `{x free : rows·(x,1) >= 0}`, or `None` when
    /// empty (the split-variable lexmin, mapped back to `x = x⁺ − x⁻`).
    pub fn sample_with_free_vars(num_vars: usize, rows: &[Vec<Int>]) -> Option<Vec<Int>> {
        let mut p = IlpProblem::new(2 * num_vars);
        for r in rows {
            assert_eq!(r.len(), num_vars + 1, "constraint width mismatch");
            let mut split = Vec::with_capacity(2 * num_vars + 1);
            for &a in &r[..num_vars] {
                split.push(a);
                split.push(-a);
            }
            split.push(r[num_vars]);
            p.add_ineq(split);
        }
        let sol = p.lexmin()?;
        Some((0..num_vars).map(|i| sol[2 * i] - sol[2 * i + 1]).collect())
    }
}

/// A solved simplex basis kept alive for warm-started lexmin queries.
///
/// Produced by [`IlpProblem::solve_base`]. Each
/// [`lexmin_with`](WarmBase::lexmin_with) call clones the optimal
/// dictionary, expresses the extra constraint rows over its current
/// non-basic columns, and continues the violated-row loop — typically a
/// handful of pivots instead of a full re-solve. An infeasible base
/// short-circuits every extension (a superset of an empty system is
/// empty).
pub struct WarmBase {
    /// `None` when the base system itself is infeasible.
    tab: Option<Tableau>,
}

impl WarmBase {
    /// Whether the base system is feasible (extensions may still be
    /// infeasible).
    pub fn base_feasible(&self) -> bool {
        self.tab.is_some()
    }

    /// The integer lexmin of the base system plus `extra` rows (each
    /// `row[0..n]·x + row[n] >= 0` over the base's variables), or
    /// `Ok(None)` if infeasible.
    ///
    /// Counts as one `ilp.solves` like a cold solve, so solver counters
    /// stay comparable across warm and cold configurations.
    ///
    /// # Errors
    /// Returns [`SolveError`] if the pivot/cut budget is exceeded.
    ///
    /// # Panics
    /// Panics if an extra row's width does not match the base problem.
    pub fn lexmin_with(&self, extra: &[Vec<Int>]) -> Result<Option<Vec<Int>>, SolveError> {
        let Some(base) = &self.tab else {
            counters::ILP_SOLVES.bump();
            counters::ILP_INFEASIBLE.bump();
            return Ok(None);
        };
        let mut t = base.clone();
        for row in extra {
            t.add_constraint_row(row);
        }
        t.run()
    }
}

const MAX_PIVOTS: usize = 200_000;
const MAX_CUTS: usize = 5_000;

#[derive(Clone)]
struct Tableau {
    /// Objective prefix length (`x` variables reported to the caller).
    n: usize,
    /// `rows[v]` expresses variable `v` over `[1 | columns]`.
    rows: Vec<Vec<Ratio>>,
    /// `cols[j]` is the variable id labeling column `j`.
    cols: Vec<usize>,
}

impl Tableau {
    fn new(p: &IlpProblem) -> Tableau {
        let n = p.num_vars;
        let width = n + 1;
        let mut rows = Vec::with_capacity(n + p.ineqs.len());
        // Objective variables: initially non-basic, unit rows.
        for i in 0..n {
            let mut r = vec![Ratio::ZERO; width];
            r[1 + i] = Ratio::ONE;
            rows.push(r);
        }
        // One slack row per constraint.
        for c in &p.ineqs {
            let mut r = vec![Ratio::ZERO; width];
            r[0] = Ratio::from(c[n]);
            for i in 0..n {
                r[1 + i] = Ratio::from(c[i]);
            }
            rows.push(r);
        }
        Tableau {
            n,
            rows,
            cols: (0..n).collect(),
        }
    }

    fn solve(mut self) -> Result<Option<Vec<Int>>, SolveError> {
        self.run()
    }

    /// Drives the dictionary to an integral lexmin (or infeasibility),
    /// leaving the final basis in place for warm-started reuse.
    fn run(&mut self) -> Result<Option<Vec<Int>>, SolveError> {
        let mut pivots = 0;
        let mut cuts = 0;
        let result = self.solve_inner(&mut pivots, &mut cuts);
        // Flush per-solve work into the observability registry once, not
        // per pivot: the hot loop stays free of atomics.
        counters::ILP_SOLVES.bump();
        counters::ILP_PIVOTS.add(pivots as u64);
        counters::ILP_CUTS.add(cuts as u64);
        if matches!(result, Ok(None)) {
            counters::ILP_INFEASIBLE.bump();
        }
        result
    }

    /// Appends the constraint `c[0..n]·x + c[n] >= 0` to a dictionary
    /// that may already have pivoted: the new slack's row is the
    /// constraint expressed over the *current* non-basic columns,
    /// `c[n]·e₀ + Σ c[i]·rows[i]` (row `i` expresses objective variable
    /// `i` in the current basis). Existing columns keep their first
    /// nonzero entry, so lexico-positivity — the anti-cycling and
    /// lexmin-correctness invariant — is preserved.
    fn add_constraint_row(&mut self, c: &[Int]) {
        assert_eq!(c.len(), self.n + 1, "constraint width mismatch");
        let width = 1 + self.cols.len();
        let mut r = vec![Ratio::ZERO; width];
        r[0] = Ratio::from(c[self.n]);
        for (i, &a) in c[..self.n].iter().enumerate() {
            if a == 0 {
                continue;
            }
            let a = Ratio::from(a);
            for (cell, &x) in r.iter_mut().zip(&self.rows[i]) {
                *cell += a * x;
            }
        }
        self.rows.push(r);
    }

    fn solve_inner(
        &mut self,
        pivots: &mut usize,
        cuts: &mut usize,
    ) -> Result<Option<Vec<Int>>, SolveError> {
        loop {
            // Find a violated row (negative value at the current vertex).
            match (0..self.rows.len()).find(|&v| self.rows[v][0].signum() < 0) {
                Some(r) => {
                    let Some(j) = self.pick_column(r) else {
                        return Ok(None); // no way to repair: infeasible
                    };
                    self.pivot(r, j);
                    *pivots += 1;
                    if *pivots > MAX_PIVOTS {
                        return Err(SolveError {
                            pivots: *pivots,
                            cuts: *cuts,
                        });
                    }
                }
                None => {
                    // Rational lexmin reached. Integral?
                    match (0..self.n).find(|&v| !self.rows[v][0].is_integer()) {
                        None => {
                            return Ok(Some(
                                (0..self.n).map(|v| self.rows[v][0].numer()).collect(),
                            ));
                        }
                        Some(v) => {
                            self.add_gomory_cut(v);
                            *cuts += 1;
                            if *cuts > MAX_CUTS {
                                return Err(SolveError {
                                    pivots: *pivots,
                                    cuts: *cuts,
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    /// Lexicographic dual-simplex column choice for violated row `r`.
    fn pick_column(&self, r: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for j in 0..self.cols.len() {
            let a = self.rows[r][1 + j];
            if a.signum() <= 0 {
                continue;
            }
            match best {
                None => best = Some(j),
                Some(b) => {
                    if self.lex_ratio_less(j, a, b, self.rows[r][1 + b]) {
                        best = Some(j);
                    }
                }
            }
        }
        best
    }

    /// Whether column `j` scaled by `1/aj` is lexicographically smaller than
    /// column `b` scaled by `1/ab` (rows compared in variable-id order).
    fn lex_ratio_less(&self, j: usize, aj: Ratio, b: usize, ab: Ratio) -> bool {
        for v in 0..self.rows.len() {
            let lhs = self.rows[v][1 + j] / aj;
            let rhs = self.rows[v][1 + b] / ab;
            if lhs != rhs {
                return lhs < rhs;
            }
        }
        false
    }

    /// Pivot: the variable of row `r` leaves the basis (becomes column `j`'s
    /// label), the variable labeling column `j` enters.
    fn pivot(&mut self, r: usize, j: usize) {
        let entering = self.cols[j];
        let a = self.rows[r][1 + j];
        debug_assert!(a.signum() > 0);
        // Express the entering variable from row r:
        //   v_r = c0 + a * y_j + Σ c_k y_k
        //   y_j = (v_r - c0 - Σ c_k y_k) / a
        let old = self.rows[r].clone();
        let inv = a.recip();
        let width = old.len();
        let mut expr = vec![Ratio::ZERO; width];
        expr[0] = -old[0] * inv;
        for k in 0..width - 1 {
            if k == j {
                expr[1 + k] = inv; // coefficient of v_r in the new basis
            } else {
                expr[1 + k] = -old[1 + k] * inv;
            }
        }
        // Substitute into every row: the coefficient that multiplied y_j now
        // multiplies `expr` (column j is relabeled to v_r).
        for v in 0..self.rows.len() {
            let coeff = self.rows[v][1 + j];
            if coeff.is_zero() {
                continue;
            }
            self.rows[v][1 + j] = Ratio::ZERO;
            for (cell, &e) in self.rows[v].iter_mut().zip(&expr) {
                *cell += coeff * e;
            }
        }
        // The leaving variable v_r is now non-basic: unit row on column j.
        let mut unit = vec![Ratio::ZERO; width];
        unit[1 + j] = Ratio::ONE;
        // (entering variable's row was updated by the substitution loop above,
        // because its old row was the unit vector on column j.)
        let _ = entering;
        self.rows[r] = unit;
        self.cols[j] = r;
    }

    /// Adds a Gomory–Chvátal cut derived from basic row `v` (fractional
    /// constant): `Σ frac(c_k)·y_k − (1 − frac(c0)) >= 0`.
    fn add_gomory_cut(&mut self, v: usize) {
        let width = self.rows[v].len();
        let mut cut = vec![Ratio::ZERO; width];
        cut[0] = self.rows[v][0].fract() - Ratio::ONE;
        for (c, x) in cut[1..].iter_mut().zip(&self.rows[v][1..]) {
            *c = x.fract();
        }
        debug_assert!(cut[0].signum() < 0);
        self.rows.push(cut);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tableau_initial_shape() {
        let mut p = IlpProblem::new(2);
        p.add_ineq(vec![1, -1, 4]);
        let t = Tableau::new(&p);
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.cols, vec![0, 1]);
        assert_eq!(t.rows[2][0], Ratio::from(4));
    }

    #[test]
    fn trivially_feasible_at_origin() {
        let mut p = IlpProblem::new(3);
        p.add_ineq(vec![1, 1, 1, 0]); // x+y+z >= 0: origin works
        assert_eq!(p.lexmin(), Some(vec![0, 0, 0]));
    }

    #[test]
    fn lexmin_prefers_later_variables() {
        // x + 2y >= 5: lexmin picks x=0 then y=3 (integer ceil of 5/2).
        let mut p = IlpProblem::new(2);
        p.add_ineq(vec![1, 2, -5]);
        assert_eq!(p.lexmin(), Some(vec![0, 3]));
    }

    #[test]
    fn knapsack_like_cut_chain() {
        // 3x + 3y = 7 has no integer solution.
        let mut p = IlpProblem::new(2);
        p.add_eq(vec![3, 3, -7]);
        assert_eq!(p.lexmin(), None);
        // 3x + 3y = 6 does: (0, 2).
        let mut q = IlpProblem::new(2);
        q.add_eq(vec![3, 3, -6]);
        assert_eq!(q.lexmin(), Some(vec![0, 2]));
    }
}
