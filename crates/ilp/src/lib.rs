//! Exact integer lexicographic minimization — the `pluto-rs` stand-in for
//! PipLib.
//!
//! The Pluto algorithm (PLDI'08, Sec. 3.2) casts transformation search as
//!
//! > `minimize≺ {u1, u2, …, uk, w, …, ci's, …}`  (Eq. 5)
//!
//! a *lexicographic* minimum of a non-negative integer vector subject to
//! linear inequalities. The paper solves this with PIP; this crate
//! implements the same algorithm family from scratch:
//!
//! * a lexicographic dual simplex over exact rationals whose
//!   pivot rule keeps every tableau column lexico-positive, so the first
//!   all-feasible dictionary read off is the *rational* lexmin;
//! * Gomory–Chvátal cuts generated from the first fractional objective row,
//!   iterated until the lexmin is integral (Gomory's lexicographic method,
//!   which is finitely terminating).
//!
//! All problem variables are constrained non-negative, exactly matching
//! Pluto's practical choice (Sec. 4.2) that avoids combinatorial explosion.
//! A helper entry point splits free variables into differences of
//! non-negative ones for general integer feasibility testing (used by the
//! dependence analyzer).
//!
//! # Examples
//!
//! ```
//! use pluto_ilp::IlpProblem;
//! // minimize (x, y) lexicographically s.t. x + y >= 3, x <= 2, x,y >= 0
//! let mut p = IlpProblem::new(2);
//! p.add_ineq(vec![1, 1, -3]); // x + y - 3 >= 0
//! p.add_ineq(vec![-1, 0, 2]); // -x + 2 >= 0
//! assert_eq!(p.lexmin(), Some(vec![0, 3]));
//! ```
//!
//! DESIGN.md §3.4 explains the PipLib substitution; §5 maps the crate; counters it feeds are in PERFORMANCE.md §4.

// The solver's public surface is the PIP stand-in contract; keep
// every item documented.
#![deny(missing_docs)]
mod solver;

pub use solver::{IlpProblem, SolveError, WarmBase};

#[cfg(test)]
mod brute {
    //! Brute-force reference used by the test-suite only.
    use pluto_linalg::Int;

    /// Enumerates the lexmin of `{x : rows·(x,1) >= 0, 0 <= x_i <= bound}`.
    pub fn lexmin_boxed(num_vars: usize, rows: &[Vec<Int>], bound: Int) -> Option<Vec<Int>> {
        let mut best: Option<Vec<Int>> = None;
        let mut x = vec![0; num_vars];
        loop {
            let ok = rows.iter().all(|r| {
                let mut v = r[num_vars];
                for i in 0..num_vars {
                    v += r[i] * x[i];
                }
                v >= 0
            });
            if ok {
                match &best {
                    None => best = Some(x.clone()),
                    Some(b) if x < *b => best = Some(x.clone()),
                    _ => {}
                }
            }
            // Odometer increment.
            let mut i = num_vars;
            loop {
                if i == 0 {
                    return best;
                }
                i -= 1;
                if x[i] < bound {
                    x[i] += 1;
                    for v in x[i + 1..].iter_mut() {
                        *v = 0;
                    }
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use testkit::Rng;

    #[test]
    fn simple_lexmin() {
        let mut p = IlpProblem::new(2);
        p.add_ineq(vec![1, 1, -3]);
        assert_eq!(p.lexmin(), Some(vec![0, 3]));
    }

    #[test]
    fn forces_first_var_positive() {
        // x >= 1 (so lexmin starts at 1), then x + y >= 4 forces y = 3.
        let mut p = IlpProblem::new(2);
        p.add_ineq(vec![1, 0, -1]);
        p.add_ineq(vec![1, 1, -4]);
        assert_eq!(p.lexmin(), Some(vec![1, 3]));
    }

    #[test]
    fn equality_support() {
        let mut p = IlpProblem::new(2);
        p.add_eq(vec![1, 1, -5]); // x + y = 5
        p.add_ineq(vec![-1, 0, 3]); // x <= 3
        p.add_ineq(vec![1, -1, 1]); // y <= x + 1
        assert_eq!(p.lexmin(), Some(vec![2, 3]));
    }

    #[test]
    fn infeasible_detected() {
        let mut p = IlpProblem::new(1);
        p.add_ineq(vec![1, -5]); // x >= 5
        p.add_ineq(vec![-1, 3]); // x <= 3
        assert_eq!(p.lexmin(), None);
        assert!(!p.is_feasible());
    }

    #[test]
    fn integrality_needs_cut() {
        // 2x >= 1 over integers => x >= 1 (rational lexmin x = 1/2).
        let mut p = IlpProblem::new(1);
        p.add_ineq(vec![2, -1]);
        assert_eq!(p.lexmin(), Some(vec![1]));
    }

    #[test]
    fn integer_empty_but_rational_nonempty() {
        // 2x = 1 has rational solution x=1/2 but no integer one.
        let mut p = IlpProblem::new(1);
        p.add_eq(vec![2, -1]);
        assert_eq!(p.lexmin(), None);
    }

    #[test]
    fn free_variable_feasibility() {
        // x <= -2 with x free: feasible only if free vars supported.
        let rows = vec![vec![-1, -2]]; // -x - 2 >= 0
        assert!(IlpProblem::feasible_with_free_vars(1, &rows));
        // x >= 1 and x <= -1: infeasible.
        let rows2 = vec![vec![1, -1], vec![-1, -1]];
        assert!(!IlpProblem::feasible_with_free_vars(1, &rows2));
    }

    #[test]
    fn warm_start_matches_cold_solve() {
        // A WarmBase extended with rows must give exactly the lexmin a
        // cold solve over the union gives — on feasible, integer-cut,
        // and infeasible extensions alike.
        let mut rng = Rng::new(0x5EED_BA5E);
        for case in 0..300 {
            let n = rng.range_usize(1, 4);
            let base_rows = rng.range_usize(1, 4);
            let extra_rows = rng.range_usize(1, 3);
            let row = |rng: &mut Rng| -> Vec<i128> {
                let mut r: Vec<i128> = (0..n).map(|_| rng.range_i64(-3, 3) as i128).collect();
                r.push(rng.range_i64(-6, 6) as i128);
                r
            };
            let mut base = IlpProblem::new(n);
            for _ in 0..base_rows {
                base.add_ineq(row(&mut rng));
            }
            let extra: Vec<Vec<i128>> = (0..extra_rows).map(|_| row(&mut rng)).collect();
            let mut cold = base.clone();
            for e in &extra {
                cold.add_ineq(e.clone());
            }
            let warm = base.solve_base().expect("base within budget");
            assert_eq!(
                warm.lexmin_with(&extra).expect("warm within budget"),
                cold.try_lexmin().expect("cold within budget"),
                "case {case}: base {base:?} extra {extra:?}"
            );
        }
    }

    #[test]
    fn infeasible_base_short_circuits_extensions() {
        let mut p = IlpProblem::new(1);
        p.add_ineq(vec![1, -5]); // x >= 5
        p.add_ineq(vec![-1, 3]); // x <= 3
        let warm = p.solve_base().unwrap();
        assert!(!warm.base_feasible());
        assert_eq!(warm.lexmin_with(&[vec![1, 0]]), Ok(None));
    }

    #[test]
    fn warm_start_reuses_the_basis_across_objectives() {
        // The band-base pattern: one base, several per-row extensions.
        let mut base = IlpProblem::new(3);
        base.add_ineq(vec![1, 1, 1, -6]); // x + y + z >= 6
        base.add_ineq(vec![-1, 0, 0, 4]); // x <= 4
        let warm = base.solve_base().unwrap();
        assert!(warm.base_feasible());
        // Extension 1: force x >= 2.
        assert_eq!(
            warm.lexmin_with(&[vec![1, 0, 0, -2]]),
            Ok(Some(vec![2, 0, 4]))
        );
        // Extension 2 (same base, different rows): y = 0 and z <= 3.
        assert_eq!(
            warm.lexmin_with(&[vec![0, -1, 0, 0], vec![0, 0, -1, 3]]),
            Ok(Some(vec![3, 0, 3]))
        );
        // Extension 3: contradictory rows stay infeasible.
        assert_eq!(
            warm.lexmin_with(&[vec![0, 1, 0, -9], vec![0, -1, 0, 2]]),
            Ok(None)
        );
    }

    #[test]
    fn randomized_against_brute_force() {
        let mut rng = Rng::new(0xB0DDE5);
        for case in 0..300 {
            let n = rng.range_usize(1, 3);
            let m = rng.range_usize(1, 4);
            let mut rows: Vec<Vec<i128>> = Vec::new();
            for _ in 0..m {
                let mut r: Vec<i128> = (0..n).map(|_| rng.range_i64(-3, 3) as i128).collect();
                r.push(rng.range_i64(-6, 6) as i128);
                rows.push(r);
            }
            // Box the problem so brute force terminates: x_i <= 7.
            let mut p = IlpProblem::new(n);
            let mut all = rows.clone();
            for r in &rows {
                p.add_ineq(r.clone());
            }
            for i in 0..n {
                let mut r = vec![0; n + 1];
                r[i] = -1;
                r[n] = 7;
                p.add_ineq(r.clone());
                all.push(r);
            }
            let got = p.lexmin();
            let want = brute::lexmin_boxed(n, &all, 7);
            assert_eq!(got, want, "case {case}: rows {rows:?}");
        }
    }
}
