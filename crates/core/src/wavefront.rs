//! Tile-space wavefronting for pipelined parallelism (Algorithm 2) and the
//! intra-tile vectorization reorder (Sec. 5.4).

use crate::types::{Band, Parallelism, RowKind, Transformation};
use pluto_obs::decision::{self, DecisionEvent};

/// Applies the unimodular tile-space wavefront of Algorithm 2 to extract
/// `m` degrees of pipelined parallelism from a (tile) band:
/// `φT¹ ← φT¹ + φT² + … + φT^{m+1}`, after which rows 2..=m+1 of the band
/// are parallel (the sum row carries every dependence the band carries).
///
/// The transformation touches only the tile-space rows, so tile shapes —
/// and with them the communication/locality properties the cost function
/// optimized — are preserved; unimodularity keeps the generated code free
/// of modulos (paper Sec. 5.3).
///
/// # Panics
/// Panics if `m + 1 > band.width` or `m == 0`.
pub fn wavefront(t: &mut Transformation, band: Band, m: usize) {
    assert!(m >= 1, "wavefront needs at least one degree");
    assert!(
        m < band.width,
        "wavefront of {m} degrees needs a band of width >= {}",
        m + 1
    );
    let s = band.start;
    for st in t.stmts.iter_mut() {
        let mut sum = st.rows[s].clone();
        for j in 1..=m {
            for (acc, &x) in sum.iter_mut().zip(&st.rows[s + j]) {
                *acc += x;
            }
        }
        st.rows[s] = sum;
    }
    t.rows[s].skewed = true;
    if decision::enabled() {
        decision::record(DecisionEvent::Wavefront { row: s, degrees: m });
    }
    t.rows[s].par = Parallelism::Sequential;
    for j in 1..=m {
        t.rows[s + j].par = Parallelism::Parallel;
    }
    for j in m + 1..band.width {
        t.rows[s + j].par = Parallelism::Sequential;
    }
    for sp in t.stmt_par.iter_mut() {
        sp[s] = Parallelism::Sequential;
        for j in 1..=m {
            sp[s + j] = Parallelism::Parallel;
        }
        for j in m + 1..band.width {
            sp[s + j] = Parallelism::Sequential;
        }
    }
}

/// Intra-tile reordering for vectorization (Sec. 5.4): within the point
/// (intra-tile) band, moves the *last parallel* loop row to the innermost
/// position of the band and marks it [`Parallelism::Vector`]. Returns the
/// `(original, final)` row indices of the vector loop (equal when it was
/// already innermost), or `None` if the band has no parallel row. Rows
/// strictly between the two indices shift down by one — callers holding
/// row indices (e.g. a satisfaction map) must remap accordingly.
///
/// Rows of a permutable band may be freely reordered, so tile shapes and
/// the tile-space schedule are unaffected.
pub fn reorder_for_vectorization(t: &mut Transformation, band: Band) -> Option<(usize, usize)> {
    let rows: Vec<usize> = band.rows().collect();
    let vec_row = *rows
        .iter()
        .rfind(|&&r| t.rows[r].kind == RowKind::Loop && t.rows[r].par == Parallelism::Parallel)?;
    let last = *rows.last().expect("non-empty band");
    if vec_row != last {
        for st in t.stmts.iter_mut() {
            let row = st.rows.remove(vec_row);
            st.rows.insert(last, row);
        }
        let info = t.rows.remove(vec_row);
        t.rows.insert(last, info);
        for sp in t.stmt_par.iter_mut() {
            let p = sp.remove(vec_row);
            sp.insert(last, p);
        }
        if decision::enabled() {
            decision::record(DecisionEvent::RowMoved {
                from: vec_row,
                to: last,
            });
        }
    }
    t.rows[last].par = Parallelism::Vector;
    for sp in t.stmt_par.iter_mut() {
        if sp[last] != Parallelism::Sequential {
            sp[last] = Parallelism::Vector;
        }
    }
    Some((vec_row, last))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{RowInfo, StmtScattering};
    use pluto_poly::ConstraintSet;

    fn two_row_transform() -> Transformation {
        // One statement, rows c1 = i, c2 = j over [i, j, 1] (no params).
        let rows = vec![RowInfo::loop_row(), RowInfo::loop_row()];
        let stmt_par = Transformation::uniform_stmt_par(&rows, 1);
        Transformation {
            stmts: vec![StmtScattering {
                rows: vec![vec![1, 0, 0], vec![0, 1, 0]],
            }],
            domains: vec![ConstraintSet::new(2)],
            dim_names: vec![vec!["i".into(), "j".into()]],
            num_orig_dims: vec![2],
            rows,
            stmt_par,
            bands: vec![Band { start: 0, width: 2 }],
        }
    }

    #[test]
    fn wavefront_sums_rows() {
        let mut t = two_row_transform();
        let band = t.bands[0];
        wavefront(&mut t, band, 1);
        assert_eq!(t.stmts[0].rows[0], vec![1, 1, 0]);
        assert_eq!(t.stmts[0].rows[1], vec![0, 1, 0]);
        assert_eq!(t.rows[0].par, Parallelism::Sequential);
        assert_eq!(t.rows[1].par, Parallelism::Parallel);
        assert!(t.rows[0].skewed && !t.rows[1].skewed);
    }

    #[test]
    #[should_panic(expected = "band of width")]
    fn wavefront_width_checked() {
        let mut t = two_row_transform();
        let band = t.bands[0];
        wavefront(&mut t, band, 2);
    }

    #[test]
    fn vector_reorder_moves_parallel_innermost() {
        let mut t = two_row_transform();
        t.rows[0].par = Parallelism::Parallel; // outer parallel, inner seq
        t.stmt_par[0][0] = Parallelism::Parallel;
        let band = t.bands[0];
        let v = reorder_for_vectorization(&mut t, band).unwrap();
        assert_eq!(v, (0, 1));
        // Row order swapped: former row 0 (i) now innermost.
        assert_eq!(t.stmts[0].rows[1], vec![1, 0, 0]);
        assert_eq!(t.rows[1].par, Parallelism::Vector);
    }

    #[test]
    fn vector_reorder_none_when_all_sequential() {
        let mut t = two_row_transform();
        let band = t.bands[0];
        assert_eq!(reorder_for_vectorization(&mut t, band), None);
    }
}
