//! Feautrier-style multidimensional scheduling — the automatic version of
//! the paper's "scheduling-based" baseline (Sec. 7 / Sec. 8).
//!
//! Feautrier's greedy algorithm finds, at each level, a statement-wise
//! affine schedule that *strictly satisfies as many unsatisfied
//! dependences as possible* (and weakly respects the rest), repeating
//! until every dependence is satisfied. Unlike the Pluto objective it
//! neither bounds dependence distances nor aims for permutable bands —
//! exactly the contrast the paper draws: "pure scheduling-based approaches
//! are geared towards finding minimum latency schedules or maximum
//! fine-grained parallelism, as opposed to tileability".
//!
//! The implementation reuses the Farkas machinery: per dependence `e` an
//! indicator `ε_e ∈ {0, 1}` is introduced with the constraint
//! `δ_e(s, t) >= ε_e` on the dependence polyhedron, and the lexmin
//! objective minimizes `Σ (1 − ε_e)` first (i.e. maximizes the number of
//! strictly satisfied dependences), then the usual `u, w, c` tail to keep
//! coefficients small.

use crate::farkas::{delta_form, farkas_eliminate, satisfies_strictly, VarMap};
use crate::search::{PlutoError, SearchResult};
use crate::types::{Parallelism, RowInfo, RowKind, StmtScattering, Transformation};
use pluto_ilp::IlpProblem;
use pluto_ir::{Dependence, Program};
use pluto_linalg::Int;
use pluto_obs::decision::{self, DecisionEvent};

/// Computes a Feautrier-style multidimensional schedule: one strictly
/// ordering row per level until all legality dependences are satisfied,
/// followed by the statements' remaining original iterators as inner
/// (parallel where possible) dimensions.
///
/// Returns a [`SearchResult`] so the usual code generation applies. Input
/// dependences are ignored (scheduling approaches predate the Sec. 4.1
/// treatment).
///
/// # Errors
/// Returns [`PlutoError::NoSolution`] if no progress can be made (should
/// not happen for valid dependence graphs — Feautrier's theorem guarantees
/// schedules exist).
pub fn feautrier_schedule(prog: &Program, deps: &[Dependence]) -> Result<SearchResult, PlutoError> {
    let vm = VarMap::new(prog);
    let nstmts = prog.stmts.len();
    if decision::enabled() {
        decision::record(DecisionEvent::FeautrierFallback { statements: nstmts });
    }
    let legality: Vec<usize> = (0..deps.len())
        .filter(|&i| deps[i].kind.constrains_legality())
        .collect();
    let mut satisfied: Vec<bool> = vec![false; deps.len()];
    let mut rows: Vec<Vec<Vec<Int>>> = vec![Vec::new(); nstmts];
    let mut row_infos: Vec<RowInfo> = Vec::new();
    let np = prog.num_params();

    let mut guard = 0;
    while legality.iter().any(|&i| !satisfied[i]) {
        guard += 1;
        if guard > 16 {
            return Err(PlutoError::TooManyRows);
        }
        let live: Vec<usize> = legality
            .iter()
            .copied()
            .filter(|&i| !satisfied[i])
            .collect();
        // Unknown layout: [live ε's..., u, w, c's...]; lexmin minimizes the
        // (1 − ε) sum via the complement variables ζ_e = 1 − ε_e placed
        // first.
        let ne = live.len();
        let total = ne + vm.total();
        let mut ilp = IlpProblem::new(total);
        for (k, &di) in live.iter().enumerate() {
            let dep = &deps[di];
            // δ − ε >= 0 with ε = 1 − ζ_k:  δ + ζ_k − 1 >= 0.
            let mut form = delta_form(dep, prog, &vm);
            // Shift every unknown column right by ne and add ζ_k.
            let mut shifted: Vec<Vec<Int>> = form
                .iter()
                .map(|row| {
                    let mut r = vec![0; total + 1];
                    r[ne..ne + vm.total()].copy_from_slice(&row[..vm.total()]);
                    r[total] = row[vm.total()];
                    r
                })
                .collect();
            let crow = shifted.last_mut().expect("constant row");
            crow[k] += 1; // + ζ_k
            crow[total] -= 1; // − 1
            form = shifted;
            let sys = farkas_eliminate(&dep.poly, &form, total);
            for e in sys.eqs() {
                ilp.add_eq(e.clone());
            }
            for i in sys.ineqs() {
                ilp.add_ineq(i.clone());
            }
            // 0 <= ζ <= 1.
            let mut ub = vec![0; total + 1];
            ub[k] = -1;
            ub[total] = 1;
            ilp.add_ineq(ub);
        }
        // Avoid the zero schedule: Σ c_i >= 1 per statement (coefficients
        // of every statement, like the Pluto search).
        for s in 0..nstmts {
            let m = vm.num_iters(s);
            if m == 0 {
                continue;
            }
            let mut sum = vec![0; total + 1];
            for i in 0..m {
                sum[ne + vm.c(s, i)] = 1;
            }
            sum[total] = -1;
            ilp.add_ineq(sum);
        }
        let Some(sol) = ilp.try_lexmin().ok().flatten() else {
            return Err(PlutoError::NoSolution {
                at_row: row_infos.len(),
            });
        };
        // Progress check: at least one ζ must be 0 (some dep strictly
        // satisfied), else we are stuck.
        if (0..ne).all(|k| sol[k] >= 1) {
            return Err(PlutoError::NoSolution {
                at_row: row_infos.len(),
            });
        }
        let r = row_infos.len();
        for (s, stmt_rows) in rows.iter_mut().enumerate().take(nstmts) {
            let (coeffs, c0) = vm.stmt_solution(s, &sol[ne..]);
            let mut row = coeffs;
            row.extend(std::iter::repeat_n(0, np));
            row.push(c0);
            stmt_rows.push(row);
        }
        row_infos.push(RowInfo::loop_row());
        let mut newly = Vec::new();
        for &di in &legality {
            if !satisfied[di] {
                let dep = &deps[di];
                if satisfies_strictly(dep, prog, &rows[dep.src][r], &rows[dep.dst][r]) {
                    satisfied[di] = true;
                    newly.push(di);
                }
            }
        }
        if decision::enabled() {
            decision::record(DecisionEvent::FeautrierRow {
                row: r,
                satisfied: newly,
            });
        }
    }

    // Inner dimensions: each statement's original iterators (they carry no
    // dependence once the schedule prefix orders everything, so they are
    // the fine-grained parallel space loops of the scheduling approach).
    let maxd = prog.stmts.iter().map(|s| s.num_iters()).max().unwrap_or(0);
    for j in 0..maxd {
        for (s, stmt) in prog.stmts.iter().enumerate() {
            let m = stmt.num_iters();
            let mut row = vec![0; m + np + 1];
            if j < m {
                row[j] = 1;
            }
            rows[s].push(row);
        }
        row_infos.push(RowInfo {
            kind: RowKind::Loop,
            par: Parallelism::Parallel,
            tile_level: 0,
            skewed: false,
        });
    }
    // Textual-order scalar row for coincident instances.
    let r = row_infos.len();
    for (s, stmt) in prog.stmts.iter().enumerate() {
        let m = stmt.num_iters();
        let mut row = vec![0; m + np + 1];
        row[m + np] = s as Int;
        rows[s].push(row);
    }
    let _ = r;
    row_infos.push(RowInfo::scalar_row());

    let stmt_par = Transformation::uniform_stmt_par(&row_infos, nstmts);
    let transform = Transformation {
        stmts: rows
            .into_iter()
            .map(|r| StmtScattering { rows: r })
            .collect(),
        domains: prog.stmts.iter().map(|s| s.domain.clone()).collect(),
        dim_names: prog.stmts.iter().map(|s| s.iters.clone()).collect(),
        num_orig_dims: prog.stmts.iter().map(|s| s.num_iters()).collect(),
        rows: row_infos,
        stmt_par,
        bands: Vec::new(),
    };
    let satisfied_at = crate::baselines::satisfaction_map(prog, deps, &transform);
    Ok(SearchResult {
        transform,
        satisfied_at,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::validate_legality;
    use pluto_ir::{analyze_dependences, Expr, ProgramBuilder, StatementSpec};

    fn sor() -> Program {
        let mut b = ProgramBuilder::new("sor", &["N"]);
        b.add_context_ineq(vec![1, -4]);
        b.add_array("a", 2);
        b.add_statement(StatementSpec {
            name: "S1".into(),
            iters: vec!["i".into(), "j".into()],
            domain_ineqs: vec![
                vec![1, 0, 0, -1],
                vec![-1, 0, 1, -1],
                vec![0, 1, 0, -1],
                vec![0, -1, 1, -1],
            ],
            beta: vec![0, 0, 0],
            write: ("a".into(), vec![vec![1, 0, 0, 0], vec![0, 1, 0, 0]]),
            reads: vec![
                ("a".into(), vec![vec![1, 0, 0, -1], vec![0, 1, 0, 0]]),
                ("a".into(), vec![vec![1, 0, 0, 0], vec![0, 1, 0, -1]]),
            ],
            body: Expr::Read(0) + Expr::Read(1),
        });
        b.build()
    }

    #[test]
    fn sor_gets_one_dimensional_schedule() {
        // δ for both uniform deps is strictly positive under θ = i + j:
        // Feautrier satisfies everything with a single schedule row.
        let prog = sor();
        let deps = analyze_dependences(&prog, false);
        let res = feautrier_schedule(&prog, &deps).unwrap();
        let t = &res.transform;
        assert!(validate_legality(&prog, &deps, t).is_empty());
        // Row 0 is the schedule: for SOR it is i + j.
        assert_eq!(&t.stmts[0].rows[0][..2], &[1, 1]);
        // The inner space rows are marked parallel (fine-grained).
        assert_eq!(t.rows[1].par, Parallelism::Parallel);
    }

    #[test]
    fn schedule_is_legal_on_imperfect_nest() {
        // Jacobi-like imperfect nest: multidimensional case.
        let mut b = ProgramBuilder::new("jac", &["T", "N"]);
        b.add_context_ineq(vec![1, 0, -1]);
        b.add_context_ineq(vec![0, 1, -5]);
        b.add_array("a", 1);
        b.add_array("b", 1);
        let dom = vec![
            vec![1, 0, 0, 0, 0],
            vec![-1, 0, 1, 0, -1],
            vec![0, 1, 0, 0, -2],
            vec![0, -1, 0, 1, -2],
        ];
        b.add_statement(StatementSpec {
            name: "S1".into(),
            iters: vec!["t".into(), "i".into()],
            domain_ineqs: dom.clone(),
            beta: vec![0, 0, 0],
            write: ("b".into(), vec![vec![0, 1, 0, 0, 0]]),
            reads: vec![
                ("a".into(), vec![vec![0, 1, 0, 0, -1]]),
                ("a".into(), vec![vec![0, 1, 0, 0, 1]]),
            ],
            body: Expr::Read(0) + Expr::Read(1),
        });
        b.add_statement(StatementSpec {
            name: "S2".into(),
            iters: vec!["t".into(), "j".into()],
            domain_ineqs: dom,
            beta: vec![0, 1, 0],
            write: ("a".into(), vec![vec![0, 1, 0, 0, 0]]),
            reads: vec![("b".into(), vec![vec![0, 1, 0, 0, 0]])],
            body: Expr::Read(0),
        });
        let prog = b.build();
        let deps = analyze_dependences(&prog, false);
        let res = feautrier_schedule(&prog, &deps).unwrap();
        assert!(
            validate_legality(&prog, &deps, &res.transform).is_empty(),
            "{}",
            res.transform.display(&prog)
        );
    }
}
