//! The Pluto automatic transformation framework (PLDI'08).
//!
//! This crate is the paper's primary contribution, reimplemented in Rust:
//! given a polyhedral [`Program`](pluto_ir::Program) and its dependence
//! polyhedra, it finds statement-wise affine transformations that make
//! rectangular tiling legal while minimizing an upper bound on dependence
//! distances (communication volume / reuse distance), then tiles the
//! domains (Algorithm 1) and extracts coarse-grained pipelined parallelism
//! with a tile-space wavefront (Algorithm 2).
//!
//! Pipeline:
//!
//! 1. [`find_transformation`] — the ILP-driven hyperplane search
//!    (Sec. 3.2): Farkas-eliminated legality (Eq. 2) + bounding (Eq. 4)
//!    constraints, lexmin objective (Eq. 5), orthogonal-subspace
//!    independence (Eq. 6), permutable-band detection and DDG cutting.
//! 2. [`tile_band`] — supernode-based tiling of a permutable band
//!    (Algorithm 1), applicable repeatedly for multi-level tiling.
//! 3. [`wavefront`] — the tile-space unimodular wavefront (Algorithm 2)
//!    when the outer tile loop of a band is not synchronization-free.
//! 4. [`reorder_for_vectorization`] — intra-tile post-pass moving an inner
//!    parallel loop innermost (Sec. 5.4).
//!
//! [`Optimizer`] chains all of the above with sensible defaults.
//!
//! # Examples
//!
//! ```
//! use pluto::{find_transformation, PlutoOptions};
//! use pluto_ir::{analyze_dependences, Expr, ProgramBuilder, StatementSpec};
//!
//! // for i in 1..N { a[i] = a[i-1]; }
//! let mut b = ProgramBuilder::new("scan", &["N"]);
//! b.add_context_ineq(vec![1, -3]);
//! b.add_array("a", 1);
//! b.add_statement(StatementSpec {
//!     name: "S1".into(),
//!     iters: vec!["i".into()],
//!     domain_ineqs: vec![vec![1, 0, -1], vec![-1, 1, -1]],
//!     beta: vec![0, 0],
//!     write: ("a".into(), vec![vec![1, 0, 0]]),
//!     reads: vec![("a".into(), vec![vec![1, 0, -1]])],
//!     body: Expr::Read(0),
//! });
//! let prog = b.build();
//! let deps = analyze_dependences(&prog, true);
//! let result = find_transformation(&prog, &deps, &PlutoOptions::default())?;
//! assert_eq!(result.transform.num_rows(), 1);
//! # Ok::<(), pluto::PlutoError>(())
//! ```
//!
//! DESIGN.md §6 ("Transformation search", "Tiling", "Wavefront") is the algorithmic specification this crate implements.

// The optimizer's public API is what README/DESIGN.md document;
// the docs gate keeps them honest (extended here from poly/ilp/obs).
#![deny(missing_docs)]
pub mod baselines;
mod explain;
mod farkas;
mod feautrier;
mod pipeline;
mod search;
mod tiling;
mod types;
mod wavefront;

pub use explain::{explain, explain_json};
pub use farkas::{
    bounding_form, carried_at, delta_form, distance_row, farkas_eliminate, respects_weakly,
    satisfies_strictly, VarMap,
};
pub use feautrier::feautrier_schedule;
pub use pipeline::{Optimized, Optimizer};
pub use search::{find_transformation, FusionPolicy, PlutoError, PlutoOptions, SearchResult};
pub use tiling::tile_band;
pub use types::{Band, Parallelism, RowInfo, RowKind, StmtScattering, Transformation};
pub use wavefront::{reorder_for_vectorization, wavefront};
