//! Forced transformations and legality validation.
//!
//! The paper's experimental comparison (Sec. 7) runs *previous approaches'
//! transformations through Pluto's own code generator*: "the input code was
//! run through our system and the transformations were forced to be what
//! those approaches would have generated". This module provides exactly
//! that mechanism — build a [`Transformation`] from hand-specified
//! statement-wise rows (e.g. Lim/Lam affine partitions or Feautrier
//! schedules with Griebl FCO allocations), validate it against the
//! dependences, and obtain the satisfaction bookkeeping needed for tiling
//! and parallel code generation.

use crate::farkas::{distance_row, satisfies_strictly};
use crate::search::SearchResult;
use crate::types::{Band, RowInfo, RowKind, StmtScattering, Transformation};
use pluto_ir::{Dependence, Program};
use pluto_linalg::Int;

/// Builds a transformation from explicit per-statement scattering rows
/// (each over `[iters…, params…, 1]`) with the given row kinds and bands.
///
/// # Panics
/// Panics if row counts differ across statements, widths are wrong, or
/// `kinds.len()` differs from the row count.
pub fn forced_transformation(
    prog: &Program,
    rows_per_stmt: Vec<Vec<Vec<Int>>>,
    kinds: Vec<RowKind>,
    bands: Vec<Band>,
) -> Transformation {
    assert_eq!(
        rows_per_stmt.len(),
        prog.stmts.len(),
        "one row set per statement"
    );
    let nrows = kinds.len();
    let np = prog.num_params();
    for (s, rows) in rows_per_stmt.iter().enumerate() {
        assert_eq!(rows.len(), nrows, "statement {s}: row count mismatch");
        for r in rows {
            assert_eq!(
                r.len(),
                prog.stmts[s].num_iters() + np + 1,
                "statement {s}: row width mismatch"
            );
        }
    }
    let rows: Vec<RowInfo> = kinds
        .into_iter()
        .map(|kind| RowInfo {
            kind,
            ..RowInfo::loop_row()
        })
        .collect();
    let stmt_par = Transformation::uniform_stmt_par(&rows, prog.stmts.len());
    Transformation {
        stmts: rows_per_stmt
            .into_iter()
            .map(|rows| StmtScattering { rows })
            .collect(),
        domains: prog.stmts.iter().map(|s| s.domain.clone()).collect(),
        dim_names: prog.stmts.iter().map(|s| s.iters.clone()).collect(),
        num_orig_dims: prog.stmts.iter().map(|s| s.num_iters()).collect(),
        rows,
        stmt_par,
        bands,
    }
}

/// Wraps a forced transformation as a [`SearchResult`] by computing the
/// strict-satisfaction map, so the tiling/wavefront machinery can be
/// applied to baseline transformations too.
pub fn forced_search_result(
    prog: &Program,
    deps: &[Dependence],
    transform: Transformation,
) -> SearchResult {
    let satisfied_at = satisfaction_map(prog, deps, &transform);
    SearchResult {
        transform,
        satisfied_at,
    }
}

/// For each dependence, the first row that strictly satisfies it
/// (`δ >= 1` everywhere on the dependence polyhedron).
pub fn satisfaction_map(
    prog: &Program,
    deps: &[Dependence],
    t: &Transformation,
) -> Vec<Option<usize>> {
    deps.iter()
        .map(|dep| {
            (0..t.num_rows()).find(|&r| {
                satisfies_strictly(
                    dep,
                    prog,
                    &t.stmts[dep.src].rows[r],
                    &t.stmts[dep.dst].rows[r],
                )
            })
        })
        .collect()
}

/// A legality violation found by [`validate_legality`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Index of the offending dependence.
    pub dep: usize,
    /// Row at which the transformed distance can go negative, or
    /// `num_rows` when two dependent instances map to the same point.
    pub row: usize,
}

/// Exact legality check: every non-input dependence must have a
/// lexicographically positive transformed distance on its whole
/// polyhedron. Returns all violations (empty = legal).
///
/// Used by the property-test suite to verify every transformation the
/// search produces, and to sanity-check hand-forced baselines.
pub fn validate_legality(
    prog: &Program,
    deps: &[Dependence],
    t: &Transformation,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (di, dep) in deps.iter().enumerate() {
        if !dep.kind.constrains_legality() {
            continue;
        }
        // Violated at row r: δ_k == 0 for k < r and δ_r <= −1 reachable.
        for r in 0..t.num_rows() {
            let mut p = dep.poly.clone();
            for k in 0..r {
                p.add_eq(distance_row(
                    dep,
                    prog,
                    &t.stmts[dep.src].rows[k],
                    &t.stmts[dep.dst].rows[k],
                ));
            }
            let mut row = distance_row(
                dep,
                prog,
                &t.stmts[dep.src].rows[r],
                &t.stmts[dep.dst].rows[r],
            );
            let n = row.len();
            for v in row.iter_mut() {
                *v = -*v;
            }
            row[n - 1] -= 1; // −δ − 1 >= 0  <=>  δ <= −1
            p.add_ineq(row);
            if !p.is_empty() {
                out.push(Violation { dep: di, row: r });
            }
        }
        // All-zero distance for dependent (distinct) instances is illegal.
        let mut p = dep.poly.clone();
        for k in 0..t.num_rows() {
            p.add_eq(distance_row(
                dep,
                prog,
                &t.stmts[dep.src].rows[k],
                &t.stmts[dep.dst].rows[k],
            ));
        }
        if !p.is_empty() {
            out.push(Violation {
                dep: di,
                row: t.num_rows(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pluto_ir::{analyze_dependences, Expr, ProgramBuilder, StatementSpec};

    fn scan_program() -> Program {
        let mut b = ProgramBuilder::new("scan", &["N"]);
        b.add_context_ineq(vec![1, -3]);
        b.add_array("a", 1);
        b.add_statement(StatementSpec {
            name: "S1".into(),
            iters: vec!["i".into()],
            domain_ineqs: vec![vec![1, 0, -1], vec![-1, 1, -1]],
            beta: vec![0, 0],
            write: ("a".into(), vec![vec![1, 0, 0]]),
            reads: vec![("a".into(), vec![vec![1, 0, -1]])],
            body: Expr::Read(0),
        });
        b.build()
    }

    #[test]
    fn forward_identity_is_legal() {
        let prog = scan_program();
        let deps = analyze_dependences(&prog, false);
        let t = forced_transformation(
            &prog,
            vec![vec![vec![1, 0, 0]]],
            vec![RowKind::Loop],
            vec![Band { start: 0, width: 1 }],
        );
        assert!(validate_legality(&prog, &deps, &t).is_empty());
        let sat = satisfaction_map(&prog, &deps, &t);
        assert!(sat.iter().all(|s| *s == Some(0)));
    }

    #[test]
    fn reversal_is_caught() {
        let prog = scan_program();
        let deps = analyze_dependences(&prog, false);
        let t = forced_transformation(
            &prog,
            vec![vec![vec![-1, 0, 0]]],
            vec![RowKind::Loop],
            vec![Band { start: 0, width: 1 }],
        );
        let v = validate_legality(&prog, &deps, &t);
        assert!(!v.is_empty());
        assert!(v.iter().any(|x| x.row == 0));
    }

    #[test]
    fn collapsing_transform_is_caught() {
        // φ = 0 maps every instance to the same point: illegal for a
        // dependence between distinct instances.
        let prog = scan_program();
        let deps = analyze_dependences(&prog, false);
        let t = forced_transformation(
            &prog,
            vec![vec![vec![0, 0, 0]]],
            vec![RowKind::Loop],
            vec![Band { start: 0, width: 1 }],
        );
        let v = validate_legality(&prog, &deps, &t);
        assert!(v.iter().any(|x| x.row == 1), "all-zero distance flagged");
    }
}
