//! End-to-end orchestration: dependence analysis → hyperplane search →
//! tiling → wavefront → vectorization reorder (the PLuTo tool-chain of
//! Fig. 5, minus the code generator which lives in `pluto-codegen`).

use crate::search::{find_transformation, PlutoError, PlutoOptions, SearchResult};
use crate::tiling::tile_band;
use crate::types::{Parallelism, RowKind};
use crate::wavefront::{reorder_for_vectorization, wavefront};
use pluto_ir::{analyze_dependences_with, DepAnalysisOptions, Dependence, Program};
use pluto_linalg::Int;

/// One-stop driver for the full transformation pipeline.
///
/// # Examples
/// ```no_run
/// use pluto::Optimizer;
/// # fn demo(prog: &pluto_ir::Program) -> Result<(), pluto::PlutoError> {
/// let opt = Optimizer::new().tile_size(32).wavefront_degrees(1);
/// let optimized = opt.optimize(prog)?;
/// println!("{}", optimized.result.transform.display(prog));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Optimizer {
    /// Search options (input deps, fusion policy).
    pub options: PlutoOptions,
    /// Tile permutable bands of width >= 2 (Algorithm 1).
    pub tile: bool,
    /// Tile size used on every dimension of every tiled band.
    pub tile_size: Int,
    /// Optional second tiling level: each L2 tile covers `factor` L1 tiles
    /// per dimension ("Tiling multiple times", Sec. 5.2).
    pub second_level_factor: Option<Int>,
    /// Extract coarse-grained parallelism (Algorithm 2 when needed).
    pub parallelize: bool,
    /// Degrees of pipelined parallelism `m` for the wavefront.
    pub wavefront_degrees: usize,
    /// Move an intra-tile parallel loop innermost (Sec. 5.4).
    pub vectorize: bool,
    /// Factor by which the tile size of the to-be-vectorized loop is
    /// increased (paper Sec. 7: "the tile size of the loop to be
    /// vectorized was increased").
    pub vector_tile_boost: Int,
    /// Run the uniform-distance candidate pre-tests in dependence
    /// analysis (output-invariant; `--no-solver-cache` turns them off).
    pub dep_pruning: bool,
    /// Worker-team width for dependence analysis; `1` (the default)
    /// analyzes serially on the calling thread.
    pub dep_threads: usize,
}

impl Default for Optimizer {
    fn default() -> Optimizer {
        Optimizer::new()
    }
}

impl Optimizer {
    /// Paper-default configuration: smart fusion, input deps on, one tile
    /// level of 32, one degree of pipelined parallelism, vectorization
    /// reorder on.
    pub fn new() -> Optimizer {
        Optimizer {
            options: PlutoOptions::default(),
            tile: true,
            tile_size: 32,
            second_level_factor: None,
            parallelize: true,
            wavefront_degrees: 1,
            vectorize: true,
            vector_tile_boost: 4,
            dep_pruning: true,
            dep_threads: 1,
        }
    }

    /// Sets the tile size.
    pub fn tile_size(mut self, s: Int) -> Optimizer {
        self.tile_size = s;
        self
    }

    /// Enables/disables tiling.
    pub fn tiling(mut self, on: bool) -> Optimizer {
        self.tile = on;
        self
    }

    /// Sets the wavefront degree `m`.
    pub fn wavefront_degrees(mut self, m: usize) -> Optimizer {
        self.wavefront_degrees = m;
        self
    }

    /// Enables/disables parallelization.
    pub fn parallel(mut self, on: bool) -> Optimizer {
        self.parallelize = on;
        self
    }

    /// Enables/disables the vectorization reorder.
    pub fn vectorization(mut self, on: bool) -> Optimizer {
        self.vectorize = on;
        self
    }

    /// Sets search options.
    pub fn search_options(mut self, o: PlutoOptions) -> Optimizer {
        self.options = o;
        self
    }

    /// Sets the second tiling level factor.
    pub fn second_level(mut self, factor: Int) -> Optimizer {
        self.second_level_factor = Some(factor);
        self
    }

    /// Enables/disables the dependence-candidate pre-tests.
    pub fn dep_pruning(mut self, on: bool) -> Optimizer {
        self.dep_pruning = on;
        self
    }

    /// Sets the worker-team width for dependence analysis.
    pub fn dep_threads(mut self, threads: usize) -> Optimizer {
        self.dep_threads = threads.max(1);
        self
    }

    /// Runs the full pipeline on a program.
    ///
    /// # Errors
    /// Propagates [`PlutoError`] from the search.
    pub fn optimize(&self, prog: &Program) -> Result<Optimized, PlutoError> {
        let _span = pluto_obs::span("optimize");
        let deps = {
            let _s = pluto_obs::span("deps");
            analyze_dependences_with(
                prog,
                &DepAnalysisOptions {
                    include_input: self.options.use_input_deps,
                    prune: self.dep_pruning,
                    threads: self.dep_threads,
                },
            )
        };
        let res = {
            let _s = pluto_obs::span("search");
            find_transformation(prog, &deps, &self.options)?
        };
        Ok(self.apply(prog, deps, res))
    }

    /// [`optimize`] with caller-supplied dependences — the libpluto-style
    /// entry where the embedder owns dependence analysis (or replays a
    /// cached dependence set) and this crate only searches and applies.
    ///
    /// # Errors
    /// Propagates [`PlutoError`] from the search.
    ///
    /// [`optimize`]: Optimizer::optimize
    pub fn optimize_with_deps(
        &self,
        prog: &Program,
        deps: Vec<Dependence>,
    ) -> Result<Optimized, PlutoError> {
        let _span = pluto_obs::span("optimize");
        let res = {
            let _s = pluto_obs::span("search");
            find_transformation(prog, &deps, &self.options)?
        };
        Ok(self.apply(prog, deps, res))
    }

    /// Applies the post-search pipeline stages (tiling → wavefront →
    /// vectorization reorder) to an existing search result.
    ///
    /// Lets callers run the (expensive) hyperplane search once and derive
    /// several differently-configured transformations from it — the
    /// differential test oracle does exactly this; [`optimize`] is
    /// `find_transformation` + this.
    ///
    /// [`optimize`]: Optimizer::optimize
    pub fn apply(&self, prog: &Program, deps: Vec<Dependence>, mut res: SearchResult) -> Optimized {
        if self.tile {
            let _s = pluto_obs::span("tiling");
            // Tile every point-level band of width >= 2, innermost-index
            // first is unnecessary — indices shift as bands are inserted,
            // so walk by index and skip bands we created.
            let mut bi = 0;
            while bi < res.transform.bands.len() {
                let b = res.transform.bands[bi];
                let is_point = res.transform.rows[b.start].tile_level == 0;
                if !is_point || b.width < 2 {
                    bi += 1;
                    continue;
                }
                let mut sizes = vec![self.tile_size; b.width];
                if self.vectorize {
                    // The Sec. 5.4 reorder will move the band's last
                    // parallel point row innermost; give that loop a
                    // longer tile for stride-1 vector runs (paper Sec. 7).
                    if let Some(j) = b
                        .rows()
                        .rev()
                        .find(|&r| res.transform.rows[r].par == Parallelism::Parallel)
                    {
                        sizes[j - b.start] = self.tile_size * self.vector_tile_boost.max(1);
                    }
                }
                tile_band(&mut res, prog, &deps, bi, &sizes);
                if let Some(f) = self.second_level_factor {
                    let l2 = vec![f; b.width];
                    tile_band(&mut res, prog, &deps, bi, &l2);
                }
                // Skip the band(s) we just inserted plus the point band.
                bi += 1 + if self.second_level_factor.is_some() {
                    2
                } else {
                    1
                };
            }
        }

        if self.parallelize {
            let _s = pluto_obs::span("wavefront");
            // Pipelined parallelism on the outermost tiled band whose
            // leading row still carries dependences.
            if let Some(&band) = res
                .transform
                .bands
                .iter()
                .find(|b| res.transform.rows[b.start].kind == RowKind::Loop)
            {
                let first_par = res.transform.rows[band.start].par;
                let tiled = res.transform.rows[band.start].tile_level > 0;
                if first_par == Parallelism::Sequential && tiled && band.width >= 2 {
                    let m = self.wavefront_degrees.min(band.width - 1).max(1);
                    wavefront(&mut res.transform, band, m);
                }
            }
        }

        if self.vectorize {
            let _s = pluto_obs::span("vectorize");
            // Reorder the innermost point band (largest start).
            if let Some(&band) = res
                .transform
                .bands
                .iter()
                .filter(|b| res.transform.rows[b.start].tile_level == 0)
                .max_by_key(|b| b.start)
            {
                if let Some((from, to)) = reorder_for_vectorization(&mut res.transform, band) {
                    // The reorder shifts rows (from..=to) — remap the
                    // satisfaction map to the final row coordinates.
                    if from != to {
                        for e in res.satisfied_at.iter_mut().flatten() {
                            if *e == from {
                                *e = to;
                            } else if *e > from && *e <= to {
                                *e -= 1;
                            }
                        }
                    }
                }
            }
        }

        Optimized { deps, result: res }
    }
}

/// Output of [`Optimizer::optimize`].
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The dependences computed for the program.
    pub deps: Vec<Dependence>,
    /// Search result carrying the final transformation.
    pub result: SearchResult,
}

impl Optimized {
    /// Convenience accessor for the transformation.
    pub fn transform(&self) -> &crate::types::Transformation {
        &self.result.transform
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Parallelism, RowKind};
    use pluto_ir::{Expr, ProgramBuilder, StatementSpec};

    /// `for i in 1..N { for j in 1..N { a[i][j] = a[i-1][j] + a[i][j-1] } }`
    fn sor() -> Program {
        let mut b = ProgramBuilder::new("sor", &["N"]);
        b.add_context_ineq(vec![1, -4]);
        b.add_array("a", 2);
        b.add_statement(StatementSpec {
            name: "S1".into(),
            iters: vec!["i".into(), "j".into()],
            domain_ineqs: vec![
                vec![1, 0, 0, -1],
                vec![-1, 0, 1, -1],
                vec![0, 1, 0, -1],
                vec![0, -1, 1, -1],
            ],
            beta: vec![0, 0, 0],
            write: ("a".into(), vec![vec![1, 0, 0, 0], vec![0, 1, 0, 0]]),
            reads: vec![
                ("a".into(), vec![vec![1, 0, 0, -1], vec![0, 1, 0, 0]]),
                ("a".into(), vec![vec![1, 0, 0, 0], vec![0, 1, 0, -1]]),
            ],
            body: Expr::Read(0) + Expr::Read(1),
        });
        b.build()
    }

    #[test]
    fn default_pipeline_tiles_and_wavefronts() {
        let prog = sor();
        let o = Optimizer::new().tile_size(16).optimize(&prog).unwrap();
        let t = &o.result.transform;
        // 2 tile rows + 2 point rows; the tile band was wavefronted:
        // row 0 sequential, row 1 parallel.
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.rows[0].par, Parallelism::Sequential);
        assert_eq!(t.rows[1].par, Parallelism::Parallel);
        assert_eq!(t.rows[0].tile_level, 1);
        assert_eq!(t.rows[2].tile_level, 0);
        // The wavefront row sums the two tile rows: iT + jT.
        let r0 = &t.stmts[0].rows[0];
        assert_eq!(&r0[..2], &[1, 1]);
    }

    #[test]
    fn tiling_disabled_leaves_point_rows() {
        let prog = sor();
        let o = Optimizer::new().tiling(false).optimize(&prog).unwrap();
        let t = &o.result.transform;
        assert_eq!(t.num_rows(), 2);
        assert!(t.rows.iter().all(|r| r.tile_level == 0));
    }

    #[test]
    fn second_level_adds_band() {
        let prog = sor();
        let o = Optimizer::new()
            .tile_size(8)
            .second_level(4)
            .parallel(false)
            .optimize(&prog)
            .unwrap();
        let t = &o.result.transform;
        assert_eq!(t.num_rows(), 6); // L2 + L1 + point
        assert_eq!(t.rows[0].tile_level, 2);
        assert_eq!(t.rows[2].tile_level, 1);
        assert_eq!(t.rows[4].tile_level, 0);
        assert_eq!(t.bands.len(), 3);
    }

    #[test]
    fn sor_has_no_vectorizable_intra_row() {
        // Both of SOR's point rows carry a dependence: the Sec. 5.4
        // reorder must leave the band untouched (no Vector row).
        let prog = sor();
        let o = Optimizer::new().tile_size(16).optimize(&prog).unwrap();
        let t = &o.result.transform;
        assert!(t.rows.iter().all(|r| r.par != Parallelism::Vector));
    }

    /// `C[i][j] += A[i][k] * B[k][j]` — two parallel space loops.
    fn matmul() -> Program {
        let mut b = ProgramBuilder::new("mm", &["N"]);
        b.add_context_ineq(vec![1, -2]);
        b.add_array("C", 2);
        b.add_array("A", 2);
        b.add_array("B", 2);
        b.add_statement(StatementSpec {
            name: "S1".into(),
            iters: vec!["i".into(), "j".into(), "k".into()],
            domain_ineqs: vec![
                vec![1, 0, 0, 0, 0],
                vec![-1, 0, 0, 1, -1],
                vec![0, 1, 0, 0, 0],
                vec![0, -1, 0, 1, -1],
                vec![0, 0, 1, 0, 0],
                vec![0, 0, -1, 1, -1],
            ],
            beta: vec![0, 0, 0, 0],
            write: ("C".into(), vec![vec![1, 0, 0, 0, 0], vec![0, 1, 0, 0, 0]]),
            reads: vec![
                ("C".into(), vec![vec![1, 0, 0, 0, 0], vec![0, 1, 0, 0, 0]]),
                ("A".into(), vec![vec![1, 0, 0, 0, 0], vec![0, 0, 1, 0, 0]]),
                ("B".into(), vec![vec![0, 0, 1, 0, 0], vec![0, 1, 0, 0, 0]]),
            ],
            body: Expr::Read(0) + Expr::Read(1) * Expr::Read(2),
        });
        b.build()
    }

    #[test]
    fn vectorization_moves_parallel_innermost() {
        let prog = matmul();
        let o = Optimizer::new().tile_size(16).optimize(&prog).unwrap();
        let t = &o.result.transform;
        // Point band rows 3..6; the last is the vector row (a parallel
        // space loop moved innermost, Sec. 5.4).
        let last = t.num_rows() - 1;
        assert_eq!(t.rows[last].par, Parallelism::Vector);
        assert_eq!(t.rows[last].kind, RowKind::Loop);
        // The reduction row k stays sequential inside the band.
        assert!(t.rows[3..last]
            .iter()
            .any(|r| r.par == Parallelism::Sequential));
    }

    #[test]
    fn optimized_accessors() {
        let prog = sor();
        let o = Optimizer::new().optimize(&prog).unwrap();
        assert!(!o.deps.is_empty());
        assert_eq!(o.transform().num_rows(), o.result.transform.num_rows());
    }
}
