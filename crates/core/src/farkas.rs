//! Farkas-lemma based constraint construction (paper Sec. 3.2).
//!
//! A universally quantified affine condition "`L(x) >= 0` for all `x` in
//! the dependence polyhedron `P_e`" is linearized by the affine form of
//! Farkas' lemma: `L ≡ λ0 + Σ λk·P_e^k` with `λ >= 0`. Equating the
//! coefficient of each dimension of `P_e`'s space on both sides yields
//! equalities linking the transformation unknowns and the multipliers; the
//! multipliers are then eliminated by Fourier–Motzkin, leaving a constraint
//! system purely over the unknowns `(u, w, …, c_i, c_0, …)`.

use pluto_ir::{Dependence, Program};
use pluto_linalg::Int;
use pluto_obs::decision::{self, DecisionEvent};
use pluto_poly::ConstraintSet;

/// Layout of the global unknown vector
/// `[u_1..u_p, w, S0: c_1..c_m c_0, S1: …]` (paper Eq. 5 ordering).
#[derive(Debug, Clone)]
pub struct VarMap {
    num_params: usize,
    stmt_off: Vec<usize>,
    stmt_iters: Vec<usize>,
    total: usize,
}

impl VarMap {
    /// Builds the layout for a program.
    pub fn new(prog: &Program) -> VarMap {
        let num_params = prog.num_params();
        let mut off = num_params + 1; // after u's and w
        let mut stmt_off = Vec::with_capacity(prog.stmts.len());
        let mut stmt_iters = Vec::with_capacity(prog.stmts.len());
        for s in &prog.stmts {
            stmt_off.push(off);
            stmt_iters.push(s.num_iters());
            off += s.num_iters() + 1; // c_1..c_m and c_0
        }
        VarMap {
            num_params,
            stmt_off,
            stmt_iters,
            total: off,
        }
    }

    /// Total number of unknowns.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Column of `u_k`.
    pub fn u(&self, k: usize) -> usize {
        debug_assert!(k < self.num_params);
        k
    }

    /// Column of `w`.
    pub fn w(&self) -> usize {
        self.num_params
    }

    /// Column of statement `s`'s iterator coefficient `c_{i+1}`.
    ///
    /// Iterator coefficients are laid out *innermost first*, so the lexmin
    /// objective (Eq. 5) minimizes inner-loop coefficients with higher
    /// priority and tie-breaks in favour of hyperplanes that follow the
    /// original loop order (outer loops first) — matching the solutions
    /// the paper reports for symmetric kernels.
    pub fn c(&self, s: usize, i: usize) -> usize {
        debug_assert!(i < self.stmt_iters[s]);
        self.stmt_off[s] + (self.stmt_iters[s] - 1 - i)
    }

    /// Column of statement `s`'s translation coefficient `c_0`.
    pub fn c0(&self, s: usize) -> usize {
        self.stmt_off[s] + self.stmt_iters[s]
    }

    /// Number of iterator coefficients of statement `s`.
    pub fn num_iters(&self, s: usize) -> usize {
        self.stmt_iters[s]
    }

    /// Number of statements.
    pub fn num_stmts(&self) -> usize {
        self.stmt_off.len()
    }

    /// Extracts `(c_1..c_m, c_0)` of statement `s` from a solution vector
    /// (undoing the innermost-first column layout).
    pub fn stmt_solution(&self, s: usize, sol: &[Int]) -> (Vec<Int>, Int) {
        let m = self.stmt_iters[s];
        let coeffs = (0..m).map(|i| sol[self.c(s, i)]).collect();
        (coeffs, sol[self.c0(s)])
    }
}

/// The symbolic affine form `L` over a dependence polyhedron's space: one
/// row per `P_e` column (source iters, target iters, params, constant),
/// each row a linear expression over `[unknowns…, 1]` giving that
/// dimension's coefficient in `L`.
pub type SymbolicForm = Vec<Vec<Int>>;

/// Builds `L = φ_dst(t) − φ_src(s)` (the legality / δ form, Eq. 3).
pub fn delta_form(dep: &Dependence, prog: &Program, vm: &VarMap) -> SymbolicForm {
    let ms = prog.stmts[dep.src].num_iters();
    let mt = prog.stmts[dep.dst].num_iters();
    let np = prog.num_params();
    let width = vm.total() + 1;
    let mut form = vec![vec![0; width]; ms + mt + np + 1];
    for j in 0..ms {
        form[j][vm.c(dep.src, j)] -= 1;
    }
    for j in 0..mt {
        form[ms + j][vm.c(dep.dst, j)] += 1;
    }
    // Hyperplanes carry no parameter coefficients (Eq. 1), so param rows
    // stay zero. Constant: c0_dst − c0_src.
    form[ms + mt + np][vm.c0(dep.dst)] += 1;
    form[ms + mt + np][vm.c0(dep.src)] -= 1;
    form
}

/// Builds `L = u·p + w − δ` (bounding, Eq. 4) or `u·p + w + δ` when
/// `reversed` (the lower bound needed for input dependences, Sec. 4.1).
pub fn bounding_form(
    dep: &Dependence,
    prog: &Program,
    vm: &VarMap,
    reversed: bool,
) -> SymbolicForm {
    let ms = prog.stmts[dep.src].num_iters();
    let mt = prog.stmts[dep.dst].num_iters();
    let np = prog.num_params();
    let sign: Int = if reversed { 1 } else { -1 };
    let mut form = delta_form(dep, prog, vm);
    for row in form.iter_mut() {
        for v in row.iter_mut() {
            *v *= sign;
        }
    }
    for k in 0..np {
        form[ms + mt + k][vm.u(k)] += 1;
    }
    form[ms + mt + np][vm.w()] += 1;
    form
}

/// Substitutes away unit-coefficient equality rows of `poly`, rewriting
/// `form` through the same substitution.
///
/// Each equality `±x_v = e·[x…,1]` defines an integer affine bijection
/// between `poly` and its image without column `v`; `L(x) >= 0` holds on
/// `poly` iff the rewritten form is non-negative on the reduced set, so
/// [`farkas_eliminate`] over the pair has exactly the same feasible set of
/// unknowns — while every eliminated equality removes two Farkas
/// multipliers and one coefficient-matching row, which shrinks the
/// Fourier–Motzkin elimination superlinearly (DESIGN.md §11). Shifted
/// duplicate rows produced by the substitution (e.g. a target domain that
/// collapses onto the source domain of a uniform dependence) are deduped:
/// duplicate rows are duplicate cone generators and carry no information.
fn substitute_unit_eqs(poly: &ConstraintSet, form: &SymbolicForm) -> (ConstraintSet, SymbolicForm) {
    let n = poly.num_vars();
    let mut eqs: Vec<Vec<Int>> = poly.eqs().to_vec();
    let mut ineqs: Vec<Vec<Int>> = poly.ineqs().to_vec();
    let mut form = form.clone();
    let mut gone = vec![false; n];
    let mut any = false;
    loop {
        let found = eqs.iter().enumerate().find_map(|(ei, e)| {
            (0..n)
                .find(|&v| !gone[v] && e[v].abs() == 1)
                .map(|v| (ei, v))
        });
        let Some((ei, v)) = found else { break };
        let e = eqs.swap_remove(ei);
        let s = e[v]; // ±1: x_v = expr·[x…,1] with expr[v] == 0.
        let mut expr = vec![0; n + 1];
        for (j, x) in expr.iter_mut().enumerate() {
            if j != v {
                *x = -s * e[j];
            }
        }
        for r in eqs.iter_mut().chain(ineqs.iter_mut()) {
            let c = r[v];
            if c != 0 {
                r[v] = 0;
                for j in 0..=n {
                    r[j] += c * expr[j];
                }
            }
        }
        // L's coefficient row for x_v distributes over the substitution:
        // form[v]·x_v = Σ_j expr[j]·form[v]·x_j + expr[n]·form[v].
        let width = form[n].len();
        let fv = std::mem::replace(&mut form[v], vec![0; width]);
        for j in 0..=n {
            if expr[j] == 0 || j == v {
                continue;
            }
            for (t, &c) in form[j].iter_mut().zip(&fv) {
                *t += expr[j] * c;
            }
        }
        gone[v] = true;
        any = true;
    }
    if !any {
        return (poly.clone(), form);
    }
    let kept: Vec<usize> = (0..n).filter(|&v| !gone[v]).collect();
    let compress = |r: &[Int]| -> Vec<Int> {
        let mut out: Vec<Int> = kept.iter().map(|&v| r[v]).collect();
        out.push(r[n]);
        out
    };
    let mut reduced = ConstraintSet::new(kept.len());
    for e in &eqs {
        reduced.add_eq(compress(e));
    }
    for r in &ineqs {
        reduced.add_ineq(compress(r));
    }
    reduced.dedup();
    let mut new_form: SymbolicForm = kept.iter().map(|&v| form[v].clone()).collect();
    new_form.push(form[n].clone());
    (reduced, new_form)
}

/// Applies Farkas' lemma to "`L(x) >= 0` on `poly`" and eliminates the
/// multipliers, returning constraints over the `num_unknowns` unknowns.
///
/// Unit-coefficient equalities of `poly` are substituted out first (see
/// `substitute_unit_eqs` above); the returned system's rows may differ
/// from the unreduced elimination's, but its feasible set — the only
/// thing the lexmin search observes — is identical.
///
/// # Panics
/// Panics if `form` has one row per poly column plus a constant row.
pub fn farkas_eliminate(
    poly: &ConstraintSet,
    form: &SymbolicForm,
    num_unknowns: usize,
) -> ConstraintSet {
    assert_eq!(
        form.len(),
        poly.num_vars() + 1,
        "form must cover poly columns + const"
    );
    let (poly, form) = substitute_unit_eqs(poly, form);
    let (poly, form) = (&poly, &form);
    let nx = poly.num_vars();
    // Multipliers: λ0, one per inequality, two per equality.
    let n_ineq = poly.ineqs().len();
    let n_eq = poly.eqs().len();
    let n_lambda = 1 + n_ineq + 2 * n_eq;
    let width = num_unknowns + n_lambda + 1; // + constant column
    let lam = |k: usize| num_unknowns + k; // λ_k column

    let mut sys = ConstraintSet::new(width - 1);
    // Coefficient-matching equalities, one per poly dimension d:
    //   L[d](unknowns) − Σ_k λk·row_k[d] == 0
    for d in 0..nx {
        let mut row = vec![0; width];
        for (uc, &v) in form[d][..num_unknowns].iter().enumerate() {
            row[uc] = v;
        }
        row[width - 1] = form[d][num_unknowns]; // constant part of the expr
        for (k, ineq) in poly.ineqs().iter().enumerate() {
            row[lam(1 + k)] -= ineq[d];
        }
        for (k, eq) in poly.eqs().iter().enumerate() {
            row[lam(1 + n_ineq + 2 * k)] -= eq[d];
            row[lam(1 + n_ineq + 2 * k + 1)] += eq[d];
        }
        sys.add_eq(row);
    }
    // Constant matching: L[const] − λ0 − Σ λk·row_k[const] == 0.
    {
        let mut row = vec![0; width];
        for (uc, &v) in form[nx][..num_unknowns].iter().enumerate() {
            row[uc] = v;
        }
        row[width - 1] = form[nx][num_unknowns];
        row[lam(0)] -= 1;
        for (k, ineq) in poly.ineqs().iter().enumerate() {
            row[lam(1 + k)] -= ineq[nx];
        }
        for (k, eq) in poly.eqs().iter().enumerate() {
            row[lam(1 + n_ineq + 2 * k)] -= eq[nx];
            row[lam(1 + n_ineq + 2 * k + 1)] += eq[nx];
        }
        sys.add_eq(row);
    }
    // λ >= 0.
    for k in 0..n_lambda {
        let mut row = vec![0; width];
        row[lam(k)] = 1;
        sys.add_ineq(row);
    }
    // Eliminate every multiplier column.
    let mut out = sys.project_out(num_unknowns, n_lambda);
    out.dedup();
    if decision::enabled() {
        decision::record(DecisionEvent::FarkasEliminated {
            multipliers: n_lambda,
            rows_in: nx + 1,
            eqs_out: out.eqs().len(),
            ineqs_out: out.ineqs().len(),
        });
    }
    out
}

/// The affine row `φ_dst^r(t) − φ_src^r(s)` over the dependence
/// polyhedron's columns `[s iters, t iters, params, 1]`, for concrete
/// scattering rows (over `[iters, params, 1]` each).
pub fn distance_row(
    dep: &Dependence,
    prog: &Program,
    src_row: &[Int],
    dst_row: &[Int],
) -> Vec<Int> {
    let ms = prog.stmts[dep.src].num_iters();
    let mt = prog.stmts[dep.dst].num_iters();
    let np = prog.num_params();
    debug_assert_eq!(src_row.len(), ms + np + 1);
    debug_assert_eq!(dst_row.len(), mt + np + 1);
    let mut row = vec![0; ms + mt + np + 1];
    for j in 0..ms {
        row[j] = -src_row[j];
    }
    row[ms..ms + mt].copy_from_slice(&dst_row[..mt]);
    for k in 0..np {
        row[ms + mt + k] = dst_row[mt + k] - src_row[ms + k];
    }
    row[ms + mt + np] = dst_row[mt + np] - src_row[ms + np];
    row
}

/// Whether scattering rows strictly satisfy the dependence at row `r`
/// given the rows are applied in order: tests emptiness of
/// `P_e ∧ δ^r <= 0` (the dependence distance is `>= 1` everywhere).
pub fn satisfies_strictly(
    dep: &Dependence,
    prog: &Program,
    src_row: &[Int],
    dst_row: &[Int],
) -> bool {
    let mut p = dep.poly.clone();
    let mut row = distance_row(dep, prog, src_row, dst_row);
    // δ <= 0  i.e.  −δ >= 0.
    for v in row.iter_mut() {
        *v = -*v;
    }
    p.add_ineq(row);
    p.is_empty()
}

/// Whether the dependence has a non-negative component on the given rows
/// everywhere (weak satisfaction / legality of the row as a tiling
/// hyperplane, Eq. 2): tests emptiness of `P_e ∧ δ <= −1`.
pub fn respects_weakly(dep: &Dependence, prog: &Program, src_row: &[Int], dst_row: &[Int]) -> bool {
    let mut p = dep.poly.clone();
    let mut row = distance_row(dep, prog, src_row, dst_row);
    for v in row.iter_mut() {
        *v = -*v;
    }
    let n = row.len();
    row[n - 1] -= 1; // −δ − 1 >= 0  <=>  δ <= −1
    p.add_ineq(row);
    p.is_empty()
}

/// Whether the dependence is *carried* at level `r` of the given scattering
/// rows: with all outer distances pinned to zero, the distance at `r` can
/// still be `>= 1`. Loop `r` is parallel iff no live dependence is carried
/// at `r`.
pub fn carried_at(
    dep: &Dependence,
    prog: &Program,
    src_rows: &[Vec<Int>],
    dst_rows: &[Vec<Int>],
    r: usize,
) -> bool {
    let mut p = dep.poly.clone();
    for k in 0..r {
        p.add_eq(distance_row(dep, prog, &src_rows[k], &dst_rows[k]));
    }
    let mut row = distance_row(dep, prog, &src_rows[r], &dst_rows[r]);
    let n = row.len();
    row[n - 1] -= 1; // δ − 1 >= 0
    p.add_ineq(row);
    !p.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pluto_ir::{analyze_dependences, Expr, ProgramBuilder, StatementSpec};

    /// `for i in 1..N { a[i] = a[i-1] }` — distance-1 flow dep.
    fn scan_program() -> Program {
        let mut b = ProgramBuilder::new("scan", &["N"]);
        b.add_context_ineq(vec![1, -3]);
        b.add_array("a", 1);
        b.add_statement(StatementSpec {
            name: "S1".into(),
            iters: vec!["i".into()],
            domain_ineqs: vec![vec![1, 0, -1], vec![-1, 1, -1]],
            beta: vec![0, 0],
            write: ("a".into(), vec![vec![1, 0, 0]]),
            reads: vec![("a".into(), vec![vec![1, 0, -1]])],
            body: Expr::Read(0),
        });
        b.build()
    }

    #[test]
    fn varmap_layout() {
        let p = scan_program();
        let vm = VarMap::new(&p);
        // [u_N, w, c_1(S1), c_0(S1)]
        assert_eq!(vm.total(), 4);
        assert_eq!(vm.u(0), 0);
        assert_eq!(vm.w(), 1);
        assert_eq!(vm.c(0, 0), 2);
        assert_eq!(vm.c0(0), 3);
    }

    #[test]
    fn legality_excludes_reversal() {
        let p = scan_program();
        let deps = analyze_dependences(&p, false);
        let flow = deps.iter().find(|d| d.src == 0 && d.dst == 0).unwrap();
        let vm = VarMap::new(&p);
        let form = delta_form(flow, &p, &vm);
        let sys = farkas_eliminate(&flow.poly, &form, vm.total());
        // φ = i (c = 1) is legal; the system admits c_1 = 1.
        // Unknowns: [u, w, c1, c0]; legality ignores u, w.
        assert!(sys.contains(&[0, 0, 1, 0]), "forward hyperplane legal");
        // c_1 = 0 gives distance 0 — also weakly legal.
        assert!(sys.contains(&[0, 0, 0, 0]));
        // Note: negative c is excluded by the search's non-negativity, not
        // here; Farkas itself only encodes δ >= 0, which c_1 = −1 violates.
        assert!(!sys.contains(&[0, 0, -1, 0]), "reversal illegal");
    }

    #[test]
    fn bounding_limits_distance() {
        let p = scan_program();
        let deps = analyze_dependences(&p, false);
        let flow = deps.iter().find(|d| d.src == 0 && d.dst == 0).unwrap();
        let vm = VarMap::new(&p);
        let form = bounding_form(flow, &p, &vm, false);
        let sys = farkas_eliminate(&flow.poly, &form, vm.total());
        // δ = c_1 (uniform distance 1·c_1). u·N + w must bound it:
        // c_1 = 1 needs w >= 1 (or u >= something).
        assert!(sys.contains(&[0, 1, 1, 0]));
        assert!(!sys.contains(&[0, 0, 1, 0]), "unbounded distance rejected");
        // c_1 = 0: distance 0, bound 0 suffices.
        assert!(sys.contains(&[0, 0, 0, 0]));
    }

    #[test]
    fn satisfaction_tests() {
        let p = scan_program();
        let deps = analyze_dependences(&p, false);
        let flow = deps.iter().find(|d| d.src == 0 && d.dst == 0).unwrap();
        // Row φ = i over [i, N, 1].
        let fwd = vec![1, 0, 0];
        assert!(satisfies_strictly(flow, &p, &fwd, &fwd));
        assert!(respects_weakly(flow, &p, &fwd, &fwd));
        // Row φ = 0: weak but not strict.
        let zero = vec![0, 0, 0];
        assert!(!satisfies_strictly(flow, &p, &zero, &zero));
        assert!(respects_weakly(flow, &p, &zero, &zero));
        // Row φ = −i: neither.
        let rev = vec![-1, 0, 0];
        assert!(!respects_weakly(flow, &p, &rev, &rev));
        // Carried at level 0 for φ = i.
        let rows = vec![fwd.clone()];
        assert!(carried_at(flow, &p, &rows, &rows, 0));
    }
}
