//! Tiling of permutable bands under statement-wise transformations
//! (paper Sec. 5.2, Algorithm 1).
//!
//! For a band of `w` mutually permutable scattering rows, each statement's
//! domain is augmented with one *supernode* iterator per band row,
//! constrained Ancourt–Irigoin style:
//!
//! ```text
//! τ_j · sT_j  <=  f_j(i) + f0_j  <=  τ_j · sT_j + τ_j − 1
//! ```
//!
//! and `w` new scattering rows `φT_j = sT_j` are inserted at the band's
//! start, forming a new tile-space band (Theorem 1 guarantees it satisfies
//! the tiling legality condition). Applying the procedure again to the
//! tile band yields multi-level (e.g. L2 over L1) tiling.

use crate::farkas::distance_row;
use crate::search::SearchResult;
use crate::types::{Band, Parallelism, RowInfo, RowKind};
use pluto_ir::{Dependence, Program};
use pluto_linalg::Int;

/// Tiles band `band_idx` of the search result with the given per-row tile
/// sizes, updating domains, scatterings, row metadata, bands and the
/// dependence satisfaction map in place. Returns the new tile-space band.
///
/// Tile rows are marked [`Parallelism::Parallel`] only when
/// synchronization-free (the corresponding point row has identically zero
/// dependence distance for every dependence live at the band); otherwise
/// they stay sequential and [`wavefront`](crate::wavefront::wavefront) can
/// extract pipelined parallelism.
///
/// # Panics
/// Panics if `band_idx` is out of range, `sizes.len()` differs from the
/// band width, or any size is < 1.
pub fn tile_band(
    res: &mut SearchResult,
    prog: &Program,
    deps: &[Dependence],
    band_idx: usize,
    sizes: &[Int],
) -> Band {
    let band = res.transform.bands[band_idx];
    assert_eq!(sizes.len(), band.width, "one tile size per band row");
    assert!(sizes.iter().all(|&s| s >= 1), "tile sizes must be >= 1");
    let w = band.width;
    let start = band.start;
    let np = prog.num_params();

    // Per-row sync-free parallelism of the future tile rows, computed
    // before mutation: tile row j is parallel iff every live legality
    // dependence has identically zero distance on the *point* row
    // underlying band row j. (When re-tiling a tile band for a second
    // level, the point rows sit `tile_level * w` rows below the band —
    // each tiling level inserted `w` rows at the band start.)
    let lvl = res.transform.rows[start].tile_level as usize;
    let point_start = start + lvl * w;
    debug_assert_eq!(res.transform.rows[point_start].tile_level, 0);
    let nstmts = res.transform.stmts.len();
    // Per-statement sync-freedom of the future tile rows: a carried dep
    // serializes only its own fission group (both ends share one group,
    // as cross-group deps are settled by a scalar row above the band).
    let group_key = |s: usize, upto: usize| -> Vec<Int> {
        (0..upto)
            .filter(|&k| res.transform.rows[k].kind == crate::types::RowKind::Scalar)
            .map(|k| {
                let row = &res.transform.stmts[s].rows[k];
                row[row.len() - 1]
            })
            .collect()
    };
    let mut seq_groups: Vec<Vec<Vec<Int>>> = vec![Vec::new(); w];
    for (di, dep) in deps.iter().enumerate() {
        if !dep.kind.constrains_legality() {
            continue;
        }
        if let Some(s) = res.satisfied_at[di] {
            if s < point_start {
                continue; // settled outside the band
            }
        }
        for (j, group) in seq_groups.iter_mut().enumerate().take(w) {
            if group.contains(&group_key(dep.src, start)) {
                continue;
            }
            let r = point_start + j;
            let mut p = dep.poly.clone();
            // Point rows reference original iterators plus `lvl * w`-ish
            // leading supernode columns added by earlier tilings; strip the
            // supernode prefix (their coefficients are zero on point rows).
            let src_row = strip_supernodes(
                &res.transform.stmts[dep.src].rows[r],
                prog.stmts[dep.src].num_iters(),
                np,
            );
            let dst_row = strip_supernodes(
                &res.transform.stmts[dep.dst].rows[r],
                prog.stmts[dep.dst].num_iters(),
                np,
            );
            let mut row = distance_row(dep, prog, &src_row, &dst_row);
            let n = row.len();
            row[n - 1] -= 1; // δ >= 1 reachable?
            p.add_ineq(row);
            if !p.is_empty() {
                group.push(group_key(dep.src, start));
            }
        }
    }
    let keys: Vec<Vec<Int>> = (0..nstmts).map(|s| group_key(s, start)).collect();
    let tile_par: Vec<Parallelism> = (0..w)
        .map(|j| {
            if keys.iter().all(|k| !seq_groups[j].contains(k)) {
                Parallelism::Parallel
            } else {
                Parallelism::Sequential
            }
        })
        .collect();

    let tile_level = res.transform.rows[start].tile_level + 1;
    for s in 0..res.transform.stmts.len() {
        let nd = res.transform.dim_names[s].len();
        // One supernode per band row with a nonzero iterator part for this
        // statement (a zero row has a single degenerate "tile" and needs no
        // supernode — an unconstrained one would leave codegen unbounded).
        // Per-row supernodes keep every statement's tiled domain exact even
        // when its rows are linearly dependent (a depth-1 statement sunk in
        // a width-2 band: rows `2i` and `i`) or deficient (rows `i+j`, `k`
        // never separate i from j): each supernode is pinned to its own row
        // by τ·sT_j <= φ_j(i) <= τ·sT_j + τ − 1, so sT_j = ⌊φ_j(i)/τ⌋ is
        // uniquely determined and no cross-row constraint can conflict.
        let band_rows: Vec<Vec<Int>> = band
            .rows()
            .map(|r| res.transform.stmts[s].rows[r].clone()) // old width nd+np+1
            .collect();
        let sup_col: Vec<Option<usize>> = {
            let mut next = 0;
            band_rows
                .iter()
                .map(|row| {
                    if row[..nd].iter().any(|&v| v != 0) {
                        next += 1;
                        Some(next - 1)
                    } else {
                        None
                    }
                })
                .collect()
        };
        let count = sup_col.iter().flatten().count();

        // 1. Augment the domain (Ancourt–Irigoin per band row).
        let mut dom = res.transform.domains[s].insert_dims(0, count);
        for (j, row) in band_rows.iter().enumerate() {
            let Some(sc) = sup_col[j] else { continue };
            let tau = sizes[j];
            // lower:  f(i) + f0 − τ·sT_j >= 0
            let mut lo = vec![0; count + nd + np + 1];
            // upper:  τ·sT_j + τ − 1 − f(i) − f0 >= 0
            let mut hi = vec![0; count + nd + np + 1];
            lo[sc] = -tau;
            hi[sc] = tau;
            for d in 0..nd {
                lo[count + d] = row[d];
                hi[count + d] = -row[d];
            }
            for k in 0..np {
                lo[count + nd + k] = row[nd + k];
                hi[count + nd + k] = -row[nd + k];
            }
            lo[count + nd + np] = row[nd + np];
            hi[count + nd + np] = -row[nd + np] + tau - 1;
            dom.add_ineq(lo);
            dom.add_ineq(hi);
        }
        res.transform.domains[s] = dom;

        // 2. Widen every existing scattering row.
        for row in res.transform.stmts[s].rows.iter_mut() {
            for _ in 0..count {
                row.insert(0, 0);
            }
        }
        // 3. Insert the tile-space rows at the band start (build them all
        // first — inserting while reading would shift the row indices).
        let trows: Vec<Vec<Int>> = sup_col
            .iter()
            .map(|sc| {
                let mut trow = vec![0; count + nd + np + 1];
                if let Some(c) = sc {
                    trow[*c] = 1;
                }
                trow
            })
            .collect();
        for trow in trows.into_iter().rev() {
            res.transform.stmts[s].rows.insert(start, trow);
        }
        // 4. Names for the new dims: after the row's leading iterator,
        // de-duplicated (two rows with the same leading dim — e.g. seidel's
        // t, t+i, t+j band — must not shadow each other in emitted C).
        let mut names: Vec<String> = Vec::with_capacity(count);
        for (j, row) in band_rows.iter().enumerate() {
            if sup_col[j].is_none() {
                continue;
            }
            let lead = (0..nd).find(|&d| row[d] != 0).expect("nonzero row");
            let base = format!(
                "{}T{}",
                res.transform.dim_names[s][lead],
                if tile_level > 1 {
                    tile_level.to_string()
                } else {
                    String::new()
                }
            );
            let taken = |n: &str| {
                names.iter().any(|x| x == n) || res.transform.dim_names[s].iter().any(|x| x == n)
            };
            let mut name = base.clone();
            let mut k = 2;
            while taken(&name) {
                name = format!("{base}_{k}");
                k += 1;
            }
            names.push(name);
        }
        for (k, n) in names.into_iter().enumerate() {
            res.transform.dim_names[s].insert(k, n);
        }
        // Original dims stay a suffix; num_orig_dims unchanged.
    }

    // 5. Global row metadata and band bookkeeping.
    for j in (0..w).rev() {
        res.transform.rows.insert(
            start,
            RowInfo {
                kind: RowKind::Loop,
                par: tile_par[j],
                tile_level,
                skewed: false,
            },
        );
        for (s, key) in keys.iter().enumerate().take(nstmts) {
            let p = if seq_groups[j].contains(key) {
                Parallelism::Sequential
            } else {
                Parallelism::Parallel
            };
            res.transform.stmt_par[s].insert(start, p);
        }
    }
    for b in res.transform.bands.iter_mut() {
        if b.start >= start {
            b.start += w;
        }
    }
    let tile_band = Band { start, width: w };
    res.transform.bands.insert(band_idx, tile_band);
    for s in res.satisfied_at.iter_mut().flatten() {
        if *s >= start {
            *s += w;
        }
    }
    if pluto_obs::decision::enabled() {
        pluto_obs::decision::record(pluto_obs::decision::DecisionEvent::RowsInserted {
            at: start,
            count: w,
            tile_level,
        });
    }
    tile_band
}

/// Drops leading supernode columns from a point row, keeping the trailing
/// `[original iters…, params…, 1]` slice expected by `distance_row`.
///
/// # Panics
/// Panics (debug) if any stripped supernode coefficient is non-zero —
/// point rows never reference supernodes.
fn strip_supernodes(row: &[Int], num_orig: usize, np: usize) -> Vec<Int> {
    let keep = num_orig + np + 1;
    let extra = row.len() - keep;
    debug_assert!(row[..extra].iter().all(|&v| v == 0));
    row[extra..].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{find_transformation, PlutoOptions};
    use pluto_ir::{analyze_dependences, Expr, ProgramBuilder, StatementSpec};

    /// `for i in 0..N { for j in 0..N { a[i][j] = a[i-1][j] + a[i][j-1] } }`
    fn sor_like() -> pluto_ir::Program {
        let mut b = ProgramBuilder::new("sor", &["N"]);
        b.add_context_ineq(vec![1, -4]);
        b.add_array("a", 2);
        b.add_statement(StatementSpec {
            name: "S1".into(),
            iters: vec!["i".into(), "j".into()],
            domain_ineqs: vec![
                vec![1, 0, 0, -1],
                vec![-1, 0, 1, -1],
                vec![0, 1, 0, -1],
                vec![0, -1, 1, -1],
            ],
            beta: vec![0, 0, 0],
            write: ("a".into(), vec![vec![1, 0, 0, 0], vec![0, 1, 0, 0]]),
            reads: vec![
                ("a".into(), vec![vec![1, 0, 0, -1], vec![0, 1, 0, 0]]),
                ("a".into(), vec![vec![1, 0, 0, 0], vec![0, 1, 0, -1]]),
            ],
            body: Expr::Read(0) + Expr::Read(1),
        });
        b.build()
    }

    #[test]
    fn tiles_sor_band() {
        let prog = sor_like();
        let deps = analyze_dependences(&prog, true);
        let mut res = find_transformation(&prog, &deps, &PlutoOptions::default()).unwrap();
        assert_eq!(res.transform.bands.len(), 1);
        assert_eq!(res.transform.bands[0].width, 2);
        let tb = tile_band(&mut res, &prog, &deps, 0, &[32, 32]);
        // Now 4 rows: 2 tile + 2 point; 2 bands.
        assert_eq!(res.transform.num_rows(), 4);
        assert_eq!(res.transform.bands.len(), 2);
        assert_eq!(tb, Band { start: 0, width: 2 });
        // Domain gained two supernodes.
        assert_eq!(res.transform.dim_names[0].len(), 4);
        assert_eq!(res.transform.num_orig_dims[0], 2);
        // Both dependences have distance (1,0)/(0,1): both tile rows carry
        // a dependence => doacross, sequential.
        assert_eq!(res.transform.rows[0].par, Parallelism::Sequential);
        assert_eq!(res.transform.rows[1].par, Parallelism::Sequential);
        // Supernode constraint sanity: point (iT=1, jT=0, i=35, j=3, N=100)
        // is in the tiled domain for size 32, but iT=0 is not.
        let d = &res.transform.domains[0];
        assert!(d.contains(&[1, 0, 35, 3, 100]));
        assert!(!d.contains(&[0, 0, 35, 3, 100]));
    }

    /// Matmul-like: all-parallel space loops tile into parallel tile loops.
    #[test]
    fn parallel_tile_rows_detected() {
        let mut b = ProgramBuilder::new("init", &["N"]);
        b.add_context_ineq(vec![1, -4]);
        b.add_array("a", 2);
        b.add_statement(StatementSpec {
            name: "S1".into(),
            iters: vec!["i".into(), "j".into()],
            domain_ineqs: vec![
                vec![1, 0, 0, 0],
                vec![-1, 0, 1, -1],
                vec![0, 1, 0, 0],
                vec![0, -1, 1, -1],
            ],
            beta: vec![0, 0, 0],
            write: ("a".into(), vec![vec![1, 0, 0, 0], vec![0, 1, 0, 0]]),
            reads: vec![],
            body: Expr::Lit(1.0),
        });
        let prog = b.build();
        let deps = analyze_dependences(&prog, true);
        let mut res = find_transformation(&prog, &deps, &PlutoOptions::default()).unwrap();
        let tb = tile_band(&mut res, &prog, &deps, 0, &[16, 16]);
        for r in tb.rows() {
            assert_eq!(res.transform.rows[r].par, Parallelism::Parallel);
        }
    }
}
