//! Transformation reports: which dependence is satisfied where, what each
//! band looks like, and why loops are (not) parallel — the information the
//! paper's figures annotate by hand. [`explain`] renders the human
//! report; [`explain_json`] emits the stable `pluto-explain/1` document
//! (schema in PERFORMANCE.md, pinned by `tests/explain_golden.rs`).

use crate::search::SearchResult;
use crate::types::{Parallelism, RowKind, Transformation};
use pluto_ir::{Dependence, Program};
use pluto_linalg::Int;
use pluto_obs::decision::DecisionLog;
use pluto_obs::json;
use std::fmt::Write as _;

/// The dependence-distance row `δ_k` over the joint space
/// `[src dims, dst dims, params, 1]` of the (possibly supernode-augmented)
/// transformed coordinates — unlike [`crate::farkas::distance_row`], which
/// assumes untiled rows over the original iterators only.
fn aug_distance_row(t: &Transformation, dep: &Dependence, k: usize, np: usize) -> Vec<Int> {
    let nd_s = t.domains[dep.src].num_vars() - np;
    let nd_t = t.domains[dep.dst].num_vars() - np;
    let src_row = &t.stmts[dep.src].rows[k];
    let dst_row = &t.stmts[dep.dst].rows[k];
    let mut out = vec![0; nd_s + nd_t + np + 1];
    for i in 0..nd_s {
        out[i] = -src_row[i];
    }
    out[nd_s..nd_s + nd_t].copy_from_slice(&dst_row[..nd_t]);
    for p in 0..np {
        out[nd_s + nd_t + p] = dst_row[nd_t + p] - src_row[nd_s + p];
    }
    out[nd_s + nd_t + np] = dst_row[nd_t + np] - src_row[nd_s + np];
    out
}

/// Whether `dep` is carried at row `r` of a possibly-tiled transformation:
/// with all outer distances pinned to zero, `δ_r >= 1` is reachable on the
/// joint polyhedron (endpoint domains ∧ parameter context ∧ dependence
/// relation embedded into the trailing original dims).
fn aug_carried_at(prog: &Program, t: &Transformation, dep: &Dependence, r: usize) -> bool {
    let np = prog.num_params();
    let nd_s = t.domains[dep.src].num_vars() - np;
    let nd_t = t.domains[dep.dst].num_vars() - np;
    let ms = t.num_orig_dims[dep.src];
    let mt = t.num_orig_dims[dep.dst];
    let joint = nd_s + nd_t + np;

    let mut set = t.domains[dep.src].insert_dims(nd_s, nd_t);
    set = set.intersect(&t.domains[dep.dst].insert_dims(0, nd_s));
    set = set.intersect(&prog.context.insert_dims(0, nd_s + nd_t));
    let embed = |row: &[Int]| {
        let mut out = vec![0; joint + 1];
        for j in 0..ms {
            out[nd_s - ms + j] = row[j];
        }
        for j in 0..mt {
            out[nd_s + nd_t - mt + j] = row[ms + j];
        }
        for p in 0..np {
            out[nd_s + nd_t + p] = row[ms + mt + p];
        }
        out[joint] = row[ms + mt + np];
        out
    };
    for row in dep.poly.eqs() {
        set.add_eq(embed(row));
    }
    for row in dep.poly.ineqs() {
        set.add_ineq(embed(row));
    }
    for k in 0..r {
        set.add_eq(aug_distance_row(t, dep, k, np));
    }
    let mut row = aug_distance_row(t, dep, r, np);
    row[joint] -= 1; // δ_r − 1 >= 0
    set.add_ineq(row);
    !set.is_empty()
}

/// Renders a full report for a transformation: per-row structure and the
/// dependence satisfaction table (dependence, kind, level, satisfying
/// row, and the rows that still carry it).
///
/// # Examples
/// ```
/// # use pluto::{explain, find_transformation, PlutoOptions};
/// # use pluto_ir::{analyze_dependences, Expr, ProgramBuilder, StatementSpec};
/// # let mut b = ProgramBuilder::new("scan", &["N"]);
/// # b.add_context_ineq(vec![1, -3]);
/// # b.add_array("a", 1);
/// # b.add_statement(StatementSpec {
/// #     name: "S1".into(),
/// #     iters: vec!["i".into()],
/// #     domain_ineqs: vec![vec![1, 0, -1], vec![-1, 1, -1]],
/// #     beta: vec![0, 0],
/// #     write: ("a".into(), vec![vec![1, 0, 0]]),
/// #     reads: vec![("a".into(), vec![vec![1, 0, -1]])],
/// #     body: Expr::Read(0),
/// # });
/// # let prog = b.build();
/// let deps = analyze_dependences(&prog, true);
/// let res = find_transformation(&prog, &deps, &PlutoOptions::default())?;
/// let report = explain(&prog, &deps, &res);
/// assert!(report.contains("satisfied"));
/// # Ok::<(), pluto::PlutoError>(())
/// ```
pub fn explain(prog: &Program, deps: &[Dependence], res: &SearchResult) -> String {
    let t = &res.transform;
    let mut out = String::new();
    let _ = writeln!(out, "transformation for `{}`:", prog.name);
    let _ = writeln!(out, "{}", t.display(prog));

    let _ = writeln!(out, "bands:");
    for (i, b) in t.bands.iter().enumerate() {
        let lvl = t.rows[b.start].tile_level;
        let _ = writeln!(
            out,
            "  band {i}: rows c{}..c{} (width {}, tile level {lvl})",
            b.start + 1,
            b.start + b.width,
            b.width
        );
    }

    let _ = writeln!(out, "rows:");
    for r in 0..t.num_rows() {
        let info = t.rows[r];
        let kind = match info.kind {
            RowKind::Loop => "loop",
            RowKind::Scalar => "scalar",
        };
        let par = match info.par {
            Parallelism::Parallel => "parallel",
            Parallelism::Vector => "vector",
            Parallelism::Sequential => "sequential",
        };
        // DESIGN.md §6 terminology: tile-band rows (supernode loops from
        // Algorithm 1) and the wavefront-skewed sum row (Algorithm 2) are
        // distinct kinds of row and reported distinctly.
        let tile = if info.tile_level > 0 {
            format!(", tile band L{}", info.tile_level)
        } else if info.kind == RowKind::Loop {
            ", point loop".to_string()
        } else {
            String::new()
        };
        let wave = if info.skewed {
            ", wavefront-skewed"
        } else {
            ""
        };
        let _ = writeln!(out, "  c{}: {kind}, {par}{tile}{wave}", r + 1);
    }

    let _ = writeln!(out, "dependences ({}):", deps.len());
    for (di, d) in deps.iter().enumerate() {
        let src = &prog.stmts[d.src].name;
        let dst = &prog.stmts[d.dst].name;
        let sat = match res.satisfied_at.get(di).copied().flatten() {
            Some(r) => format!("satisfied at c{}", r + 1),
            None => "never strictly satisfied".to_string(),
        };
        let mut carries = Vec::new();
        for r in 0..t.num_rows() {
            if t.rows[r].kind != RowKind::Loop {
                continue;
            }
            if aug_carried_at(prog, t, d, r) {
                carries.push(format!("c{}", r + 1));
            }
        }
        let carried = if carries.is_empty() {
            "carried nowhere".to_string()
        } else {
            format!("carried at {}", carries.join(","))
        };
        let _ = writeln!(
            out,
            "  [{di}] {src} -> {dst} ({}, orig level {}): {sat}; {carried}",
            d.kind, d.level
        );
    }
    out
}

/// Emits the stable `pluto-explain/1` JSON document: transformation rows
/// (kind, parallelism, tile level, wavefront skew), permutable bands, the
/// dependence satisfaction table, decision-log search statistics and the
/// event stream itself. Top-level key order is part of the schema
/// (pinned by `tests/explain_golden.rs`); renaming or reordering keys is
/// a schema break and requires bumping to `pluto-explain/2`.
pub fn explain_json(
    prog: &Program,
    deps: &[Dependence],
    res: &SearchResult,
    log: &DecisionLog,
    kernel: Option<&str>,
) -> String {
    let t = &res.transform;
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"pluto-explain/1\",\n");
    match kernel {
        Some(k) => {
            let _ = writeln!(out, "  \"kernel\": {},", json::escape(k));
        }
        None => out.push_str("  \"kernel\": null,\n"),
    }
    let _ = writeln!(out, "  \"program\": {},", json::escape(&prog.name));

    out.push_str("  \"rows\": [");
    for r in 0..t.num_rows() {
        let info = t.rows[r];
        let kind = match info.kind {
            RowKind::Loop => "loop",
            RowKind::Scalar => "scalar",
        };
        let par = match info.par {
            Parallelism::Parallel => "parallel",
            Parallelism::Vector => "vector",
            Parallelism::Sequential => "sequential",
        };
        let _ = write!(
            out,
            "{}\n    {{\"index\": {r}, \"kind\": \"{kind}\", \"par\": \"{par}\", \
             \"tile_level\": {}, \"skewed\": {}}}",
            if r > 0 { "," } else { "" },
            info.tile_level,
            info.skewed
        );
    }
    out.push_str(if t.num_rows() > 0 { "\n  ],\n" } else { "],\n" });

    out.push_str("  \"bands\": [");
    for (i, b) in t.bands.iter().enumerate() {
        let _ = write!(
            out,
            "{}\n    {{\"start\": {}, \"width\": {}, \"tile_level\": {}}}",
            if i > 0 { "," } else { "" },
            b.start,
            b.width,
            t.rows[b.start].tile_level
        );
    }
    out.push_str(if t.bands.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });

    out.push_str("  \"dependences\": [");
    for (di, d) in deps.iter().enumerate() {
        let sat = match res.satisfied_at.get(di).copied().flatten() {
            Some(r) => r.to_string(),
            None => "null".to_string(),
        };
        let carries: Vec<String> = (0..t.num_rows())
            .filter(|&r| t.rows[r].kind == RowKind::Loop && aug_carried_at(prog, t, d, r))
            .map(|r| r.to_string())
            .collect();
        let _ = write!(
            out,
            "{}\n    {{\"index\": {di}, \"src\": {}, \"dst\": {}, \"kind\": \"{}\", \
             \"orig_level\": {}, \"satisfied_at\": {sat}, \"carried_at\": [{}]}}",
            if di > 0 { "," } else { "" },
            json::escape(&prog.stmts[d.src].name),
            json::escape(&prog.stmts[d.dst].name),
            d.kind,
            d.level,
            carries.join(", ")
        );
    }
    out.push_str(if deps.is_empty() { "],\n" } else { "\n  ],\n" });

    let s = log.stats();
    let _ = writeln!(
        out,
        "  \"stats\": {{\"rows_solved\": {}, \"candidates_rejected\": {}, \"scc_cuts\": {}, \
         \"row_solve_failures\": {}, \"feautrier_fallbacks\": {}}},",
        s.rows_solved,
        s.candidates_rejected,
        s.scc_cuts,
        s.row_solve_failures,
        s.feautrier_fallbacks
    );
    let _ = writeln!(out, "  \"dropped_events\": {},", log.dropped);
    let _ = writeln!(out, "  \"events\": {}", log.events_json("  "));
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{find_transformation, PlutoOptions};
    use pluto_ir::{analyze_dependences, Expr, ProgramBuilder, StatementSpec};

    #[test]
    fn explain_reports_structure() {
        let mut b = ProgramBuilder::new("sor", &["N"]);
        b.add_context_ineq(vec![1, -4]);
        b.add_array("a", 2);
        b.add_statement(StatementSpec {
            name: "S1".into(),
            iters: vec!["i".into(), "j".into()],
            domain_ineqs: vec![
                vec![1, 0, 0, -1],
                vec![-1, 0, 1, -1],
                vec![0, 1, 0, -1],
                vec![0, -1, 1, -1],
            ],
            beta: vec![0, 0, 0],
            write: ("a".into(), vec![vec![1, 0, 0, 0], vec![0, 1, 0, 0]]),
            reads: vec![
                ("a".into(), vec![vec![1, 0, 0, -1], vec![0, 1, 0, 0]]),
                ("a".into(), vec![vec![1, 0, 0, 0], vec![0, 1, 0, -1]]),
            ],
            body: Expr::Read(0) + Expr::Read(1),
        });
        let prog = b.build();
        let deps = analyze_dependences(&prog, true);
        let res = find_transformation(&prog, &deps, &PlutoOptions::default()).unwrap();
        let report = explain(&prog, &deps, &res);
        assert!(report.contains("band 0"));
        assert!(report.contains("S1 -> S1"));
        assert!(report.contains("carried at"));
        assert!(report.contains("satisfied at"));
        // Satellite: point rows are reported as such (no tiling ran here).
        assert!(report.contains("point loop"));
    }

    #[test]
    fn explain_reports_tile_and_wavefront_rows_distinctly() {
        let mut b = ProgramBuilder::new("sor", &["N"]);
        b.add_context_ineq(vec![1, -4]);
        b.add_array("a", 2);
        b.add_statement(StatementSpec {
            name: "S1".into(),
            iters: vec!["i".into(), "j".into()],
            domain_ineqs: vec![
                vec![1, 0, 0, -1],
                vec![-1, 0, 1, -1],
                vec![0, 1, 0, -1],
                vec![0, -1, 1, -1],
            ],
            beta: vec![0, 0, 0],
            write: ("a".into(), vec![vec![1, 0, 0, 0], vec![0, 1, 0, 0]]),
            reads: vec![
                ("a".into(), vec![vec![1, 0, 0, -1], vec![0, 1, 0, 0]]),
                ("a".into(), vec![vec![1, 0, 0, 0], vec![0, 1, 0, -1]]),
            ],
            body: Expr::Read(0) + Expr::Read(1),
        });
        let prog = b.build();
        let o = crate::Optimizer::new()
            .tile_size(16)
            .optimize(&prog)
            .unwrap();
        let report = explain(&prog, &o.deps, &o.result);
        // SOR tiles into a 2-row tile band whose first row is then
        // wavefront-skewed: both facts appear per-row.
        assert!(report.contains("tile band L1"), "{report}");
        assert!(report.contains("wavefront-skewed"), "{report}");
        assert!(report.contains("point loop"), "{report}");
    }

    #[test]
    fn explain_json_is_valid_and_complete() {
        let mut b = ProgramBuilder::new("scan", &["N"]);
        b.add_context_ineq(vec![1, -3]);
        b.add_array("a", 1);
        b.add_statement(StatementSpec {
            name: "S1".into(),
            iters: vec!["i".into()],
            domain_ineqs: vec![vec![1, 0, -1], vec![-1, 1, -1]],
            beta: vec![0, 0],
            write: ("a".into(), vec![vec![1, 0, 0]]),
            reads: vec![("a".into(), vec![vec![1, 0, -1]])],
            body: Expr::Read(0),
        });
        let prog = b.build();
        let deps = analyze_dependences(&prog, true);
        let res = find_transformation(&prog, &deps, &PlutoOptions::default()).unwrap();
        let doc = explain_json(&prog, &deps, &res, &DecisionLog::default(), Some("scan.c"));
        let v = json::parse(&doc).expect("valid JSON");
        assert_eq!(v.get("schema").unwrap().as_str(), Some("pluto-explain/1"));
        assert_eq!(v.get("kernel").unwrap().as_str(), Some("scan.c"));
        assert_eq!(
            v.get("rows").unwrap().as_array().unwrap().len(),
            res.transform.num_rows()
        );
        assert_eq!(
            v.get("dependences").unwrap().as_array().unwrap().len(),
            deps.len()
        );
        assert!(v.get("stats").unwrap().get("rows_solved").is_some());
        assert!(v.get("events").unwrap().as_array().is_some());
    }
}
