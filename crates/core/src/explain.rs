//! Human-readable transformation reports: which dependence is satisfied
//! where, what each band looks like, and why loops are (not) parallel —
//! the information the paper's figures annotate by hand.

use crate::farkas::carried_at;
use crate::search::SearchResult;
use crate::types::{Parallelism, RowKind};
use pluto_ir::{Dependence, Program};
use std::fmt::Write as _;

/// Renders a full report for a transformation: per-row structure and the
/// dependence satisfaction table (dependence, kind, level, satisfying
/// row, and the rows that still carry it).
///
/// # Examples
/// ```
/// # use pluto::{explain, find_transformation, PlutoOptions};
/// # use pluto_ir::{analyze_dependences, Expr, ProgramBuilder, StatementSpec};
/// # let mut b = ProgramBuilder::new("scan", &["N"]);
/// # b.add_context_ineq(vec![1, -3]);
/// # b.add_array("a", 1);
/// # b.add_statement(StatementSpec {
/// #     name: "S1".into(),
/// #     iters: vec!["i".into()],
/// #     domain_ineqs: vec![vec![1, 0, -1], vec![-1, 1, -1]],
/// #     beta: vec![0, 0],
/// #     write: ("a".into(), vec![vec![1, 0, 0]]),
/// #     reads: vec![("a".into(), vec![vec![1, 0, -1]])],
/// #     body: Expr::Read(0),
/// # });
/// # let prog = b.build();
/// let deps = analyze_dependences(&prog, true);
/// let res = find_transformation(&prog, &deps, &PlutoOptions::default())?;
/// let report = explain(&prog, &deps, &res);
/// assert!(report.contains("satisfied"));
/// # Ok::<(), pluto::PlutoError>(())
/// ```
pub fn explain(prog: &Program, deps: &[Dependence], res: &SearchResult) -> String {
    let t = &res.transform;
    let mut out = String::new();
    let _ = writeln!(out, "transformation for `{}`:", prog.name);
    let _ = writeln!(out, "{}", t.display(prog));

    let _ = writeln!(out, "bands:");
    for (i, b) in t.bands.iter().enumerate() {
        let lvl = t.rows[b.start].tile_level;
        let _ = writeln!(
            out,
            "  band {i}: rows c{}..c{} (width {}, tile level {lvl})",
            b.start + 1,
            b.start + b.width,
            b.width
        );
    }

    let _ = writeln!(out, "rows:");
    for r in 0..t.num_rows() {
        let info = t.rows[r];
        let kind = match info.kind {
            RowKind::Loop => "loop",
            RowKind::Scalar => "scalar",
        };
        let par = match info.par {
            Parallelism::Parallel => "parallel",
            Parallelism::Vector => "vector",
            Parallelism::Sequential => "sequential",
        };
        let _ = writeln!(out, "  c{}: {kind}, {par}", r + 1);
    }

    let _ = writeln!(out, "dependences ({}):", deps.len());
    for (di, d) in deps.iter().enumerate() {
        let src = &prog.stmts[d.src].name;
        let dst = &prog.stmts[d.dst].name;
        let sat = match res.satisfied_at.get(di).copied().flatten() {
            Some(r) => format!("satisfied at c{}", r + 1),
            None => "never strictly satisfied".to_string(),
        };
        let mut carries = Vec::new();
        for r in 0..t.num_rows() {
            if t.rows[r].kind != RowKind::Loop {
                continue;
            }
            if carried_at(d, prog, &t.stmts[d.src].rows, &t.stmts[d.dst].rows, r) {
                carries.push(format!("c{}", r + 1));
            }
        }
        let carried = if carries.is_empty() {
            "carried nowhere".to_string()
        } else {
            format!("carried at {}", carries.join(","))
        };
        let _ = writeln!(
            out,
            "  [{di}] {src} -> {dst} ({}, orig level {}): {sat}; {carried}",
            d.kind, d.level
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{find_transformation, PlutoOptions};
    use pluto_ir::{analyze_dependences, Expr, ProgramBuilder, StatementSpec};

    #[test]
    fn explain_reports_structure() {
        let mut b = ProgramBuilder::new("sor", &["N"]);
        b.add_context_ineq(vec![1, -4]);
        b.add_array("a", 2);
        b.add_statement(StatementSpec {
            name: "S1".into(),
            iters: vec!["i".into(), "j".into()],
            domain_ineqs: vec![
                vec![1, 0, 0, -1],
                vec![-1, 0, 1, -1],
                vec![0, 1, 0, -1],
                vec![0, -1, 1, -1],
            ],
            beta: vec![0, 0, 0],
            write: ("a".into(), vec![vec![1, 0, 0, 0], vec![0, 1, 0, 0]]),
            reads: vec![
                ("a".into(), vec![vec![1, 0, 0, -1], vec![0, 1, 0, 0]]),
                ("a".into(), vec![vec![1, 0, 0, 0], vec![0, 1, 0, -1]]),
            ],
            body: Expr::Read(0) + Expr::Read(1),
        });
        let prog = b.build();
        let deps = analyze_dependences(&prog, true);
        let res = find_transformation(&prog, &deps, &PlutoOptions::default()).unwrap();
        let report = explain(&prog, &deps, &res);
        assert!(report.contains("band 0"));
        assert!(report.contains("S1 -> S1"));
        assert!(report.contains("carried at"));
        assert!(report.contains("satisfied at"));
    }
}
