//! Transformation representation: statement-wise scatterings, row metadata,
//! permutable bands.

use pluto_ir::Program;
use pluto_linalg::Int;
use pluto_poly::ConstraintSet;
use std::fmt;

/// Classification of one scattering row (shared across statements — the
/// paper notes every statement's transformation has the same number of
/// rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowKind {
    /// A real loop dimension (an affine hyperplane per statement).
    Loop,
    /// A scalar (constant) dimension introduced by DDG cutting / fusion
    /// structure — never a loop in generated code.
    Scalar,
}

/// Parallelism classification of a loop row, computed from dependence
/// satisfaction (paper Sec. 3.2 "outer space and inner time" and Sec. 5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// Carries at least one dependence: must run sequentially (or be the
    /// wavefront row of a pipelined band).
    Sequential,
    /// Carries no dependence: may be marked `omp parallel for`.
    Parallel,
    /// Parallel and moved innermost for vectorization (Sec. 5.4).
    Vector,
}

/// Metadata for one scattering row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowInfo {
    /// Loop or scalar dimension.
    pub kind: RowKind,
    /// Parallelism of the row (meaningful for loop rows).
    pub par: Parallelism,
    /// Tiling level that produced this row: 0 = point (intra-tile or
    /// untiled) loop, 1 = first tile level (e.g. L1), 2 = second, …
    pub tile_level: u8,
    /// Whether the row was skewed by the tile-space wavefront (the
    /// Algorithm 2 sum row `φT¹ + … + φT^{m+1}` that carries every
    /// dependence of its band so the rows below it run in parallel) —
    /// DESIGN.md §6's "wavefront row", reported distinctly from plain
    /// tile rows by `explain`.
    pub skewed: bool,
}

impl RowInfo {
    /// A freshly found sequential point-loop row.
    pub fn loop_row() -> RowInfo {
        RowInfo {
            kind: RowKind::Loop,
            par: Parallelism::Sequential,
            tile_level: 0,
            skewed: false,
        }
    }

    /// A scalar (fusion-structure) row.
    pub fn scalar_row() -> RowInfo {
        RowInfo {
            kind: RowKind::Scalar,
            par: Parallelism::Sequential,
            tile_level: 0,
            skewed: false,
        }
    }
}

/// A maximal set of consecutive scattering rows that are mutually
/// permutable (every dependence live at the band start has a non-negative
/// component on every row) — the unit of tiling (paper Sec. 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Band {
    /// First row of the band.
    pub start: usize,
    /// Number of rows in the band.
    pub width: usize,
}

impl Band {
    /// Rows covered by the band.
    pub fn rows(&self) -> std::ops::Range<usize> {
        self.start..self.start + self.width
    }
}

/// The scattering of a single statement: one affine row per global
/// scattering dimension, each over `[domain dims…, params…, 1]`.
///
/// Before tiling the domain dims are exactly the statement's original
/// iterators; tiling prepends supernode dims to both the domain and the
/// rows' coefficient space (paper Algorithm 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StmtScattering {
    /// `rows[r]` has width `num_dims + num_params + 1`.
    pub rows: Vec<Vec<Int>>,
}

impl StmtScattering {
    /// Number of scattering rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }
}

/// A complete statement-wise affine transformation of a program, ready for
/// tiling, wavefronting and code generation.
#[derive(Debug, Clone)]
pub struct Transformation {
    /// Per-statement scatterings (aligned with `Program::stmts`).
    pub stmts: Vec<StmtScattering>,
    /// Per-statement (possibly supernode-augmented) domains over
    /// `[dims…, params…, 1]`.
    pub domains: Vec<ConstraintSet>,
    /// Per-statement names for the domain dims (supernodes first).
    pub dim_names: Vec<Vec<String>>,
    /// Per-statement count of trailing *original* iterator dims (the suffix
    /// of the domain dims that statement bodies index with).
    pub num_orig_dims: Vec<usize>,
    /// Global row metadata (same length for every statement).
    pub rows: Vec<RowInfo>,
    /// Per-statement, per-row parallelism (`stmt_par[s][r]`). Statements in
    /// different fission groups (separated by scalar rows) can have
    /// different parallelism at the same row — e.g. gemver's four
    /// distributed nests each parallelize a different loop. The global
    /// `rows[r].par` stays the conservative all-statements value used by
    /// the band-level passes; the code generator consults `stmt_par` for
    /// the statements actually sharing each loop.
    pub stmt_par: Vec<Vec<Parallelism>>,
    /// Permutable bands over row indices.
    pub bands: Vec<Band>,
}

impl Transformation {
    /// Number of global scattering rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Builds the per-statement parallelism table from the global row
    /// metadata (used by constructors that have no finer information).
    pub fn uniform_stmt_par(rows: &[RowInfo], num_stmts: usize) -> Vec<Vec<Parallelism>> {
        vec![rows.iter().map(|r| r.par).collect(); num_stmts]
    }

    /// Parallelism of row `r` as seen by statement `s`.
    pub fn par_for(&self, s: usize, r: usize) -> Parallelism {
        self.stmt_par
            .get(s)
            .and_then(|v| v.get(r))
            .copied()
            .unwrap_or(self.rows[r].par)
    }

    /// Evaluates statement `s`'s scattering row `r` at a concrete point
    /// `[dims…, params…]` (implicit trailing 1).
    pub fn eval_row(&self, s: usize, r: usize, vals: &[Int]) -> Int {
        let row = &self.stmts[s].rows[r];
        debug_assert_eq!(row.len(), vals.len() + 1);
        let mut v = row[vals.len()];
        for (k, &x) in vals.iter().enumerate() {
            v += row[k] * x;
        }
        v
    }

    /// Renders the transformation for diagnostics (one block per
    /// statement, as in the paper's figures).
    pub fn display(&self, prog: &Program) -> String {
        let mut out = String::new();
        for (s, st) in self.stmts.iter().enumerate() {
            out.push_str(&format!("{}:\n", prog.stmts[s].name));
            let names = &self.dim_names[s];
            for (r, row) in st.rows.iter().enumerate() {
                let info = self.rows[r];
                let nd = names.len();
                let np = prog.num_params();
                let mut terms = String::new();
                for (k, &a) in row[..nd].iter().enumerate() {
                    if a == 0 {
                        continue;
                    }
                    push_term(&mut terms, a, &names[k]);
                }
                for (k, &a) in row[nd..nd + np].iter().enumerate() {
                    if a == 0 {
                        continue;
                    }
                    push_term(&mut terms, a, &prog.params[k]);
                }
                let c = row[nd + np];
                if c != 0 || terms.is_empty() {
                    push_const(&mut terms, c);
                }
                let tag = match (info.kind, self.par_for(s, r)) {
                    (RowKind::Scalar, _) => "scalar",
                    (_, Parallelism::Parallel) => "parallel",
                    (_, Parallelism::Vector) => "vector",
                    (_, Parallelism::Sequential) => "seq",
                };
                let tile = if info.tile_level > 0 {
                    format!(" tileL{}", info.tile_level)
                } else {
                    String::new()
                };
                let wave = if info.skewed { " wave" } else { "" };
                out.push_str(&format!("  c{} = {terms}  [{tag}{tile}{wave}]\n", r + 1));
            }
        }
        out
    }
}

fn push_term(s: &mut String, a: Int, name: &str) {
    if !s.is_empty() {
        s.push_str(if a > 0 { " + " } else { " - " });
    } else if a < 0 {
        s.push('-');
    }
    let m = a.abs();
    if m != 1 {
        s.push_str(&format!("{m}*"));
    }
    s.push_str(name);
}

fn push_const(s: &mut String, c: Int) {
    if s.is_empty() {
        s.push_str(&c.to_string());
    } else {
        s.push_str(if c > 0 { " + " } else { " - " });
        s.push_str(&c.abs().to_string());
    }
}

impl fmt::Display for Transformation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Transformation({} rows, {} bands)",
            self.num_rows(),
            self.bands.len()
        )
    }
}
