//! The Pluto transformation search (paper Sec. 3): iteratively find
//! statement-wise affine hyperplanes by lexmin ILP, force linear
//! independence, detect permutable bands, and cut the DDG with scalar
//! dimensions when stuck (fusion structure).

use crate::farkas::{
    bounding_form, carried_at, delta_form, farkas_eliminate, satisfies_strictly, VarMap,
};
use crate::types::{Band, Parallelism, RowInfo, StmtScattering, Transformation};
use pluto_ilp::IlpProblem;
use pluto_ir::{DepKind, Dependence, Program};
use pluto_linalg::{Int, IntMatrix};
use pluto_obs::counters;
use pluto_obs::decision::{self, CutReason, DecisionEvent, RejectReason};
use pluto_obs::hist;
use pluto_poly::ConstraintSet;
use std::fmt;

/// Fusion policy for DDG cutting (mirrors the Pluto tool's options).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FusionPolicy {
    /// Cut between strongly connected components only when the ILP has no
    /// solution (the paper's default behaviour, maximizing fusion).
    #[default]
    Smart,
    /// Separate all SCCs with a scalar dimension up front (no fusion
    /// across dependent loop nests — the "existing techniques" baseline of
    /// the MVT experiment).
    NoFuse,
}

/// Options controlling the search.
#[derive(Debug, Clone)]
pub struct PlutoOptions {
    /// Consider read-after-read dependences in the bounding objective
    /// (Sec. 4.1). On by default, as in the paper.
    pub use_input_deps: bool,
    /// Fusion policy.
    pub fuse: FusionPolicy,
    /// Hard cap on total scattering rows (safety valve).
    pub max_rows: usize,
    /// Warm-start the per-row lexmin sequence from a once-solved band
    /// base (DESIGN.md §11). Output-invariant — the integer lexmin is
    /// unique — so this is a pure speed knob; `--no-solver-cache` turns
    /// it off for differentials.
    pub warm_start: bool,
}

impl Default for PlutoOptions {
    fn default() -> PlutoOptions {
        PlutoOptions {
            use_input_deps: true,
            fuse: FusionPolicy::Smart,
            max_rows: 32,
            warm_start: true,
        }
    }
}

/// Failure modes of the search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlutoError {
    /// No legal hyperplane exists under the non-negative-coefficient
    /// restriction and the DDG cannot be cut further.
    NoSolution {
        /// Row index at which the search stalled.
        at_row: usize,
    },
    /// The row cap was exceeded.
    TooManyRows,
}

impl fmt::Display for PlutoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlutoError::NoSolution { at_row } => {
                write!(f, "no legal affine transformation found at row {at_row}")
            }
            PlutoError::TooManyRows => write!(f, "scattering row limit exceeded"),
        }
    }
}

impl std::error::Error for PlutoError {}

/// Result of the transformation search (pre-tiling).
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The transformation: one hyperplane/scalar row per level.
    pub transform: Transformation,
    /// For each dependence (aligned with the input slice), the first row
    /// that strictly satisfies it.
    pub satisfied_at: Vec<Option<usize>>,
}

/// Runs the Pluto algorithm on a program and its dependences.
///
/// # Errors
/// Returns [`PlutoError`] if the search stalls (see variants).
pub fn find_transformation(
    prog: &Program,
    deps: &[Dependence],
    opts: &PlutoOptions,
) -> Result<SearchResult, PlutoError> {
    Search::new(prog, deps, opts).run()
}

struct Search<'a> {
    prog: &'a Program,
    deps: &'a [Dependence],
    opts: &'a PlutoOptions,
    vm: VarMap,
    /// Per-statement rows over `[iters…, params…, 1]`.
    rows: Vec<Vec<Vec<Int>>>,
    row_infos: Vec<RowInfo>,
    bands: Vec<Band>,
    band_start: usize,
    /// Independent hyperplane iterate-coefficient rows per statement.
    h: Vec<IntMatrix>,
    satisfied_at: Vec<Option<usize>>,
    /// Cached Farkas systems per dependence: (legality, bounding, reverse).
    legality_cache: Vec<Option<ConstraintSet>>,
    bounding_cache: Vec<Option<ConstraintSet>>,
    reverse_cache: Vec<Option<ConstraintSet>>,
    /// Warm-start basis for the current band's dependence system, with
    /// its inequality-row count (for ledger telemetry). The live
    /// dependence set — and hence the legality + bounding rows — is
    /// constant within a band (`live_in_band` only compares against
    /// `band_start`), so the base is solved once per band and each row's
    /// statement-structure constraints extend it. Cleared whenever the
    /// band closes.
    band_base: Option<(pluto_ilp::WarmBase, usize)>,
    /// Telemetry from the last assembled lexmin ILP (decision log only).
    last_ilp_rows: usize,
    last_ilp_cols: usize,
    last_orth: usize,
}

impl<'a> Search<'a> {
    fn new(prog: &'a Program, deps: &'a [Dependence], opts: &'a PlutoOptions) -> Search<'a> {
        let vm = VarMap::new(prog);
        let n = prog.stmts.len();
        Search {
            prog,
            deps,
            opts,
            vm,
            rows: vec![Vec::new(); n],
            row_infos: Vec::new(),
            bands: Vec::new(),
            band_start: 0,
            h: prog
                .stmts
                .iter()
                .map(|s| IntMatrix::empty(s.num_iters()))
                .collect(),
            satisfied_at: vec![None; deps.len()],
            legality_cache: vec![None; deps.len()],
            bounding_cache: vec![None; deps.len()],
            reverse_cache: vec![None; deps.len()],
            band_base: None,
            last_ilp_rows: 0,
            last_ilp_cols: 0,
            last_orth: 0,
        }
    }

    fn run(mut self) -> Result<SearchResult, PlutoError> {
        if self.opts.fuse == FusionPolicy::NoFuse {
            // Separate all SCCs up front with a scalar dimension.
            self.cut_sccs(false);
        }
        loop {
            let dims_done = self.all_dims_found();
            let deps_done = self.all_legality_satisfied();
            if dims_done && deps_done {
                break;
            }
            if self.row_infos.len() >= self.opts.max_rows {
                return Err(PlutoError::TooManyRows);
            }
            if dims_done {
                // Only loop-independent orderings remain: cut.
                if self.cut_sccs(true) {
                    continue;
                }
                return Err(PlutoError::NoSolution {
                    at_row: self.row_infos.len(),
                });
            }
            match self.solve_for_row() {
                Some(sol) => self.commit_row(&sol),
                None => {
                    // Try cutting the DDG between SCCs first.
                    if self.opts.fuse == FusionPolicy::Smart && self.cut_sccs(true) {
                        continue;
                    }
                    // Close the current band and retry with satisfied
                    // dependences dropped from the legality set.
                    if self.band_start < self.row_infos.len() {
                        self.close_band();
                        continue;
                    }
                    if self.cut_sccs(true) {
                        continue;
                    }
                    if deps_done {
                        // Every legality dependence is strictly satisfied;
                        // the only shortfall is statements with fewer
                        // independent rows than dimensions (the remaining
                        // hyperplanes may need coefficients outside the
                        // non-negative search space). A rank-deficient
                        // scattering is fine: codegen scans the undetermined
                        // dims as innermost loops, and with no live
                        // dependence any such order is legal.
                        break;
                    }
                    return Err(PlutoError::NoSolution {
                        at_row: self.row_infos.len(),
                    });
                }
            }
        }
        self.close_band();
        let stmt_par = self.compute_parallelism();
        let nstmts = self.prog.stmts.len();
        for (r, info) in self.row_infos.iter_mut().enumerate() {
            if info.kind == crate::types::RowKind::Loop
                && (0..nstmts).all(|s| stmt_par[s][r] == Parallelism::Parallel)
            {
                info.par = Parallelism::Parallel;
            }
        }
        let transform = Transformation {
            stmts: self
                .rows
                .iter()
                .map(|rs| StmtScattering { rows: rs.clone() })
                .collect(),
            domains: self.prog.stmts.iter().map(|s| s.domain.clone()).collect(),
            dim_names: self.prog.stmts.iter().map(|s| s.iters.clone()).collect(),
            num_orig_dims: self.prog.stmts.iter().map(|s| s.num_iters()).collect(),
            rows: self.row_infos,
            stmt_par,
            bands: self.bands,
        };
        Ok(SearchResult {
            transform,
            satisfied_at: self.satisfied_at,
        })
    }

    fn all_dims_found(&self) -> bool {
        (0..self.prog.stmts.len()).all(|s| self.stmt_done(s))
    }

    fn stmt_done(&self, s: usize) -> bool {
        self.h[s].num_rows() == self.prog.stmts[s].num_iters()
    }

    fn all_legality_satisfied(&self) -> bool {
        self.deps
            .iter()
            .zip(&self.satisfied_at)
            .all(|(d, s)| !d.kind.constrains_legality() || s.is_some())
    }

    /// A dependence constrains the current band if it was not strictly
    /// satisfied before the band start.
    fn live_in_band(&self, di: usize) -> bool {
        match self.satisfied_at[di] {
            None => true,
            Some(r) => r >= self.band_start,
        }
    }

    /// Assembles the dependence part of the row ILP: legality + bounding
    /// Farkas systems for every dependence live in the current band.
    /// Constant across the rows of one band, which is what makes the
    /// warm-start base sound to reuse.
    fn build_dep_ilp(&mut self) -> IlpProblem {
        let mut ilp = IlpProblem::new(self.vm.total());
        for di in 0..self.deps.len() {
            if !self.live_in_band(di) {
                continue;
            }
            let dep = &self.deps[di];
            if dep.kind.constrains_legality() {
                let sys = self.legality_cache[di].get_or_insert_with(|| {
                    let _t = hist::LEGALITY.timer();
                    counters::LEGALITY_SYSTEMS.bump();
                    let form = delta_form(dep, self.prog, &self.vm);
                    farkas_eliminate(&dep.poly, &form, self.vm.total())
                });
                add_system(&mut ilp, sys);
            }
            if dep.kind == DepKind::Input && !self.opts.use_input_deps {
                continue;
            }
            let bsys = self.bounding_cache[di].get_or_insert_with(|| {
                let _t = hist::BOUNDING.timer();
                counters::BOUNDING_SYSTEMS.bump();
                let form = bounding_form(dep, self.prog, &self.vm, false);
                farkas_eliminate(&dep.poly, &form, self.vm.total())
            });
            add_system(&mut ilp, bsys);
            if dep.kind == DepKind::Input {
                let rsys = self.reverse_cache[di].get_or_insert_with(|| {
                    let _t = hist::BOUNDING.timer();
                    counters::BOUNDING_SYSTEMS.bump();
                    let form = bounding_form(dep, self.prog, &self.vm, true);
                    farkas_eliminate(&dep.poly, &form, self.vm.total())
                });
                add_system(&mut ilp, rsys);
            }
        }
        ilp
    }

    /// Per-statement structure constraints for the current row — the
    /// trivial-solution exclusion Σ c_i >= 1 (Sec. 4.2) and linear
    /// independence w.r.t. rows already found (Eq. 6) — as raw
    /// inequality rows, so they can extend either a cold ILP or a warm
    /// band base. Returns the rows and the orthogonality-row count (for
    /// the decision log).
    fn structure_rows(&self) -> (Vec<Vec<Int>>, usize) {
        let mut extras: Vec<Vec<Int>> = Vec::new();
        let mut orth = 0usize;
        for s in 0..self.prog.stmts.len() {
            let m = self.vm.num_iters(s);
            if self.stmt_done(s) {
                // A completed (lower-dimensional) statement is "sunk" into
                // the band (paper Sec. 7, LU): its coefficients stay free
                // (non-negative) so legality can pick any — possibly
                // linearly dependent — hyperplane for it, and lexmin keeps
                // them minimal.
                continue;
            }
            // Avoid the trivial zero solution: Σ c_i >= 1 (Sec. 4.2).
            let mut sum = vec![0; self.vm.total() + 1];
            for i in 0..m {
                sum[self.vm.c(s, i)] = 1;
            }
            sum[self.vm.total()] = -1;
            extras.push(sum);
            // Linear independence w.r.t. rows already found (Eq. 6).
            if self.h[s].num_rows() > 0 {
                let hperp = self.h[s].to_rat().orthogonal_complement().to_int_rows();
                let mut total = vec![0; self.vm.total() + 1];
                let mut any = false;
                for r in hperp.rows() {
                    if r.iter().all(|&v| v == 0) {
                        continue;
                    }
                    any = true;
                    let mut row = vec![0; self.vm.total() + 1];
                    for (i, &v) in r.iter().enumerate() {
                        row[self.vm.c(s, i)] = v;
                        total[self.vm.c(s, i)] += v;
                    }
                    extras.push(row); // h⊥_i · c >= 0
                    orth += 1;
                }
                if any {
                    total[self.vm.total()] = -1;
                    extras.push(total); // Σ h⊥_i · c >= 1
                    orth += 1;
                }
            }
        }
        (extras, orth)
    }

    fn solve_for_row(&mut self) -> Option<Vec<Int>> {
        counters::SEARCH_ROW_SOLVES.bump();
        let (extras, orth) = self.structure_rows();
        self.last_ilp_cols = self.vm.total();
        self.last_orth = orth;
        let sol = if self.opts.warm_start {
            // Solve the band's dependence system once; every row of the
            // band (this one included) extends that basis with its own
            // structure rows. Bit-identical to the cold path: the same
            // rows reach the solver and the integer lexmin is unique.
            let reused = self.band_base.is_some();
            if !reused {
                let ilp = self.build_dep_ilp();
                let base_rows = ilp.num_ineqs();
                let base = {
                    let _t = hist::SEARCH_ROW.timer();
                    ilp.solve_base()
                };
                match base {
                    Ok(b) => self.band_base = Some((b, base_rows)),
                    Err(_) => {
                        // Pivot/cut budget blown on the shared part:
                        // report the row unsolvable, as the cold path's
                        // `.ok()` would.
                        self.last_ilp_rows = base_rows + extras.len();
                        if decision::enabled() {
                            decision::record(DecisionEvent::RowSolveFailed {
                                row: self.row_infos.len(),
                            });
                        }
                        return None;
                    }
                }
            }
            let base_rows = self.band_base.as_ref().expect("band base just ensured").1;
            self.last_ilp_rows = base_rows + extras.len();
            if reused {
                counters::ILP_WARM_STARTS.bump();
            }
            let res = {
                let _t = hist::SEARCH_ROW_WARM.timer();
                self.band_base
                    .as_ref()
                    .expect("band base just ensured")
                    .0
                    .lexmin_with(&extras)
            };
            res.ok().flatten()
        } else {
            let mut ilp = self.build_dep_ilp();
            for row in &extras {
                ilp.add_ineq(row.clone());
            }
            self.last_ilp_rows = ilp.num_ineqs();
            let _t = hist::SEARCH_ROW.timer();
            ilp.try_lexmin().ok().flatten()
        };
        if sol.is_none() && decision::enabled() {
            decision::record(DecisionEvent::RowSolveFailed {
                row: self.row_infos.len(),
            });
        }
        sol
    }

    fn commit_row(&mut self, sol: &[Int]) {
        let r = self.row_infos.len();
        let np = self.prog.num_params();
        let rec = decision::enabled();
        let mut hyperplanes: Vec<Vec<i64>> = Vec::new();
        for s in 0..self.prog.stmts.len() {
            let (coeffs, c0) = self.vm.stmt_solution(s, sol);
            let mut row = coeffs.clone();
            row.extend(std::iter::repeat_n(0, np));
            row.push(c0);
            self.rows[s].push(row);
            let zero = coeffs.iter().all(|&v| v == 0);
            let independent = !zero && self.h[s].is_independent(&coeffs);
            if rec {
                let mut hp: Vec<i64> = coeffs.iter().map(|&v| v as i64).collect();
                hp.push(c0 as i64);
                hyperplanes.push(hp);
                if !independent {
                    decision::record(DecisionEvent::CandidateRejected {
                        row: r,
                        stmt: s,
                        reason: if zero {
                            RejectReason::Zero
                        } else {
                            RejectReason::Duplicate
                        },
                    });
                }
            }
            if independent {
                self.h[s].push_row(coeffs);
            }
        }
        self.row_infos.push(RowInfo::loop_row());
        let before = rec.then(|| self.satisfied_at.clone());
        self.mark_satisfied(r);
        if let Some(before) = before {
            let newly: Vec<usize> = (0..self.deps.len())
                .filter(|&di| before[di].is_none() && self.satisfied_at[di].is_some())
                .collect();
            let still: Vec<usize> = (0..self.deps.len())
                .filter(|&di| {
                    self.deps[di].kind.constrains_legality() && self.satisfied_at[di].is_none()
                })
                .collect();
            let objective: Vec<i64> = sol.iter().take(np + 1).map(|&v| v as i64).collect();
            decision::record(DecisionEvent::RowSolved {
                row: r,
                ilp_rows: self.last_ilp_rows,
                ilp_cols: self.last_ilp_cols,
                objective,
                hyperplanes,
                newly_satisfied: newly,
                still_carried: still,
                orth_constraints: self.last_orth,
            });
        }
    }

    fn mark_satisfied(&mut self, r: usize) {
        for di in 0..self.deps.len() {
            if self.satisfied_at[di].is_some() {
                continue;
            }
            let dep = &self.deps[di];
            if satisfies_strictly(
                dep,
                self.prog,
                &self.rows[dep.src][r],
                &self.rows[dep.dst][r],
            ) {
                self.satisfied_at[di] = Some(r);
            }
        }
    }

    /// Cuts the DDG between strongly connected components of the
    /// unsatisfied legality subgraph with a scalar dimension. Returns false
    /// if there is only one component (nothing to cut). With
    /// `require_progress`, also refuses a cut that would satisfy no
    /// dependence: such a cut changes nothing the row search can see, so
    /// repeating it would loop until the row limit.
    fn cut_sccs(&mut self, require_progress: bool) -> bool {
        let n = self.prog.stmts.len();
        if n <= 1 {
            return false;
        }
        let mut adj = vec![Vec::new(); n];
        for (di, d) in self.deps.iter().enumerate() {
            if !d.kind.constrains_legality() || self.satisfied_at[di].is_some() {
                continue;
            }
            adj[d.src].push(d.dst);
        }
        let comp = topo_scc(&adj);
        let num_comps = comp.iter().copied().max().map_or(0, |m| m + 1);
        if num_comps <= 1 {
            return false;
        }
        if require_progress
            && !self.deps.iter().zip(&self.satisfied_at).any(|(d, s)| {
                d.kind.constrains_legality() && s.is_none() && comp[d.src] < comp[d.dst]
            })
        {
            return false;
        }
        counters::SCC_CUTS.bump();
        // Close any open band: a scalar dimension separates bands.
        self.close_band();
        let r = self.row_infos.len();
        let np = self.prog.num_params();
        for (s, &c) in comp.iter().enumerate().take(n) {
            let m = self.prog.stmts[s].num_iters();
            let mut row = vec![0; m + np + 1];
            row[m + np] = c as Int;
            self.rows[s].push(row);
        }
        self.row_infos.push(RowInfo::scalar_row());
        // Inter-component dependences are now strictly satisfied.
        let mut newly = Vec::new();
        for (di, d) in self.deps.iter().enumerate() {
            if self.satisfied_at[di].is_none() && comp[d.src] < comp[d.dst] {
                self.satisfied_at[di] = Some(r);
                newly.push(di);
            }
        }
        if decision::enabled() {
            decision::record(DecisionEvent::SccCut {
                row: r,
                reason: if require_progress {
                    CutReason::NoProgress
                } else {
                    CutReason::FusionPolicy
                },
                components: num_comps,
                satisfied: newly,
            });
        }
        self.band_start = self.row_infos.len();
        true
    }

    fn close_band(&mut self) {
        let end = self.row_infos.len();
        if self.band_start < end {
            self.bands.push(Band {
                start: self.band_start,
                width: end - self.band_start,
            });
            if decision::enabled() {
                decision::record(DecisionEvent::BandClosed {
                    start: self.band_start,
                    width: end - self.band_start,
                });
            }
        }
        self.band_start = end;
        // The live dependence set changes with `band_start`, so the
        // warm-start base assembled for the old band is stale.
        self.band_base = None;
    }

    /// Exact per-statement, per-row parallelism: a loop row is parallel
    /// for a statement's *fission group* (statements sharing its scalar-row
    /// prefix — exactly those that share the loop in generated code) iff no
    /// live legality dependence within the group is carried at the row.
    /// Distributed nests thereby keep their own parallel loops even when a
    /// sibling group's reduction serializes the same global row (gemver).
    fn compute_parallelism(&self) -> Vec<Vec<Parallelism>> {
        let nrows = self.row_infos.len();
        let nstmts = self.prog.stmts.len();
        // Scalar-prefix group key of statement s above row r.
        let key = |s: usize, r: usize| -> Vec<Int> {
            (0..r)
                .filter(|&k| self.row_infos[k].kind == crate::types::RowKind::Scalar)
                .map(|k| {
                    let row = &self.rows[s][k];
                    row[row.len() - 1]
                })
                .collect()
        };
        let mut out = vec![vec![Parallelism::Sequential; nrows]; nstmts];
        for (r, info) in self.row_infos.iter().enumerate().take(nrows) {
            if info.kind != crate::types::RowKind::Loop {
                continue;
            }
            let mut group_seq: Vec<Vec<Int>> = Vec::new();
            for (di, dep) in self.deps.iter().enumerate() {
                if !dep.kind.constrains_legality() {
                    continue;
                }
                match self.satisfied_at[di] {
                    Some(s) if s < r => continue, // settled by an outer row
                    _ => {}
                }
                if carried_at(dep, self.prog, &self.rows[dep.src], &self.rows[dep.dst], r) {
                    // A live carried dep has both ends in one group (a
                    // scalar row above r would have satisfied it).
                    group_seq.push(key(dep.src, r));
                }
            }
            for (s, stmt_out) in out.iter_mut().enumerate() {
                if !group_seq.contains(&key(s, r)) {
                    stmt_out[r] = Parallelism::Parallel;
                }
            }
        }
        out
    }
}

fn add_system(ilp: &mut IlpProblem, sys: &ConstraintSet) {
    for e in sys.eqs() {
        ilp.add_eq(e.clone());
    }
    for i in sys.ineqs() {
        ilp.add_ineq(i.clone());
    }
}

/// Condensation of a digraph: returns for each node the index of its SCC in
/// a topological order of the condensation (sources first).
fn topo_scc(adj: &[Vec<usize>]) -> Vec<usize> {
    let n = adj.len();
    // Kosaraju: order by finish time on G, then collect SCCs on Gᵀ.
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for start in 0..n {
        if seen[start] {
            continue;
        }
        // Iterative DFS with an explicit edge-progress stack.
        let mut stack = vec![(start, 0usize)];
        seen[start] = true;
        while let Some(&mut (v, ref mut ei)) = stack.last_mut() {
            if *ei < adj[v].len() {
                let w = adj[v][*ei];
                *ei += 1;
                if !seen[w] {
                    seen[w] = true;
                    stack.push((w, 0));
                }
            } else {
                order.push(v);
                stack.pop();
            }
        }
    }
    let mut radj = vec![Vec::new(); n];
    for (v, outs) in adj.iter().enumerate() {
        for &w in outs {
            radj[w].push(v);
        }
    }
    let mut comp = vec![usize::MAX; n];
    let mut c = 0;
    for &v in order.iter().rev() {
        if comp[v] != usize::MAX {
            continue;
        }
        let mut stack = vec![v];
        comp[v] = c;
        while let Some(x) = stack.pop() {
            for &w in &radj[x] {
                if comp[w] == usize::MAX {
                    comp[w] = c;
                    stack.push(w);
                }
            }
        }
        c += 1;
    }
    // Kosaraju's component discovery order (reverse finish order on G) is a
    // topological order of the condensation.
    comp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scc_topological_numbering() {
        // 0 -> 1 -> 2, 2 -> 1 (1,2 form an SCC), 3 isolated... with edge 2->3.
        let adj = vec![vec![1], vec![2], vec![1, 3], vec![]];
        let comp = topo_scc(&adj);
        assert_eq!(comp[1], comp[2]);
        assert!(comp[0] < comp[1]);
        assert!(comp[1] < comp[3]);
    }

    #[test]
    fn scc_chain() {
        let adj = vec![vec![1], vec![2], vec![]];
        let comp = topo_scc(&adj);
        assert_eq!(comp, vec![0, 1, 2]);
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use crate::types::RowKind;
    use pluto_ir::{analyze_dependences, Expr, ProgramBuilder, StatementSpec};

    /// Two independent copy loops (no cross dependences).
    fn two_nests() -> Program {
        let mut b = ProgramBuilder::new("p", &["N"]);
        b.add_context_ineq(vec![1, -2]);
        b.add_array("a", 1);
        b.add_array("b", 1);
        b.add_array("c", 1);
        b.add_array("d", 1);
        for (idx, (src, dst)) in [("a", "b"), ("c", "d")].iter().enumerate() {
            b.add_statement(StatementSpec {
                name: format!("S{}", idx + 1),
                iters: vec!["i".into()],
                domain_ineqs: vec![vec![1, 0, 0], vec![-1, 1, -1]],
                beta: vec![idx as i128, 0],
                write: (dst.to_string(), vec![vec![1, 0, 0]]),
                reads: vec![(src.to_string(), vec![vec![1, 0, 0]])],
                body: Expr::Read(0),
            });
        }
        b.build()
    }

    #[test]
    fn nofuse_cuts_up_front() {
        let prog = two_nests();
        let deps = analyze_dependences(&prog, true);
        let opts = PlutoOptions {
            fuse: FusionPolicy::NoFuse,
            ..PlutoOptions::default()
        };
        // With no inter-statement dependences there is a single SCC per
        // statement; NoFuse inserts the scalar dimension immediately.
        let res = find_transformation(&prog, &deps, &opts).unwrap();
        assert_eq!(res.transform.rows[0].kind, RowKind::Scalar);
    }

    #[test]
    fn smart_fuse_keeps_independent_nests_fused() {
        let prog = two_nests();
        let deps = analyze_dependences(&prog, true);
        let res = find_transformation(&prog, &deps, &PlutoOptions::default()).unwrap();
        // No dependences force a cut, so the loops fuse into one nest
        // (plus the textual-order scalar row if any zero-distance pairs
        // exist — none here across different arrays).
        assert_eq!(res.transform.rows[0].kind, RowKind::Loop);
    }

    #[test]
    fn row_cap_errors() {
        let prog = two_nests();
        let deps = analyze_dependences(&prog, true);
        let opts = PlutoOptions {
            max_rows: 0,
            ..PlutoOptions::default()
        };
        match find_transformation(&prog, &deps, &opts) {
            Err(PlutoError::TooManyRows) => {}
            other => panic!("expected TooManyRows, got {other:?}"),
        }
    }

    #[test]
    fn error_display() {
        let e = PlutoError::NoSolution { at_row: 3 };
        assert!(e.to_string().contains("row 3"));
        assert!(PlutoError::TooManyRows.to_string().contains("limit"));
    }

    /// The warm-started per-row sequence must find the same
    /// transformation as from-scratch solves: same rows, same
    /// satisfaction ledger.
    #[test]
    fn warm_start_matches_cold_search() {
        let prog = two_nests();
        let deps = analyze_dependences(&prog, true);
        let warm = find_transformation(&prog, &deps, &PlutoOptions::default()).unwrap();
        let cold = find_transformation(
            &prog,
            &deps,
            &PlutoOptions {
                warm_start: false,
                ..PlutoOptions::default()
            },
        )
        .unwrap();
        assert_eq!(warm.satisfied_at, cold.satisfied_at);
        for (a, b) in warm.transform.stmts.iter().zip(&cold.transform.stmts) {
            assert_eq!(a.rows, b.rows);
        }
        for (a, b) in warm.transform.rows.iter().zip(&cold.transform.rows) {
            assert_eq!((a.kind, a.par), (b.kind, b.par));
        }
    }

    #[test]
    fn parallel_rows_marked_for_independent_nests() {
        let prog = two_nests();
        let deps = analyze_dependences(&prog, true);
        let res = find_transformation(&prog, &deps, &PlutoOptions::default()).unwrap();
        // Copy loops carry nothing: the loop row is parallel.
        let loop_row = (0..res.transform.num_rows())
            .find(|&r| res.transform.rows[r].kind == RowKind::Loop)
            .unwrap();
        assert_eq!(res.transform.rows[loop_row].par, Parallelism::Parallel);
    }
}
