//! Observability layer for the `pluto-rs` tool-chain: hierarchical phase
//! spans, solver counters, and machine-readable compile profiles.
//!
//! The paper's headline claim is *practicality* — the transformation
//! framework "runs quite fast — within a fraction of a second" (Sec. 7) —
//! yet a polyhedral compiler's running time hides in places no wall clock
//! can see from the outside: simplex pivots, Gomory cuts, Fourier–Motzkin
//! row blowup, Farkas-system construction, search restarts. This crate
//! gives every layer of the workspace a shared, zero-dependency way to
//! name and measure those effects (see DESIGN.md §9 and PERFORMANCE.md
//! for the full vocabulary):
//!
//! * [`span`] — hierarchical wall-time phases (`parse` → `deps` →
//!   `search` → `tiling` → `wavefront` → `codegen` → `analyze`), built
//!   from RAII guards and a thread-local path stack;
//! * [`counters`] — a central registry of cheap atomic counters bumped
//!   by the hot crates (`ilp.pivots`, `poly.fm_eliminations`,
//!   `ir.deps_built`, `core.scc_cuts`, …);
//! * [`hist`] — log2-bucketed latency histograms keyed by ILP call site
//!   (legality, bounding, search-row, emptiness), registered next to the
//!   counters;
//! * [`Session`] / [`Profile`] — collection and rendering: a session
//!   enables recording, a profile snapshots everything as a human table
//!   ([`Profile::render_table`]) or stable JSON ([`Profile::to_json`],
//!   schema `pluto-profile/3`, documented in PERFORMANCE.md);
//! * [`decision`] — the optimizer decision log: structured events for
//!   every hyperplane the search commits, rejects, or cuts around,
//!   surfaced by `plutoc --explain[-json]` (`pluto-explain/1`);
//! * [`trace`] — runtime execution tracing: per-thread event buffers
//!   filled by the machine substrate's thread teams, exported as Chrome
//!   Trace Event JSON (`trace_event/1`, loadable in Perfetto); while a
//!   trace records, compile-time [`span`]s additionally land on the
//!   coordinator timeline, so optimizer and runtime share one Perfetto
//!   view;
//! * [`exec`] — runtime execution metrics (wavefront load balance,
//!   barrier wait, per-array cache attribution) aggregated into the
//!   [`Profile::exec`] section;
//! * [`json`] — a minimal JSON parser so tests and the bench harness can
//!   validate emitted profiles without external crates.
//!
//! # Zero cost when disabled
//!
//! Recording is off by default. Every counter method and [`span`] checks
//! one process-global `AtomicBool` (a single relaxed load) and returns
//! immediately when no [`Session`] is active: the counter cells are never
//! touched and no clock is read. The disabled path is cheap enough to
//! leave instrumentation in release builds permanently; the test-suite
//! asserts the counters stay untouched (see `disabled_path_is_inert`).
//!
//! # Example
//!
//! ```
//! let session = pluto_obs::Session::start();
//! {
//!     let _outer = pluto_obs::span("search");
//!     let _inner = pluto_obs::span("ilp");
//!     pluto_obs::counters::ILP_PIVOTS.add(3);
//! }
//! let profile = session.finish();
//! assert_eq!(profile.counter("ilp.pivots"), Some(3));
//! assert_eq!(profile.phase("search/ilp").unwrap().calls, 1);
//! // Machine-readable form, stable schema "pluto-profile/3":
//! let j = pluto_obs::json::parse(&profile.to_json(Some("demo"))).unwrap();
//! assert_eq!(j.get("schema").unwrap().as_str(), Some("pluto-profile/3"));
//! ```
//!
//! # Concurrency model
//!
//! The recorder is process-global: spans recorded on worker threads (the
//! machine substrate's thread teams) land in the same buffer as the
//! coordinating thread's, each rooted at its own thread's path stack.
//! Sessions are not reference-counted — concurrent sessions in one
//! process merge their events; the in-tree users (`plutoc`,
//! `compile_audited`, the bench harness) are sequential, and profiles are
//! diagnostic data, never inputs to compilation decisions.

// Telemetry names are a public contract (PERFORMANCE.md); the docs
// gate keeps the registry self-describing.
#![deny(missing_docs)]
pub mod counters;
pub mod decision;
pub mod exec;
pub mod hist;
pub mod json;
pub mod trace;

pub use counters::Counter;
pub use exec::ExecProfile;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Serializes tests across this crate's modules: sessions, traces, and
/// decision logs all share process-global state, and each module's test
/// set must not observe another's recording mid-flight.
#[cfg(test)]
pub(crate) static TEST_SERIAL: Mutex<()> = Mutex::new(());

/// Process-global recording switch. Off (`false`) unless a [`Session`] is
/// active; all instrumentation is gated on it.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether a [`Session`] is currently recording.
///
/// One relaxed atomic load — this is the whole cost of every counter
/// bump and span entry while profiling is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether the machine substrate should measure per-thread execution
/// metrics: true while a profile [`Session`] records (the metrics land
/// in [`Profile::exec`]) or while a [`trace`] records (they land on the
/// event timelines). Two relaxed loads — the entire disabled-path cost
/// of `run_parallel`'s instrumentation.
#[inline]
pub fn exec_metrics_enabled() -> bool {
    enabled() || trace::enabled()
}

/// Completed-span buffer: `(path, wall_ns)` pairs drained by
/// [`Session::finish`]. A `Mutex<Vec>` is plenty: spans are pushed once
/// per *phase*, not per iteration.
static SPANS: Mutex<Vec<(String, u128)>> = Mutex::new(Vec::new());

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static STACK: std::cell::RefCell<Vec<&'static str>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Opens a named phase span; the span closes (and its wall time is
/// recorded) when the returned guard drops.
///
/// Spans nest: a span opened while another is active on the same thread
/// records under the joined path (`"optimize/search"`). A span records
/// into the [`Session`] buffer while a session is active and *also*
/// emits begin/end events on the coordinator timeline (tid 0) while a
/// [`trace`] records, so compile-time phases appear on the same Perfetto
/// view as the runtime's thread-team events. When neither is recording,
/// the guard is inert — two relaxed flag loads, no clock read, no
/// allocation.
///
/// ```
/// let session = pluto_obs::Session::start();
/// {
///     let _a = pluto_obs::span("outer");
///     let _b = pluto_obs::span("inner");
/// }
/// let profile = session.finish();
/// assert!(profile.phase("outer").is_some());
/// assert!(profile.phase("outer/inner").is_some());
/// ```
#[must_use = "the span is recorded when the guard drops"]
pub fn span(name: &'static str) -> SpanGuard {
    let profiling = enabled();
    let tracing = trace::enabled();
    if !profiling && !tracing {
        return SpanGuard {
            live: None,
            profiling: false,
        };
    }
    let path = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let mut path = String::new();
        for part in s.iter() {
            path.push_str(part);
            path.push('/');
        }
        path.push_str(name);
        s.push(name);
        path
    });
    if tracing {
        trace::record_compile_event(&path, trace::Phase::Begin);
    }
    SpanGuard {
        live: Some((path, Instant::now())),
        profiling,
    }
}

/// RAII guard returned by [`span`]; records the elapsed wall time of the
/// phase when dropped.
pub struct SpanGuard {
    /// `(full path, start)` when recording; `None` for the inert guard
    /// handed out while neither a session nor a trace is active.
    live: Option<(String, Instant)>,
    /// Whether a [`Session`] was recording when the span opened (a span
    /// opened for tracing alone must not land in the session buffer).
    profiling: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((path, start)) = self.live.take() else {
            return;
        };
        let ns = start.elapsed().as_nanos();
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
        if trace::enabled() {
            trace::record_compile_event(&path, trace::Phase::End);
        }
        if self.profiling {
            if let Ok(mut buf) = SPANS.lock() {
                buf.push((path, ns));
            }
        }
    }
}

/// A recording session: resets all counters and the span buffer, turns
/// recording on, and produces a [`Profile`] when finished.
///
/// Constructing a session is how *everything* in this crate becomes
/// active; without one, spans and counters cost a single flag check.
/// In-tree entry points that start one: `plutoc --profile[-json]`,
/// `pluto_repro::pipeline::compile_audited`, and the bench harness's
/// `BENCH_pipeline.json` emission.
pub struct Session {
    start: Instant,
}

impl Session {
    /// Starts recording: clears the counter registry, latency
    /// histograms and span buffer, then enables the global switch.
    #[must_use = "finish() the session to obtain the profile"]
    #[allow(clippy::new_without_default)] // `start` names the side effect
    pub fn start() -> Session {
        {
            let mut buf = SPANS.lock().expect("span buffer poisoned");
            buf.clear();
        }
        counters::reset_all();
        hist::reset_all();
        exec::reset();
        let s = Session {
            start: Instant::now(),
        };
        ENABLED.store(true, Ordering::Relaxed);
        s
    }

    /// Stops recording and returns the collected [`Profile`]: every
    /// completed span aggregated by path, plus a snapshot of every
    /// registered counter (zero-valued counters included, so the profile
    /// shape is stable).
    pub fn finish(self) -> Profile {
        ENABLED.store(false, Ordering::Relaxed);
        let total_ns = self.start.elapsed().as_nanos();
        let raw: Vec<(String, u128)> = {
            let mut buf = SPANS.lock().expect("span buffer poisoned");
            std::mem::take(&mut *buf)
        };
        // Aggregate by path, then order parents before children.
        let mut phases: Vec<Phase> = Vec::new();
        for (path, ns) in raw {
            match phases.iter_mut().find(|p| p.path == path) {
                Some(p) => {
                    p.calls += 1;
                    p.wall_ns += ns;
                }
                None => phases.push(Phase {
                    path,
                    calls: 1,
                    wall_ns: ns,
                }),
            }
        }
        phases.sort_by(|a, b| a.path.cmp(&b.path));
        let counters = counters::all()
            .iter()
            .map(|c| CounterSnapshot {
                name: c.name(),
                value: c.get(),
            })
            .collect();
        let hists = hist::all().iter().map(|h| h.snapshot()).collect();
        Profile {
            total_ns,
            phases,
            counters,
            hists,
            exec: exec::take(),
        }
    }
}

/// Aggregated wall time of one phase path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase {
    /// Slash-joined span path, e.g. `"optimize/search"`.
    pub path: String,
    /// Number of completed spans recorded under this path.
    pub calls: u64,
    /// Total wall time across those spans, in nanoseconds.
    pub wall_ns: u128,
}

/// One counter's value at [`Session::finish`] time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Registry name, e.g. `"ilp.pivots"` (glossary in PERFORMANCE.md).
    pub name: &'static str,
    /// Accumulated value over the session.
    pub value: u64,
}

/// Everything one session observed: total wall time, per-phase spans, and
/// the full counter and histogram registry snapshots.
///
/// Render with [`render_table`](Profile::render_table) (human) or
/// [`to_json`](Profile::to_json) (machine, schema `pluto-profile/3` —
/// field-by-field documentation in PERFORMANCE.md).
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Wall time from `Session::start` to `finish`, in nanoseconds.
    pub total_ns: u128,
    /// Completed spans aggregated by path, parents before children.
    pub phases: Vec<Phase>,
    /// Snapshot of every registered counter, in registry order.
    pub counters: Vec<CounterSnapshot>,
    /// Snapshot of every registered latency histogram, in registry
    /// order (empty histograms included, so the shape is stable).
    pub hists: Vec<hist::HistSnapshot>,
    /// Runtime execution metrics (thread-team load balance, barrier
    /// wait, per-array cache attribution), when the session bracketed
    /// an execution; `None` for compile-only sessions (the `exec`
    /// schema field serializes as JSON `null`).
    pub exec: Option<exec::ExecProfile>,
}

impl Profile {
    /// Looks up a phase by its full path (e.g. `"optimize/search"`).
    pub fn phase(&self, path: &str) -> Option<&Phase> {
        self.phases.iter().find(|p| p.path == path)
    }

    /// Looks up a counter value by registry name (e.g. `"ilp.pivots"`).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a latency histogram by registry name (e.g.
    /// `"ilp.latency.search_row"`).
    pub fn hist(&self, name: &str) -> Option<&hist::HistSnapshot> {
        self.hists.iter().find(|h| h.name == name)
    }

    /// Renders the profile as an aligned human-readable table: one row
    /// per phase (indented by nesting depth), then every non-zero
    /// counter.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<44} {:>7} {:>12}\n", "phase", "calls", "wall"));
        out.push_str(&format!(
            "{:<44} {:>7} {:>12}\n",
            "total",
            "",
            fmt_ns(self.total_ns)
        ));
        for p in &self.phases {
            let depth = p.path.matches('/').count();
            let name = p.path.rsplit('/').next().unwrap_or(&p.path);
            let label = format!("{}{}", "  ".repeat(depth + 1), name);
            out.push_str(&format!(
                "{:<44} {:>7} {:>12}\n",
                label,
                p.calls,
                fmt_ns(p.wall_ns)
            ));
        }
        out.push_str(&format!("\n{:<44} {:>20}\n", "counter", "value"));
        for c in &self.counters {
            if c.value != 0 {
                out.push_str(&format!("{:<44} {:>20}\n", c.name, c.value));
            }
        }
        if self.hists.iter().any(|h| h.count > 0) {
            out.push_str(&format!(
                "\n{:<44} {:>9} {:>10} {:>16}\n",
                "latency histogram", "samples", "mean", "modal bucket"
            ));
            for h in &self.hists {
                if h.count == 0 {
                    continue;
                }
                let modal = h
                    .buckets
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &n)| n)
                    .map_or(0, |(i, _)| i);
                out.push_str(&format!(
                    "{:<44} {:>9} {:>10} {:>16}\n",
                    h.name,
                    h.count,
                    fmt_ns(u128::from(h.mean_ns())),
                    format!(
                        "[{}, {})",
                        fmt_ns(u128::from(hist::bucket_lo(modal))),
                        fmt_ns(u128::from(hist::bucket_lo(modal + 1)))
                    )
                ));
            }
        }
        if let Some(e) = &self.exec {
            out.push_str(&format!("\n{:<44} {:>20}\n", "execution", ""));
            out.push_str(&format!("{:<44} {:>20}\n", "  dispatches", e.dispatches));
            out.push_str(&format!("{:<44} {:>20}\n", "  threads", e.threads));
            out.push_str(&format!(
                "{:<44} {:>20.3}\n",
                "  imbalance (mean)", e.imbalance_mean
            ));
            out.push_str(&format!(
                "{:<44} {:>20.3}\n",
                "  imbalance (max)", e.imbalance_max
            ));
            out.push_str(&format!(
                "{:<44} {:>20}\n",
                "  barrier wait",
                fmt_ns(e.barrier_wait_ns)
            ));
            for a in &e.arrays {
                out.push_str(&format!(
                    "{:<44} {:>20}\n",
                    format!("  array {} L1 miss rate", a.name),
                    format!("{:.4}", a.l1_miss_rate())
                ));
            }
        }
        out
    }

    /// Serializes the profile as JSON under the stable `pluto-profile/3`
    /// schema (see PERFORMANCE.md). `kernel` names the compiled program
    /// when known; `null` otherwise. Phases are sorted by path, counters
    /// and histograms appear in registry order with zero values included
    /// — consumers can rely on the full registries being present.
    ///
    /// `pluto-profile/3` is a strict superset of `/2` (itself a superset
    /// of `/1`): every v2 field is emitted unchanged and the new `hists`
    /// section (one object per registered latency histogram, all
    /// [`hist::NUM_BUCKETS`] log2 buckets) is purely additive, so v2
    /// consumers that ignore unknown fields keep working
    /// (`tests/profile_golden.rs` pins this compatibility).
    pub fn to_json(&self, kernel: Option<&str>) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"pluto-profile/3\",\n");
        match kernel {
            Some(k) => out.push_str(&format!("  \"kernel\": {},\n", json::escape(k))),
            None => out.push_str("  \"kernel\": null,\n"),
        }
        out.push_str(&format!("  \"total_ns\": {},\n", self.total_ns));
        out.push_str("  \"phases\": [");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"path\": {}, \"calls\": {}, \"wall_ns\": {}}}",
                json::escape(&p.path),
                p.calls,
                p.wall_ns
            ));
        }
        out.push_str("\n  ],\n  \"counters\": [");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": {}, \"value\": {}}}",
                json::escape(c.name),
                c.value
            ));
        }
        out.push_str("\n  ],\n  \"hists\": [");
        for (i, h) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let buckets: Vec<String> = h.buckets.iter().map(|b| b.to_string()).collect();
            out.push_str(&format!(
                "\n    {{\"name\": {}, \"count\": {}, \"sum_ns\": {}, \"buckets\": [{}]}}",
                json::escape(h.name),
                h.count,
                h.sum_ns,
                buckets.join(", ")
            ));
        }
        out.push_str("\n  ],\n  \"exec\": ");
        match &self.exec {
            None => out.push_str("null"),
            Some(e) => out.push_str(&exec_json(e, "  ")),
        }
        out.push_str("\n}\n");
        out
    }
}

/// Serializes an [`ExecProfile`] as the `exec` object shared by
/// `pluto-profile/3` and `pluto-bench-kernels/2` (PERFORMANCE.md §5).
/// `indent` is the base indentation of the object's closing brace.
pub fn exec_json(e: &exec::ExecProfile, indent: &str) -> String {
    let mut out = String::from("{\n");
    let field = |out: &mut String, last: bool, line: String| {
        out.push_str(indent);
        out.push_str("  ");
        out.push_str(&line);
        out.push_str(if last { "\n" } else { ",\n" });
    };
    field(&mut out, false, format!("\"dispatches\": {}", e.dispatches));
    field(&mut out, false, format!("\"threads\": {}", e.threads));
    field(
        &mut out,
        false,
        format!(
            "\"instances_per_thread\": [{}]",
            e.instances_per_thread
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ),
    );
    field(
        &mut out,
        false,
        format!("\"imbalance_mean\": {:.4}", e.imbalance_mean),
    );
    field(
        &mut out,
        false,
        format!("\"imbalance_max\": {:.4}", e.imbalance_max),
    );
    field(
        &mut out,
        false,
        format!("\"barrier_wait_ns\": {}", e.barrier_wait_ns),
    );
    let mut arrays = String::from("\"arrays\": [");
    for (i, a) in e.arrays.iter().enumerate() {
        if i > 0 {
            arrays.push(',');
        }
        arrays.push_str(&format!(
            "\n{indent}    {{\"name\": {}, \"accesses\": {}, \"l1_misses\": {}, \
             \"l2_misses\": {}, \"l1_miss_rate\": {:.4}}}",
            json::escape(&a.name),
            a.accesses,
            a.l1_misses,
            a.l2_misses,
            a.l1_miss_rate()
        ));
    }
    if !e.arrays.is_empty() {
        arrays.push('\n');
        arrays.push_str(indent);
        arrays.push_str("  ");
    }
    arrays.push(']');
    field(&mut out, true, arrays);
    out.push_str(indent);
    out.push('}');
    out
}

/// Formats nanoseconds with an adaptive unit (`ns`, `µs`, `ms`, `s`).
fn fmt_ns(ns: u128) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the crate's tests: sessions share process-global state.
    use crate::TEST_SERIAL as SERIAL;

    #[test]
    fn disabled_path_is_inert() {
        let _g = SERIAL.lock().unwrap();
        counters::reset_all();
        hist::reset_all();
        assert!(!enabled());
        // Bump every registered counter through the public API while no
        // session is active: the cells must stay untouched.
        for c in counters::all() {
            c.bump();
            c.add(41);
            c.record_max(97);
        }
        for c in counters::all() {
            assert_eq!(c.get(), 0, "counter {} touched while disabled", c.name());
        }
        // Latency histograms are gated on the same switch: no cell moves
        // and the timer guard reads no clock.
        for h in hist::all() {
            h.record_ns(123);
            let _t = h.timer();
        }
        for h in hist::all() {
            assert_eq!(
                h.snapshot().count,
                0,
                "hist {} touched while disabled",
                h.name()
            );
        }
        // The decision log has its own switch (like tracing): with no
        // recording started, record() is one relaxed load and a return.
        assert!(!decision::enabled());
        decision::record(decision::DecisionEvent::RowSolveFailed { row: 0 });
        assert!(decision::finish().events.is_empty());
        // Spans are inert too: nothing lands in the buffer.
        {
            let _s = span("never-recorded");
        }
        // Runtime-execution metrics are equally inert: the machine
        // substrate's gate reads false, dispatch/array reports are
        // dropped, and no trace buffer is ever handed out — so
        // `run_parallel` with everything off allocates no ring buffers
        // and reads no clock.
        assert!(!exec_metrics_enabled());
        exec::record_dispatch(exec::Dispatch {
            name: "never".into(),
            items: 1,
            chunk_ns: vec![1],
            instances: vec![1],
        });
        exec::record_array("never", 1, 1, 1);
        assert!(trace::RingBuf::for_thread(1).is_none());
        let profile = Session::start().finish();
        assert!(profile.phases.is_empty());
        assert!(profile.exec.is_none(), "disabled exec reports recorded");
    }

    #[test]
    fn session_records_counters_and_spans() {
        let _g = SERIAL.lock().unwrap();
        let session = Session::start();
        counters::ILP_PIVOTS.add(7);
        counters::FM_ROWS_PEAK.record_max(12);
        counters::FM_ROWS_PEAK.record_max(5); // lower: must not shrink
        {
            let _outer = span("a");
            let _inner = span("b");
        }
        {
            let _again = span("a");
        }
        let profile = session.finish();
        assert_eq!(profile.counter("ilp.pivots"), Some(7));
        assert_eq!(profile.counter("poly.fm_rows_peak"), Some(12));
        assert_eq!(profile.phase("a").unwrap().calls, 2);
        assert_eq!(profile.phase("a/b").unwrap().calls, 1);
        // Parents sort before children.
        let ia = profile.phases.iter().position(|p| p.path == "a").unwrap();
        let ib = profile.phases.iter().position(|p| p.path == "a/b").unwrap();
        assert!(ia < ib);
        // Counters include zero-valued entries (stable shape).
        assert_eq!(profile.counters.len(), counters::all().len());
    }

    #[test]
    fn finish_disables_recording() {
        let _g = SERIAL.lock().unwrap();
        let session = Session::start();
        counters::SCC_CUTS.bump();
        let p = session.finish();
        assert_eq!(p.counter("core.scc_cuts"), Some(1));
        counters::SCC_CUTS.bump(); // after finish: ignored
        assert_eq!(counters::SCC_CUTS.get(), 1);
        assert!(!enabled());
    }

    #[test]
    fn json_round_trips_through_parser() {
        let _g = SERIAL.lock().unwrap();
        let session = Session::start();
        {
            let _s = span("phase-\"quoted\"");
            counters::ILP_SOLVES.bump();
        }
        let profile = session.finish();
        let text = profile.to_json(Some("kernel \"x\"\n"));
        let v = json::parse(&text).expect("emitted profile must be valid JSON");
        assert_eq!(v.get("schema").unwrap().as_str(), Some("pluto-profile/3"));
        assert_eq!(v.get("kernel").unwrap().as_str(), Some("kernel \"x\"\n"));
        // Compile-only session: the v2 `exec` section is explicit null.
        assert!(v.get("exec").unwrap().is_null());
        // The v3 `hists` section carries the full registry with all
        // buckets present, empty or not.
        let hists = v.get("hists").unwrap().as_array().unwrap();
        assert_eq!(hists.len(), hist::all().len());
        assert_eq!(
            hists[0].get("buckets").unwrap().as_array().unwrap().len(),
            hist::NUM_BUCKETS
        );
        let phases = v.get("phases").unwrap().as_array().unwrap();
        assert_eq!(phases.len(), 1);
        assert_eq!(
            phases[0].get("path").unwrap().as_str(),
            Some("phase-\"quoted\"")
        );
        let counters_j = v.get("counters").unwrap().as_array().unwrap();
        assert_eq!(counters_j.len(), counters::all().len());
        // to_json(None) emits a JSON null kernel.
        let v2 = json::parse(&profile.to_json(None)).unwrap();
        assert!(v2.get("kernel").unwrap().is_null());
    }

    #[test]
    fn exec_reports_land_in_profile_and_json() {
        let _g = SERIAL.lock().unwrap();
        let session = Session::start();
        exec::record_dispatch(exec::Dispatch {
            name: "c2".into(),
            items: 4,
            chunk_ns: vec![200, 100],
            instances: vec![3, 1],
        });
        exec::record_array("a", 10, 4, 1);
        exec::record_array("a", 10, 2, 0); // same name: accumulates
        let profile = session.finish();
        let e = profile.exec.as_ref().expect("exec section recorded");
        assert_eq!(e.dispatches, 1);
        assert_eq!(e.threads, 2);
        assert_eq!(e.instances_per_thread, vec![3, 1]);
        assert_eq!(e.arrays.len(), 1);
        assert_eq!(e.arrays[0].accesses, 20);
        assert_eq!(e.arrays[0].l1_misses, 6);
        let v = json::parse(&profile.to_json(None)).unwrap();
        let ej = v.get("exec").unwrap();
        assert_eq!(ej.get("dispatches").unwrap().as_u64(), Some(1));
        let arrays = ej.get("arrays").unwrap().as_array().unwrap();
        assert_eq!(arrays[0].get("name").unwrap().as_str(), Some("a"));
        assert_eq!(arrays[0].get("l1_miss_rate").unwrap().as_f64(), Some(0.3));
        // A fresh session clears the accumulator.
        assert!(Session::start().finish().exec.is_none());
    }

    #[test]
    fn table_renders_phases_and_nonzero_counters() {
        let _g = SERIAL.lock().unwrap();
        let session = Session::start();
        {
            let _s = span("render-me");
        }
        counters::ILP_CUTS.add(3);
        let t = session.finish().render_table();
        assert!(t.contains("render-me"));
        assert!(t.contains("ilp.gomory_cuts"));
        assert!(
            !t.contains("machine.instances"),
            "zero counters hidden:\n{t}"
        );
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(17), "17ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_210_000_000), "3.21s");
    }
}
