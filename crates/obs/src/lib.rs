//! Observability layer for the `pluto-rs` tool-chain: hierarchical phase
//! spans, solver counters, and machine-readable compile profiles.
//!
//! The paper's headline claim is *practicality* — the transformation
//! framework "runs quite fast — within a fraction of a second" (Sec. 7) —
//! yet a polyhedral compiler's running time hides in places no wall clock
//! can see from the outside: simplex pivots, Gomory cuts, Fourier–Motzkin
//! row blowup, Farkas-system construction, search restarts. This crate
//! gives every layer of the workspace a shared, zero-dependency way to
//! name and measure those effects (see DESIGN.md §9 and PERFORMANCE.md
//! for the full vocabulary):
//!
//! * [`ObsSession`] — the per-compile telemetry context. A session *owns*
//!   its counter registry cells, phase-span buffer, latency histograms,
//!   decision log, trace sink, and runtime-execution accumulator.
//!   Installing one on a thread ([`ObsSession::install`]) makes it the
//!   recording target of everything below; two compiles in one process
//!   each carry their own session and can never corrupt each other's
//!   telemetry;
//! * [`span`] — hierarchical wall-time phases (`parse` → `deps` →
//!   `search` → `tiling` → `wavefront` → `codegen` → `analyze`), built
//!   from RAII guards and a thread-local path stack;
//! * [`counters`] — a central registry of cheap counter descriptors
//!   bumped by the hot crates (`ilp.pivots`, `poly.fm_eliminations`,
//!   `ir.deps_built`, `core.scc_cuts`, …), each recording into the
//!   current session's atomic cells;
//! * [`hist`] — log2-bucketed latency histograms keyed by ILP call site
//!   (legality, bounding, search-row, emptiness), registered next to the
//!   counters;
//! * [`Session`] / [`Profile`] — collection and rendering: a session
//!   enables recording, a profile snapshots everything as a human table
//!   ([`Profile::render_table`]) or stable JSON ([`Profile::to_json`],
//!   schema `pluto-profile/3`, documented in PERFORMANCE.md);
//! * [`decision`] — the optimizer decision log: structured events for
//!   every hyperplane the search commits, rejects, or cuts around,
//!   surfaced by `plutoc --explain[-json]` (`pluto-explain/1`);
//! * [`trace`] — runtime execution tracing: per-thread event buffers
//!   filled by the machine substrate's thread teams, exported as Chrome
//!   Trace Event JSON (`trace_event/1`, loadable in Perfetto); while a
//!   trace records, compile-time [`span`]s additionally land on the
//!   coordinator timeline, so optimizer and runtime share one Perfetto
//!   view;
//! * [`exec`] — runtime execution metrics (wavefront load balance,
//!   barrier wait, per-array cache attribution) aggregated into the
//!   [`Profile::exec`] section;
//! * [`json`] — a minimal JSON parser so tests and the bench harness can
//!   validate emitted profiles without external crates.
//!
//! # Zero cost when disabled
//!
//! Recording is off by default. Every counter method and [`span`] checks
//! one process-global installed-session count (a single relaxed atomic
//! load) and returns immediately while no session is installed anywhere
//! in the process: no cells are touched, no clock is read, nothing
//! allocates. Only when *some* thread has a session installed does the
//! check fall through to a thread-local lookup — and a thread with no
//! session of its own still records nothing. The disabled path is cheap
//! enough to leave instrumentation in release builds permanently; the
//! test-suite asserts it stays inert (see `disabled_path_is_inert`).
//!
//! # Example
//!
//! ```
//! let session = pluto_obs::Session::start();
//! {
//!     let _outer = pluto_obs::span("search");
//!     let _inner = pluto_obs::span("ilp");
//!     pluto_obs::counters::ILP_PIVOTS.add(3);
//! }
//! let profile = session.finish();
//! assert_eq!(profile.counter("ilp.pivots"), Some(3));
//! assert_eq!(profile.phase("search/ilp").unwrap().calls, 1);
//! // Machine-readable form, stable schema "pluto-profile/3":
//! let j = pluto_obs::json::parse(&profile.to_json(Some("demo"))).unwrap();
//! assert_eq!(j.get("schema").unwrap().as_str(), Some("pluto-profile/3"));
//! ```
//!
//! # Concurrency model
//!
//! Sessions are *installed*, not global: [`ObsSession::install`] places a
//! handle in a thread-local slot (restored by the returned RAII guard,
//! even on panic), and every recording primitive resolves the current
//! thread's session. Worker threads inherit the dispatching thread's
//! session — the persistent pool (`pluto-pool`) re-installs the
//! dispatcher's handle around each job, and the scoped engine does the
//! same around its spawns — so spans, chunk timings, and counters from a
//! parallel region land in the compile that dispatched it. Concurrent
//! compiles on different threads each install their own session and
//! observe fully isolated telemetry (`tests/concurrent_compiles.rs`
//! pins this); profiles are diagnostic data, never inputs to compilation
//! decisions.

// Telemetry names are a public contract (PERFORMANCE.md); the docs
// gate keeps the registry self-describing.
#![deny(missing_docs)]
pub mod aggregate;
pub mod counters;
pub mod decision;
pub mod exec;
pub mod hist;
pub mod json;
pub mod trace;

pub use counters::Counter;
pub use exec::ExecProfile;

use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of [`ObsSession::install`] guards alive across all threads.
/// The disabled-path fast gate: while this is 0 no session exists
/// anywhere, so every recording primitive returns after this one
/// relaxed load without touching thread-local storage.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// The session installed on this thread, if any.
    static CURRENT: RefCell<Option<Arc<SessionState>>> = const { RefCell::new(None) };
}

/// Everything one session owns. Shared behind an `Arc` between the
/// user-facing [`ObsSession`] handle, the thread-local install slots,
/// and open [`SpanGuard`]s / trace [`RingBuf`](trace::RingBuf)s.
pub(crate) struct SessionState {
    /// Profile recording on: counters, histograms, spans, exec metrics.
    pub(crate) profile: bool,
    /// Decision-log recording on.
    pub(crate) decisions: bool,
    /// Trace recording on.
    pub(crate) tracing: bool,
    /// Session epoch: profile `total_ns` origin and the trace clock.
    pub(crate) started: Instant,
    /// One cell per registered counter, indexed by
    /// [`Counter::index`](counters::Counter).
    pub(crate) counters: Box<[AtomicU64]>,
    /// One cell block per registered histogram.
    pub(crate) hists: Box<[hist::Cells]>,
    /// Completed-span buffer: `(path, wall_ns)` pairs.
    pub(crate) spans: Mutex<Vec<(String, u128)>>,
    /// Decision events plus the count dropped over capacity.
    pub(crate) decision_log: Mutex<(Vec<decision::DecisionEvent>, u64)>,
    /// Submitted trace events.
    pub(crate) trace_events: Mutex<Vec<trace::TraceEvent>>,
    /// Runtime execution accumulator (dispatches + array attribution).
    pub(crate) exec: Mutex<exec::Accum>,
    /// Session-scoped extension state (see [`session_ext`]).
    ext: Mutex<Vec<(TypeId, Arc<dyn Any + Send + Sync>)>>,
}

impl SessionState {
    fn new(profile: bool, decisions: bool, tracing: bool) -> SessionState {
        SessionState {
            profile,
            decisions,
            tracing,
            started: Instant::now(),
            counters: (0..counters::NUM).map(|_| AtomicU64::new(0)).collect(),
            hists: (0..hist::NUM).map(|_| hist::Cells::new()).collect(),
            spans: Mutex::new(Vec::new()),
            decision_log: Mutex::new((Vec::new(), 0)),
            trace_events: Mutex::new(Vec::new()),
            exec: Mutex::new(exec::Accum::default()),
            ext: Mutex::new(Vec::new()),
        }
    }
}

/// The session installed on the current thread, cloned out of the
/// thread-local slot. One relaxed load while no session is installed
/// anywhere.
#[inline]
pub(crate) fn current_state() -> Option<Arc<SessionState>> {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return None;
    }
    CURRENT.with(|c| c.borrow().clone())
}

/// Runs `f` against the current thread's session if it records profile
/// data; `None` (after the one relaxed fast-gate load) otherwise. The
/// shared slow path of every counter bump and histogram sample.
#[inline]
pub(crate) fn with_profiling<R>(f: impl FnOnce(&SessionState) -> R) -> Option<R> {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return None;
    }
    CURRENT.with(|c| match &*c.borrow() {
        Some(s) if s.profile => Some(f(s)),
        _ => None,
    })
}

/// Whether the current thread's session records profile data.
///
/// While no session is installed anywhere in the process this is one
/// relaxed atomic load — the whole cost of every counter bump and span
/// entry while profiling is off.
#[inline]
pub fn enabled() -> bool {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return false;
    }
    CURRENT.with(|c| c.borrow().as_ref().is_some_and(|s| s.profile))
}

/// Whether the machine substrate should measure per-thread execution
/// metrics: true while the current thread's session records a profile
/// (the metrics land in [`Profile::exec`]) or a [`trace`] (they land on
/// the event timelines). One relaxed load while no session is installed
/// anywhere — the entire disabled-path cost of `run_parallel`'s
/// instrumentation.
#[inline]
pub fn exec_metrics_enabled() -> bool {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return false;
    }
    CURRENT.with(|c| c.borrow().as_ref().is_some_and(|s| s.profile || s.tracing))
}

/// A per-compile observability context: the owner of every counter cell,
/// span buffer, latency histogram, decision log, and trace sink one
/// compilation records into (DESIGN.md §9).
///
/// Construct one with [`builder`](ObsSession::builder) (choosing which
/// recorders are live), [`install`](ObsSession::install) it on the
/// compiling thread, run the compile, then collect with
/// [`finish_profile`](ObsSession::finish_profile),
/// [`take_decisions`](ObsSession::take_decisions), and
/// [`take_trace`](ObsSession::take_trace). The handle is a cheap `Arc`
/// clone — worker threads that should attribute their work to this
/// compile install a clone of the same handle (the thread pool does this
/// automatically for dispatched jobs).
///
/// ```
/// use pluto_obs::ObsSession;
/// let session = ObsSession::builder().profile().decisions().build();
/// {
///     let _guard = session.install();
///     let _s = pluto_obs::span("optimize");
///     pluto_obs::counters::ILP_SOLVES.bump();
/// }
/// let profile = session.finish_profile();
/// assert_eq!(profile.counter("ilp.solves"), Some(1));
/// assert!(session.take_decisions().events.is_empty());
/// ```
#[derive(Clone)]
pub struct ObsSession {
    state: Arc<SessionState>,
}

/// Configures which recorders an [`ObsSession`] runs; see
/// [`ObsSession::builder`].
#[derive(Debug, Default, Clone, Copy)]
pub struct ObsSessionBuilder {
    profile: bool,
    decisions: bool,
    trace: bool,
}

impl ObsSessionBuilder {
    /// Enables the profile recorder: counters, latency histograms, phase
    /// spans, and runtime-execution metrics.
    #[must_use]
    pub fn profile(mut self) -> ObsSessionBuilder {
        self.profile = true;
        self
    }

    /// Enables the decision-log recorder (`pluto-explain/1` events).
    #[must_use]
    pub fn decisions(mut self) -> ObsSessionBuilder {
        self.decisions = true;
        self
    }

    /// Enables the trace recorder (`trace_event/1` timelines).
    #[must_use]
    pub fn trace(mut self) -> ObsSessionBuilder {
        self.trace = true;
        self
    }

    /// Builds the session. Its clock starts now; nothing records until
    /// the session is [`install`](ObsSession::install)ed on a thread.
    pub fn build(self) -> ObsSession {
        ObsSession {
            state: Arc::new(SessionState::new(self.profile, self.decisions, self.trace)),
        }
    }
}

impl ObsSession {
    /// Starts configuring a session; recorders are opt-in (a session
    /// with none still scopes session-local state like the solver
    /// cache).
    pub fn builder() -> ObsSessionBuilder {
        ObsSessionBuilder::default()
    }

    /// A session with only the profile recorder — the common
    /// `--profile` shape.
    pub fn profiled() -> ObsSession {
        ObsSession::builder().profile().build()
    }

    /// The session installed on the current thread, if any — a clone of
    /// the same handle, suitable for re-installing on a worker thread so
    /// its work is attributed to this compile.
    pub fn current() -> Option<ObsSession> {
        current_state().map(|state| ObsSession { state })
    }

    /// Installs this session on the current thread: until the returned
    /// guard drops, every recording primitive on this thread targets
    /// this session. The guard saves and restores the previously
    /// installed session (installs nest), and restores it on unwind too,
    /// so a panicking compile cannot leave a dangling thread-local
    /// session behind.
    #[must_use = "recording stops when the guard drops"]
    pub fn install(&self) -> InstallGuard {
        ACTIVE.fetch_add(1, Ordering::Relaxed);
        let prev = CURRENT.with(|c| c.borrow_mut().replace(Arc::clone(&self.state)));
        InstallGuard {
            prev,
            _not_send: std::marker::PhantomData,
        }
    }

    /// Whether this session's profile recorder is on.
    pub fn records_profile(&self) -> bool {
        self.state.profile
    }

    /// Whether this session's decision-log recorder is on.
    pub fn records_decisions(&self) -> bool {
        self.state.decisions
    }

    /// Whether this session's trace recorder is on.
    pub fn records_trace(&self) -> bool {
        self.state.tracing
    }

    /// Snapshots the profile: every completed span aggregated by path,
    /// plus the full counter and histogram registries (zero values
    /// included, so the profile shape is stable) and any runtime
    /// execution metrics. Drains the span buffer and exec accumulator;
    /// the counter cells stay readable.
    pub fn finish_profile(&self) -> Profile {
        let state = &self.state;
        let total_ns = state.started.elapsed().as_nanos();
        let raw: Vec<(String, u128)> = {
            let mut buf = state.spans.lock().expect("span buffer poisoned");
            std::mem::take(&mut *buf)
        };
        // Aggregate by path, then order parents before children.
        let mut phases: Vec<Phase> = Vec::new();
        for (path, ns) in raw {
            match phases.iter_mut().find(|p| p.path == path) {
                Some(p) => {
                    p.calls += 1;
                    p.wall_ns += ns;
                }
                None => phases.push(Phase {
                    path,
                    calls: 1,
                    wall_ns: ns,
                }),
            }
        }
        phases.sort_by(|a, b| a.path.cmp(&b.path));
        let counters = counters::all()
            .iter()
            .map(|c| CounterSnapshot {
                name: c.name(),
                value: state.counters[c.index()].load(Ordering::Relaxed),
            })
            .collect();
        let hists = hist::all()
            .iter()
            .map(|h| state.hists[h.index()].snapshot(h.name()))
            .collect();
        let exec = {
            let mut acc = state.exec.lock().expect("exec accumulator poisoned");
            std::mem::take(&mut *acc).into_profile()
        };
        Profile {
            total_ns,
            phases,
            counters,
            hists,
            exec,
        }
    }

    /// Drains the decision log recorded so far (empty if the recorder
    /// was off).
    pub fn take_decisions(&self) -> decision::DecisionLog {
        let mut log = self
            .state
            .decision_log
            .lock()
            .expect("decision log poisoned");
        let events = std::mem::take(&mut log.0);
        let dropped = std::mem::replace(&mut log.1, 0);
        decision::DecisionLog { events, dropped }
    }

    /// Drains the trace events submitted so far into a
    /// [`Trace`](trace::Trace), sorted by timestamp (empty if the
    /// recorder was off).
    pub fn take_trace(&self) -> trace::Trace {
        let mut events = std::mem::take(
            &mut *self
                .state
                .trace_events
                .lock()
                .expect("trace buffer poisoned"),
        );
        events.sort_by_key(|e| (e.ts_ns, e.tid));
        trace::Trace { events }
    }
}

/// RAII guard returned by [`ObsSession::install`]: restores the
/// previously installed session (usually none) when dropped — including
/// during unwinding, so a panicking compile leaves no dangling
/// thread-local session. Not `Send`: it must drop on the thread that
/// created it.
pub struct InstallGuard {
    prev: Option<Arc<SessionState>>,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
        ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Lazily-created session-scoped extension state of type `T`, shared by
/// every thread the current session is installed on; `None` when no
/// session is installed on this thread.
///
/// This is how crates below `obs` scope their own state to a compile
/// without `obs` knowing their types — `poly::cache` keys its emptiness
/// cache here, so concurrent compiles get isolated caches (and
/// attributable per-compile hit/miss counters) while bare sessionless
/// callers keep the process-global one.
pub fn session_ext<T: Default + Send + Sync + 'static>() -> Option<Arc<T>> {
    let state = current_state()?;
    let mut ext = state.ext.lock().expect("session ext poisoned");
    let id = TypeId::of::<T>();
    if let Some((_, v)) = ext.iter().find(|(t, _)| *t == id) {
        return Arc::clone(v).downcast::<T>().ok();
    }
    let v: Arc<T> = Arc::new(T::default());
    ext.push((id, v.clone()));
    Some(v)
}

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static STACK: RefCell<Vec<&'static str>> =
        const { RefCell::new(Vec::new()) };
}

/// Opens a named phase span; the span closes (and its wall time is
/// recorded) when the returned guard drops.
///
/// Spans nest: a span opened while another is active on the same thread
/// records under the joined path (`"optimize/search"`). A span records
/// into the current session's buffer while its profile recorder is on
/// and *also* emits begin/end events on the coordinator timeline (tid 0)
/// while its trace recorder is on, so compile-time phases appear on the
/// same Perfetto view as the runtime's thread-team events. With no
/// session installed the guard is inert — one relaxed flag load, no
/// clock read, no allocation.
///
/// ```
/// let session = pluto_obs::Session::start();
/// {
///     let _a = pluto_obs::span("outer");
///     let _b = pluto_obs::span("inner");
/// }
/// let profile = session.finish();
/// assert!(profile.phase("outer").is_some());
/// assert!(profile.phase("outer/inner").is_some());
/// ```
#[must_use = "the span is recorded when the guard drops"]
pub fn span(name: &'static str) -> SpanGuard {
    let Some(state) = current_state() else {
        return SpanGuard {
            live: None,
            profiling: false,
        };
    };
    let profiling = state.profile;
    let tracing = state.tracing;
    if !profiling && !tracing {
        return SpanGuard {
            live: None,
            profiling: false,
        };
    }
    let path = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let mut path = String::new();
        for part in s.iter() {
            path.push_str(part);
            path.push('/');
        }
        path.push_str(name);
        s.push(name);
        path
    });
    if tracing {
        trace::record_compile_event(&state, &path, trace::Phase::Begin);
    }
    SpanGuard {
        live: Some((state, path, Instant::now())),
        profiling,
    }
}

/// RAII guard returned by [`span`]; records the elapsed wall time of the
/// phase when dropped. Holds its session handle, so the span lands in
/// the session that was current when it *opened* even if the install
/// guard is dropped first.
pub struct SpanGuard {
    /// `(session, full path, start)` when recording; `None` for the
    /// inert guard handed out while no session records on this thread.
    live: Option<(Arc<SessionState>, String, Instant)>,
    /// Whether the session's profile recorder was on when the span
    /// opened (a span opened for tracing alone must not land in the
    /// span buffer).
    profiling: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((state, path, start)) = self.live.take() else {
            return;
        };
        let ns = start.elapsed().as_nanos();
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
        if state.tracing {
            trace::record_compile_event(&state, &path, trace::Phase::End);
        }
        if self.profiling {
            if let Ok(mut buf) = state.spans.lock() {
                buf.push((path, ns));
            }
        }
    }
}

/// A profile-recording session installed on the current thread — the
/// one-line convenience over [`ObsSession`] for the common "bracket this
/// region, give me a [`Profile`]" shape.
///
/// The handle owns both the session and its install guard: recording is
/// scoped to the current thread (plus any worker threads the pool
/// enlists on its behalf) and ends at [`finish`](Session::finish). Two
/// threads each holding a `Session` record independently. In-tree entry
/// points that start one: `plutoc --profile[-json]`,
/// `pluto_repro::pipeline::compile_audited`, and the bench harness's
/// `BENCH_pipeline.json` emission.
pub struct Session {
    obs: ObsSession,
    guard: Option<InstallGuard>,
}

impl Session {
    /// Starts a fresh profile-recording session and installs it on the
    /// current thread. The new session's cells start at zero.
    #[must_use = "finish() the session to obtain the profile"]
    pub fn start() -> Session {
        let obs = ObsSession::profiled();
        let guard = obs.install();
        Session {
            obs,
            guard: Some(guard),
        }
    }

    /// Stops recording (uninstalls the session) and returns the
    /// collected [`Profile`]: every completed span aggregated by path,
    /// plus a snapshot of every registered counter (zero-valued counters
    /// included, so the profile shape is stable).
    pub fn finish(mut self) -> Profile {
        self.guard.take();
        self.obs.finish_profile()
    }
}

/// Aggregated wall time of one phase path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase {
    /// Slash-joined span path, e.g. `"optimize/search"`.
    pub path: String,
    /// Number of completed spans recorded under this path.
    pub calls: u64,
    /// Total wall time across those spans, in nanoseconds.
    pub wall_ns: u128,
}

/// One counter's value at [`Session::finish`] time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Registry name, e.g. `"ilp.pivots"` (glossary in PERFORMANCE.md).
    pub name: &'static str,
    /// Accumulated value over the session.
    pub value: u64,
}

/// Everything one session observed: total wall time, per-phase spans, and
/// the full counter and histogram registry snapshots.
///
/// Render with [`render_table`](Profile::render_table) (human) or
/// [`to_json`](Profile::to_json) (machine, schema `pluto-profile/3` —
/// field-by-field documentation in PERFORMANCE.md).
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Wall time from session construction to the profile snapshot, in
    /// nanoseconds.
    pub total_ns: u128,
    /// Completed spans aggregated by path, parents before children.
    pub phases: Vec<Phase>,
    /// Snapshot of every registered counter, in registry order.
    pub counters: Vec<CounterSnapshot>,
    /// Snapshot of every registered latency histogram, in registry
    /// order (empty histograms included, so the shape is stable).
    pub hists: Vec<hist::HistSnapshot>,
    /// Runtime execution metrics (thread-team load balance, barrier
    /// wait, per-array cache attribution), when the session bracketed
    /// an execution; `None` for compile-only sessions (the `exec`
    /// schema field serializes as JSON `null`).
    pub exec: Option<exec::ExecProfile>,
}

impl Profile {
    /// Looks up a phase by its full path (e.g. `"optimize/search"`).
    pub fn phase(&self, path: &str) -> Option<&Phase> {
        self.phases.iter().find(|p| p.path == path)
    }

    /// Looks up a counter value by registry name (e.g. `"ilp.pivots"`).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a latency histogram by registry name (e.g.
    /// `"ilp.latency.search_row"`).
    pub fn hist(&self, name: &str) -> Option<&hist::HistSnapshot> {
        self.hists.iter().find(|h| h.name == name)
    }

    /// Renders the profile as an aligned human-readable table: one row
    /// per phase (indented by nesting depth), then every non-zero
    /// counter.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<44} {:>7} {:>12}\n", "phase", "calls", "wall"));
        out.push_str(&format!(
            "{:<44} {:>7} {:>12}\n",
            "total",
            "",
            fmt_ns(self.total_ns)
        ));
        for p in &self.phases {
            let depth = p.path.matches('/').count();
            let name = p.path.rsplit('/').next().unwrap_or(&p.path);
            let label = format!("{}{}", "  ".repeat(depth + 1), name);
            out.push_str(&format!(
                "{:<44} {:>7} {:>12}\n",
                label,
                p.calls,
                fmt_ns(p.wall_ns)
            ));
        }
        out.push_str(&format!("\n{:<44} {:>20}\n", "counter", "value"));
        for c in &self.counters {
            if c.value != 0 {
                out.push_str(&format!("{:<44} {:>20}\n", c.name, c.value));
            }
        }
        if self.hists.iter().any(|h| h.count > 0) {
            out.push_str(&format!(
                "\n{:<44} {:>9} {:>10} {:>10} {:>10} {:>10}\n",
                "latency histogram", "samples", "mean", "p50", "p90", "p99"
            ));
            for h in &self.hists {
                if h.count == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "{:<44} {:>9} {:>10} {:>10} {:>10} {:>10}\n",
                    h.name,
                    h.count,
                    fmt_ns(u128::from(h.mean_ns())),
                    fmt_ns(u128::from(h.p50_ns())),
                    fmt_ns(u128::from(h.p90_ns())),
                    fmt_ns(u128::from(h.p99_ns()))
                ));
            }
        }
        if let Some(e) = &self.exec {
            out.push_str(&format!("\n{:<44} {:>20}\n", "execution", ""));
            out.push_str(&format!("{:<44} {:>20}\n", "  dispatches", e.dispatches));
            out.push_str(&format!("{:<44} {:>20}\n", "  threads", e.threads));
            out.push_str(&format!(
                "{:<44} {:>20.3}\n",
                "  imbalance (mean)", e.imbalance_mean
            ));
            out.push_str(&format!(
                "{:<44} {:>20.3}\n",
                "  imbalance (max)", e.imbalance_max
            ));
            out.push_str(&format!(
                "{:<44} {:>20}\n",
                "  barrier wait",
                fmt_ns(e.barrier_wait_ns)
            ));
            for a in &e.arrays {
                out.push_str(&format!(
                    "{:<44} {:>20}\n",
                    format!("  array {} L1 miss rate", a.name),
                    format!("{:.4}", a.l1_miss_rate())
                ));
            }
        }
        out
    }

    /// Serializes the profile as JSON under the stable `pluto-profile/3`
    /// schema (see PERFORMANCE.md). `kernel` names the compiled program
    /// when known; `null` otherwise. Phases are sorted by path, counters
    /// and histograms appear in registry order with zero values included
    /// — consumers can rely on the full registries being present.
    ///
    /// `pluto-profile/3` is a strict superset of `/2` (itself a superset
    /// of `/1`): every v2 field is emitted unchanged and the new `hists`
    /// section (one object per registered latency histogram, all
    /// [`hist::NUM_BUCKETS`] log2 buckets) is purely additive, so v2
    /// consumers that ignore unknown fields keep working
    /// (`tests/profile_golden.rs` pins this compatibility).
    pub fn to_json(&self, kernel: Option<&str>) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"pluto-profile/3\",\n");
        match kernel {
            Some(k) => out.push_str(&format!("  \"kernel\": {},\n", json::escape(k))),
            None => out.push_str("  \"kernel\": null,\n"),
        }
        out.push_str(&format!("  \"total_ns\": {},\n", self.total_ns));
        out.push_str("  \"phases\": [");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"path\": {}, \"calls\": {}, \"wall_ns\": {}}}",
                json::escape(&p.path),
                p.calls,
                p.wall_ns
            ));
        }
        out.push_str("\n  ],\n  \"counters\": [");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": {}, \"value\": {}}}",
                json::escape(c.name),
                c.value
            ));
        }
        out.push_str("\n  ],\n  \"hists\": [");
        for (i, h) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let buckets: Vec<String> = h.buckets.iter().map(|b| b.to_string()).collect();
            out.push_str(&format!(
                "\n    {{\"name\": {}, \"count\": {}, \"sum_ns\": {}, \"buckets\": [{}]}}",
                json::escape(h.name),
                h.count,
                h.sum_ns,
                buckets.join(", ")
            ));
        }
        out.push_str("\n  ],\n  \"exec\": ");
        match &self.exec {
            None => out.push_str("null"),
            Some(e) => out.push_str(&exec_json(e, "  ")),
        }
        out.push_str("\n}\n");
        out
    }
}

/// Serializes an [`ExecProfile`] as the `exec` object shared by
/// `pluto-profile/3` and `pluto-bench-kernels/2` (PERFORMANCE.md §5).
/// `indent` is the base indentation of the object's closing brace.
pub fn exec_json(e: &exec::ExecProfile, indent: &str) -> String {
    let mut out = String::from("{\n");
    let field = |out: &mut String, last: bool, line: String| {
        out.push_str(indent);
        out.push_str("  ");
        out.push_str(&line);
        out.push_str(if last { "\n" } else { ",\n" });
    };
    field(&mut out, false, format!("\"dispatches\": {}", e.dispatches));
    field(&mut out, false, format!("\"threads\": {}", e.threads));
    field(
        &mut out,
        false,
        format!(
            "\"instances_per_thread\": [{}]",
            e.instances_per_thread
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ),
    );
    field(
        &mut out,
        false,
        format!("\"imbalance_mean\": {:.4}", e.imbalance_mean),
    );
    field(
        &mut out,
        false,
        format!("\"imbalance_max\": {:.4}", e.imbalance_max),
    );
    field(
        &mut out,
        false,
        format!("\"barrier_wait_ns\": {}", e.barrier_wait_ns),
    );
    let mut arrays = String::from("\"arrays\": [");
    for (i, a) in e.arrays.iter().enumerate() {
        if i > 0 {
            arrays.push(',');
        }
        arrays.push_str(&format!(
            "\n{indent}    {{\"name\": {}, \"accesses\": {}, \"l1_misses\": {}, \
             \"l2_misses\": {}, \"l1_miss_rate\": {:.4}}}",
            json::escape(&a.name),
            a.accesses,
            a.l1_misses,
            a.l2_misses,
            a.l1_miss_rate()
        ));
    }
    if !e.arrays.is_empty() {
        arrays.push('\n');
        arrays.push_str(indent);
        arrays.push_str("  ");
    }
    arrays.push(']');
    field(&mut out, true, arrays);
    out.push_str(indent);
    out.push('}');
    out
}

/// Formats nanoseconds with an adaptive unit (`ns`, `µs`, `ms`, `s`).
fn fmt_ns(ns: u128) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_path_is_inert() {
        // No session installed on this thread: the fast gate answers
        // everything and nothing records or allocates.
        assert!(ObsSession::current().is_none());
        assert!(!enabled());
        // Bump every registered counter through the public API while no
        // session is installed: all reads come back zero.
        for c in counters::all() {
            c.bump();
            c.add(41);
            c.record_max(97);
        }
        for c in counters::all() {
            assert_eq!(c.get(), 0, "counter {} touched while disabled", c.name());
        }
        // Latency histograms are gated on the same lookup: no cell moves
        // and the timer guard reads no clock.
        for h in hist::all() {
            h.record_ns(123);
            let _t = h.timer();
        }
        for h in hist::all() {
            assert_eq!(
                h.snapshot().count,
                0,
                "hist {} touched while disabled",
                h.name()
            );
        }
        // The decision log records only into an installed session.
        assert!(!decision::enabled());
        decision::record(decision::DecisionEvent::RowSolveFailed { row: 0 });
        // Spans are inert too: the guard carries no state.
        {
            let s = span("never-recorded");
            assert!(s.live.is_none(), "disabled span captured state");
        }
        // Runtime-execution metrics are equally inert: the machine
        // substrate's gate reads false, dispatch/array reports are
        // dropped, and no trace buffer is ever handed out — so
        // `run_parallel` with everything off allocates no ring buffers
        // and reads no clock.
        assert!(!exec_metrics_enabled());
        exec::record_dispatch(exec::Dispatch {
            name: "never".into(),
            items: 1,
            chunk_ns: vec![1],
            instances: vec![1],
        });
        exec::record_array("never", 1, 1, 1);
        assert!(trace::RingBuf::for_thread(1).is_none());
        // A session started after all of that sees none of it.
        let profile = Session::start().finish();
        assert!(profile.phases.is_empty());
        assert!(profile.exec.is_none(), "disabled exec reports recorded");
        assert!(profile.counters.iter().all(|c| c.value == 0));
    }

    #[test]
    fn session_records_counters_and_spans() {
        let session = Session::start();
        counters::ILP_PIVOTS.add(7);
        counters::FM_ROWS_PEAK.record_max(12);
        counters::FM_ROWS_PEAK.record_max(5); // lower: must not shrink
        {
            let _outer = span("a");
            let _inner = span("b");
        }
        {
            let _again = span("a");
        }
        let profile = session.finish();
        assert_eq!(profile.counter("ilp.pivots"), Some(7));
        assert_eq!(profile.counter("poly.fm_rows_peak"), Some(12));
        assert_eq!(profile.phase("a").unwrap().calls, 2);
        assert_eq!(profile.phase("a/b").unwrap().calls, 1);
        // Parents sort before children.
        let ia = profile.phases.iter().position(|p| p.path == "a").unwrap();
        let ib = profile.phases.iter().position(|p| p.path == "a/b").unwrap();
        assert!(ia < ib);
        // Counters include zero-valued entries (stable shape).
        assert_eq!(profile.counters.len(), counters::all().len());
    }

    #[test]
    fn finish_disables_recording() {
        let session = Session::start();
        counters::SCC_CUTS.bump();
        let p = session.finish();
        assert_eq!(p.counter("core.scc_cuts"), Some(1));
        // After finish the session is uninstalled: bumps go nowhere and
        // reads see no session.
        counters::SCC_CUTS.bump();
        assert_eq!(counters::SCC_CUTS.get(), 0);
        assert!(!enabled());
    }

    #[test]
    fn concurrent_sessions_are_isolated() {
        // Two threads each install their own session and bump the same
        // counter different amounts; each profile sees only its own.
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|scope| {
            let b = &barrier;
            let t1 = scope.spawn(move || {
                let session = Session::start();
                b.wait();
                counters::ILP_PIVOTS.add(3);
                {
                    let _s = span("one");
                }
                b.wait();
                session.finish()
            });
            let t2 = scope.spawn(move || {
                let session = Session::start();
                b.wait();
                counters::ILP_PIVOTS.add(40);
                {
                    let _s = span("two");
                }
                b.wait();
                session.finish()
            });
            let p1 = t1.join().unwrap();
            let p2 = t2.join().unwrap();
            assert_eq!(p1.counter("ilp.pivots"), Some(3));
            assert_eq!(p2.counter("ilp.pivots"), Some(40));
            assert!(p1.phase("one").is_some() && p1.phase("two").is_none());
            assert!(p2.phase("two").is_some() && p2.phase("one").is_none());
        });
    }

    #[test]
    fn install_nests_and_restores() {
        let outer = ObsSession::profiled();
        let inner = ObsSession::profiled();
        let _og = outer.install();
        counters::ILP_SOLVES.bump();
        {
            let _ig = inner.install();
            counters::ILP_SOLVES.add(10);
        }
        // Inner guard dropped: the outer session is current again.
        counters::ILP_SOLVES.bump();
        assert_eq!(outer.finish_profile().counter("ilp.solves"), Some(2));
        assert_eq!(inner.finish_profile().counter("ilp.solves"), Some(10));
    }

    #[test]
    fn panicking_compile_leaves_no_dangling_session() {
        // Drop-safety pin: a panic that unwinds through an open span and
        // an installed session must restore the thread-local slot, so
        // later work on this thread records nothing.
        let result = std::panic::catch_unwind(|| {
            let session = ObsSession::profiled();
            let _guard = session.install();
            let _span = span("doomed");
            panic!("mid-span failure");
        });
        assert!(result.is_err());
        assert!(ObsSession::current().is_none(), "session left installed");
        assert!(!enabled());
        counters::ILP_PIVOTS.bump();
        assert_eq!(counters::ILP_PIVOTS.get(), 0);
        // The thread is fully usable for a fresh session afterwards.
        let session = Session::start();
        counters::ILP_PIVOTS.add(2);
        assert_eq!(session.finish().counter("ilp.pivots"), Some(2));
    }

    #[test]
    fn session_ext_is_per_session_and_shared_within() {
        #[derive(Default)]
        struct Marker(Mutex<u32>);
        assert!(session_ext::<Marker>().is_none(), "ext without a session");
        let s1 = ObsSession::builder().build();
        let s2 = ObsSession::builder().build();
        {
            let _g = s1.install();
            let m = session_ext::<Marker>().expect("ext under session");
            *m.0.lock().unwrap() = 7;
            // Same session → same object.
            assert_eq!(*session_ext::<Marker>().unwrap().0.lock().unwrap(), 7);
        }
        {
            let _g = s2.install();
            // Different session → fresh state.
            assert_eq!(*session_ext::<Marker>().unwrap().0.lock().unwrap(), 0);
        }
    }

    #[test]
    fn json_round_trips_through_parser() {
        let session = Session::start();
        {
            let _s = span("phase-\"quoted\"");
            counters::ILP_SOLVES.bump();
        }
        let profile = session.finish();
        let text = profile.to_json(Some("kernel \"x\"\n"));
        let v = json::parse(&text).expect("emitted profile must be valid JSON");
        assert_eq!(v.get("schema").unwrap().as_str(), Some("pluto-profile/3"));
        assert_eq!(v.get("kernel").unwrap().as_str(), Some("kernel \"x\"\n"));
        // Compile-only session: the v2 `exec` section is explicit null.
        assert!(v.get("exec").unwrap().is_null());
        // The v3 `hists` section carries the full registry with all
        // buckets present, empty or not.
        let hists = v.get("hists").unwrap().as_array().unwrap();
        assert_eq!(hists.len(), hist::all().len());
        assert_eq!(
            hists[0].get("buckets").unwrap().as_array().unwrap().len(),
            hist::NUM_BUCKETS
        );
        let phases = v.get("phases").unwrap().as_array().unwrap();
        assert_eq!(phases.len(), 1);
        assert_eq!(
            phases[0].get("path").unwrap().as_str(),
            Some("phase-\"quoted\"")
        );
        let counters_j = v.get("counters").unwrap().as_array().unwrap();
        assert_eq!(counters_j.len(), counters::all().len());
        // to_json(None) emits a JSON null kernel.
        let v2 = json::parse(&profile.to_json(None)).unwrap();
        assert!(v2.get("kernel").unwrap().is_null());
    }

    #[test]
    fn exec_reports_land_in_profile_and_json() {
        let session = Session::start();
        exec::record_dispatch(exec::Dispatch {
            name: "c2".into(),
            items: 4,
            chunk_ns: vec![200, 100],
            instances: vec![3, 1],
        });
        exec::record_array("a", 10, 4, 1);
        exec::record_array("a", 10, 2, 0); // same name: accumulates
        let profile = session.finish();
        let e = profile.exec.as_ref().expect("exec section recorded");
        assert_eq!(e.dispatches, 1);
        assert_eq!(e.threads, 2);
        assert_eq!(e.instances_per_thread, vec![3, 1]);
        assert_eq!(e.arrays.len(), 1);
        assert_eq!(e.arrays[0].accesses, 20);
        assert_eq!(e.arrays[0].l1_misses, 6);
        let v = json::parse(&profile.to_json(None)).unwrap();
        let ej = v.get("exec").unwrap();
        assert_eq!(ej.get("dispatches").unwrap().as_u64(), Some(1));
        let arrays = ej.get("arrays").unwrap().as_array().unwrap();
        assert_eq!(arrays[0].get("name").unwrap().as_str(), Some("a"));
        assert_eq!(arrays[0].get("l1_miss_rate").unwrap().as_f64(), Some(0.3));
        // A fresh session has an empty accumulator.
        assert!(Session::start().finish().exec.is_none());
    }

    #[test]
    fn table_renders_phases_and_nonzero_counters() {
        let session = Session::start();
        {
            let _s = span("render-me");
        }
        counters::ILP_CUTS.add(3);
        let t = session.finish().render_table();
        assert!(t.contains("render-me"));
        assert!(t.contains("ilp.gomory_cuts"));
        assert!(
            !t.contains("machine.instances"),
            "zero counters hidden:\n{t}"
        );
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(17), "17ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_210_000_000), "3.21s");
    }
}
