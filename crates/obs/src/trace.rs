//! Runtime execution tracing: per-thread event buffers and a Chrome
//! Trace Event Format exporter.
//!
//! Where [`span`](crate::span)/[`counters`](crate::counters) answer
//! "what did the *compiler* do", this module answers "what did the
//! *generated program* do, per thread": the machine substrate's thread
//! teams record timestamped begin/end events into thread-owned buffers
//! while a trace-recording session is installed, and
//! [`Trace::to_chrome_json`] serializes them under the `trace_event/1`
//! schema — a Chrome Trace Event Format document (JSON Object Format)
//! loadable in Perfetto or `chrome://tracing` (walkthrough in
//! PERFORMANCE.md).
//!
//! # Recording model
//!
//! Tracing is a per-session recorder
//! ([`ObsSessionBuilder::trace`](crate::ObsSessionBuilder::trace)); with
//! no session installed anywhere, [`enabled`] costs one relaxed atomic
//! load. When on, each participating thread creates its own [`RingBuf`]
//! — a bounded, thread-owned event buffer written with no
//! synchronization whatsoever (the owning thread is the only writer) —
//! and [`RingBuf::submit`]s it into the owning session's collector
//! *once*, at the end of its chunk of work: one lock acquisition per
//! thread per parallel-loop dispatch, never per event. The buffer holds
//! its session handle from creation, so events land in the compile that
//! was current when the dispatch began even if the worker's installed
//! session changes. A buffer that fills up drops further events and
//! reports the drop count at submit time instead of reallocating, so
//! tracing perturbs the traced run as little as possible.
//!
//! Timestamps are relative to the owning session's construction instant,
//! so every compile's trace starts near zero and two concurrent
//! sessions' clocks are independent ([`Trace`] additionally normalizes
//! to the earliest event on export).
//!
//! Thread ids are small integers assigned by the instrumented code:
//! tid 0 is the coordinating thread, tids 1..=N are worker slots of the
//! thread team (stable across dispatches, so one Perfetto track per
//! worker slot).
//!
//! ```
//! use pluto_obs::ObsSession;
//! let session = ObsSession::builder().trace().build();
//! {
//!     let _guard = session.install();
//!     let mut buf = pluto_obs::trace::RingBuf::for_thread(1).expect("tracing is on");
//!     buf.begin("chunk", &[("items", 8)]);
//!     buf.end("chunk", &[("instances", 8)]);
//!     buf.submit();
//! }
//! let trace = session.take_trace();
//! assert_eq!(trace.events.len(), 2);
//! let doc = pluto_obs::json::parse(&trace.to_chrome_json()).unwrap();
//! assert_eq!(doc.get("schema").unwrap().as_str(), Some("trace_event/1"));
//! ```

use crate::{json, SessionState};
use std::sync::Arc;

/// Default per-thread buffer capacity, in events. A wavefront dispatch
/// records two events per worker, so this bounds even pathological
/// loop-per-point traces; overflow drops events (counted) rather than
/// reallocating mid-measurement.
pub const RING_CAPACITY: usize = 1 << 16;

/// Whether the session installed on this thread records a trace (one
/// relaxed atomic load while no session is installed anywhere — the
/// entire disabled-path cost, as with [`enabled`](crate::enabled)).
#[inline]
pub fn enabled() -> bool {
    crate::current_state().is_some_and(|s| s.tracing)
}

/// Records one compile-time span event straight into `state`'s collector
/// on the coordinator timeline (tid 0). Called by
/// [`span`](crate::span)/`SpanGuard` while its session records a trace,
/// so optimizer phases (`parse`, `optimize/search`, `codegen`, …) appear
/// on the same Perfetto view as the thread team's runtime events. One
/// lock acquisition per event is fine here: spans fire per compiler
/// *phase*, not per iteration (the per-iteration runtime path keeps
/// using thread-owned [`RingBuf`]s).
pub(crate) fn record_compile_event(state: &SessionState, name: &str, ph: Phase) {
    let ts_ns = state.started.elapsed().as_nanos();
    state
        .trace_events
        .lock()
        .expect("trace buffer poisoned")
        .push(TraceEvent {
            name: name.to_string(),
            ph,
            tid: 0,
            ts_ns,
            args: Vec::new(),
        });
}

/// Event phase, mirroring the Chrome Trace Event `ph` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span begin (`"B"`).
    Begin,
    /// Span end (`"E"`).
    End,
    /// Instant event (`"i"`).
    Instant,
}

impl Phase {
    /// The Chrome Trace Event `ph` string.
    pub fn as_str(&self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "i",
        }
    }
}

/// One timestamped event on one thread's timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (the Perfetto slice label), e.g. the parallel loop's
    /// display name.
    pub name: String,
    /// Begin / end / instant.
    pub ph: Phase,
    /// Timeline this event belongs to: 0 = coordinator, 1..=N = worker
    /// slots.
    pub tid: u32,
    /// Nanoseconds since the owning session's construction.
    pub ts_ns: u128,
    /// Numeric payload rendered into the Chrome `args` object
    /// (item counts, instance counts, milli-ratios …).
    pub args: Vec<(&'static str, u64)>,
}

/// A bounded, thread-owned event buffer: the only writer is the owning
/// thread, so recording is synchronization-free; the single lock is
/// taken once, in [`submit`](RingBuf::submit). The buffer pins the
/// session that was current at creation, so its events land in the
/// dispatching compile.
pub struct RingBuf {
    session: Arc<SessionState>,
    tid: u32,
    events: Vec<TraceEvent>,
    capacity: usize,
    /// Events discarded because the buffer was full.
    dropped: u64,
}

impl std::fmt::Debug for RingBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingBuf")
            .field("tid", &self.tid)
            .field("events", &self.events)
            .field("capacity", &self.capacity)
            .field("dropped", &self.dropped)
            .finish_non_exhaustive()
    }
}

impl RingBuf {
    /// Creates a buffer for worker slot `tid` if the session installed
    /// on this thread records a trace; `None` (no allocation) otherwise
    /// — callers hold the `Option` and stay zero-cost when tracing is
    /// off.
    pub fn for_thread(tid: u32) -> Option<RingBuf> {
        let session = crate::current_state().filter(|s| s.tracing)?;
        Some(RingBuf {
            session,
            tid,
            events: Vec::with_capacity(64),
            capacity: RING_CAPACITY,
            dropped: 0,
        })
    }

    fn push(&mut self, name: &str, ph: Phase, args: &[(&'static str, u64)]) {
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        let ts_ns = self.session.started.elapsed().as_nanos();
        self.events.push(TraceEvent {
            name: name.to_string(),
            ph,
            tid: self.tid,
            ts_ns,
            args: args.to_vec(),
        });
    }

    /// Records a span-begin event, timestamped now.
    pub fn begin(&mut self, name: &str, args: &[(&'static str, u64)]) {
        self.push(name, Phase::Begin, args);
    }

    /// Records a span-end event, timestamped now.
    pub fn end(&mut self, name: &str, args: &[(&'static str, u64)]) {
        self.push(name, Phase::End, args);
    }

    /// Records an instant event, timestamped now.
    pub fn instant(&mut self, name: &str, args: &[(&'static str, u64)]) {
        self.push(name, Phase::Instant, args);
    }

    /// Moves the buffered events into the owning session's collector —
    /// the one lock acquisition of this buffer's lifetime. Overflow is
    /// reported as a final `trace.dropped` instant event rather than
    /// lost silently.
    pub fn submit(mut self) {
        if self.dropped > 0 {
            // Bypasses the capacity check: the report must not be
            // dropped by the very condition it reports.
            let ts_ns = self.session.started.elapsed().as_nanos();
            self.events.push(TraceEvent {
                name: "trace.dropped".to_string(),
                ph: Phase::Instant,
                tid: self.tid,
                ts_ns,
                args: vec![("events", self.dropped)],
            });
        }
        if self.events.is_empty() {
            return;
        }
        self.session
            .trace_events
            .lock()
            .expect("trace buffer poisoned")
            .append(&mut self.events);
    }
}

/// A finished trace: every submitted event, sorted by timestamp.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// All events, sorted by `(ts_ns, tid)`.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Number of distinct thread timelines in the trace.
    pub fn distinct_tids(&self) -> usize {
        let mut tids: Vec<u32> = self.events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        tids.len()
    }

    /// Serializes the trace as a Chrome Trace Event Format document
    /// (JSON Object Format), schema `trace_event/1`:
    ///
    /// * `schema` — `"trace_event/1"` (a pluto-rs extension field;
    ///   Chrome/Perfetto ignore unknown top-level keys);
    /// * `displayTimeUnit` — `"ns"`;
    /// * `traceEvents` — one object per event with the standard
    ///   `name`/`ph`/`pid`/`tid`/`ts`/`args` fields (`ts` in
    ///   microseconds as the format requires, 3 decimal places, and
    ///   timestamps normalized so the earliest event is `t = 0`), plus
    ///   one `M`-phase `thread_name` metadata record per timeline so
    ///   Perfetto labels the tracks (`coordinator`, `worker-1`, …).
    ///
    /// The output is strict RFC 8259 and round-trips through
    /// [`json::parse`]; `tests/trace_golden.rs` pins the shape.
    pub fn to_chrome_json(&self) -> String {
        let t0 = self.events.iter().map(|e| e.ts_ns).min().unwrap_or(0);
        let mut out = String::from(
            "{\n  \"schema\": \"trace_event/1\",\n  \"displayTimeUnit\": \"ns\",\n  \
             \"traceEvents\": [",
        );
        let mut first = true;
        let mut sep = |out: &mut String| {
            if first {
                first = false;
            } else {
                out.push(',');
            }
            out.push_str("\n    ");
        };
        let mut tids: Vec<u32> = self.events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        for tid in &tids {
            let label = if *tid == 0 {
                "coordinator".to_string()
            } else {
                format!("worker-{tid}")
            };
            sep(&mut out);
            out.push_str(&format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \
                 \"args\": {{\"name\": {}}}}}",
                json::escape(&label)
            ));
        }
        for e in &self.events {
            sep(&mut out);
            // Chrome wants microseconds; keep ns resolution in the
            // fraction.
            let us_int = (e.ts_ns - t0) / 1_000;
            let us_frac = (e.ts_ns - t0) % 1_000;
            out.push_str(&format!(
                "{{\"name\": {}, \"ph\": \"{}\", \"pid\": 1, \"tid\": {}, \"ts\": {}.{:03}",
                json::escape(&e.name),
                e.ph.as_str(),
                e.tid,
                us_int,
                us_frac
            ));
            if e.ph == Phase::Instant {
                out.push_str(", \"s\": \"t\"");
            }
            out.push_str(", \"args\": {");
            for (i, (k, v)) in e.args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{}: {}", json::escape(k), v));
            }
            out.push_str("}}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObsSession;

    fn trace_session() -> ObsSession {
        ObsSession::builder().trace().build()
    }

    #[test]
    fn disabled_tracing_allocates_nothing() {
        assert!(!enabled());
        // No trace-recording session: no buffer is handed out.
        assert!(RingBuf::for_thread(3).is_none());
        // A profile-only session does not enable tracing either.
        let session = ObsSession::profiled();
        let _guard = session.install();
        assert!(!enabled());
        assert!(RingBuf::for_thread(3).is_none());
        assert!(session.take_trace().events.is_empty());
    }

    #[test]
    fn events_round_trip_through_buffers() {
        let session = trace_session();
        {
            let _guard = session.install();
            let mut b1 = RingBuf::for_thread(1).expect("tracing on");
            let mut b2 = RingBuf::for_thread(2).expect("tracing on");
            b1.begin("chunk", &[("items", 4)]);
            b1.end("chunk", &[("instances", 4)]);
            b2.begin("chunk", &[("items", 3)]);
            b2.end("chunk", &[]);
            b1.submit();
            b2.submit();
        }
        let t = session.take_trace();
        assert_eq!(t.events.len(), 4);
        assert_eq!(t.distinct_tids(), 2);
        // Timestamps are sorted and monotone per thread.
        for pair in t.events.windows(2) {
            assert!(pair[0].ts_ns <= pair[1].ts_ns);
        }
        let doc = json::parse(&t.to_chrome_json()).expect("valid chrome trace");
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("trace_event/1"));
        let evs = doc.get("traceEvents").unwrap().as_array().unwrap();
        // 4 events + 2 thread_name metadata records.
        assert_eq!(evs.len(), 6);
    }

    #[test]
    fn submitted_events_outlive_the_install() {
        // A buffer created under an installed session keeps recording
        // into that session even after the install guard drops — the
        // worker-thread shape: the dispatching session is captured at
        // buffer creation.
        let session = trace_session();
        let mut b = {
            let _guard = session.install();
            RingBuf::for_thread(1).expect("tracing on")
        };
        b.instant("late", &[]);
        b.submit();
        let t = session.take_trace();
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.events[0].name, "late");
    }

    #[test]
    fn overflow_drops_and_reports() {
        let session = trace_session();
        {
            let _guard = session.install();
            let mut b = RingBuf::for_thread(1).expect("tracing on");
            b.capacity = 4;
            for _ in 0..6 {
                b.begin("e", &[]);
            }
            b.submit();
        }
        let t = session.take_trace();
        // 4 kept, capacity freed by the drop report replacing nothing:
        // the report itself needs a slot, so it is appended above cap.
        let dropped = t
            .events
            .iter()
            .find(|e| e.name == "trace.dropped")
            .expect("drop report present");
        assert_eq!(dropped.args, vec![("events", 2)]);
    }

    #[test]
    fn compile_spans_flow_into_the_trace() {
        let session = trace_session();
        {
            let _guard = session.install();
            let _outer = crate::span("optimize");
            let _inner = crate::span("search");
        }
        let t = session.take_trace();
        // Two begin/end pairs, all on the coordinator timeline, with
        // the nested span recorded under its joined path.
        assert_eq!(t.events.len(), 4);
        assert!(t.events.iter().all(|e| e.tid == 0));
        assert!(t
            .events
            .iter()
            .any(|e| e.name == "optimize/search" && e.ph == Phase::Begin));
        assert!(t
            .events
            .iter()
            .any(|e| e.name == "optimize" && e.ph == Phase::End));
    }

    #[test]
    fn take_trace_drains() {
        let session = trace_session();
        {
            let _guard = session.install();
            let mut b = RingBuf::for_thread(0).unwrap();
            b.instant("mark", &[]);
            b.submit();
        }
        assert_eq!(session.take_trace().events.len(), 1);
        assert!(session.take_trace().events.is_empty());
        assert!(!enabled());
    }
}
