//! Log2-bucketed latency histograms for the optimizer's ILP call sites.
//!
//! The [`counters`](crate::counters) registry says *how many* ILPs the
//! search solved; these histograms say how the *latency* of those solves
//! is distributed, keyed by call site:
//!
//! * [`LEGALITY`] — building one dependence's legality system
//!   (`delta_form` + Farkas elimination);
//! * [`BOUNDING`] — building one bounding-function system (Eq. 6);
//! * [`SEARCH_ROW`] — one lexmin ILP solve for a scattering row;
//! * [`EMPTINESS`] — one polyhedron-emptiness ILP probe
//!   (`ConstraintSet::is_empty`'s feasibility check; probes answered by
//!   the solver cache record no sample — the histogram counts solves
//!   actually paid for);
//! * [`SEARCH_ROW_WARM`] — one warm-started lexmin solve for a
//!   scattering row (basis reused from the band's base tableau).
//!
//! Buckets are powers of two in nanoseconds: bucket `i` counts samples
//! with `2^i <= ns < 2^(i+1)` (bucket 0 also catches 0–1 ns, the last
//! bucket is open-ended). Like the counters, each [`Hist`] is a
//! stateless descriptor naming a cell block in the session
//! installed on the recording thread — one relaxed atomic load when no
//! session exists, and [`Hist::timer`] reads no clock then. Snapshots
//! are rendered in `--profile` and serialized in the `hists` section of
//! `pluto-profile/3` (bucket spec in PERFORMANCE.md).
//!
//! ```
//! let session = pluto_obs::Session::start();
//! {
//!     let _t = pluto_obs::hist::SEARCH_ROW.timer();
//!     // ... solve ...
//! }
//! pluto_obs::hist::EMPTINESS.record_ns(900);
//! let profile = session.finish();
//! let h = profile.hist("ilp.latency.emptiness").unwrap();
//! assert_eq!(h.count, 1);
//! assert_eq!(h.buckets[9], 1); // 2^9 = 512 <= 900 < 1024
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of log2 buckets; the last bucket (`2^31` ns ≈ 2.1 s and up)
/// is open-ended.
pub const NUM_BUCKETS: usize = 32;

/// One histogram's per-session storage: bucket cells plus the latency
/// sum. Each [`ObsSession`](crate::ObsSession) owns [`NUM`] of these.
#[derive(Debug)]
pub(crate) struct Cells {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum_ns: AtomicU64,
}

impl Cells {
    pub(crate) fn new() -> Cells {
        Cells {
            buckets: [const { AtomicU64::new(0) }; NUM_BUCKETS],
            sum_ns: AtomicU64::new(0),
        }
    }

    pub(crate) fn record_ns(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, name: &'static str) -> HistSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistSnapshot {
            name,
            count: buckets.iter().sum(),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A log2-bucketed latency histogram descriptor, registered as a static
/// like a [`Counter`](crate::counters::Counter); samples land in the
/// cells of the session installed on the recording thread.
#[derive(Debug)]
pub struct Hist {
    name: &'static str,
    index: usize,
}

impl Hist {
    /// The registry name, e.g. `"ilp.latency.search_row"`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// This histogram's slot in every session's cell block.
    #[inline]
    pub(crate) fn index(&self) -> usize {
        self.index
    }

    /// Records one sample into the current session. When no session
    /// records on this thread this is a single relaxed flag load.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        crate::with_profiling(|s| s.hists[self.index].record_ns(ns));
    }

    /// Starts a latency measurement that records into this histogram
    /// when the returned guard drops. Reads no clock while no session
    /// records.
    #[must_use = "the sample is recorded when the guard drops"]
    pub fn timer(&'static self) -> Timer {
        Timer {
            hist: self,
            start: crate::enabled().then(Instant::now),
        }
    }

    /// Snapshots this histogram's cells in the current thread's session
    /// (an empty snapshot when none is installed).
    pub fn snapshot(&self) -> HistSnapshot {
        match crate::current_state() {
            Some(s) => s.hists[self.index].snapshot(self.name),
            None => HistSnapshot {
                name: self.name,
                count: 0,
                sum_ns: 0,
                buckets: vec![0; NUM_BUCKETS],
            },
        }
    }
}

/// RAII latency guard returned by [`Hist::timer`].
pub struct Timer {
    hist: &'static Hist,
    /// `None` while disabled: no clock read on either end.
    start: Option<Instant>,
}

impl Drop for Timer {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.hist
                .record_ns(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }
}

/// Bucket index for a sample: `floor(log2(ns))`, clamped to the table.
#[inline]
fn bucket_index(ns: u64) -> usize {
    if ns < 2 {
        0
    } else {
        ((63 - ns.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
    }
}

/// Inclusive lower bound of bucket `i` in nanoseconds (`0` for bucket 0,
/// else `2^i`).
pub fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

/// One histogram's cells at [`Session::finish`](crate::Session::finish)
/// time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Registry name, e.g. `"ilp.latency.legality"`.
    pub name: &'static str,
    /// Total samples (sum of the buckets).
    pub count: u64,
    /// Sum of all sample latencies, in nanoseconds.
    pub sum_ns: u64,
    /// All [`NUM_BUCKETS`] cells, index `i` counting samples in
    /// `[2^i, 2^(i+1))` ns.
    pub buckets: Vec<u64>,
}

impl HistSnapshot {
    /// Mean sample latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Adds `other`'s samples into this snapshot bucket-wise: the merge
    /// primitive under service-level aggregation
    /// ([`aggregate::ServiceMetrics`](crate::aggregate::ServiceMetrics)).
    /// Because buckets are position-aligned log2 cells, the merged
    /// histogram is exactly the histogram a single session would have
    /// recorded had it observed both sample streams.
    ///
    /// # Panics
    /// If the two snapshots have different bucket counts (they never do
    /// for registry histograms — both carry [`NUM_BUCKETS`] cells).
    pub fn merge(&mut self, other: &HistSnapshot) {
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "merging histograms with different bucket layouts"
        );
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
    }

    /// Estimated latency of the `q`-quantile sample (`0.0 < q <= 1.0`),
    /// in nanoseconds; see [`quantile_from_buckets`]. 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        quantile_from_buckets(&self.buckets, q)
    }

    /// Estimated median latency (p50), in nanoseconds.
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// Estimated 90th-percentile latency, in nanoseconds.
    pub fn p90_ns(&self) -> u64 {
        self.quantile_ns(0.90)
    }

    /// Estimated 99th-percentile latency, in nanoseconds.
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }
}

/// Estimates the `q`-quantile (`0.0 < q <= 1.0`) of a log2-bucketed
/// sample set, in nanoseconds.
///
/// The rank `ceil(q·count)` sample is located by walking the cumulative
/// bucket counts; its latency is estimated by linear interpolation
/// inside the bucket (`[2^i, 2^(i+1))`), the standard estimator for
/// histogram quantiles. The estimate is exact to within one bucket width
/// — a factor of 2, which is what log2 buckets can promise — and is
/// monotone in `q`. Returns 0 for an empty sample set.
///
/// Shared by [`HistSnapshot::quantile_ns`], the `pluto-stats/1`
/// aggregate document, and `bench_diff`'s warn-only latency-quantile
/// deltas (PERFORMANCE.md §4.0).
pub fn quantile_from_buckets(buckets: &[u64], q: f64) -> u64 {
    let count: u64 = buckets.iter().sum();
    if count == 0 {
        return 0;
    }
    let target = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut cum = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        if cum + n >= target {
            let lo = bucket_lo(i) as f64;
            let hi = bucket_lo(i + 1) as f64;
            let frac = (target - cum) as f64 / n as f64;
            return (lo + frac * (hi - lo)) as u64;
        }
        cum += n;
    }
    bucket_lo(buckets.len())
}

macro_rules! registry {
    ($($(#[$doc:meta])* $ident:ident => $name:literal;)*) => {
        #[allow(non_camel_case_types, clippy::upper_case_acronyms)]
        #[repr(usize)]
        enum Idx { $($ident,)* __Count }

        $( $(#[$doc])* pub static $ident: Hist =
            Hist { name: $name, index: Idx::$ident as usize }; )*

        /// Number of registered histograms — the length of each
        /// session's histogram cell block.
        pub(crate) const NUM: usize = Idx::__Count as usize;

        /// Every registered histogram, in the stable order
        /// `pluto-profile/3` serializes (renaming or reordering is a
        /// schema break, exactly as with
        /// [`counters::all`](crate::counters::all); new keys append).
        pub fn all() -> &'static [&'static Hist] {
            static ALL: &[&Hist] = &[ $( &$ident, )* ];
            ALL
        }
    };
}

registry! {
    /// Latency of building one dependence's legality (Farkas) system.
    LEGALITY => "ilp.latency.legality";
    /// Latency of building one bounding-function (Eq. 6) system.
    BOUNDING => "ilp.latency.bounding";
    /// Latency of one lexmin ILP solve for a scattering row.
    SEARCH_ROW => "ilp.latency.search_row";
    /// Latency of one polyhedron-emptiness ILP probe.
    EMPTINESS => "ilp.latency.emptiness";
    /// Latency of one warm-started lexmin solve for a scattering row
    /// (the reused-basis fast path; cold solves land in [`SEARCH_ROW`]).
    SEARCH_ROW_WARM => "ilp.latency.search_row_warm";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_lo(0), 0);
        assert_eq!(bucket_lo(10), 1024);
    }

    #[test]
    fn disabled_recording_is_inert() {
        assert!(!crate::enabled());
        SEARCH_ROW.record_ns(100);
        {
            let t = SEARCH_ROW.timer();
            assert!(t.start.is_none(), "disabled timer read the clock");
        }
        let s = SEARCH_ROW.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.sum_ns, 0);
    }

    #[test]
    fn merge_adds_bucketwise() {
        let mut a = HistSnapshot {
            name: "m",
            count: 3,
            sum_ns: 30,
            buckets: {
                let mut b = vec![0; NUM_BUCKETS];
                b[3] = 2;
                b[9] = 1;
                b
            },
        };
        let b = HistSnapshot {
            name: "m",
            count: 2,
            sum_ns: 2000,
            buckets: {
                let mut b = vec![0; NUM_BUCKETS];
                b[9] = 1;
                b[10] = 1;
                b
            },
        };
        a.merge(&b);
        assert_eq!(a.count, 5);
        assert_eq!(a.sum_ns, 2030);
        assert_eq!(a.buckets[3], 2);
        assert_eq!(a.buckets[9], 2);
        assert_eq!(a.buckets[10], 1);
        // Merging is exactly what one session observing both streams
        // would have recorded: the bucket sum still equals the count.
        assert_eq!(a.buckets.iter().sum::<u64>(), a.count);
    }

    #[test]
    fn quantiles_walk_the_cumulative_buckets() {
        // 10 samples: 4 in bucket 3 ([8,16)), 4 in bucket 4 ([16,32)),
        // 2 in bucket 8 ([256,512)).
        let mut buckets = vec![0u64; NUM_BUCKETS];
        buckets[3] = 4;
        buckets[4] = 4;
        buckets[8] = 2;
        // p50 → rank 5, the first sample of bucket 4: 16 + (1/4)·16 = 20.
        assert_eq!(quantile_from_buckets(&buckets, 0.50), 20);
        // p90 → rank 9, the first sample of bucket 8: 256 + (1/2)·256.
        assert_eq!(quantile_from_buckets(&buckets, 0.90), 384);
        // p99 → rank 10, the last sample: the top of bucket 8.
        assert_eq!(quantile_from_buckets(&buckets, 0.99), 512);
        // Monotone in q, and empty histograms answer 0.
        assert!(quantile_from_buckets(&buckets, 0.5) <= quantile_from_buckets(&buckets, 0.9));
        assert_eq!(quantile_from_buckets(&[0; NUM_BUCKETS], 0.5), 0);
        // The open-ended last bucket still answers (its nominal top).
        let mut top = vec![0u64; NUM_BUCKETS];
        top[NUM_BUCKETS - 1] = 1;
        assert_eq!(quantile_from_buckets(&top, 0.99), 1u64 << NUM_BUCKETS);
        let snap = HistSnapshot {
            name: "q",
            count: 10,
            sum_ns: 0,
            buckets,
        };
        assert_eq!(snap.p50_ns(), 20);
        assert_eq!(snap.p90_ns(), 384);
        assert_eq!(snap.p99_ns(), 512);
    }

    #[test]
    fn samples_land_in_their_buckets() {
        let session = crate::Session::start();
        EMPTINESS.record_ns(3); // bucket 1
        EMPTINESS.record_ns(900); // bucket 9
        EMPTINESS.record_ns(900); // bucket 9
        {
            let _t = LEGALITY.timer(); // records something >= 0
        }
        let profile = session.finish();
        let e = profile.hist("ilp.latency.emptiness").unwrap();
        assert_eq!(e.count, 3);
        assert_eq!(e.sum_ns, 1803);
        assert_eq!(e.buckets[1], 1);
        assert_eq!(e.buckets[9], 2);
        assert_eq!(e.mean_ns(), 601);
        assert_eq!(profile.hist("ilp.latency.legality").unwrap().count, 1);
        // A fresh session has fresh cells.
        let p2 = crate::Session::start().finish();
        assert_eq!(p2.hist("ilp.latency.emptiness").unwrap().count, 0);
    }
}
