//! Optimizer decision telemetry: a structured, bounded event log of the
//! hyperplane search.
//!
//! Where [`span`](crate::span)/[`counters`](crate::counters) say how
//! *long* the optimizer ran and how *often* it solved, this module says
//! *why* it chose what it chose: one event per committed scattering row
//! (the assembled Farkas/ILP system size, the Eq. 6 lexmin objective
//! `(u, w)`, the hyperplane found per statement, which dependences the
//! row newly satisfies and which are still carried, how many H⊥
//! orthogonality rows were in force), plus events for rejected
//! zero/duplicate candidates, SCC cuts with their reason, closed bands,
//! tiling row insertion, wavefront skewing, the vectorization reorder,
//! and Feautrier fallback rows.
//!
//! # Recording model
//!
//! Events land in the [`ObsSession`](crate::ObsSession) installed on the
//! recording thread, provided its decision recorder is on
//! ([`ObsSessionBuilder::decisions`](crate::ObsSessionBuilder::decisions));
//! with no session installed anywhere [`enabled`] is one relaxed atomic
//! load — the entire disabled-path cost. Each session's collector is
//! bounded ([`LOG_CAPACITY`]): excess events are counted as dropped
//! rather than reallocating without bound. Because the log is per
//! session, two compiles recording concurrently on different threads
//! can never interleave their event streams; drain a session's log with
//! [`ObsSession::take_decisions`](crate::ObsSession::take_decisions).
//!
//! The event stream is *replayable*: [`DecisionLog::ledger`] folds the
//! events in order — applying the row-index shifts of
//! [`RowsInserted`](DecisionEvent::RowsInserted) (tiling) and
//! [`RowMoved`](DecisionEvent::RowMoved) (vectorization reorder) — to
//! reconstruct, per dependence, the first row of the *final*
//! transformation that strictly satisfies it. `crates/analyze` checks
//! that ledger against its independently re-derived carried dependences
//! (diagnostic `PL007-ledger-divergence`).
//!
//! ```
//! use pluto_obs::decision::{self, DecisionEvent};
//! use pluto_obs::ObsSession;
//! let session = ObsSession::builder().decisions().build();
//! {
//!     let _guard = session.install();
//!     decision::record(DecisionEvent::RowSolved {
//!         row: 0,
//!         ilp_rows: 12,
//!         ilp_cols: 5,
//!         objective: vec![0, 1],
//!         hyperplanes: vec![vec![1, 0, 0]],
//!         newly_satisfied: vec![0],
//!         still_carried: vec![1],
//!         orth_constraints: 0,
//!     });
//! }
//! let log = session.take_decisions();
//! assert_eq!(log.events.len(), 1);
//! assert_eq!(log.ledger(2), vec![Some(0), None]);
//! ```

use crate::json;

/// Hard bound on each session's retained event count. The search emits
/// a handful of events per scattering row, so even pathological programs
/// stay far below this; overflow increments [`DecisionLog::dropped`]
/// instead of growing without bound.
pub const LOG_CAPACITY: usize = 1 << 14;

/// Whether the session installed on this thread records decisions (one
/// relaxed atomic load while no session is installed anywhere — the
/// entire disabled-path cost, as with [`enabled`](crate::enabled)).
#[inline]
pub fn enabled() -> bool {
    crate::current_state().is_some_and(|s| s.decisions)
}

/// Appends one event to the current session's log; a no-op when no
/// decision-recording session is installed on this thread, a drop count
/// when the log is full. Emitters gate the (allocating) event
/// construction on [`enabled`] themselves, so the disabled path never
/// reaches this function.
pub fn record(ev: DecisionEvent) {
    let Some(state) = crate::current_state() else {
        return;
    };
    if !state.decisions {
        return;
    }
    let mut log = state.decision_log.lock().expect("decision log poisoned");
    if log.0.len() >= LOG_CAPACITY {
        log.1 += 1;
    } else {
        log.0.push(ev);
    }
}

/// Why a candidate hyperplane was not added to a statement's
/// independence basis H.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// All iterator coefficients were zero (a "sunk" completed statement
    /// where lexmin picked the trivial row).
    Zero,
    /// The row is linearly dependent on the statement's existing rows.
    Duplicate,
}

impl RejectReason {
    /// Stable lower-snake name used in `pluto-explain/1`.
    pub fn as_str(&self) -> &'static str {
        match self {
            RejectReason::Zero => "zero",
            RejectReason::Duplicate => "duplicate",
        }
    }
}

/// Why the DDG was cut with a scalar dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CutReason {
    /// The row search found no hyperplane (or only loop-independent
    /// orderings remained): cutting is the only way to make progress.
    NoProgress,
    /// The `--nofuse` policy separates all SCCs up front.
    FusionPolicy,
}

impl CutReason {
    /// Stable lower-snake name used in `pluto-explain/1`.
    pub fn as_str(&self) -> &'static str {
        match self {
            CutReason::NoProgress => "no_progress",
            CutReason::FusionPolicy => "fusion_policy",
        }
    }
}

/// One optimizer decision. Row indices are *as of the moment of the
/// event*; later [`RowsInserted`](DecisionEvent::RowsInserted) /
/// [`RowMoved`](DecisionEvent::RowMoved) events shift them
/// ([`DecisionLog::ledger`] replays the shifts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecisionEvent {
    /// A Farkas system was built and its multipliers eliminated
    /// (Fourier–Motzkin), yielding a constraint system over the
    /// coefficient unknowns.
    FarkasEliminated {
        /// Farkas multipliers eliminated (one per dependence-polyhedron
        /// constraint plus λ₀).
        multipliers: usize,
        /// Identity rows before elimination.
        rows_in: usize,
        /// Equality constraints in the eliminated system.
        eqs_out: usize,
        /// Inequality constraints in the eliminated system.
        ineqs_out: usize,
    },
    /// The lexmin ILP found a legal hyperplane row.
    RowSolved {
        /// Global row index the solution was committed at.
        row: usize,
        /// Inequality rows of the assembled ILP (all cached Farkas
        /// systems plus Σc ≥ 1 and H⊥ rows).
        ilp_rows: usize,
        /// Unknowns of the assembled ILP (`u…, w, per-statement c…, c0`).
        ilp_cols: usize,
        /// Leading objective values: the bounding-function coefficients
        /// `u₁…u_p` then `w` of Eq. 6, as minimized.
        objective: Vec<i64>,
        /// Per-statement hyperplane `[c₁…c_m, c₀]` (iterator
        /// coefficients then the constant).
        hyperplanes: Vec<Vec<i64>>,
        /// Dependences (indices into the input slice) first strictly
        /// satisfied by this row.
        newly_satisfied: Vec<usize>,
        /// Legality dependences still unsatisfied after this row.
        still_carried: Vec<usize>,
        /// H⊥ orthogonality inequality rows in force (Eq. 5 linear
        /// independence), summed over statements.
        orth_constraints: usize,
    },
    /// The lexmin ILP was infeasible at this row (the search will cut
    /// or close the band).
    RowSolveFailed {
        /// Row index the search was stuck at.
        row: usize,
    },
    /// A candidate row was not entered into a statement's independence
    /// basis.
    CandidateRejected {
        /// Row the candidate was found at.
        row: usize,
        /// Statement whose candidate was rejected.
        stmt: usize,
        /// Zero or duplicate.
        reason: RejectReason,
    },
    /// The DDG was cut between SCCs with a scalar dimension.
    SccCut {
        /// Row index of the inserted scalar row.
        row: usize,
        /// No-progress or fusion policy.
        reason: CutReason,
        /// Number of strongly connected components separated.
        components: usize,
        /// Inter-component dependences satisfied by the cut.
        satisfied: Vec<usize>,
    },
    /// A permutable band was closed.
    BandClosed {
        /// First row of the band.
        start: usize,
        /// Width of the band.
        width: usize,
    },
    /// Tiling inserted tile-space rows, shifting every row index ≥ `at`
    /// up by `count`.
    RowsInserted {
        /// Insertion point (the tiled band's start).
        at: usize,
        /// Number of rows inserted (the band width).
        count: usize,
        /// Tiling level of the new rows (1 = L1, 2 = L2, …).
        tile_level: u8,
    },
    /// The tile-space wavefront summed `degrees + 1` band rows into row
    /// `row` (Algorithm 2) — indices are unchanged, satisfaction claims
    /// are preserved by band permutability.
    Wavefront {
        /// The skewed (sum) row.
        row: usize,
        /// Degrees of pipelined parallelism extracted.
        degrees: usize,
    },
    /// The vectorization reorder moved row `from` to position `to`
    /// (rows in between shift down by one).
    RowMoved {
        /// Original index of the moved (vector) row.
        from: usize,
        /// Final index (the band's innermost position).
        to: usize,
    },
    /// The Feautrier scheduling baseline was entered.
    FeautrierFallback {
        /// Statements being scheduled.
        statements: usize,
    },
    /// A Feautrier schedule row was committed.
    FeautrierRow {
        /// Global row index.
        row: usize,
        /// Dependences first strictly satisfied by this row.
        satisfied: Vec<usize>,
    },
}

impl DecisionEvent {
    /// Stable lower-snake event name used as the `kind` field of
    /// `pluto-explain/1` (pinned by `tests/explain_golden.rs`).
    pub fn kind(&self) -> &'static str {
        match self {
            DecisionEvent::FarkasEliminated { .. } => "farkas_eliminated",
            DecisionEvent::RowSolved { .. } => "row_solved",
            DecisionEvent::RowSolveFailed { .. } => "row_solve_failed",
            DecisionEvent::CandidateRejected { .. } => "candidate_rejected",
            DecisionEvent::SccCut { .. } => "scc_cut",
            DecisionEvent::BandClosed { .. } => "band_closed",
            DecisionEvent::RowsInserted { .. } => "rows_inserted",
            DecisionEvent::Wavefront { .. } => "wavefront",
            DecisionEvent::RowMoved { .. } => "row_moved",
            DecisionEvent::FeautrierFallback { .. } => "feautrier_fallback",
            DecisionEvent::FeautrierRow { .. } => "feautrier_row",
        }
    }

    /// One human-readable line for the `--explain` report.
    pub fn render(&self) -> String {
        fn rows(v: &[usize]) -> String {
            if v.is_empty() {
                "none".to_string()
            } else {
                v.iter()
                    .map(|d| format!("[{d}]"))
                    .collect::<Vec<_>>()
                    .join(",")
            }
        }
        match self {
            DecisionEvent::FarkasEliminated {
                multipliers,
                rows_in,
                eqs_out,
                ineqs_out,
            } => format!(
                "farkas system: {multipliers} multipliers eliminated from {rows_in} rows -> \
                 {eqs_out} eqs + {ineqs_out} ineqs"
            ),
            DecisionEvent::RowSolved {
                row,
                ilp_rows,
                ilp_cols,
                objective,
                hyperplanes,
                newly_satisfied,
                still_carried,
                orth_constraints,
            } => format!(
                "row c{}: solved {ilp_rows}x{ilp_cols} ILP, objective (u,w) = {objective:?}, \
                 hyperplanes {hyperplanes:?}, {orth_constraints} H-perp rows; newly satisfied {}; \
                 still carried {}",
                row + 1,
                rows(newly_satisfied),
                rows(still_carried)
            ),
            DecisionEvent::RowSolveFailed { row } => {
                format!("row c{}: no legal hyperplane (ILP infeasible)", row + 1)
            }
            DecisionEvent::CandidateRejected { row, stmt, reason } => format!(
                "row c{}: candidate for S{} rejected ({})",
                row + 1,
                stmt + 1,
                reason.as_str()
            ),
            DecisionEvent::SccCut {
                row,
                reason,
                components,
                satisfied,
            } => format!(
                "row c{}: DDG cut into {components} components ({}); satisfied {}",
                row + 1,
                reason.as_str(),
                rows(satisfied)
            ),
            DecisionEvent::BandClosed { start, width } => format!(
                "band closed: rows c{}..c{} (width {width})",
                start + 1,
                start + width
            ),
            DecisionEvent::RowsInserted {
                at,
                count,
                tile_level,
            } => format!(
                "tiling: {count} tile row(s) inserted at c{} (level {tile_level})",
                at + 1
            ),
            DecisionEvent::Wavefront { row, degrees } => format!(
                "wavefront: row c{} skewed for {degrees} degree(s) of pipelined parallelism",
                row + 1
            ),
            DecisionEvent::RowMoved { from, to } => format!(
                "vectorization: row c{} moved innermost to c{}",
                from + 1,
                to + 1
            ),
            DecisionEvent::FeautrierFallback { statements } => {
                format!("feautrier fallback entered for {statements} statement(s)")
            }
            DecisionEvent::FeautrierRow { row, satisfied } => {
                format!("feautrier row c{}: satisfied {}", row + 1, rows(satisfied))
            }
        }
    }

    /// Serializes the event as one `pluto-explain/1` JSON object.
    pub fn to_json(&self) -> String {
        fn usizes(v: &[usize]) -> String {
            let items: Vec<String> = v.iter().map(|x| x.to_string()).collect();
            format!("[{}]", items.join(", "))
        }
        fn i64s(v: &[i64]) -> String {
            let items: Vec<String> = v.iter().map(|x| x.to_string()).collect();
            format!("[{}]", items.join(", "))
        }
        let mut out = format!("{{\"kind\": {}", json::escape(self.kind()));
        match self {
            DecisionEvent::FarkasEliminated {
                multipliers,
                rows_in,
                eqs_out,
                ineqs_out,
            } => out.push_str(&format!(
                ", \"multipliers\": {multipliers}, \"rows_in\": {rows_in}, \
                 \"eqs_out\": {eqs_out}, \"ineqs_out\": {ineqs_out}"
            )),
            DecisionEvent::RowSolved {
                row,
                ilp_rows,
                ilp_cols,
                objective,
                hyperplanes,
                newly_satisfied,
                still_carried,
                orth_constraints,
            } => {
                let hp: Vec<String> = hyperplanes.iter().map(|h| i64s(h)).collect();
                out.push_str(&format!(
                    ", \"row\": {row}, \"ilp_rows\": {ilp_rows}, \"ilp_cols\": {ilp_cols}, \
                     \"objective\": {}, \"hyperplanes\": [{}], \"newly_satisfied\": {}, \
                     \"still_carried\": {}, \"orth_constraints\": {orth_constraints}",
                    i64s(objective),
                    hp.join(", "),
                    usizes(newly_satisfied),
                    usizes(still_carried)
                ));
            }
            DecisionEvent::RowSolveFailed { row } => out.push_str(&format!(", \"row\": {row}")),
            DecisionEvent::CandidateRejected { row, stmt, reason } => out.push_str(&format!(
                ", \"row\": {row}, \"stmt\": {stmt}, \"reason\": {}",
                json::escape(reason.as_str())
            )),
            DecisionEvent::SccCut {
                row,
                reason,
                components,
                satisfied,
            } => out.push_str(&format!(
                ", \"row\": {row}, \"reason\": {}, \"components\": {components}, \
                 \"satisfied\": {}",
                json::escape(reason.as_str()),
                usizes(satisfied)
            )),
            DecisionEvent::BandClosed { start, width } => {
                out.push_str(&format!(", \"start\": {start}, \"width\": {width}"));
            }
            DecisionEvent::RowsInserted {
                at,
                count,
                tile_level,
            } => out.push_str(&format!(
                ", \"at\": {at}, \"count\": {count}, \"tile_level\": {tile_level}"
            )),
            DecisionEvent::Wavefront { row, degrees } => {
                out.push_str(&format!(", \"row\": {row}, \"degrees\": {degrees}"));
            }
            DecisionEvent::RowMoved { from, to } => {
                out.push_str(&format!(", \"from\": {from}, \"to\": {to}"));
            }
            DecisionEvent::FeautrierFallback { statements } => {
                out.push_str(&format!(", \"statements\": {statements}"));
            }
            DecisionEvent::FeautrierRow { row, satisfied } => {
                out.push_str(&format!(
                    ", \"row\": {row}, \"satisfied\": {}",
                    usizes(satisfied)
                ));
            }
        }
        out.push('}');
        out
    }
}

/// Aggregate search statistics derived from a [`DecisionLog`] — the
/// columns of the EXPERIMENTS.md per-kernel search-stats table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// `RowSolved` events (committed hyperplane rows).
    pub rows_solved: u64,
    /// `CandidateRejected` events (zero/duplicate candidates).
    pub candidates_rejected: u64,
    /// `SccCut` events.
    pub scc_cuts: u64,
    /// `RowSolveFailed` events (infeasible lexmin ILPs).
    pub row_solve_failures: u64,
    /// `FeautrierFallback` events.
    pub feautrier_fallbacks: u64,
}

/// A finished decision log: every recorded event, in emission order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DecisionLog {
    /// Events in the order the optimizer emitted them.
    pub events: Vec<DecisionEvent>,
    /// Events discarded because the log hit [`LOG_CAPACITY`].
    pub dropped: u64,
}

impl DecisionLog {
    /// Reconstructs the satisfaction ledger in *final* row coordinates:
    /// for each of `num_deps` dependences, the first row of the final
    /// transformation that strictly satisfies it (`None` if never).
    ///
    /// The fold applies, in order: satisfaction claims from
    /// `RowSolved`/`SccCut`/`FeautrierRow`, the `+count` shift of every
    /// claim at or below a `RowsInserted` point (tiling), and the
    /// remapping of a `RowMoved` reorder. `Wavefront` changes no index
    /// and preserves claims (every band row has non-negative dependence
    /// components, so a sum containing a strictly positive row stays
    /// strictly positive).
    pub fn ledger(&self, num_deps: usize) -> Vec<Option<usize>> {
        let mut ledger: Vec<Option<usize>> = vec![None; num_deps];
        let claim = |ledger: &mut Vec<Option<usize>>, deps: &[usize], row: usize| {
            for &d in deps {
                if d < ledger.len() && ledger[d].is_none() {
                    ledger[d] = Some(row);
                }
            }
        };
        for ev in &self.events {
            match ev {
                DecisionEvent::RowSolved {
                    row,
                    newly_satisfied,
                    ..
                } => claim(&mut ledger, newly_satisfied, *row),
                DecisionEvent::SccCut { row, satisfied, .. } => {
                    claim(&mut ledger, satisfied, *row);
                }
                DecisionEvent::FeautrierRow { row, satisfied } => {
                    claim(&mut ledger, satisfied, *row);
                }
                DecisionEvent::RowsInserted { at, count, .. } => {
                    for e in ledger.iter_mut().flatten() {
                        if *e >= *at {
                            *e += count;
                        }
                    }
                }
                DecisionEvent::RowMoved { from, to } => {
                    for e in ledger.iter_mut().flatten() {
                        if *e == *from {
                            *e = *to;
                        } else if *from < *to && *e > *from && *e <= *to {
                            *e -= 1;
                        } else if *to < *from && *e >= *to && *e < *from {
                            *e += 1;
                        }
                    }
                }
                _ => {}
            }
        }
        ledger
    }

    /// Tallies the event kinds into [`SearchStats`].
    pub fn stats(&self) -> SearchStats {
        let mut s = SearchStats::default();
        for ev in &self.events {
            match ev {
                DecisionEvent::RowSolved { .. } => s.rows_solved += 1,
                DecisionEvent::CandidateRejected { .. } => s.candidates_rejected += 1,
                DecisionEvent::SccCut { .. } => s.scc_cuts += 1,
                DecisionEvent::RowSolveFailed { .. } => s.row_solve_failures += 1,
                DecisionEvent::FeautrierFallback { .. } => s.feautrier_fallbacks += 1,
                _ => {}
            }
        }
        s
    }

    /// Renders the log as indented human-readable lines (the decision
    /// section of `plutoc --explain`).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("decision log ({} events):\n", self.events.len()));
        for ev in &self.events {
            out.push_str("  ");
            out.push_str(&ev.render());
            out.push('\n');
        }
        if self.dropped > 0 {
            out.push_str(&format!(
                "  ({} events dropped over capacity)\n",
                self.dropped
            ));
        }
        out
    }

    /// Serializes the events as a `pluto-explain/1` JSON array; each
    /// element is one object with a `kind` discriminator. `indent` is
    /// the base indentation of the array's closing bracket.
    pub fn events_json(&self, indent: &str) -> String {
        let mut out = String::from("[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(indent);
            out.push_str("  ");
            out.push_str(&ev.to_json());
        }
        if !self.events.is_empty() {
            out.push('\n');
            out.push_str(indent);
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObsSession;

    /// Installs a decisions-only session, runs `f`, returns its log.
    fn recorded(f: impl FnOnce()) -> DecisionLog {
        let session = ObsSession::builder().decisions().build();
        {
            let _guard = session.install();
            f();
        }
        session.take_decisions()
    }

    #[test]
    fn disabled_recording_is_inert() {
        assert!(!enabled());
        record(DecisionEvent::RowSolveFailed { row: 0 });
        // A profile-only session does not record decisions either.
        let session = ObsSession::profiled();
        {
            let _guard = session.install();
            assert!(!enabled());
            record(DecisionEvent::RowSolveFailed { row: 1 });
        }
        let log = session.take_decisions();
        assert!(log.events.is_empty());
        assert_eq!(log.dropped, 0);
    }

    #[test]
    fn events_round_trip_and_tally() {
        let log = recorded(|| {
            record(DecisionEvent::RowSolved {
                row: 0,
                ilp_rows: 9,
                ilp_cols: 4,
                objective: vec![0, 1],
                hyperplanes: vec![vec![1, 0, 0]],
                newly_satisfied: vec![1],
                still_carried: vec![0],
                orth_constraints: 0,
            });
            record(DecisionEvent::CandidateRejected {
                row: 0,
                stmt: 1,
                reason: RejectReason::Zero,
            });
            record(DecisionEvent::SccCut {
                row: 1,
                reason: CutReason::NoProgress,
                components: 2,
                satisfied: vec![0],
            });
        });
        assert_eq!(log.events.len(), 3);
        let s = log.stats();
        assert_eq!(s.rows_solved, 1);
        assert_eq!(s.candidates_rejected, 1);
        assert_eq!(s.scc_cuts, 1);
        assert_eq!(log.ledger(2), vec![Some(1), Some(0)]);
        // The JSON array parses and carries the kind discriminators.
        let doc = json::parse(&log.events_json("")).expect("valid events JSON");
        let evs = doc.as_array().unwrap();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].get("kind").unwrap().as_str(), Some("row_solved"));
        assert_eq!(evs[1].get("reason").unwrap().as_str(), Some("zero"));
        assert!(log.render_text().contains("DDG cut into 2 components"));
    }

    #[test]
    fn ledger_replays_row_shifts() {
        // Two rows solved, then tiling inserts 2 rows at 0, then the
        // vectorization reorder moves (what is now) row 2 to row 3.
        let log = recorded(|| {
            record(DecisionEvent::RowSolved {
                row: 0,
                ilp_rows: 1,
                ilp_cols: 1,
                objective: vec![],
                hyperplanes: vec![],
                newly_satisfied: vec![0],
                still_carried: vec![1],
                orth_constraints: 0,
            });
            record(DecisionEvent::RowSolved {
                row: 1,
                ilp_rows: 1,
                ilp_cols: 1,
                objective: vec![],
                hyperplanes: vec![],
                newly_satisfied: vec![1],
                still_carried: vec![],
                orth_constraints: 0,
            });
            record(DecisionEvent::RowsInserted {
                at: 0,
                count: 2,
                tile_level: 1,
            });
            record(DecisionEvent::RowMoved { from: 2, to: 3 });
        });
        // Dep 0: row 0 -> +2 -> 2 -> moved to 3. Dep 1: row 1 -> 3 -> 2
        // (shifted down by the move passing over it).
        assert_eq!(log.ledger(2), vec![Some(3), Some(2)]);
    }

    #[test]
    fn overflow_drops_and_counts() {
        let session = ObsSession::builder().decisions().build();
        {
            let _guard = session.install();
            for i in 0..LOG_CAPACITY + 5 {
                record(DecisionEvent::RowSolveFailed { row: i });
            }
        }
        let log = session.take_decisions();
        assert_eq!(log.events.len(), LOG_CAPACITY);
        assert_eq!(log.dropped, 5);
        // take_decisions() drained: a second take is empty.
        assert!(session.take_decisions().events.is_empty());
    }
}
