//! The central counter registry: one named [`Counter`] descriptor per
//! measured effect, declared here rather than in the crates that bump
//! them.
//!
//! Centralising the declarations keeps registration trivial (no
//! life-before-main tricks, no lock on the hot path): [`all`] is a plain
//! slice of statics, so an [`ObsSession`](crate::ObsSession) can size and
//! snapshot the complete registry by construction. Each descriptor is a
//! `(name, index)` pair; the *cells* live in the session installed on the
//! recording thread, so concurrent compiles accumulate into disjoint
//! storage. Hot crates depend on `pluto-obs` and bump e.g. [`ILP_PIVOTS`]
//! directly; the full glossary — what each counter means and which code
//! path feeds it — lives in PERFORMANCE.md.
//!
//! Counter names are namespaced `crate.effect` (`ilp.pivots`,
//! `poly.fm_eliminations`) and are part of the stable
//! `pluto-profile/1` schema: renaming or removing one is a
//! schema-breaking change.

use std::sync::atomic::Ordering;

/// A named monotonic counter with relaxed-atomic updates into the
/// current thread's [`ObsSession`](crate::ObsSession), inert while none
/// is installed.
///
/// The descriptor itself is stateless — it names a slot in every
/// session's cell block. All mutating methods first check the
/// process-wide installed-session count (one relaxed atomic load) and
/// return without touching any cell when no session exists, so
/// instrumentation can stay in hot loops permanently.
///
/// ```
/// // Without a session, bumps are discarded:
/// pluto_obs::counters::ILP_PIVOTS.add(10);
/// assert_eq!(pluto_obs::counters::ILP_PIVOTS.get(), 0);
/// ```
pub struct Counter {
    name: &'static str,
    index: usize,
}

impl Counter {
    /// The registry name, e.g. `"ilp.pivots"`.
    #[inline]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// This counter's slot in every session's cell block (also its
    /// position in [`all`] and in serialized profiles).
    #[inline]
    pub(crate) fn index(&self) -> usize {
        self.index
    }

    /// Adds `n` to the current session's cell if one records profile
    /// data on this thread; no-op (and no cell touched) otherwise.
    #[inline]
    pub fn add(&self, n: u64) {
        crate::with_profiling(|s| {
            s.counters[self.index].fetch_add(n, Ordering::Relaxed);
        });
    }

    /// Adds 1; see [`add`](Counter::add).
    #[inline]
    pub fn bump(&self) {
        self.add(1);
    }

    /// Raises the counter to `n` if `n` is larger (high-water mark, e.g.
    /// peak Fourier–Motzkin row count); inert while no session records.
    #[inline]
    pub fn record_max(&self, n: u64) {
        crate::with_profiling(|s| {
            s.counters[self.index].fetch_max(n, Ordering::Relaxed);
        });
    }

    /// Current value in the session installed on this thread; 0 when
    /// none is (reads are not profile-gated — a session that records no
    /// profile still reads its zeros).
    #[inline]
    pub fn get(&self) -> u64 {
        crate::current_state().map_or(0, |s| s.counters[self.index].load(Ordering::Relaxed))
    }
}

macro_rules! registry {
    ($($(#[$doc:meta])* $ident:ident => $name:literal;)*) => {
        // A hidden enum gives each counter a stable, dense index at
        // compile time; `__Count` sizes every session's cell block.
        #[allow(non_camel_case_types, clippy::upper_case_acronyms)]
        #[repr(usize)]
        enum Idx { $($ident,)* __Count }

        $( $(#[$doc])* pub static $ident: Counter =
            Counter { name: $name, index: Idx::$ident as usize }; )*

        /// Number of registered counters — the length of each session's
        /// counter cell block.
        pub(crate) const NUM: usize = Idx::__Count as usize;

        /// Every registered counter, in declaration order — the order
        /// counters appear in profiles and `BENCH_pipeline.json`.
        pub fn all() -> &'static [&'static Counter] {
            static ALL: &[&Counter] = &[ $( &$ident, )* ];
            ALL
        }
    };
}

registry! {
    /// Dual-simplex tableaux solved to completion or infeasibility
    /// (`ilp::Tableau::solve`) — every legality check, bounding-function
    /// lexmin, and analyzer witness search lands here.
    ILP_SOLVES => "ilp.solves";
    /// Dual-simplex pivot steps across all solves: the innermost unit of
    /// ILP work (DESIGN.md §5).
    ILP_PIVOTS => "ilp.pivots";
    /// Gomory fractional cuts added to enforce integrality.
    ILP_CUTS => "ilp.gomory_cuts";
    /// Solves that ended infeasible (empty polyhedra, refuted witnesses).
    ILP_INFEASIBLE => "ilp.infeasible";
    /// Fourier–Motzkin variable eliminations
    /// (`poly::ConstraintSet::eliminate_var`), the engine under
    /// `project_out` and Farkas elimination (DESIGN.md §3).
    FM_ELIMINATIONS => "poly.fm_eliminations";
    /// Peak inequality-row count observed mid-elimination — the FM
    /// intermediate blowup the paper's Sec. 7 practicality claim hinges
    /// on keeping small.
    FM_ROWS_PEAK => "poly.fm_rows_peak";
    /// Calls to `ConstraintSet::remove_redundant` (pairwise implied-row
    /// elimination).
    REDUNDANCY_CALLS => "poly.redundancy_calls";
    /// Polyhedron emptiness checks (`ConstraintSet::is_empty`), each one
    /// an ILP feasibility probe.
    EMPTINESS_CHECKS => "poly.emptiness_checks";
    /// Candidate dependence polyhedra constructed during dependence
    /// analysis, before the emptiness filter (`ir::deps`).
    DEP_CANDIDATES => "ir.dep_candidates";
    /// Dependence polyhedra kept (non-empty): the edges the search must
    /// respect.
    DEPS_BUILT => "ir.deps_built";
    /// Candidates discarded as empty at some dependence level.
    DEPS_EMPTY => "ir.deps_empty";
    /// Farkas-eliminated legality systems built (one per dependence,
    /// cached across rows — `core::search`).
    LEGALITY_SYSTEMS => "core.legality_systems";
    /// Farkas-eliminated bounding systems built (cost-bounding `u·n + w`,
    /// paper Sec. 4).
    BOUNDING_SYSTEMS => "core.bounding_systems";
    /// Per-row lexmin ILP calls made by the hyperplane search, including
    /// retries after cuts and orthogonality restarts.
    SEARCH_ROW_SOLVES => "core.search_row_solves";
    /// SCC cuts taken when no common legal hyperplane exists
    /// (paper Sec. 5.2.2 fusion/cutting).
    SCC_CUTS => "core.scc_cuts";
    /// Loop nests emitted by codegen (`codegen::generate`).
    CODEGEN_LOOPS => "codegen.loops";
    /// Statement instances executed by the machine substrate's
    /// interpreter (sequential, parallel, and sanitized runs).
    MACHINE_INSTANCES => "machine.instances";
    /// Compiled accesses symbolically re-expanded and compared against
    /// their IR access matrices by the bytecode verifier
    /// (`analyze/bytecode`).
    ANALYZE_BYTECODE_ACCESSES => "analyze.bytecode_accesses";
    /// Postfix body tapes decompiled back to expression trees by the
    /// bytecode verifier.
    ANALYZE_BYTECODE_TAPES => "analyze.bytecode_tapes";
    /// Parallel dispatch sites whose chunk partition and cross-chunk
    /// write footprints the bytecode verifier proved sound.
    ANALYZE_BYTECODE_DISPATCHES => "analyze.bytecode_dispatches";
    /// Emptiness checks answered from the canonicalized solver cache
    /// without running the ILP (`poly::cache`, DESIGN.md §11).
    ILP_CACHE_HITS => "ilp.cache_hits";
    /// Emptiness checks that missed the solver cache and paid for a real
    /// feasibility probe (the result is then inserted).
    ILP_CACHE_MISSES => "ilp.cache_misses";
    /// Per-row lexmin solves answered from a warm-started simplex
    /// tableau (band-base basis reuse, `core::search`) instead of a
    /// from-scratch solve.
    ILP_WARM_STARTS => "ilp.warm_starts";
    /// Dependence candidates rejected by the cheap interval/uniform-
    /// distance pre-tests in `ir::deps` before any polyhedron was built.
    IR_PRUNED_CANDIDATES => "ir.pruned_candidates";
    /// Solver-cache insertions discarded because the cache was at its
    /// capacity bound (`poly::cache::MAX_ENTRIES`) — nonzero values mean
    /// the workload's working set no longer fits and hit rates degrade
    /// (visible in `pluto-stats/1` under service aggregation).
    ILP_CACHE_EVICTIONS => "ilp.cache_evictions";
}
