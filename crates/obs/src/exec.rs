//! Runtime execution metrics: per-dispatch load balance, barrier wait,
//! and per-array cache attribution, aggregated into an [`ExecProfile`].
//!
//! The compile-side profile (spans + counters) says what the compiler
//! did; this module is where the machine substrate reports what the
//! *generated program* did — the per-transformation performance
//! attribution the paper's evaluation reads off its quad-core testbed
//! (load balance of the tile-space wavefront, Figs. 10–13; cache
//! behavior behind the single-core speedups, Figs. 6, 8).
//!
//! Two producers feed it, both in `pluto-machine`:
//!
//! * `run_parallel` records one [`Dispatch`] per parallel-loop entry
//!   (per-thread chunk wall times and instance counts);
//! * `run_with_cache` records per-array access/hit/miss totals, keyed
//!   by the IR array names.
//!
//! Reports accumulate in the [`ObsSession`](crate::ObsSession) installed
//! on the reporting thread — while none records, every call is a single
//! relaxed load — and
//! [`ObsSession::finish_profile`](crate::ObsSession::finish_profile)
//! drains the accumulator into
//! [`Profile::exec`](crate::Profile::exec), serialized as the `exec`
//! section of the `pluto-profile/3` schema (PERFORMANCE.md §5.1).
//!
//! [`ExecProfile::build`] is also public so the machine substrate can
//! compute the same derived metrics without any session
//! (`run_parallel_profiled`).

/// One parallel-loop dispatch: what each thread of the team did between
/// entering the region and the implicit barrier at its exit.
#[derive(Debug, Clone, PartialEq)]
pub struct Dispatch {
    /// Display name of the dispatched loop (e.g. `c2`).
    pub name: String,
    /// Work items distributed over the team (collapsed pairs count
    /// once each).
    pub items: u64,
    /// Per-member chunk wall time, nanoseconds; length = team width.
    /// With the pooled engine, index 0 is the coordinator and 1.. are
    /// the enlisted worker slots; with the legacy scoped engine every
    /// index is a spawned worker.
    pub chunk_ns: Vec<u128>,
    /// Per-member statement instances executed; same indexing.
    pub instances: Vec<u64>,
}

impl Dispatch {
    /// Team members that actually executed work in this dispatch —
    /// entries with a nonzero chunk time or instance count. Under
    /// dynamic chunk scheduling a member the scheduler never fed (the
    /// work supply ran out before it grabbed a chunk) is *idle*, not
    /// imbalanced: it reflects surplus team width, which the profile
    /// reports separately as `threads` vs the active width. Block
    /// scheduling always feeds every member, so for legacy records
    /// this is the whole team.
    fn active(&self) -> impl Iterator<Item = u128> + '_ {
        self.chunk_ns
            .iter()
            .enumerate()
            .filter(|&(i, &ns)| ns > 0 || self.instances.get(i).is_some_and(|&n| n > 0))
            .map(|(_, &ns)| ns)
    }

    /// Load-imbalance ratio of this dispatch: slowest chunk over mean
    /// chunk time across *active* members (1.0 = perfectly balanced).
    /// Defined as 1.0 for an empty team or when the clock resolution
    /// made every chunk 0.
    pub fn imbalance(&self) -> f64 {
        let n = self.active().count();
        if n == 0 {
            return 1.0;
        }
        let sum: u128 = self.active().sum();
        if sum == 0 {
            return 1.0;
        }
        let max = self.active().max().expect("non-empty") as f64;
        max / (sum as f64 / n as f64)
    }

    /// Total time active members spent waiting at this dispatch's
    /// barrier: `Σ (slowest chunk − own chunk)` over active members.
    pub fn barrier_wait_ns(&self) -> u128 {
        let max = self.active().max().unwrap_or(0);
        self.active().map(|c| max - c).sum()
    }
}

/// Per-array cache counters (mirrors `pluto-machine`'s `CacheStats`
/// plus a name; kept as plain fields so `obs` stays dependency-free).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ArrayCache {
    /// IR array name (`Program::arrays[i].name`).
    pub name: String,
    /// Accesses issued to this array.
    pub accesses: u64,
    /// L1 misses attributed to this array.
    pub l1_misses: u64,
    /// L2 misses attributed to this array.
    pub l2_misses: u64,
}

impl ArrayCache {
    /// L1 miss ratio for this array (0.0 when never accessed).
    pub fn l1_miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.l1_misses as f64 / self.accesses as f64
        }
    }
}

/// Aggregated runtime-execution section of a profile: what the thread
/// teams and the cache simulator observed during the session.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecProfile {
    /// Parallel-loop dispatches (≈ barriers) observed.
    pub dispatches: u64,
    /// Widest thread team observed.
    pub threads: usize,
    /// Statement instances per team-member slot, summed over
    /// dispatches (pooled engine: index 0 = coordinator, 1.. = pool
    /// worker slots; legacy scoped engine: index t = spawned worker t).
    pub instances_per_thread: Vec<u64>,
    /// Dispatch-duration-weighted mean of per-dispatch
    /// [`imbalance`](Dispatch::imbalance) ratios (1.0 = balanced).
    pub imbalance_mean: f64,
    /// Worst per-dispatch imbalance ratio.
    pub imbalance_max: f64,
    /// Total barrier-wait nanoseconds across all threads and
    /// dispatches.
    pub barrier_wait_ns: u128,
    /// Per-array cache attribution, in first-recorded order.
    pub arrays: Vec<ArrayCache>,
}

impl ExecProfile {
    /// Derives the aggregate profile from raw dispatch records and
    /// per-array cache counters — the single definition of the derived
    /// metrics, shared by
    /// [`ObsSession::finish_profile`](crate::ObsSession::finish_profile)
    /// and the machine substrate's `run_parallel_profiled`.
    pub fn build(dispatches: &[Dispatch], arrays: Vec<ArrayCache>) -> ExecProfile {
        let threads = dispatches
            .iter()
            .map(|d| d.chunk_ns.len())
            .max()
            .unwrap_or(0);
        let mut instances_per_thread = vec![0u64; threads];
        let mut barrier_wait_ns = 0u128;
        let mut imbalance_max = 1.0f64;
        let mut weighted = 0.0f64;
        let mut weight = 0.0f64;
        for d in dispatches {
            for (t, &n) in d.instances.iter().enumerate() {
                instances_per_thread[t] += n;
            }
            barrier_wait_ns += d.barrier_wait_ns();
            let r = d.imbalance();
            imbalance_max = imbalance_max.max(r);
            let w = d.chunk_ns.iter().copied().max().unwrap_or(0) as f64;
            weighted += r * w;
            weight += w;
        }
        let imbalance_mean = if dispatches.is_empty() {
            1.0
        } else if weight == 0.0 {
            // Sub-resolution chunks: fall back to the unweighted mean.
            dispatches.iter().map(Dispatch::imbalance).sum::<f64>() / dispatches.len() as f64
        } else {
            weighted / weight
        };
        ExecProfile {
            dispatches: dispatches.len() as u64,
            threads,
            instances_per_thread,
            imbalance_mean,
            imbalance_max,
            barrier_wait_ns,
            arrays,
        }
    }
}

/// The per-session accumulator behind [`record_dispatch`] /
/// [`record_array`]; one lives in every
/// [`SessionState`](crate::SessionState).
#[derive(Default)]
pub(crate) struct Accum {
    dispatches: Vec<Dispatch>,
    arrays: Vec<ArrayCache>,
}

impl Accum {
    /// Derives the profile section, or `None` if the session observed
    /// no execution (the common compile-only case — the profile's
    /// `exec` field serializes as JSON `null`).
    pub(crate) fn into_profile(self) -> Option<ExecProfile> {
        if self.dispatches.is_empty() && self.arrays.is_empty() {
            return None;
        }
        Some(ExecProfile::build(&self.dispatches, self.arrays))
    }
}

/// Reports one parallel-loop dispatch into the current thread's session.
/// Inert (one relaxed load) while none records a profile. Called once
/// per dispatch — never per item — so the mutex is off the hot path.
pub fn record_dispatch(d: Dispatch) {
    crate::with_profiling(|s| {
        s.exec
            .lock()
            .expect("exec accumulator poisoned")
            .dispatches
            .push(d);
    });
}

/// Reports cache counters attributed to one named array; repeated
/// reports for the same name accumulate. Inert while no session
/// records.
pub fn record_array(name: &str, accesses: u64, l1_misses: u64, l2_misses: u64) {
    crate::with_profiling(|s| {
        let mut acc = s.exec.lock().expect("exec accumulator poisoned");
        match acc.arrays.iter_mut().find(|a| a.name == name) {
            Some(a) => {
                a.accesses += accesses;
                a.l1_misses += l1_misses;
                a.l2_misses += l2_misses;
            }
            None => acc.arrays.push(ArrayCache {
                name: name.to_string(),
                accesses,
                l1_misses,
                l2_misses,
            }),
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_metrics() {
        let d = Dispatch {
            name: "c2".into(),
            items: 8,
            chunk_ns: vec![100, 50, 50, 0],
            instances: vec![4, 2, 2, 0],
        };
        // The fourth member never got work — idle, not imbalanced.
        // Active mean = 200/3, max = 100 → ratio 1.5; waits: 0+50+50.
        assert!((d.imbalance() - 1.5).abs() < 1e-12);
        assert_eq!(d.barrier_wait_ns(), 100);
    }

    #[test]
    fn idle_members_do_not_count_as_imbalance() {
        // One active member (the pooled engine's small-dispatch solo
        // path) is perfectly balanced by definition.
        let d = Dispatch {
            name: "c1".into(),
            items: 2,
            chunk_ns: vec![80, 0],
            instances: vec![9, 0],
        };
        assert_eq!(d.imbalance(), 1.0);
        assert_eq!(d.barrier_wait_ns(), 0);
        // A member with sub-resolution chunk time but real instances is
        // active (instances witness the work).
        let d2 = Dispatch {
            name: "c1".into(),
            items: 4,
            chunk_ns: vec![60, 0, 60],
            instances: vec![2, 1, 2],
        };
        assert!((d2.imbalance() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_dispatches_are_balanced() {
        let zero = Dispatch {
            name: "c".into(),
            items: 0,
            chunk_ns: vec![0, 0],
            instances: vec![0, 0],
        };
        assert_eq!(zero.imbalance(), 1.0);
        assert_eq!(zero.barrier_wait_ns(), 0);
        let empty = Dispatch {
            name: "c".into(),
            items: 0,
            chunk_ns: vec![],
            instances: vec![],
        };
        assert_eq!(empty.imbalance(), 1.0);
    }

    #[test]
    fn build_aggregates_across_dispatches() {
        let ds = [
            Dispatch {
                name: "a".into(),
                items: 4,
                chunk_ns: vec![100, 100],
                instances: vec![2, 2],
            },
            Dispatch {
                name: "a".into(),
                items: 4,
                chunk_ns: vec![300, 100, 0],
                instances: vec![3, 1, 0],
            },
        ];
        let p = ExecProfile::build(
            &ds,
            vec![ArrayCache {
                name: "x".into(),
                accesses: 10,
                l1_misses: 5,
                l2_misses: 1,
            }],
        );
        assert_eq!(p.dispatches, 2);
        assert_eq!(p.threads, 3);
        assert_eq!(p.instances_per_thread, vec![5, 3, 0]);
        // d0: ratio 1.0 weight 100; d1 active {300, 100}: mean 200,
        // max 300 → 1.5, weight 300 → mean = (100 + 450)/400 = 1.375.
        assert!((p.imbalance_mean - 1.375).abs() < 1e-12);
        assert!((p.imbalance_max - 1.5).abs() < 1e-12);
        // waits: d0 0; d1 (0 + 200) over active members.
        assert_eq!(p.barrier_wait_ns, 200);
        assert!((p.arrays[0].l1_miss_rate() - 0.5).abs() < 1e-12);
    }
}
