//! Service-level aggregation: merging many per-compile profiles into
//! one live set of service metrics (DESIGN.md §12).
//!
//! An [`ObsSession`](crate::ObsSession) observes *one* compile; a
//! compile **service** (`plutod`) runs thousands and must observe
//! itself in aggregate — total solver work, merged latency
//! distributions, whole-compile latency quantiles, request/error/cache
//! totals — without ever letting one request's telemetry contaminate
//! another's. The types here are that second layer:
//!
//! * [`Snapshot`] — the portable summary of one finished compile:
//!   every registered counter (by registry index), every phase
//!   wall-time, every latency histogram, and the compile's total wall
//!   time. Taken from a [`Profile`] with [`Snapshot::of`];
//! * [`ServiceMetrics`] — the mergeable accumulator: [`record`]ing a
//!   snapshot sums its counters into atomic cells, adds its histograms
//!   bucket-wise, accumulates its phase times, and drops its total
//!   wall time into a rolling whole-compile latency histogram.
//!
//! # The aggregation invariant
//!
//! Because [`record`] *adds the snapshot and nothing else* — counters
//! by `fetch_add`, histograms bucket-by-bucket, phases call-by-call —
//! the service totals are **exactly** the component-wise sum of the
//! recorded per-request snapshots, under any interleaving of
//! concurrent recorders. `pluto-stats/1` (the [`stats_json`] document)
//! therefore equals the sum over the served `pluto-profile/3`
//! documents by construction; `tests/daemon_golden.rs` and the ci.sh
//! daemon smoke re-derive the sum from the wire documents and assert
//! equality.
//!
//! [`record`]: ServiceMetrics::record
//! [`stats_json`]: ServiceMetrics::stats_json

use crate::hist::{self, HistSnapshot};
use crate::{counters, json, Phase, Profile};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// FNV-1a over `bytes` — the workspace's hermetic stand-in for a real
/// content digest (no external crates, stable across platforms). Used
/// for the bench `meta.kernel_set_hash`, the daemon's `pluto-log/1`
/// kernel hashes, and the display form of schedule-cache content keys.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// The portable summary of one finished compile: everything
/// [`ServiceMetrics`] can merge. Counters are stored positionally in
/// registry order (the same order [`Profile`] serializes them), so
/// merging is index arithmetic, not name lookup.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The compile's total wall time in nanoseconds
    /// ([`Profile::total_ns`]); feeds the service's rolling
    /// whole-compile latency histogram.
    pub total_ns: u128,
    /// Completed phases, paths and call counts included.
    pub phases: Vec<Phase>,
    /// One value per registered counter, in registry order
    /// (`counters::all()` position `i` ↦ `counters[i]`).
    pub counters: Vec<u64>,
    /// One snapshot per registered histogram, in registry order.
    pub hists: Vec<HistSnapshot>,
}

impl Snapshot {
    /// Summarizes a finished [`Profile`] — the snapshot a service takes
    /// after each request's session ends, before handing the profile
    /// itself back to the client.
    pub fn of(profile: &Profile) -> Snapshot {
        Snapshot {
            total_ns: profile.total_ns,
            phases: profile.phases.clone(),
            counters: profile.counters.iter().map(|c| c.value).collect(),
            hists: profile.hists.clone(),
        }
    }
}

/// The string-keyed half of the aggregate (phase paths), kept under one
/// mutex; the counter cells and latency buckets are lock-free atomics.
#[derive(Debug, Default)]
struct Merged {
    /// Accumulated phases, sorted by path (parents before children,
    /// like [`Profile::phases`]).
    phases: Vec<Phase>,
}

/// Live, mergeable service metrics: the state behind `plutod`'s `stats`
/// method (`pluto-stats/1`).
///
/// All hot-path recording is lock-cheap: counter sums and the rolling
/// latency histogram are relaxed atomics, request/error/cache totals
/// are single `fetch_add`s; only the phase-path table (a handful of
/// short strings) takes a mutex. Any number of request threads may
/// [`record`](ServiceMetrics::record) concurrently.
#[derive(Debug)]
pub struct ServiceMetrics {
    /// Service epoch: `uptime_ns` origin.
    started: Instant,
    /// Compile requests aggregated (successful compiles, cache hits
    /// included).
    requests: AtomicU64,
    /// Compile requests that failed (parse error, infeasible search);
    /// their partial telemetry is *not* aggregated, so the invariant
    /// ranges over exactly the successful per-request profiles.
    errors: AtomicU64,
    /// Schedule-cache hits across all compile requests.
    cache_hits: AtomicU64,
    /// Schedule-cache misses (full compiles).
    cache_misses: AtomicU64,
    /// Schedule-cache entries evicted at capacity.
    cache_evictions: AtomicU64,
    /// Σ per-request counter values, indexed like `counters::all()`.
    counters: Box<[AtomicU64]>,
    /// Σ per-request histograms, merged bucket-wise (registry order),
    /// plus accumulated phases.
    merged_hists: Mutex<Vec<HistSnapshot>>,
    /// Accumulated phase wall-times.
    merged: Mutex<Merged>,
    /// Rolling whole-compile latency histogram: one
    /// [`Snapshot::total_ns`] sample per recorded request.
    latency: hist::Cells,
}

impl Default for ServiceMetrics {
    fn default() -> ServiceMetrics {
        ServiceMetrics::new()
    }
}

impl ServiceMetrics {
    /// A fresh, all-zero aggregate; its uptime clock starts now.
    pub fn new() -> ServiceMetrics {
        ServiceMetrics {
            started: Instant::now(),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_evictions: AtomicU64::new(0),
            counters: (0..counters::all().len())
                .map(|_| AtomicU64::new(0))
                .collect(),
            merged_hists: Mutex::new(
                hist::all()
                    .iter()
                    .map(|h| HistSnapshot {
                        name: h.name(),
                        count: 0,
                        sum_ns: 0,
                        buckets: vec![0; hist::NUM_BUCKETS],
                    })
                    .collect(),
            ),
            merged: Mutex::new(Merged::default()),
            latency: hist::Cells::new(),
        }
    }

    /// Merges one request's snapshot into the service totals: counters
    /// sum, histograms add bucket-wise, phase times accumulate, and the
    /// snapshot's `total_ns` lands in the rolling whole-compile latency
    /// histogram. Adds the snapshot and nothing else — the aggregation
    /// invariant (service == Σ snapshots) holds by construction.
    pub fn record(&self, snap: &Snapshot) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        for (cell, &v) in self.counters.iter().zip(&snap.counters) {
            cell.fetch_add(v, Ordering::Relaxed);
        }
        self.latency
            .record_ns(u64::try_from(snap.total_ns).unwrap_or(u64::MAX));
        {
            let mut hists = self.merged_hists.lock().expect("service hists poisoned");
            for (mine, theirs) in hists.iter_mut().zip(&snap.hists) {
                mine.merge(theirs);
            }
        }
        let mut merged = self.merged.lock().expect("service phases poisoned");
        for p in &snap.phases {
            match merged.phases.iter_mut().find(|m| m.path == p.path) {
                Some(m) => {
                    m.calls += p.calls;
                    m.wall_ns += p.wall_ns;
                }
                None => merged.phases.push(p.clone()),
            }
        }
        merged.phases.sort_by(|a, b| a.path.cmp(&b.path));
    }

    /// Counts one failed compile request (nothing else is merged for
    /// it; see [`errors`](ServiceMetrics::errors)).
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one schedule-cache hit.
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one schedule-cache miss.
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts `n` schedule-cache evictions.
    pub fn record_cache_evictions(&self, n: u64) {
        self.cache_evictions.fetch_add(n, Ordering::Relaxed);
    }

    /// Compile requests recorded so far (cache hits included).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Failed compile requests counted so far.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Schedule-cache `(hits, misses, evictions)` totals.
    pub fn cache_totals(&self) -> (u64, u64, u64) {
        (
            self.cache_hits.load(Ordering::Relaxed),
            self.cache_misses.load(Ordering::Relaxed),
            self.cache_evictions.load(Ordering::Relaxed),
        )
    }

    /// The summed value of one registry counter by name (`None` for
    /// unknown names).
    pub fn counter(&self, name: &str) -> Option<u64> {
        counters::all()
            .iter()
            .position(|c| c.name() == name)
            .map(|i| self.counters[i].load(Ordering::Relaxed))
    }

    /// The rolling whole-compile latency histogram (one sample per
    /// recorded request).
    pub fn latency(&self) -> HistSnapshot {
        self.latency.snapshot("service.latency.compile")
    }

    /// Serializes the aggregate as a versioned `pluto-stats/1` document
    /// (schema in PERFORMANCE.md §5.6). `cache_entries`/`cache_capacity`
    /// describe the schedule cache's current occupancy — the one piece
    /// of service state that lives outside this accumulator.
    ///
    /// Counter and histogram sections carry the full registries in
    /// registry order, zeros included, exactly like `pluto-profile/3` —
    /// and every value is the exact sum of the recorded per-request
    /// profiles. The `latency` section adds p50/p90/p99 estimates from
    /// the log2 buckets ([`hist::quantile_from_buckets`]).
    pub fn stats_json(&self, cache_entries: usize, cache_capacity: usize) -> String {
        let (hits, misses, evictions) = self.cache_totals();
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"pluto-stats/1\",\n");
        out.push_str(&format!(
            "  \"uptime_ns\": {},\n",
            self.started.elapsed().as_nanos()
        ));
        out.push_str(&format!("  \"requests\": {},\n", self.requests()));
        out.push_str(&format!("  \"errors\": {},\n", self.errors()));
        out.push_str(&format!(
            "  \"cache\": {{\"hits\": {hits}, \"misses\": {misses}, \"evictions\": {evictions}, \
             \"entries\": {cache_entries}, \"capacity\": {cache_capacity}}},\n"
        ));
        let lat = self.latency();
        out.push_str(&format!(
            "  \"latency\": {{\"count\": {}, \"sum_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \
             \"p99_ns\": {}, \"buckets\": [{}]}},\n",
            lat.count,
            lat.sum_ns,
            lat.p50_ns(),
            lat.p90_ns(),
            lat.p99_ns(),
            lat.buckets
                .iter()
                .map(|b| b.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str("  \"phases\": [");
        {
            let merged = self.merged.lock().expect("service phases poisoned");
            for (i, p) in merged.phases.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n    {{\"path\": {}, \"calls\": {}, \"wall_ns\": {}}}",
                    json::escape(&p.path),
                    p.calls,
                    p.wall_ns
                ));
            }
        }
        out.push_str("\n  ],\n  \"counters\": [");
        for (i, c) in counters::all().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": {}, \"value\": {}}}",
                json::escape(c.name()),
                self.counters[i].load(Ordering::Relaxed)
            ));
        }
        out.push_str("\n  ],\n  \"hists\": [");
        {
            let hists = self.merged_hists.lock().expect("service hists poisoned");
            for (i, h) in hists.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n    {{\"name\": {}, \"count\": {}, \"sum_ns\": {}, \"p50_ns\": {}, \
                     \"p90_ns\": {}, \"p99_ns\": {}, \"buckets\": [{}]}}",
                    json::escape(h.name),
                    h.count,
                    h.sum_ns,
                    h.p50_ns(),
                    h.p90_ns(),
                    h.p99_ns(),
                    h.buckets
                        .iter()
                        .map(|b| b.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{span, Session};

    /// A real compiled-ish snapshot: run a tiny session, bump counters.
    fn sample_snapshot(pivots: u64, ns: u64) -> Snapshot {
        let session = Session::start();
        counters::ILP_PIVOTS.add(pivots);
        hist::SEARCH_ROW.record_ns(ns);
        {
            let _s = span("optimize");
        }
        Snapshot::of(&session.finish())
    }

    #[test]
    fn fnv1a_is_the_reference_function() {
        // Pinned reference vectors (FNV-1a 64).
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn service_totals_are_exact_sums() {
        let metrics = ServiceMetrics::new();
        let a = sample_snapshot(3, 100);
        let b = sample_snapshot(39, 900);
        metrics.record(&a);
        metrics.record(&b);
        assert_eq!(metrics.requests(), 2);
        assert_eq!(metrics.counter("ilp.pivots"), Some(42));
        assert_eq!(metrics.counter("core.scc_cuts"), Some(0));
        assert_eq!(metrics.counter("no.such.counter"), None);
        // Histograms merged bucket-wise: 2 samples total.
        let stats = crate::json::parse(&metrics.stats_json(0, 8)).unwrap();
        let hists = stats.get("hists").unwrap().as_array().unwrap();
        let sr = hists
            .iter()
            .find(|h| h.get("name").unwrap().as_str() == Some("ilp.latency.search_row"))
            .unwrap();
        assert_eq!(sr.get("count").unwrap().as_u64(), Some(2));
        // Phase calls accumulate.
        let phases = stats.get("phases").unwrap().as_array().unwrap();
        let opt = phases
            .iter()
            .find(|p| p.get("path").unwrap().as_str() == Some("optimize"))
            .unwrap();
        assert_eq!(opt.get("calls").unwrap().as_u64(), Some(2));
        // The rolling latency histogram has one sample per request.
        assert_eq!(metrics.latency().count, 2);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let metrics = ServiceMetrics::new();
        let snaps: Vec<Snapshot> = (0..16).map(|i| sample_snapshot(i + 1, 50)).collect();
        std::thread::scope(|scope| {
            for chunk in snaps.chunks(4) {
                let m = &metrics;
                scope.spawn(move || {
                    for s in chunk {
                        m.record(s);
                    }
                });
            }
        });
        // Σ (1..=16) = 136, under any interleaving.
        assert_eq!(metrics.requests(), 16);
        assert_eq!(metrics.counter("ilp.pivots"), Some(136));
        assert_eq!(metrics.latency().count, 16);
    }

    #[test]
    fn stats_document_is_valid_and_versioned() {
        let metrics = ServiceMetrics::new();
        metrics.record(&sample_snapshot(7, 300));
        metrics.record_error();
        metrics.record_cache_hit();
        metrics.record_cache_miss();
        metrics.record_cache_evictions(2);
        let doc = metrics.stats_json(5, 64);
        let v = crate::json::parse(&doc).expect("stats document parses");
        assert_eq!(v.get("schema").unwrap().as_str(), Some("pluto-stats/1"));
        assert_eq!(v.get("requests").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("errors").unwrap().as_u64(), Some(1));
        let cache = v.get("cache").unwrap();
        assert_eq!(cache.get("hits").unwrap().as_u64(), Some(1));
        assert_eq!(cache.get("misses").unwrap().as_u64(), Some(1));
        assert_eq!(cache.get("evictions").unwrap().as_u64(), Some(2));
        assert_eq!(cache.get("entries").unwrap().as_u64(), Some(5));
        assert_eq!(cache.get("capacity").unwrap().as_u64(), Some(64));
        // Full registries, in order, zeros included — same contract as
        // pluto-profile/3.
        let cs = v.get("counters").unwrap().as_array().unwrap();
        assert_eq!(cs.len(), counters::all().len());
        let hs = v.get("hists").unwrap().as_array().unwrap();
        assert_eq!(hs.len(), hist::all().len());
        let lat = v.get("latency").unwrap();
        assert_eq!(lat.get("count").unwrap().as_u64(), Some(1));
        assert!(lat.get("p50_ns").unwrap().as_u64().unwrap() > 0);
        assert_eq!(
            lat.get("buckets").unwrap().as_array().unwrap().len(),
            hist::NUM_BUCKETS
        );
    }
}
