//! A minimal JSON reader/escaper so profile and bench output can be
//! validated in-tree without external crates (the workspace is hermetic —
//! DESIGN.md §8).
//!
//! This is a *validator*, not a general-purpose JSON library: it accepts
//! strict RFC 8259 JSON (no comments, no trailing commas), parses numbers
//! as `f64`, and exposes just enough accessors for the golden tests and
//! the bench harness to check the documents this workspace emits
//! (`pluto-profile/3`, `pluto-bench-pipeline/2`, `pluto-bench-kernels/2`,
//! `trace_event/1`; schemas in PERFORMANCE.md).
//!
//! ```
//! let v = pluto_obs::json::parse(r#"{"schema": "pluto-profile/1", "n": 3}"#).unwrap();
//! assert_eq!(v.get("schema").unwrap().as_str(), Some("pluto-profile/1"));
//! assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
//! ```

use std::fmt;

/// A parsed JSON value. Objects preserve key order and allow duplicate
/// keys ([`get`](Json::get) returns the first match).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64` (exact for integers up to 2^53 —
    /// ample for nanosecond wall times and counter values in practice).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object as ordered key/value pairs.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// `Some(&str)` for strings, else `None`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// `Some(f64)` for numbers, else `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a `u64` if it is one exactly (integral, in range).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n <= u64::MAX as f64 && n.fract() == 0.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// `Some(bool)` for `true`/`false`, else `None`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `Some(&[Json])` for arrays, else `None`.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// `true` only for JSON `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serializes this value as compact single-line JSON, with `", "`
    /// between items and `": "` after keys (the same separators the
    /// pretty emitters use, so `grep`-based gates match either form).
    ///
    /// This is how the `plutod` daemon embeds multi-line documents
    /// (`pluto-profile/3`, `pluto-explain/1`, `pluto-stats/1`) inside
    /// one-line `pluto-rpc/1` responses: parse, then re-serialize
    /// compact. Integral numbers print without a fraction, so documents
    /// of counters and nanosecond totals survive the round trip
    /// byte-comparably.
    ///
    /// ```
    /// let v = pluto_obs::json::parse("{\n  \"a\": [1, 2],\n  \"b\": null\n}").unwrap();
    /// assert_eq!(v.to_compact(), r#"{"a": [1, 2], "b": null}"#);
    /// ```
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Number(n) => {
                // Integers in f64's exact range print as integers: the
                // form every in-tree emitter wrote them in.
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::String(s) => out.push_str(&escape(s)),
            Json::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&escape(k));
                    out.push_str(": ");
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

/// A parse failure: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What was expected or found.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document; trailing content (other than
/// whitespace) is an error.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing content after document"));
    }
    Ok(value)
}

/// Escapes a string as a JSON string literal, including the surrounding
/// quotes (used by [`Profile::to_json`](crate::Profile::to_json) and the
/// bench emitter).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn err(offset: usize, message: &str) -> ParseError {
    ParseError {
        offset,
        message: message.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(_) => Err(err(*pos, "unexpected character")),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, ParseError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(*pos, "invalid literal"))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    *pos += 1; // consume '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected object key"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected ':' after object key"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            _ => return Err(err(*pos, "expected ',' or '}' in object")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']' in array")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    *pos += 1; // consume opening '"'
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err(*pos, "invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "invalid \\u escape"))?;
                        // Surrogates are rejected rather than paired: the
                        // in-tree emitters never produce them.
                        let c = char::from_u32(code)
                            .ok_or_else(|| err(*pos, "\\u escape is not a scalar value"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => return Err(err(*pos, "control character in string")),
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so slicing
                // at char boundaries is safe).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).expect("input was UTF-8"));
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII slice");
    text.parse::<f64>()
        .map(Json::Number)
        .map_err(|_| err(start, "invalid number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_document() {
        let v = parse(r#" {"a": [1, -2.5, true, null], "b": {"c": "x\ny"}} "#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2], Json::Bool(true));
        assert!(a[3].is_null());
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn escape_round_trips() {
        let original = "quote \" slash \\ newline \n tab \t bell \u{7} unicode µ";
        let v = parse(&escape(original)).unwrap();
        assert_eq!(v.as_str(), Some(original));
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""µ""#).unwrap().as_str(), Some("µ"));
        assert!(parse(r#""\ud800""#).is_err()); // lone surrogate
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"abc",
            "{,}",
            "nul",
            "\u{1}",
            "[1 2]",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn number_edge_cases() {
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("2.5").unwrap().as_u64(), None);
    }

    #[test]
    fn duplicate_keys_first_wins() {
        let v = parse(r#"{"k": 1, "k": 2}"#).unwrap();
        assert_eq!(v.get("k").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn compact_round_trips() {
        let text = "{\n  \"s\": \"a\\n\\\"b\\\"\",\n  \"n\": [0, -3, 2.5, 1e3],\n  \
                    \"o\": {\"empty\": [], \"none\": null, \"t\": true}\n}";
        let v = parse(text).unwrap();
        let compact = v.to_compact();
        assert!(!compact.contains('\n'), "compact output has newlines");
        // Round trip: the compact form parses back to the same value.
        assert_eq!(parse(&compact).unwrap(), v);
        assert_eq!(
            compact,
            r#"{"s": "a\n\"b\"", "n": [0, -3, 2.5, 1000], "o": {"empty": [], "none": null, "t": true}}"#
        );
    }
}
