//! Program construction front-end: the paper's benchmark kernels and a
//! small affine-C parser — the `pluto-rs` stand-in for the LooPo
//! scanner/parser.
//!
//! [`kernels`] builds the exact loop nests evaluated in the paper's
//! Sec. 7 (imperfectly nested 1-d Jacobi, 2-d FDTD, LU decomposition,
//! MVT, 3-D Gauss-Seidel) plus supporting kernels (matmul, the Fig. 4
//! SOR-like nest) through the typed [`ProgramBuilder`] API.
//!
//! [`parse`] accepts a restricted C-like affine-loop language, so the tool
//! is usable source-to-source like the original PLuTo:
//!
//! ```text
//! params N;
//! array a[N][N];
//! for (i = 1; i <= N - 2; i++)
//!   for (j = 1; j <= N - 2; j++)
//!     a[i][j] = a[i-1][j] + a[i][j-1];
//! ```
//!
//! DESIGN.md §3.3 covers the LooPo-scanner substitution; the accepted input class is the same.

pub mod kernels;
mod parser;

pub use kernels::Kernel;
pub use parser::{parse, parse_unit, ParseError, ParsedUnit};
pub use pluto_ir::{Program, ProgramBuilder};
