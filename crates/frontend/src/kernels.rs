//! The paper's benchmark kernels (Sec. 7) as polyhedral programs.
//!
//! Each constructor documents the C loop nest it models. Iterator columns
//! come first, then parameters, then the constant — e.g. for a statement
//! with iterators `(t, i)` in a program with parameters `(T, N)`, a row
//! `[a_t, a_i, a_T, a_N, c]` encodes `a_t·t + a_i·i + a_T·T + a_N·N + c`.

use pluto_ir::{Expr, Program, ProgramBuilder, StatementSpec};
use pluto_linalg::Int;

/// A benchmark program plus the array extents needed to execute it.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// The polyhedral program.
    pub program: Program,
    /// Computes each array's extents from concrete parameter values
    /// (aligned with `program.arrays`).
    pub extents: fn(&[i64]) -> Vec<Vec<usize>>,
}

/// Imperfectly nested 1-d Jacobi (paper Fig. 3a):
///
/// ```c
/// for (t = 0; t < T; t++) {
///   for (i = 2; i < N - 1; i++)
///     b[i] = 0.333 * (a[i-1] + a[i] + a[i+1]);   // S1
///   for (j = 2; j < N - 1; j++)
///     a[j] = b[j];                                // S2
/// }
/// ```
pub fn jacobi_1d_imperfect() -> Kernel {
    let mut b = ProgramBuilder::new("jacobi-1d-imper", &["T", "N"]);
    b.add_context_ineq(vec![1, 0, -1]); // T >= 1
    b.add_context_ineq(vec![0, 1, -5]); // N >= 5
    b.add_array("a", 1);
    b.add_array("b", 1);
    // Columns: [t, i, T, N, 1].
    b.add_statement(StatementSpec {
        name: "S1".into(),
        iters: vec!["t".into(), "i".into()],
        domain_ineqs: vec![
            vec![1, 0, 0, 0, 0],   // t >= 0
            vec![-1, 0, 1, 0, -1], // t <= T-1
            vec![0, 1, 0, 0, -2],  // i >= 2
            vec![0, -1, 0, 1, -2], // i <= N-2
        ],
        beta: vec![0, 0, 0],
        write: ("b".into(), vec![vec![0, 1, 0, 0, 0]]),
        reads: vec![
            ("a".into(), vec![vec![0, 1, 0, 0, -1]]),
            ("a".into(), vec![vec![0, 1, 0, 0, 0]]),
            ("a".into(), vec![vec![0, 1, 0, 0, 1]]),
        ],
        body: Expr::Lit(0.333) * (Expr::Read(0) + Expr::Read(1) + Expr::Read(2)),
    });
    b.add_statement(StatementSpec {
        name: "S2".into(),
        iters: vec!["t".into(), "j".into()],
        domain_ineqs: vec![
            vec![1, 0, 0, 0, 0],
            vec![-1, 0, 1, 0, -1],
            vec![0, 1, 0, 0, -2],
            vec![0, -1, 0, 1, -2],
        ],
        beta: vec![0, 1, 0],
        write: ("a".into(), vec![vec![0, 1, 0, 0, 0]]),
        reads: vec![("b".into(), vec![vec![0, 1, 0, 0, 0]])],
        body: Expr::Read(0),
    });
    Kernel {
        program: b.build(),
        extents: |p| vec![vec![p[1] as usize], vec![p[1] as usize]],
    }
}

/// 2-d FDTD electromagnetic kernel (paper Fig. 7), four imperfectly
/// nested statements:
///
/// ```c
/// for (t = 0; t < tmax; t++) {
///   for (j = 0; j < ny; j++) ey[0][j] = f(t);                      // S1
///   for (i = 1; i < nx; i++) for (j = 0; j < ny; j++)
///     ey[i][j] = ey[i][j] - 0.5*(hz[i][j] - hz[i-1][j]);           // S2
///   for (i = 0; i < nx; i++) for (j = 1; j < ny; j++)
///     ex[i][j] = ex[i][j] - 0.5*(hz[i][j] - hz[i][j-1]);           // S3
///   for (i = 0; i < nx; i++) for (j = 0; j < ny; j++)
///     hz[i][j] = hz[i][j] - 0.7*(ex[i][j+1] - ex[i][j]
///                                + ey[i+1][j] - ey[i][j]);          // S4
/// }
/// ```
pub fn fdtd_2d() -> Kernel {
    let mut b = ProgramBuilder::new("fdtd-2d", &["tmax", "nx", "ny"]);
    b.add_context_ineq(vec![1, 0, 0, -1]); // tmax >= 1
    b.add_context_ineq(vec![0, 1, 0, -3]); // nx >= 3
    b.add_context_ineq(vec![0, 0, 1, -3]); // ny >= 3
    b.add_array("ex", 2); // nx x (ny+1)
    b.add_array("ey", 2); // (nx+1) x ny
    b.add_array("hz", 2); // nx x ny
                          // S1 columns: [t, j, tmax, nx, ny, 1].
    b.add_statement(StatementSpec {
        name: "S1".into(),
        iters: vec!["t".into(), "j".into()],
        domain_ineqs: vec![
            vec![1, 0, 0, 0, 0, 0],
            vec![-1, 0, 1, 0, 0, -1],
            vec![0, 1, 0, 0, 0, 0],
            vec![0, -1, 0, 0, 1, -1],
        ],
        beta: vec![0, 0, 0],
        write: (
            "ey".into(),
            vec![vec![0, 0, 0, 0, 0, 0], vec![0, 1, 0, 0, 0, 0]],
        ),
        reads: vec![],
        body: Expr::Lit(1.0) / (Expr::Iter(0) + Expr::Lit(2.0)),
    });
    // S2 columns: [t, i, j, tmax, nx, ny, 1].
    b.add_statement(StatementSpec {
        name: "S2".into(),
        iters: vec!["t".into(), "i".into(), "j".into()],
        domain_ineqs: vec![
            vec![1, 0, 0, 0, 0, 0, 0],
            vec![-1, 0, 0, 1, 0, 0, -1],
            vec![0, 1, 0, 0, 0, 0, -1],
            vec![0, -1, 0, 0, 1, 0, -1],
            vec![0, 0, 1, 0, 0, 0, 0],
            vec![0, 0, -1, 0, 0, 1, -1],
        ],
        beta: vec![0, 1, 0, 0],
        write: (
            "ey".into(),
            vec![vec![0, 1, 0, 0, 0, 0, 0], vec![0, 0, 1, 0, 0, 0, 0]],
        ),
        reads: vec![
            (
                "ey".into(),
                vec![vec![0, 1, 0, 0, 0, 0, 0], vec![0, 0, 1, 0, 0, 0, 0]],
            ),
            (
                "hz".into(),
                vec![vec![0, 1, 0, 0, 0, 0, 0], vec![0, 0, 1, 0, 0, 0, 0]],
            ),
            (
                "hz".into(),
                vec![vec![0, 1, 0, 0, 0, 0, -1], vec![0, 0, 1, 0, 0, 0, 0]],
            ),
        ],
        body: Expr::Read(0) - Expr::Lit(0.5) * (Expr::Read(1) - Expr::Read(2)),
    });
    // S3 columns: [t, i, j, tmax, nx, ny, 1].
    b.add_statement(StatementSpec {
        name: "S3".into(),
        iters: vec!["t".into(), "i".into(), "j".into()],
        domain_ineqs: vec![
            vec![1, 0, 0, 0, 0, 0, 0],
            vec![-1, 0, 0, 1, 0, 0, -1],
            vec![0, 1, 0, 0, 0, 0, 0],
            vec![0, -1, 0, 0, 1, 0, -1],
            vec![0, 0, 1, 0, 0, 0, -1],
            vec![0, 0, -1, 0, 0, 1, -1],
        ],
        beta: vec![0, 2, 0, 0],
        write: (
            "ex".into(),
            vec![vec![0, 1, 0, 0, 0, 0, 0], vec![0, 0, 1, 0, 0, 0, 0]],
        ),
        reads: vec![
            (
                "ex".into(),
                vec![vec![0, 1, 0, 0, 0, 0, 0], vec![0, 0, 1, 0, 0, 0, 0]],
            ),
            (
                "hz".into(),
                vec![vec![0, 1, 0, 0, 0, 0, 0], vec![0, 0, 1, 0, 0, 0, 0]],
            ),
            (
                "hz".into(),
                vec![vec![0, 1, 0, 0, 0, 0, 0], vec![0, 0, 1, 0, 0, 0, -1]],
            ),
        ],
        body: Expr::Read(0) - Expr::Lit(0.5) * (Expr::Read(1) - Expr::Read(2)),
    });
    // S4 columns: [t, i, j, tmax, nx, ny, 1].
    b.add_statement(StatementSpec {
        name: "S4".into(),
        iters: vec!["t".into(), "i".into(), "j".into()],
        domain_ineqs: vec![
            vec![1, 0, 0, 0, 0, 0, 0],
            vec![-1, 0, 0, 1, 0, 0, -1],
            vec![0, 1, 0, 0, 0, 0, 0],
            vec![0, -1, 0, 0, 1, 0, -1],
            vec![0, 0, 1, 0, 0, 0, 0],
            vec![0, 0, -1, 0, 0, 1, -1],
        ],
        beta: vec![0, 3, 0, 0],
        write: (
            "hz".into(),
            vec![vec![0, 1, 0, 0, 0, 0, 0], vec![0, 0, 1, 0, 0, 0, 0]],
        ),
        reads: vec![
            (
                "hz".into(),
                vec![vec![0, 1, 0, 0, 0, 0, 0], vec![0, 0, 1, 0, 0, 0, 0]],
            ),
            (
                "ex".into(),
                vec![vec![0, 1, 0, 0, 0, 0, 0], vec![0, 0, 1, 0, 0, 0, 1]],
            ),
            (
                "ex".into(),
                vec![vec![0, 1, 0, 0, 0, 0, 0], vec![0, 0, 1, 0, 0, 0, 0]],
            ),
            (
                "ey".into(),
                vec![vec![0, 1, 0, 0, 0, 0, 1], vec![0, 0, 1, 0, 0, 0, 0]],
            ),
            (
                "ey".into(),
                vec![vec![0, 1, 0, 0, 0, 0, 0], vec![0, 0, 1, 0, 0, 0, 0]],
            ),
        ],
        body: Expr::Read(0)
            - Expr::Lit(0.7) * (Expr::Read(1) - Expr::Read(2) + Expr::Read(3) - Expr::Read(4)),
    });
    Kernel {
        program: b.build(),
        extents: |p| {
            let (nx, ny) = (p[1] as usize, p[2] as usize);
            vec![vec![nx, ny + 1], vec![nx + 1, ny], vec![nx, ny]]
        },
    }
}

/// LU decomposition (paper Fig. 9a):
///
/// ```c
/// for (k = 0; k < N; k++) {
///   for (j = k+1; j < N; j++)
///     a[k][j] = a[k][j] / a[k][k];                 // S1
///   for (i = k+1; i < N; i++)
///     for (j = k+1; j < N; j++)
///       a[i][j] = a[i][j] - a[i][k] * a[k][j];     // S2
/// }
/// ```
pub fn lu() -> Kernel {
    let mut b = ProgramBuilder::new("lu", &["N"]);
    b.add_context_ineq(vec![1, -3]); // N >= 3
    b.add_array("a", 2);
    // S1 columns: [k, j, N, 1].
    b.add_statement(StatementSpec {
        name: "S1".into(),
        iters: vec!["k".into(), "j".into()],
        domain_ineqs: vec![
            vec![1, 0, 0, 0],   // k >= 0
            vec![-1, 0, 1, -1], // k <= N-1
            vec![-1, 1, 0, -1], // j >= k+1
            vec![0, -1, 1, -1], // j <= N-1
        ],
        beta: vec![0, 0, 0],
        write: ("a".into(), vec![vec![1, 0, 0, 0], vec![0, 1, 0, 0]]),
        reads: vec![
            ("a".into(), vec![vec![1, 0, 0, 0], vec![0, 1, 0, 0]]),
            ("a".into(), vec![vec![1, 0, 0, 0], vec![1, 0, 0, 0]]),
        ],
        body: Expr::Read(0) / Expr::Read(1),
    });
    // S2 columns: [k, i, j, N, 1].
    b.add_statement(StatementSpec {
        name: "S2".into(),
        iters: vec!["k".into(), "i".into(), "j".into()],
        domain_ineqs: vec![
            vec![1, 0, 0, 0, 0],
            vec![-1, 0, 0, 1, -1],
            vec![-1, 1, 0, 0, -1], // i >= k+1
            vec![0, -1, 0, 1, -1],
            vec![-1, 0, 1, 0, -1], // j >= k+1
            vec![0, 0, -1, 1, -1],
        ],
        beta: vec![0, 1, 0, 0],
        write: ("a".into(), vec![vec![0, 1, 0, 0, 0], vec![0, 0, 1, 0, 0]]),
        reads: vec![
            ("a".into(), vec![vec![0, 1, 0, 0, 0], vec![0, 0, 1, 0, 0]]),
            ("a".into(), vec![vec![0, 1, 0, 0, 0], vec![1, 0, 0, 0, 0]]),
            ("a".into(), vec![vec![1, 0, 0, 0, 0], vec![0, 0, 1, 0, 0]]),
        ],
        body: Expr::Read(0) - Expr::Read(1) * Expr::Read(2),
    });
    Kernel {
        program: b.build(),
        extents: |p| vec![vec![p[0] as usize, p[0] as usize]],
    }
}

/// Matrix-vector transpose sequence (paper Fig. 11):
///
/// ```c
/// for (i = 0; i < N; i++)
///   for (j = 0; j < N; j++)
///     x1[i] = x1[i] + a[i][j] * y1[j];   // S1
/// for (i = 0; i < N; i++)
///   for (j = 0; j < N; j++)
///     x2[i] = x2[i] + a[j][i] * y2[j];   // S2
/// ```
///
/// The only inter-statement dependence is a non-uniform *input* dependence
/// on `a` — the kernel that motivates Sec. 4.1.
pub fn mvt() -> Kernel {
    let mut b = ProgramBuilder::new("mvt", &["N"]);
    b.add_context_ineq(vec![1, -3]);
    b.add_array("a", 2);
    b.add_array("x1", 1);
    b.add_array("x2", 1);
    b.add_array("y1", 1);
    b.add_array("y2", 1);
    // Columns: [i, j, N, 1].
    let dom = vec![
        vec![1, 0, 0, 0],
        vec![-1, 0, 1, -1],
        vec![0, 1, 0, 0],
        vec![0, -1, 1, -1],
    ];
    b.add_statement(StatementSpec {
        name: "S1".into(),
        iters: vec!["i".into(), "j".into()],
        domain_ineqs: dom.clone(),
        beta: vec![0, 0, 0],
        write: ("x1".into(), vec![vec![1, 0, 0, 0]]),
        reads: vec![
            ("x1".into(), vec![vec![1, 0, 0, 0]]),
            ("a".into(), vec![vec![1, 0, 0, 0], vec![0, 1, 0, 0]]),
            ("y1".into(), vec![vec![0, 1, 0, 0]]),
        ],
        body: Expr::Read(0) + Expr::Read(1) * Expr::Read(2),
    });
    b.add_statement(StatementSpec {
        name: "S2".into(),
        iters: vec!["i".into(), "j".into()],
        domain_ineqs: dom,
        beta: vec![1, 0, 0],
        write: ("x2".into(), vec![vec![1, 0, 0, 0]]),
        reads: vec![
            ("x2".into(), vec![vec![1, 0, 0, 0]]),
            ("a".into(), vec![vec![0, 1, 0, 0], vec![1, 0, 0, 0]]),
            ("y2".into(), vec![vec![0, 1, 0, 0]]),
        ],
        body: Expr::Read(0) + Expr::Read(1) * Expr::Read(2),
    });
    Kernel {
        program: b.build(),
        extents: |p| {
            let n = p[0] as usize;
            vec![vec![n, n], vec![n], vec![n], vec![n], vec![n]]
        },
    }
}

/// 3-D Gauss-Seidel successive over-relaxation (paper Sec. 7; time +
/// 2-d space, all three dimensions tilable after skewing):
///
/// ```c
/// for (t = 0; t < T; t++)
///   for (i = 1; i < N - 1; i++)
///     for (j = 1; j < N - 1; j++)
///       a[i][j] = 0.2 * (a[i-1][j] + a[i][j-1] + a[i][j]
///                        + a[i][j+1] + a[i+1][j]);
/// ```
pub fn seidel_2d() -> Kernel {
    let mut b = ProgramBuilder::new("seidel-2d", &["T", "N"]);
    b.add_context_ineq(vec![1, 0, -1]);
    b.add_context_ineq(vec![0, 1, -4]);
    b.add_array("a", 2);
    // Columns: [t, i, j, T, N, 1].
    b.add_statement(StatementSpec {
        name: "S1".into(),
        iters: vec!["t".into(), "i".into(), "j".into()],
        domain_ineqs: vec![
            vec![1, 0, 0, 0, 0, 0],
            vec![-1, 0, 0, 1, 0, -1],
            vec![0, 1, 0, 0, 0, -1],
            vec![0, -1, 0, 0, 1, -2],
            vec![0, 0, 1, 0, 0, -1],
            vec![0, 0, -1, 0, 1, -2],
        ],
        beta: vec![0, 0, 0, 0],
        write: (
            "a".into(),
            vec![vec![0, 1, 0, 0, 0, 0], vec![0, 0, 1, 0, 0, 0]],
        ),
        reads: vec![
            (
                "a".into(),
                vec![vec![0, 1, 0, 0, 0, -1], vec![0, 0, 1, 0, 0, 0]],
            ),
            (
                "a".into(),
                vec![vec![0, 1, 0, 0, 0, 0], vec![0, 0, 1, 0, 0, -1]],
            ),
            (
                "a".into(),
                vec![vec![0, 1, 0, 0, 0, 0], vec![0, 0, 1, 0, 0, 0]],
            ),
            (
                "a".into(),
                vec![vec![0, 1, 0, 0, 0, 0], vec![0, 0, 1, 0, 0, 1]],
            ),
            (
                "a".into(),
                vec![vec![0, 1, 0, 0, 0, 1], vec![0, 0, 1, 0, 0, 0]],
            ),
        ],
        body: Expr::Lit(0.2)
            * (Expr::Read(0) + Expr::Read(1) + Expr::Read(2) + Expr::Read(3) + Expr::Read(4)),
    });
    Kernel {
        program: b.build(),
        extents: |p| vec![vec![p[1] as usize, p[1] as usize]],
    }
}

/// Dense matrix multiplication `C += A·B` (the classic tiling example):
///
/// ```c
/// for (i = 0; i < N; i++)
///   for (j = 0; j < N; j++)
///     for (k = 0; k < N; k++)
///       C[i][j] = C[i][j] + A[i][k] * B[k][j];
/// ```
pub fn matmul() -> Kernel {
    let mut b = ProgramBuilder::new("matmul", &["N"]);
    b.add_context_ineq(vec![1, -2]);
    b.add_array("C", 2);
    b.add_array("A", 2);
    b.add_array("B", 2);
    // Columns: [i, j, k, N, 1].
    b.add_statement(StatementSpec {
        name: "S1".into(),
        iters: vec!["i".into(), "j".into(), "k".into()],
        domain_ineqs: vec![
            vec![1, 0, 0, 0, 0],
            vec![-1, 0, 0, 1, -1],
            vec![0, 1, 0, 0, 0],
            vec![0, -1, 0, 1, -1],
            vec![0, 0, 1, 0, 0],
            vec![0, 0, -1, 1, -1],
        ],
        beta: vec![0, 0, 0, 0],
        write: ("C".into(), vec![vec![1, 0, 0, 0, 0], vec![0, 1, 0, 0, 0]]),
        reads: vec![
            ("C".into(), vec![vec![1, 0, 0, 0, 0], vec![0, 1, 0, 0, 0]]),
            ("A".into(), vec![vec![1, 0, 0, 0, 0], vec![0, 0, 1, 0, 0]]),
            ("B".into(), vec![vec![0, 0, 1, 0, 0], vec![0, 1, 0, 0, 0]]),
        ],
        body: Expr::Read(0) + Expr::Read(1) * Expr::Read(2),
    });
    Kernel {
        program: b.build(),
        extents: |p| {
            let n = p[0] as usize;
            vec![vec![n, n]; 3]
        },
    }
}

/// The 2-d SOR-like nest of the paper's Fig. 4 (pipelined parallel
/// example):
///
/// ```c
/// for (i = 1; i < N; i++)
///   for (j = 1; j < N; j++)
///     a[i][j] = a[i-1][j] + a[i][j-1];
/// ```
pub fn sor_2d() -> Kernel {
    let mut b = ProgramBuilder::new("sor-2d", &["N"]);
    b.add_context_ineq(vec![1, -3]);
    b.add_array("a", 2);
    // Columns: [i, j, N, 1].
    b.add_statement(StatementSpec {
        name: "S1".into(),
        iters: vec!["i".into(), "j".into()],
        domain_ineqs: vec![
            vec![1, 0, 0, -1],
            vec![-1, 0, 1, -1],
            vec![0, 1, 0, -1],
            vec![0, -1, 1, -1],
        ],
        beta: vec![0, 0, 0],
        write: ("a".into(), vec![vec![1, 0, 0, 0], vec![0, 1, 0, 0]]),
        reads: vec![
            ("a".into(), vec![vec![1, 0, 0, -1], vec![0, 1, 0, 0]]),
            ("a".into(), vec![vec![1, 0, 0, 0], vec![0, 1, 0, -1]]),
        ],
        body: Expr::Read(0) + Expr::Read(1),
    });
    Kernel {
        program: b.build(),
        extents: |p| vec![vec![p[0] as usize, p[0] as usize]],
    }
}

/// All kernels by name (used by examples and the benchmark harness).
pub fn all() -> Vec<(&'static str, Kernel)> {
    vec![
        ("jacobi-1d-imper", jacobi_1d_imperfect()),
        ("fdtd-2d", fdtd_2d()),
        ("lu", lu()),
        ("mvt", mvt()),
        ("seidel-2d", seidel_2d()),
        ("matmul", matmul()),
        ("sor-2d", sor_2d()),
        ("jacobi-2d-imper", jacobi_2d_imperfect()),
        ("gemver", gemver()),
        ("trmm", trmm()),
        ("syrk", syrk()),
        ("trisolv", trisolv()),
        ("doitgen", doitgen()),
    ]
}

/// Shared helper for tests/benches: a deterministic pseudo-random initial
/// value for array cell `(array_index, flat_offset)`.
pub fn seed_value(array: usize, offset: usize) -> f64 {
    // Simple SplitMix-style hash, mapped into [0.5, 1.5) to avoid
    // catastrophic cancellation in long stencil runs.
    let mut z = (array as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(offset as u64)
        .wrapping_add(0x1234_5678);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    0.5 + (z % 1_000_000) as f64 / 1_000_000.0
}

/// Convenience: total statement-instance count of a kernel at the given
/// parameter values (exact for the rectangular/triangular domains above;
/// used for FLOP-rate reporting).
pub fn instance_count(name: &str, p: &[Int]) -> Int {
    match name {
        "jacobi-1d-imper" => 2 * p[0] * (p[1] - 4),
        "fdtd-2d" => p[0] * (p[2] + (p[1] - 1) * p[2] + p[1] * (p[2] - 1) + p[1] * p[2]),
        "lu" => {
            let n = p[0];
            // Σ_k (N-1-k) + (N-1-k)^2
            (0..n)
                .map(|k| (n - 1 - k) + (n - 1 - k) * (n - 1 - k))
                .sum()
        }
        "mvt" => 2 * p[0] * p[0],
        "seidel-2d" => p[0] * (p[1] - 2) * (p[1] - 2),
        "matmul" => p[0] * p[0] * p[0],
        "sor-2d" => (p[0] - 1) * (p[0] - 1),
        "jacobi-2d-imper" => 2 * p[0] * (p[1] - 2) * (p[1] - 2),
        "gemver" => 3 * p[0] * p[0] + p[0],
        "trmm" => {
            let n = p[0];
            (1..n).map(|i| n * i).sum()
        }
        "syrk" => p[0] * p[0] * p[0],
        "trisolv" => {
            let n = p[0];
            2 * n + n * (n - 1) / 2
        }
        "doitgen" => {
            let n = p[0];
            n * n * n + n * n * n * n + n * n * n
        }
        _ => panic!("unknown kernel `{name}`"),
    }
}

/// Imperfectly nested 2-d Jacobi (the 2-d analogue of Fig. 3, from the
/// Pluto tool's example suite):
///
/// ```c
/// for (t = 0; t < T; t++) {
///   for (i = 1; i < N-1; i++) for (j = 1; j < N-1; j++)
///     B[i][j] = 0.2*(A[i][j] + A[i-1][j] + A[i+1][j]
///                    + A[i][j-1] + A[i][j+1]);          // S1
///   for (i = 1; i < N-1; i++) for (j = 1; j < N-1; j++)
///     A[i][j] = B[i][j];                                // S2
/// }
/// ```
pub fn jacobi_2d_imperfect() -> Kernel {
    let mut b = ProgramBuilder::new("jacobi-2d-imper", &["T", "N"]);
    b.add_context_ineq(vec![1, 0, -1]);
    b.add_context_ineq(vec![0, 1, -4]);
    b.add_array("A", 2);
    b.add_array("B", 2);
    // Columns: [t, i, j, T, N, 1].
    let dom = vec![
        vec![1, 0, 0, 0, 0, 0],
        vec![-1, 0, 0, 1, 0, -1],
        vec![0, 1, 0, 0, 0, -1],
        vec![0, -1, 0, 0, 1, -2],
        vec![0, 0, 1, 0, 0, -1],
        vec![0, 0, -1, 0, 1, -2],
    ];
    let at = |di: Int, dj: Int| -> Vec<Vec<Int>> {
        vec![vec![0, 1, 0, 0, 0, di], vec![0, 0, 1, 0, 0, dj]]
    };
    b.add_statement(StatementSpec {
        name: "S1".into(),
        iters: vec!["t".into(), "i".into(), "j".into()],
        domain_ineqs: dom.clone(),
        beta: vec![0, 0, 0, 0],
        write: ("B".into(), at(0, 0)),
        reads: vec![
            ("A".into(), at(0, 0)),
            ("A".into(), at(-1, 0)),
            ("A".into(), at(1, 0)),
            ("A".into(), at(0, -1)),
            ("A".into(), at(0, 1)),
        ],
        body: Expr::Lit(0.2)
            * (Expr::Read(0) + Expr::Read(1) + Expr::Read(2) + Expr::Read(3) + Expr::Read(4)),
    });
    b.add_statement(StatementSpec {
        name: "S2".into(),
        iters: vec!["t".into(), "i".into(), "j".into()],
        domain_ineqs: dom,
        beta: vec![0, 1, 0, 0],
        write: ("A".into(), at(0, 0)),
        reads: vec![("B".into(), at(0, 0))],
        body: Expr::Read(0),
    });
    Kernel {
        program: b.build(),
        extents: |p| vec![vec![p[1] as usize, p[1] as usize]; 2],
    }
}

/// BLAS gemver (Pluto example suite): `Â = A + u1·v1ᵀ + u2·v2ᵀ;
/// x = β·Âᵀ·y + z; w = α·Â·x` — four statements with rich inter-statement
/// reuse that exercises fusion across a producer and two consumers.
pub fn gemver() -> Kernel {
    let mut b = ProgramBuilder::new("gemver", &["N"]);
    b.add_context_ineq(vec![1, -3]);
    b.add_array("A", 2);
    b.add_array("u1", 1);
    b.add_array("v1", 1);
    b.add_array("u2", 1);
    b.add_array("v2", 1);
    b.add_array("x", 1);
    b.add_array("y", 1);
    b.add_array("z", 1);
    b.add_array("w", 1);
    // Columns: [i, j, N, 1].
    let dom2 = vec![
        vec![1, 0, 0, 0],
        vec![-1, 0, 1, -1],
        vec![0, 1, 0, 0],
        vec![0, -1, 1, -1],
    ];
    let a_ij = vec![vec![1, 0, 0, 0], vec![0, 1, 0, 0]];
    let a_ji = vec![vec![0, 1, 0, 0], vec![1, 0, 0, 0]];
    let vi = |_: ()| vec![vec![1, 0, 0, 0]];
    let vj = |_: ()| vec![vec![0, 1, 0, 0]];
    b.add_statement(StatementSpec {
        name: "S1".into(),
        iters: vec!["i".into(), "j".into()],
        domain_ineqs: dom2.clone(),
        beta: vec![0, 0, 0],
        write: ("A".into(), a_ij.clone()),
        reads: vec![
            ("A".into(), a_ij.clone()),
            ("u1".into(), vi(())),
            ("v1".into(), vj(())),
            ("u2".into(), vi(())),
            ("v2".into(), vj(())),
        ],
        body: Expr::Read(0) + Expr::Read(1) * Expr::Read(2) + Expr::Read(3) * Expr::Read(4),
    });
    b.add_statement(StatementSpec {
        name: "S2".into(),
        iters: vec!["i".into(), "j".into()],
        domain_ineqs: dom2.clone(),
        beta: vec![1, 0, 0],
        write: ("x".into(), vi(())),
        reads: vec![
            ("x".into(), vi(())),
            ("A".into(), a_ji),
            ("y".into(), vj(())),
        ],
        body: Expr::Read(0) + Expr::Lit(0.9) * Expr::Read(1) * Expr::Read(2),
    });
    b.add_statement(StatementSpec {
        name: "S3".into(),
        iters: vec!["i".into()],
        domain_ineqs: vec![vec![1, 0, 0], vec![-1, 1, -1]],
        beta: vec![2, 0],
        write: ("x".into(), vec![vec![1, 0, 0]]),
        reads: vec![
            ("x".into(), vec![vec![1, 0, 0]]),
            ("z".into(), vec![vec![1, 0, 0]]),
        ],
        body: Expr::Read(0) + Expr::Read(1),
    });
    b.add_statement(StatementSpec {
        name: "S4".into(),
        iters: vec!["i".into(), "j".into()],
        domain_ineqs: dom2,
        beta: vec![3, 0, 0],
        write: ("w".into(), vi(())),
        reads: vec![
            ("w".into(), vi(())),
            ("A".into(), a_ij),
            ("x".into(), vj(())),
        ],
        body: Expr::Read(0) + Expr::Lit(1.1) * Expr::Read(1) * Expr::Read(2),
    });
    Kernel {
        program: b.build(),
        extents: |p| {
            let n = p[0] as usize;
            vec![
                vec![n, n],
                vec![n],
                vec![n],
                vec![n],
                vec![n],
                vec![n],
                vec![n],
                vec![n],
                vec![n],
            ]
        },
    }
}

/// Triangular matrix multiply (trmm-like, Pluto example suite):
///
/// ```c
/// for (i = 1; i < N; i++)
///   for (j = 0; j < N; j++)
///     for (k = 0; k < i; k++)
///       B[i][j] = B[i][j] + A[i][k] * B[k][j];
/// ```
///
/// A genuinely triangular iteration space with a loop-carried flow on `B`.
pub fn trmm() -> Kernel {
    let mut b = ProgramBuilder::new("trmm", &["N"]);
    b.add_context_ineq(vec![1, -3]);
    b.add_array("A", 2);
    b.add_array("B", 2);
    // Columns: [i, j, k, N, 1].
    b.add_statement(StatementSpec {
        name: "S1".into(),
        iters: vec!["i".into(), "j".into(), "k".into()],
        domain_ineqs: vec![
            vec![1, 0, 0, 0, -1],  // i >= 1
            vec![-1, 0, 0, 1, -1], // i <= N-1
            vec![0, 1, 0, 0, 0],
            vec![0, -1, 0, 1, -1],
            vec![0, 0, 1, 0, 0],   // k >= 0
            vec![1, 0, -1, 0, -1], // k <= i-1
        ],
        beta: vec![0, 0, 0, 0],
        write: ("B".into(), vec![vec![1, 0, 0, 0, 0], vec![0, 1, 0, 0, 0]]),
        reads: vec![
            ("B".into(), vec![vec![1, 0, 0, 0, 0], vec![0, 1, 0, 0, 0]]),
            ("A".into(), vec![vec![1, 0, 0, 0, 0], vec![0, 0, 1, 0, 0]]),
            ("B".into(), vec![vec![0, 0, 1, 0, 0], vec![0, 1, 0, 0, 0]]),
        ],
        body: Expr::Read(0) + Expr::Read(1) * Expr::Read(2),
    });
    Kernel {
        program: b.build(),
        extents: |p| vec![vec![p[0] as usize, p[0] as usize]; 2],
    }
}

/// Symmetric rank-k update (syrk): `C += A·Aᵀ` — a matmul-class kernel
/// with two reads of the same array (input-dependence reuse).
pub fn syrk() -> Kernel {
    let mut b = ProgramBuilder::new("syrk", &["N"]);
    b.add_context_ineq(vec![1, -2]);
    b.add_array("C", 2);
    b.add_array("A", 2);
    // Columns: [i, j, k, N, 1].
    b.add_statement(StatementSpec {
        name: "S1".into(),
        iters: vec!["i".into(), "j".into(), "k".into()],
        domain_ineqs: vec![
            vec![1, 0, 0, 0, 0],
            vec![-1, 0, 0, 1, -1],
            vec![0, 1, 0, 0, 0],
            vec![0, -1, 0, 1, -1],
            vec![0, 0, 1, 0, 0],
            vec![0, 0, -1, 1, -1],
        ],
        beta: vec![0, 0, 0, 0],
        write: ("C".into(), vec![vec![1, 0, 0, 0, 0], vec![0, 1, 0, 0, 0]]),
        reads: vec![
            ("C".into(), vec![vec![1, 0, 0, 0, 0], vec![0, 1, 0, 0, 0]]),
            ("A".into(), vec![vec![1, 0, 0, 0, 0], vec![0, 0, 1, 0, 0]]),
            ("A".into(), vec![vec![0, 1, 0, 0, 0], vec![0, 0, 1, 0, 0]]),
        ],
        body: Expr::Read(0) + Expr::Read(1) * Expr::Read(2),
    });
    Kernel {
        program: b.build(),
        extents: |p| vec![vec![p[0] as usize, p[0] as usize]; 2],
    }
}

/// Forward substitution (trisolv): a mostly sequential triangular solve —
/// a stress test for codes with little parallelism to extract.
///
/// ```c
/// for (i = 0; i < N; i++) {
///   x[i] = b[i];                                  // S1
///   for (j = 0; j < i; j++)
///     x[i] = x[i] - L[i][j] * x[j];               // S2
///   x[i] = x[i] / L[i][i];                        // S3
/// }
/// ```
pub fn trisolv() -> Kernel {
    let mut bl = ProgramBuilder::new("trisolv", &["N"]);
    bl.add_context_ineq(vec![1, -3]);
    bl.add_array("L", 2);
    bl.add_array("x", 1);
    bl.add_array("b", 1);
    // S1/S3 columns: [i, N, 1]; S2 columns: [i, j, N, 1].
    bl.add_statement(StatementSpec {
        name: "S1".into(),
        iters: vec!["i".into()],
        domain_ineqs: vec![vec![1, 0, 0], vec![-1, 1, -1]],
        beta: vec![0, 0],
        write: ("x".into(), vec![vec![1, 0, 0]]),
        reads: vec![("b".into(), vec![vec![1, 0, 0]])],
        body: Expr::Read(0),
    });
    bl.add_statement(StatementSpec {
        name: "S2".into(),
        iters: vec!["i".into(), "j".into()],
        domain_ineqs: vec![
            vec![1, 0, 0, 0],
            vec![-1, 0, 1, -1],
            vec![0, 1, 0, 0],
            vec![1, -1, 0, -1], // j <= i-1
        ],
        beta: vec![0, 1, 0],
        write: ("x".into(), vec![vec![1, 0, 0, 0]]),
        reads: vec![
            ("x".into(), vec![vec![1, 0, 0, 0]]),
            ("L".into(), vec![vec![1, 0, 0, 0], vec![0, 1, 0, 0]]),
            ("x".into(), vec![vec![0, 1, 0, 0]]),
        ],
        body: Expr::Read(0) - Expr::Read(1) * Expr::Read(2),
    });
    bl.add_statement(StatementSpec {
        name: "S3".into(),
        iters: vec!["i".into()],
        domain_ineqs: vec![vec![1, 0, 0], vec![-1, 1, -1]],
        beta: vec![0, 2],
        write: ("x".into(), vec![vec![1, 0, 0]]),
        reads: vec![
            ("x".into(), vec![vec![1, 0, 0]]),
            ("L".into(), vec![vec![1, 0, 0], vec![1, 0, 0]]),
        ],
        body: Expr::Read(0) / Expr::Read(1),
    });
    Kernel {
        program: bl.build(),
        extents: |p| {
            let n = p[0] as usize;
            vec![vec![n, n], vec![n], vec![n]]
        },
    }
}

/// Multi-resolution analysis kernel (doitgen, Pluto example suite): a
/// 3-statement imperfect nest over a 3-d array with a temporary.
///
/// ```c
/// for (r = 0; r < N; r++)
///   for (q = 0; q < N; q++) {
///     for (p = 0; p < N; p++) {
///       sum[p] = 0;                                   // S1
///       for (s = 0; s < N; s++)
///         sum[p] = sum[p] + A[r][q][s] * C4[s][p];    // S2
///     }
///     for (p = 0; p < N; p++)
///       A[r][q][p] = sum[p];                          // S3
///   }
/// ```
pub fn doitgen() -> Kernel {
    let mut b = ProgramBuilder::new("doitgen", &["N"]);
    b.add_context_ineq(vec![1, -2]);
    b.add_array("A", 3);
    b.add_array("C4", 2);
    b.add_array("sum", 1);
    // S1 columns: [r, q, p, N, 1]; S2: [r, q, p, s, N, 1]; S3: [r, q, p, N, 1].
    let dom3 = vec![
        vec![1, 0, 0, 0, 0],
        vec![-1, 0, 0, 1, -1],
        vec![0, 1, 0, 0, 0],
        vec![0, -1, 0, 1, -1],
        vec![0, 0, 1, 0, 0],
        vec![0, 0, -1, 1, -1],
    ];
    b.add_statement(StatementSpec {
        name: "S1".into(),
        iters: vec!["r".into(), "q".into(), "p".into()],
        domain_ineqs: dom3.clone(),
        beta: vec![0, 0, 0, 0],
        write: ("sum".into(), vec![vec![0, 0, 1, 0, 0]]),
        reads: vec![],
        body: Expr::Lit(0.0),
    });
    b.add_statement(StatementSpec {
        name: "S2".into(),
        iters: vec!["r".into(), "q".into(), "p".into(), "s".into()],
        domain_ineqs: vec![
            vec![1, 0, 0, 0, 0, 0],
            vec![-1, 0, 0, 0, 1, -1],
            vec![0, 1, 0, 0, 0, 0],
            vec![0, -1, 0, 0, 1, -1],
            vec![0, 0, 1, 0, 0, 0],
            vec![0, 0, -1, 0, 1, -1],
            vec![0, 0, 0, 1, 0, 0],
            vec![0, 0, 0, -1, 1, -1],
        ],
        beta: vec![0, 0, 0, 1, 0],
        write: ("sum".into(), vec![vec![0, 0, 1, 0, 0, 0]]),
        reads: vec![
            ("sum".into(), vec![vec![0, 0, 1, 0, 0, 0]]),
            (
                "A".into(),
                vec![
                    vec![1, 0, 0, 0, 0, 0],
                    vec![0, 1, 0, 0, 0, 0],
                    vec![0, 0, 0, 1, 0, 0],
                ],
            ),
            (
                "C4".into(),
                vec![vec![0, 0, 0, 1, 0, 0], vec![0, 0, 1, 0, 0, 0]],
            ),
        ],
        body: Expr::Read(0) + Expr::Read(1) * Expr::Read(2),
    });
    b.add_statement(StatementSpec {
        name: "S3".into(),
        iters: vec!["r".into(), "q".into(), "p".into()],
        domain_ineqs: dom3,
        beta: vec![0, 0, 1, 0],
        write: (
            "A".into(),
            vec![
                vec![1, 0, 0, 0, 0],
                vec![0, 1, 0, 0, 0],
                vec![0, 0, 1, 0, 0],
            ],
        ),
        reads: vec![("sum".into(), vec![vec![0, 0, 1, 0, 0]])],
        body: Expr::Read(0),
    });
    Kernel {
        program: b.build(),
        extents: |p| {
            let n = p[0] as usize;
            vec![vec![n, n, n], vec![n, n], vec![n]]
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pluto_ir::analyze_dependences;

    #[test]
    fn kernels_build_and_have_dependences() {
        for (name, k) in all() {
            assert!(!k.program.stmts.is_empty(), "{name}");
            let deps = analyze_dependences(&k.program, true);
            assert!(!deps.is_empty(), "{name}: no dependences found");
        }
    }

    #[test]
    fn jacobi_has_interstatement_flow() {
        let k = jacobi_1d_imperfect();
        let deps = analyze_dependences(&k.program, false);
        assert!(deps
            .iter()
            .any(|d| d.src == 0 && d.dst == 1 && d.kind == pluto_ir::DepKind::Flow));
        assert!(deps
            .iter()
            .any(|d| d.src == 1 && d.dst == 0 && d.kind == pluto_ir::DepKind::Flow));
    }

    #[test]
    fn mvt_inter_statement_is_input_only() {
        let k = mvt();
        let deps = analyze_dependences(&k.program, true);
        for d in deps.iter().filter(|d| d.src != d.dst) {
            assert_eq!(d.kind, pluto_ir::DepKind::Input, "only RAR across MVs");
        }
    }

    #[test]
    fn extents_match_arrays() {
        for (name, k) in all() {
            let np = k.program.num_params();
            let params: Vec<i64> = vec![10; np];
            let e = (k.extents)(&params);
            assert_eq!(e.len(), k.program.arrays.len(), "{name}");
            for (a, ext) in k.program.arrays.iter().zip(&e) {
                assert_eq!(a.ndim, ext.len(), "{name}/{}", a.name);
            }
        }
    }

    #[test]
    fn instance_counts_positive() {
        for (name, k) in all() {
            let np = k.program.num_params();
            let p: Vec<Int> = vec![8; np];
            assert!(instance_count(name, &p) > 0, "{name}");
        }
    }
}
