//! A recursive-descent parser for a restricted affine-C language.
//!
//! The accepted language covers the paper's input class: perfectly or
//! imperfectly nested `for` loops with affine bounds in outer iterators
//! and parameters, and single-assignment statements with affine array
//! subscripts. See [`parse`] for the grammar.

use pluto_ir::{Expr, Program, ProgramBuilder, StatementSpec};
use pluto_linalg::Int;
use std::collections::HashMap;
use std::fmt;

/// Error raised by [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// Byte offset in the source where the error was detected.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses an affine-C program.
///
/// Grammar (informally):
///
/// ```text
/// program := ("params" ident ("," ident)* ";")?
///            ("assume" affine (">=" | "<=") affine ";")*
///            ("array" ident ("[" affine "]")+ ";")*
///            item*
/// item    := for | assign
/// for     := "for" "(" id "=" affine ";" id ("<=" | "<") affine ";"
///            id "++" ")" ( "{" item* "}" | item )
/// assign  := id ("[" affine "]")* ("=" | "+=" | "-=") expr ";"
/// expr    := term (("+" | "-") term)*
/// term    := factor (("*" | "/") factor)*
/// factor  := number | "(" expr ")" | "-" factor
///          | id ("[" affine "]")*        // array read or iterator value
/// affine  := linear expression over iterators, parameters and integers
/// ```
///
/// # Errors
/// Returns [`ParseError`] on malformed input, unknown identifiers,
/// non-affine bounds or subscripts.
///
/// # Examples
/// ```
/// let src = "
///   params N;
///   array a[N][N];
///   for (i = 1; i <= N - 2; i++)
///     for (j = 1; j <= N - 2; j++)
///       a[i][j] = 0.25 * (a[i-1][j] + a[i][j-1]);
/// ";
/// let prog = pluto_frontend::parse(src)?;
/// assert_eq!(prog.stmts.len(), 1);
/// assert_eq!(prog.stmts[0].iters, vec!["i", "j"]);
/// # Ok::<(), pluto_frontend::ParseError>(())
/// ```
pub fn parse(src: &str) -> Result<Program, ParseError> {
    Ok(parse_unit(src)?.program)
}

/// A parsed program together with its declared array extents (affine in
/// the parameters), so parsed sources can be allocated and executed.
#[derive(Debug, Clone)]
pub struct ParsedUnit {
    /// The polyhedral program.
    pub program: Program,
    /// Per-array extent rows over `[params…, 1]` (one per dimension).
    extent_rows: Vec<Vec<Vec<Int>>>,
}

impl ParsedUnit {
    /// The declared symbolic extents: `extent_rows()[a][d]` is an affine
    /// row over `[params…, 1]` giving the size of dimension `d` of array
    /// `a` (consumed by the static analyzer's bounds prover).
    pub fn extent_rows(&self) -> &[Vec<Vec<Int>>] {
        &self.extent_rows
    }

    /// Evaluates the declared array extents at concrete parameter values.
    ///
    /// # Errors
    /// Fails when an extent evaluates non-positive, naming the array and
    /// dimension (e.g. an `array a[N-8]` executed with `N = 4`).
    pub fn try_extents(&self, params: &[i64]) -> Result<Vec<Vec<usize>>, String> {
        self.extent_rows
            .iter()
            .enumerate()
            .map(|(a, dims)| {
                dims.iter()
                    .enumerate()
                    .map(|(d, row)| {
                        let mut v = row[params.len()];
                        for (k, &p) in params.iter().enumerate() {
                            v += row[k] * p as Int;
                        }
                        if v <= 0 {
                            return Err(format!(
                                "array `{}` dimension {} has non-positive extent {} at the \
                                 given parameters",
                                self.program.arrays[a].name, d, v
                            ));
                        }
                        Ok(v as usize)
                    })
                    .collect()
            })
            .collect()
    }

    /// Evaluates the declared array extents at concrete parameter values.
    ///
    /// # Panics
    /// Panics if an extent evaluates non-positive; use
    /// [`try_extents`](ParsedUnit::try_extents) to handle that case.
    pub fn extents(&self, params: &[i64]) -> Vec<Vec<usize>> {
        match self.try_extents(params) {
            Ok(e) => e,
            Err(m) => panic!("array extent must be positive: {m}"),
        }
    }
}

/// Like [`parse`], but also returns the declared array extents.
///
/// # Errors
/// Returns [`ParseError`] like [`parse`].
pub fn parse_unit(src: &str) -> Result<ParsedUnit, ParseError> {
    let _span = pluto_obs::span("parse");
    let tokens = lex(src)?;
    Parser::new(src, tokens).program()
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(Int),
    Float(f64),
    Sym(&'static str),
}

struct Lexed {
    tok: Tok,
    offset: usize,
}

fn lex(src: &str) -> Result<Vec<Lexed>, ParseError> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if c == '/' && i + 1 < b.len() && b[i + 1] == b'/' {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        if c.is_ascii_alphabetic() || c == '_' {
            while i < b.len() && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            out.push(Lexed {
                tok: Tok::Ident(src[start..i].to_string()),
                offset: start,
            });
            continue;
        }
        if c.is_ascii_digit() {
            while i < b.len() && (b[i] as char).is_ascii_digit() {
                i += 1;
            }
            if i < b.len() && b[i] == b'.' {
                i += 1;
                while i < b.len() && (b[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let v: f64 = src[start..i].parse().map_err(|_| ParseError {
                    message: "bad float literal".into(),
                    offset: start,
                })?;
                out.push(Lexed {
                    tok: Tok::Float(v),
                    offset: start,
                });
            } else {
                let v: Int = src[start..i].parse().map_err(|_| ParseError {
                    message: "bad integer literal".into(),
                    offset: start,
                })?;
                out.push(Lexed {
                    tok: Tok::Int(v),
                    offset: start,
                });
            }
            continue;
        }
        // Multi-char symbols first.
        for sym in ["++", "+=", "-=", "<=", ">=", "=="] {
            if src[i..].starts_with(sym) {
                out.push(Lexed {
                    tok: Tok::Sym(sym),
                    offset: start,
                });
                i += sym.len();
            }
        }
        if i != start {
            continue;
        }
        let sym = match c {
            '(' => "(",
            ')' => ")",
            '[' => "[",
            ']' => "]",
            '{' => "{",
            '}' => "}",
            ';' => ";",
            ',' => ",",
            '=' => "=",
            '+' => "+",
            '-' => "-",
            '*' => "*",
            '/' => "/",
            '<' => "<",
            _ => {
                return Err(ParseError {
                    message: format!("unexpected character `{c}`"),
                    offset: start,
                })
            }
        };
        out.push(Lexed {
            tok: Tok::Sym(sym),
            offset: start,
        });
        i += 1;
    }
    Ok(out)
}

/// A symbolic affine expression over iterator and parameter names.
#[derive(Debug, Clone, Default)]
struct Lin {
    terms: HashMap<String, Int>,
    konst: Int,
}

impl Lin {
    fn constant(c: Int) -> Lin {
        Lin {
            terms: HashMap::new(),
            konst: c,
        }
    }
    fn var(name: &str) -> Lin {
        let mut t = HashMap::new();
        t.insert(name.to_string(), 1);
        Lin { terms: t, konst: 0 }
    }
    fn add(&mut self, o: &Lin, scale: Int) {
        for (k, v) in &o.terms {
            *self.terms.entry(k.clone()).or_insert(0) += v * scale;
        }
        self.konst += o.konst * scale;
    }
    fn is_const(&self) -> Option<Int> {
        if self.terms.values().all(|&v| v == 0) {
            Some(self.konst)
        } else {
            None
        }
    }
    /// Materializes as a row over `[iters…, params…, 1]`.
    fn row(&self, iters: &[String], params: &[String]) -> Result<Vec<Int>, String> {
        let mut row = vec![0; iters.len() + params.len() + 1];
        for (name, &coef) in &self.terms {
            if coef == 0 {
                continue;
            }
            if let Some(k) = iters.iter().position(|x| x == name) {
                row[k] = coef;
            } else if let Some(k) = params.iter().position(|x| x == name) {
                row[iters.len() + k] = coef;
            } else {
                return Err(format!("unknown identifier `{name}`"));
            }
        }
        row[iters.len() + params.len()] = self.konst;
        Ok(row)
    }
}

struct LoopFrame {
    iter: String,
    /// `iter − lb >= 0` and `ub − iter >= 0` as symbolic expressions.
    lb: Lin,
    ub: Lin,
    /// Position of this loop within its parent body.
    position: Int,
}

struct Parser<'s> {
    src: &'s str,
    toks: Vec<Lexed>,
    pos: usize,
    params: Vec<String>,
    assumes: Vec<Lin>,
    arrays: Vec<(String, usize)>,
    extents: Vec<Vec<Lin>>,
    loops: Vec<LoopFrame>,
    /// Per-depth sibling counters (depth 0 = top level).
    counters: Vec<Int>,
    stmts: Vec<PendingStmt>,
}

struct PendingStmt {
    iters: Vec<String>,
    bounds: Vec<(Lin, Lin)>,
    beta: Vec<Int>,
    write: (String, Vec<Lin>),
    reads: Vec<(String, Vec<Lin>)>,
    body: Expr,
    offset: usize,
}

impl<'s> Parser<'s> {
    fn new(src: &'s str, toks: Vec<Lexed>) -> Parser<'s> {
        Parser {
            src,
            toks,
            pos: 0,
            params: Vec::new(),
            assumes: Vec::new(),
            arrays: Vec::new(),
            extents: Vec::new(),
            loops: Vec::new(),
            counters: vec![0],
            stmts: Vec::new(),
        }
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: msg.into(),
            offset: self.toks.get(self.pos).map_or(self.src.len(), |t| t.offset),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        self.pos += 1;
        t
    }

    fn eat_sym(&mut self, s: &str) -> Result<(), ParseError> {
        match self.bump() {
            Some(Tok::Sym(x)) if x == s => Ok(()),
            other => {
                self.pos -= 1;
                self.err(format!("expected `{s}`, found {other:?}"))
            }
        }
    }

    fn eat_ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Tok::Ident(x)) => Ok(x),
            other => {
                self.pos -= 1;
                self.err(format!("expected identifier, found {other:?}"))
            }
        }
    }

    fn program(mut self) -> Result<ParsedUnit, ParseError> {
        // Optional params declaration.
        if matches!(self.peek(), Some(Tok::Ident(x)) if x == "params") {
            self.bump();
            loop {
                let p = self.eat_ident()?;
                self.params.push(p);
                match self.peek() {
                    Some(Tok::Sym(",")) => {
                        self.bump();
                    }
                    _ => break,
                }
            }
            self.eat_sym(";")?;
        }
        // Context assumptions: `assume <affine> >= <affine>;`.
        while matches!(self.peek(), Some(Tok::Ident(x)) if x == "assume") {
            self.bump();
            let lhs = self.affine()?;
            let flip = match self.bump() {
                Some(Tok::Sym(">=")) => false,
                Some(Tok::Sym("<=")) => true,
                other => {
                    self.pos -= 1;
                    return self.err(format!("expected `>=` or `<=`, found {other:?}"));
                }
            };
            let rhs = self.affine()?;
            // lhs - rhs >= 0 (or rhs - lhs >= 0 when flipped).
            let mut row = Lin::default();
            row.add(&lhs, if flip { -1 } else { 1 });
            row.add(&rhs, if flip { 1 } else { -1 });
            self.eat_sym(";")?;
            self.assumes.push(row);
        }
        // Array declarations.
        while matches!(self.peek(), Some(Tok::Ident(x)) if x == "array") {
            self.bump();
            let name = self.eat_ident()?;
            let mut dims = Vec::new();
            while matches!(self.peek(), Some(Tok::Sym("["))) {
                self.bump();
                dims.push(self.affine()?);
                self.eat_sym("]")?;
            }
            self.eat_sym(";")?;
            if dims.is_empty() {
                return self.err("array declaration needs at least one extent");
            }
            self.arrays.push((name, dims.len()));
            self.extents.push(dims);
        }
        while self.peek().is_some() {
            self.item()?;
        }
        // Materialize the program.
        let mut b = ProgramBuilder::new(
            "parsed",
            &self.params.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        );
        // Parameters are assumed large enough for every loop to run.
        for k in 0..self.params.len() {
            let mut row = vec![0; self.params.len() + 1];
            row[k] = 1;
            row[self.params.len()] = -1; // p >= 1
            b.add_context_ineq(row);
        }
        for a in &self.assumes {
            let row = a.row(&[], &self.params).map_err(|m| ParseError {
                message: m,
                offset: 0,
            })?;
            b.add_context_ineq(row);
        }
        for (name, ndim) in &self.arrays {
            b.add_array(name, *ndim);
        }
        let params = self.params.clone();
        for (si, ps) in self.stmts.iter().enumerate() {
            let mk_row = |l: &Lin| -> Result<Vec<Int>, ParseError> {
                l.row(&ps.iters, &params).map_err(|m| ParseError {
                    message: m,
                    offset: ps.offset,
                })
            };
            let mut domain = Vec::new();
            for (d, (lb, ub)) in ps.bounds.iter().enumerate() {
                // iter − lb >= 0
                let mut lo = mk_row(lb)?;
                for v in lo.iter_mut() {
                    *v = -*v;
                }
                lo[d] += 1;
                domain.push(lo);
                // ub − iter >= 0
                let mut hi = mk_row(ub)?;
                hi[d] -= 1;
                domain.push(hi);
            }
            let write_rows: Vec<Vec<Int>> =
                ps.write.1.iter().map(&mk_row).collect::<Result<_, _>>()?;
            let mut reads = Vec::new();
            for (arr, subs) in &ps.reads {
                let rows: Vec<Vec<Int>> = subs.iter().map(&mk_row).collect::<Result<_, _>>()?;
                reads.push((arr.clone(), rows));
            }
            b.add_statement(StatementSpec {
                name: format!("S{}", si + 1),
                iters: ps.iters.clone(),
                domain_ineqs: domain,
                beta: ps.beta.clone(),
                write: (ps.write.0.clone(), write_rows),
                reads,
                body: ps.body.clone(),
            });
        }
        let extent_rows = self
            .extents
            .iter()
            .map(|dims| {
                dims.iter()
                    .map(|l| {
                        l.row(&[], &params).map_err(|m| ParseError {
                            message: m,
                            offset: 0,
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ParsedUnit {
            program: b.build(),
            extent_rows,
        })
    }

    fn item(&mut self) -> Result<(), ParseError> {
        match self.peek() {
            Some(Tok::Ident(x)) if x == "for" => self.for_loop(),
            Some(Tok::Ident(_)) => self.assign(),
            other => self.err(format!("expected `for` or assignment, found {other:?}")),
        }
    }

    fn for_loop(&mut self) -> Result<(), ParseError> {
        self.bump(); // for
        self.eat_sym("(")?;
        let iter = self.eat_ident()?;
        self.eat_sym("=")?;
        let lb = self.affine()?;
        self.eat_sym(";")?;
        let it2 = self.eat_ident()?;
        if it2 != iter {
            return self.err("loop condition must test the loop iterator");
        }
        let strict = match self.bump() {
            Some(Tok::Sym("<=")) => false,
            Some(Tok::Sym("<")) => true,
            other => {
                self.pos -= 1;
                return self.err(format!("expected `<` or `<=`, found {other:?}"));
            }
        };
        let mut ub = self.affine()?;
        if strict {
            ub.konst -= 1;
        }
        self.eat_sym(";")?;
        let it3 = self.eat_ident()?;
        if it3 != iter {
            return self.err("increment must use the loop iterator");
        }
        self.eat_sym("++")?;
        self.eat_sym(")")?;
        let depth = self.loops.len();
        let position = self.counters[depth];
        self.counters[depth] += 1;
        self.loops.push(LoopFrame {
            iter,
            lb,
            ub,
            position,
        });
        self.counters.push(0);
        if matches!(self.peek(), Some(Tok::Sym("{"))) {
            self.bump();
            while !matches!(self.peek(), Some(Tok::Sym("}"))) {
                if self.peek().is_none() {
                    return self.err("unterminated block");
                }
                self.item()?;
            }
            self.bump();
        } else {
            self.item()?;
        }
        self.loops.pop();
        self.counters.pop();
        Ok(())
    }

    fn assign(&mut self) -> Result<(), ParseError> {
        let offset = self.toks[self.pos].offset;
        let (array, subs) = self.access()?;
        if !self.arrays.iter().any(|(n, _)| *n == array) {
            return self.err(format!("assignment to undeclared array `{array}`"));
        }
        let op = match self.bump() {
            Some(Tok::Sym("=")) => None,
            Some(Tok::Sym("+=")) => Some(false),
            Some(Tok::Sym("-=")) => Some(true),
            other => {
                self.pos -= 1;
                return self.err(format!("expected assignment, found {other:?}"));
            }
        };
        let mut reads = Vec::new();
        if op.is_some() {
            // Compound assignment desugars to a leading self-read.
            reads.push((array.clone(), subs.clone()));
        }
        let rhs = self.expr(&mut reads)?;
        let body = match op {
            None => rhs,
            Some(false) => Expr::Read(0) + rhs,
            Some(true) => Expr::Read(0) - rhs,
        };
        self.eat_sym(";")?;
        let depth = self.loops.len();
        let mut beta: Vec<Int> = self.loops.iter().map(|l| l.position).collect();
        beta.push(self.counters[depth]);
        self.counters[depth] += 1;
        self.stmts.push(PendingStmt {
            iters: self.loops.iter().map(|l| l.iter.clone()).collect(),
            bounds: self
                .loops
                .iter()
                .map(|l| (l.lb.clone(), l.ub.clone()))
                .collect(),
            beta,
            write: (array, subs),
            reads,
            body,
            offset,
        });
        Ok(())
    }

    fn access(&mut self) -> Result<(String, Vec<Lin>), ParseError> {
        let name = self.eat_ident()?;
        let mut subs = Vec::new();
        while matches!(self.peek(), Some(Tok::Sym("["))) {
            self.bump();
            subs.push(self.affine()?);
            self.eat_sym("]")?;
        }
        Ok((name, subs))
    }

    fn expr(&mut self, reads: &mut Vec<(String, Vec<Lin>)>) -> Result<Expr, ParseError> {
        let mut e = self.term(reads)?;
        loop {
            match self.peek() {
                Some(Tok::Sym("+")) => {
                    self.bump();
                    e = e + self.term(reads)?;
                }
                Some(Tok::Sym("-")) => {
                    self.bump();
                    e = e - self.term(reads)?;
                }
                _ => return Ok(e),
            }
        }
    }

    fn term(&mut self, reads: &mut Vec<(String, Vec<Lin>)>) -> Result<Expr, ParseError> {
        let mut e = self.factor(reads)?;
        loop {
            match self.peek() {
                Some(Tok::Sym("*")) => {
                    self.bump();
                    e = e * self.factor(reads)?;
                }
                Some(Tok::Sym("/")) => {
                    self.bump();
                    e = e / self.factor(reads)?;
                }
                _ => return Ok(e),
            }
        }
    }

    fn factor(&mut self, reads: &mut Vec<(String, Vec<Lin>)>) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Int(v)) => {
                self.bump();
                Ok(Expr::Lit(v as f64))
            }
            Some(Tok::Float(v)) => {
                self.bump();
                Ok(Expr::Lit(v))
            }
            Some(Tok::Sym("(")) => {
                self.bump();
                let e = self.expr(reads)?;
                self.eat_sym(")")?;
                Ok(e)
            }
            Some(Tok::Sym("-")) => {
                self.bump();
                Ok(Expr::Lit(0.0) - self.factor(reads)?)
            }
            Some(Tok::Ident(_)) => {
                let (name, subs) = self.access()?;
                if subs.is_empty() {
                    // Iterator value as an expression leaf.
                    if let Some(k) = self.loops.iter().position(|l| l.iter == name) {
                        Ok(Expr::Iter(k))
                    } else {
                        self.err(format!("`{name}` is not a loop iterator or array access"))
                    }
                } else {
                    if !self.arrays.iter().any(|(n, _)| *n == name) {
                        return self.err(format!("read of undeclared array `{name}`"));
                    }
                    reads.push((name, subs));
                    Ok(Expr::Read(reads.len() - 1))
                }
            }
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }

    /// Parses an affine expression (no array accesses, multiplication only
    /// by integer constants).
    fn affine(&mut self) -> Result<Lin, ParseError> {
        let mut acc = Lin::default();
        let first = self.affine_term()?;
        acc.add(&first, 1);
        loop {
            match self.peek() {
                Some(Tok::Sym("+")) => {
                    self.bump();
                    let t = self.affine_term()?;
                    acc.add(&t, 1);
                }
                Some(Tok::Sym("-")) => {
                    self.bump();
                    let t = self.affine_term()?;
                    acc.add(&t, -1);
                }
                _ => return Ok(acc),
            }
        }
    }

    fn affine_term(&mut self) -> Result<Lin, ParseError> {
        let mut a = self.affine_atom()?;
        while matches!(self.peek(), Some(Tok::Sym("*"))) {
            self.bump();
            let b = self.affine_atom()?;
            a = match (a.is_const(), b.is_const()) {
                (Some(c), _) => {
                    let r = b.clone();
                    let mut out = Lin::default();
                    out.add(&r, c);
                    out
                }
                (_, Some(c)) => {
                    let mut out = Lin::default();
                    out.add(&a, c);
                    out
                }
                _ => return self.err("non-affine product of two variables"),
            };
        }
        Ok(a)
    }

    fn affine_atom(&mut self) -> Result<Lin, ParseError> {
        match self.bump() {
            Some(Tok::Int(v)) => Ok(Lin::constant(v)),
            Some(Tok::Ident(x)) => Ok(Lin::var(&x)),
            Some(Tok::Sym("-")) => {
                let a = self.affine_atom()?;
                let mut out = Lin::default();
                out.add(&a, -1);
                Ok(out)
            }
            Some(Tok::Sym("(")) => {
                let a = self.affine()?;
                self.eat_sym(")")?;
                Ok(a)
            }
            other => {
                self.pos -= 1;
                self.err(format!("expected affine expression, found {other:?}"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sor() {
        let src = "
          params N;
          array a[N][N];
          for (i = 1; i < N; i++)
            for (j = 1; j < N; j++)
              a[i][j] = a[i-1][j] + a[i][j-1];
        ";
        let p = parse(src).unwrap();
        assert_eq!(p.params, vec!["N"]);
        assert_eq!(p.stmts.len(), 1);
        let s = &p.stmts[0];
        assert_eq!(s.iters, vec!["i", "j"]);
        assert_eq!(s.reads.len(), 2);
        // Domain: i in [1, N-1] at N = 10.
        assert!(s.domain.contains(&[1, 9, 10]));
        assert!(!s.domain.contains(&[0, 5, 10]));
        assert!(!s.domain.contains(&[10, 5, 10]));
    }

    #[test]
    fn parses_imperfect_nest_betas() {
        let src = "
          params T, N;
          array a[N]; array b[N];
          for (t = 0; t < T; t++) {
            for (i = 2; i <= N - 2; i++)
              b[i] = 0.333 * (a[i-1] + a[i] + a[i+1]);
            for (j = 2; j <= N - 2; j++)
              a[j] = b[j];
          }
        ";
        let p = parse(src).unwrap();
        assert_eq!(p.stmts.len(), 2);
        assert_eq!(p.stmts[0].beta, vec![0, 0, 0]);
        assert_eq!(p.stmts[1].beta, vec![0, 1, 0]);
        assert_eq!(p.stmts[0].common_loops(&p.stmts[1]), 1);
    }

    #[test]
    fn iterator_in_body() {
        let src = "
          params N;
          array a[N];
          for (i = 0; i < N; i++)
            a[i] = i * 2;
        ";
        let p = parse(src).unwrap();
        assert_eq!(p.stmts[0].reads.len(), 0);
        assert_eq!(p.stmts[0].body, Expr::Iter(0) * Expr::Lit(2.0));
    }

    #[test]
    fn rejects_nonaffine() {
        let src = "
          params N;
          array a[N];
          for (i = 0; i < N; i++)
            a[i*i] = 1;
        ";
        assert!(parse(src).is_err());
    }

    #[test]
    fn rejects_unknown_array() {
        let src = "for (i = 0; i < 5; i++) z[i] = 1;";
        assert!(parse(src).is_err());
    }

    #[test]
    fn skewed_bounds() {
        let src = "
          params N;
          array a[N][N];
          for (i = 0; i < N; i++)
            for (j = i + 1; j <= 2 * i + 3; j++)
              a[i][j] = 1;
        ";
        let p = parse(src).unwrap();
        let s = &p.stmts[0];
        // j in [i+1, 2i+3]: (i=2, j=3) ok, (i=2, j=8) not.
        assert!(s.domain.contains(&[2, 3, 100]));
        assert!(s.domain.contains(&[2, 7, 100]));
        assert!(!s.domain.contains(&[2, 8, 100]));
        assert!(!s.domain.contains(&[2, 2, 100]));
    }

    #[test]
    fn comments_and_floats() {
        let src = "
          // a scaling kernel
          params N;
          array a[N];
          for (i = 0; i < N; i++)
            a[i] = 0.5 * a[i]; // halve
        ";
        let p = parse(src).unwrap();
        assert_eq!(p.stmts.len(), 1);
    }
}

#[cfg(test)]
mod ext_tests {
    use super::*;

    #[test]
    fn compound_assignment_desugars() {
        let src = "
          params N;
          array C[N][N]; array A[N][N]; array B[N][N];
          for (i = 0; i < N; i++)
            for (j = 0; j < N; j++)
              for (k = 0; k < N; k++)
                C[i][j] += A[i][k] * B[k][j];
        ";
        let p = parse(src).unwrap();
        let s = &p.stmts[0];
        assert_eq!(s.reads.len(), 3);
        // First read is the self-read of C[i][j].
        assert_eq!(s.reads[0].array, s.write.array);
        assert_eq!(s.reads[0].map, s.write.map);
        assert_eq!(s.body, Expr::Read(0) + Expr::Read(1) * Expr::Read(2));
    }

    #[test]
    fn minus_equals() {
        let src = "
          params N;
          array a[N];
          for (i = 0; i < N; i++)
            a[i] -= 2.0;
        ";
        let p = parse(src).unwrap();
        assert_eq!(p.stmts[0].body, Expr::Read(0) - Expr::Lit(2.0));
    }

    #[test]
    fn assume_enters_context() {
        let src = "
          params N, M;
          assume N >= 10;
          assume M <= N;
          array a[N];
          for (i = 0; i < M; i++)
            a[i] = 1;
        ";
        let p = parse(src).unwrap();
        // Context: N >= 10 and M <= N (plus the defaults N,M >= 1).
        assert!(p.context.contains(&[10, 5]));
        assert!(!p.context.contains(&[9, 5])); // violates N >= 10
        assert!(!p.context.contains(&[10, 11])); // violates M <= N
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn parsed_unit_evaluates_extents() {
        let src = "
          params N, M;
          array a[N][M+1];
          array b[2*N];
          for (i = 0; i < N; i++)
            b[i] = a[i][0];
        ";
        let u = parse_unit(src).unwrap();
        let e = u.extents(&[10, 5]);
        assert_eq!(e, vec![vec![10, 6], vec![20]]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nonpositive_extent_panics() {
        let src = "
          params N;
          array a[N];
          for (i = 0; i < N; i++)
            a[i] = 1;
        ";
        let u = parse_unit(src).unwrap();
        let _ = u.extents(&[0]);
    }

    #[test]
    fn nonpositive_extent_is_an_error() {
        let src = "
          params N;
          array a[N];
          for (i = 0; i < N; i++)
            a[i] = 1;
        ";
        let u = parse_unit(src).unwrap();
        let err = u.try_extents(&[0]).unwrap_err();
        assert!(err.contains("`a`"), "unhelpful message: {err}");
        assert!(u.try_extents(&[4]).is_ok());
    }
}
