//! A minimal property-testing harness: case generation from a per-case
//! seed, failure reporting with the exact reproduction seed, and greedy
//! shrinking.
//!
//! Unlike proptest-style integrated shrinking, shrinking here is explicit:
//! a property supplies a `shrink` function producing smaller candidate
//! inputs, and the harness greedily descends to a local minimum that still
//! fails. Reproduction is by seed: every failure message carries the case
//! seed, and `TESTKIT_SEED=<n>` (decimal or 0x-hex) re-runs exactly that
//! case first.

use crate::rng::{splitmix64, Rng};

/// Harness configuration for one [`check`] run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run.
    pub cases: u32,
    /// Run seed; per-case seeds are derived from it.
    pub seed: u64,
    /// Cap on shrinking steps (each step tries every candidate of the
    /// current input once).
    pub max_shrink_steps: u32,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            cases: 64,
            seed: 0x5EED_1DEA,
            max_shrink_steps: 200,
        }
    }
}

impl Config {
    /// A config running `cases` cases from the default seed.
    pub fn with_cases(cases: u32) -> Config {
        Config {
            cases,
            ..Config::default()
        }
    }

    /// Environment overrides: `TESTKIT_SEED` pins the run seed,
    /// `TESTKIT_CASES` the case count.
    pub fn from_env(self) -> Config {
        let mut cfg = self;
        if let Ok(s) = std::env::var("TESTKIT_SEED") {
            if let Some(seed) = parse_u64(&s) {
                cfg.seed = seed;
            }
        }
        if let Ok(s) = std::env::var("TESTKIT_CASES") {
            if let Ok(cases) = s.parse() {
                cfg.cases = cases;
            }
        }
        cfg
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Seed of case number `case` under run seed `run_seed`. Exposed so a
/// failure can be replayed as its own one-case run.
pub fn case_seed(run_seed: u64, case: u32) -> u64 {
    let mut sm = run_seed ^ (case as u64).wrapping_mul(0xA076_1D64_78BD_642F);
    splitmix64(&mut sm)
}

/// Runs `prop` on `cfg.cases` inputs drawn by `gen`; on failure, shrinks
/// greedily with `shrink` and panics with the minimal failing input and
/// its reproduction seed.
///
/// `prop` returns `Ok(())` to pass, `Err(reason)` to fail; panics inside
/// `prop` are caught and treated as failures too (so the harness can
/// shrink assertion-style properties).
///
/// # Examples
/// ```
/// use testkit::prop::{check, shrink_i64, Config};
/// check(
///     &Config::with_cases(32),
///     "abs is non-negative",
///     |rng| rng.range_i64(-100, 100),
///     |&x| shrink_i64(x),
///     |&x| {
///         if x.abs() >= 0 { Ok(()) } else { Err("negative abs".into()) }
///     },
/// );
/// ```
pub fn check<T, G, S, P>(cfg: &Config, name: &str, gen: G, shrink: S, prop: P)
where
    T: Clone + std::fmt::Debug,
    G: Fn(&mut Rng) -> T,
    S: Fn(&T) -> Vec<T>,
    P: Fn(&T) -> Result<(), String>,
{
    for case in 0..cfg.cases {
        let seed = case_seed(cfg.seed, case);
        let input = gen(&mut Rng::new(seed));
        if let Err(first_err) = run_prop(&prop, &input) {
            let (min, min_err, steps) = shrink_loop(cfg, &shrink, &prop, input, first_err);
            panic!(
                "property `{name}` failed at case {case}/{} (case seed {seed:#x}; \
                 rerun this case with TESTKIT_SEED={seed:#x} TESTKIT_CASES=1)\n\
                 minimal failing input (after {steps} shrink steps): {min:?}\n\
                 failure: {min_err}",
                cfg.cases
            );
        }
    }
}

/// Runs the property, mapping panics to `Err` so they shrink too.
fn run_prop<T, P>(prop: &P, input: &T) -> Result<(), String>
where
    P: Fn(&T) -> Result<(), String>,
{
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| prop(input)));
    match caught {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "property panicked (non-string payload)".into());
            Err(format!("panic: {msg}"))
        }
    }
}

/// Greedy descent: repeatedly replace the failing input with its first
/// shrink candidate that still fails, until fixpoint or the step cap.
fn shrink_loop<T, S, P>(
    cfg: &Config,
    shrink: &S,
    prop: &P,
    mut input: T,
    mut err: String,
) -> (T, String, u32)
where
    T: Clone + std::fmt::Debug,
    S: Fn(&T) -> Vec<T>,
    P: Fn(&T) -> Result<(), String>,
{
    let mut steps = 0;
    'outer: while steps < cfg.max_shrink_steps {
        for cand in shrink(&input) {
            if let Err(e) = run_prop(prop, &cand) {
                input = cand;
                err = e;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (input, err, steps)
}

/// Shrink candidates for an integer: 0, sign-drop, then a binary descent
/// `x − x/2, x − x/4, … , x − sign(x)` so greedy shrinking converges to a
/// boundary in O(log |x|) steps instead of one-by-one.
pub fn shrink_i64(x: i64) -> Vec<i64> {
    let mut out = Vec::new();
    if x == 0 {
        return out;
    }
    out.push(0);
    if x < 0 {
        out.push(-x);
    }
    let mut delta = x / 2;
    while delta != 0 {
        out.push(x - delta);
        delta /= 2;
    }
    out.retain(|&y| y != x);
    out.dedup();
    out
}

/// Shrink candidates for a vector: drop one element at a time, then
/// shrink one element at a time with `elem`.
pub fn shrink_vec<T: Clone>(xs: &[T], elem: impl Fn(&T) -> Vec<T>) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    if xs.len() > 1 {
        for i in 0..xs.len() {
            let mut smaller = xs.to_vec();
            smaller.remove(i);
            out.push(smaller);
        }
    }
    for i in 0..xs.len() {
        for e in elem(&xs[i]) {
            let mut v = xs.to_vec();
            v[i] = e;
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        let counter = std::cell::Cell::new(0u32);
        check(
            &Config::with_cases(50),
            "counts",
            |rng| rng.range_i64(0, 10),
            |_| vec![],
            |_| {
                counter.set(counter.get() + 1);
                Ok(())
            },
        );
        count += counter.get();
        assert_eq!(count, 50);
    }

    #[test]
    fn failure_is_shrunk_and_reports_seed() {
        let res = std::panic::catch_unwind(|| {
            check(
                &Config::with_cases(100),
                "no big numbers",
                |rng| rng.range_i64(0, 1000),
                |&x| shrink_i64(x),
                |&x| {
                    if x < 500 {
                        Ok(())
                    } else {
                        Err(format!("{x} too big"))
                    }
                },
            );
        });
        let msg = *res.expect_err("must fail").downcast::<String>().unwrap();
        // Greedy shrink must land exactly on the boundary value.
        assert!(msg.contains("input (after"), "{msg}");
        assert!(msg.contains("500"), "shrunk to boundary: {msg}");
        assert!(msg.contains("TESTKIT_SEED="), "repro seed present: {msg}");
    }

    #[test]
    fn panicking_property_is_caught() {
        let res = std::panic::catch_unwind(|| {
            check(
                &Config::with_cases(10),
                "panics",
                |rng| rng.range_i64(0, 10),
                |&x| shrink_i64(x),
                |&x| {
                    assert!(x > 100, "forced panic");
                    Ok(())
                },
            );
        });
        let msg = *res.expect_err("must fail").downcast::<String>().unwrap();
        assert!(msg.contains("panic"), "{msg}");
    }

    #[test]
    fn case_seeds_differ() {
        let a = case_seed(1, 0);
        let b = case_seed(1, 1);
        let c = case_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn shrink_helpers() {
        assert!(shrink_i64(0).is_empty());
        assert!(shrink_i64(7).contains(&0));
        assert!(shrink_i64(-4).contains(&4));
        let vs = shrink_vec(&[1i64, 2], |&x| shrink_i64(x));
        assert!(vs.contains(&vec![2]));
        assert!(vs.contains(&vec![1]));
        assert!(vs.contains(&vec![0, 2]));
    }
}
