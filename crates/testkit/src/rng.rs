//! A small deterministic PRNG: splitmix64 seeding into xoshiro256**.
//!
//! The whole test-suite runs offline, so randomness must come from inside
//! the workspace. xoshiro256** (Blackman & Vigna) passes BigCrush, is four
//! `u64`s of state, and is trivially reproducible from a single seed —
//! everything the suite needs and nothing it doesn't. The module only uses
//! `core` operations and carries no global state.

/// One step of splitmix64 — used to expand seeds and to derive
/// independent per-case seeds from a run seed.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable xoshiro256** generator.
///
/// # Examples
/// ```
/// use testkit::Rng;
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.range_i64(-3, 3);
/// assert!((-3..=3).contains(&x));
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (splitmix64-expanded, so
    /// nearby seeds still give unrelated streams).
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Derives an independent child generator (for nested generation that
    /// must not perturb the parent's stream length).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// Uniform in `0..n` (`n > 0`), by multiply-shift reduction.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Rng::below(0)");
        // 128-bit multiply-high: unbiased enough for test generation and
        // exactly uniform when n divides 2^64.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in the inclusive range `lo..=hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi as i128 - lo as i128 + 1) as u64;
        lo.wrapping_add(self.below(span) as i64)
    }

    /// Uniform in the inclusive range `lo..=hi` for `usize`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_i64(lo as i64, hi as i64) as usize
    }

    /// A uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// `true` with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Picks a uniform element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "Rng::choose on empty slice");
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::new(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::new(123);
        for _ in 0..10_000 {
            let x = r.range_i64(-5, 5);
            assert!((-5..=5).contains(&x));
            let u = r.range_usize(1, 3);
            assert!((1..=3).contains(&u));
            let f = r.f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_hits_every_value() {
        let mut r = Rng::new(99);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[(r.range_i64(-3, 3) + 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of -3..=3 reachable: {seen:?}");
    }

    #[test]
    fn fork_diverges_from_parent() {
        let mut r = Rng::new(5);
        let mut f = r.fork();
        let a: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let b: Vec<u64> = (0..4).map(|_| f.next_u64()).collect();
        assert_ne!(a, b);
    }
}
