//! Hermetic test substrate for the pluto-rs workspace.
//!
//! The build environment has no registry access, so every test dependency
//! must live in-tree. This crate replaces the external test stack:
//!
//! * [`Rng`] — a splitmix64-seeded xoshiro256** PRNG (replaces `rand`);
//! * [`prop`] — a property-testing harness with per-case seeds, failure
//!   reproduction via `TESTKIT_SEED`, and greedy shrinking (replaces
//!   `proptest`);
//! * [`kernelgen`] — a random affine kernel generator emitting valid
//!   [`pluto_ir::Program`]s as shrinkable plain-data specs;
//! * [`oracle`] — a differential oracle running each kernel through the
//!   full `Optimizer` → codegen pipeline, re-checking the schedule with
//!   the independent `validate_legality` audit, and asserting bit-exact
//!   original-vs-transformed interpreter equivalence (sequential, tiled
//!   and wavefront-parallel variants).
//!
//! Scheduler bugs are exactly the plausible-looking kind — a subtly
//! illegal skew produces code that compiles, runs, and is wrong only on
//! particular dependence patterns. The oracle exists to fuzz hundreds of
//! such patterns per CI run, offline, in seconds.
//!
//! DESIGN.md §7 describes the testing strategy this crate underpins.

pub mod kernelgen;
pub mod oracle;
pub mod prop;
pub mod rng;

pub use kernelgen::{build, gen_spec, shrink_spec, BuiltKernel, GenConfig, KernelSpec};
pub use oracle::{check_kernel, check_spec, OracleConfig};
pub use prop::{check, Config};
pub use rng::Rng;
