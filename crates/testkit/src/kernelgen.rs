//! Random affine kernel generation.
//!
//! Kernels are generated as a plain-data [`KernelSpec`] first, then built
//! into a [`pluto_ir::Program`] — the split is what makes shrinking
//! possible: shrink candidates edit the spec (drop a statement, drop a
//! read, zero an offset, …) and rebuild, so every shrunk kernel is again a
//! well-formed program.
//!
//! The family covers 1–3 statements of loop depth 1–3 over a shared array
//! pool, with affine accesses carrying constant and parametric offsets,
//! and (optionally) non-uniform dependences: skewed subscripts `i ± j`,
//! strides `2i`, and reversals `N − i`. Iteration domains are rectangular
//! boxes `2 <= i_k <= N − 3`, which keeps the array-extent computation
//! exact (interval arithmetic over a box) while still exercising every
//! transformation the pipeline performs — skewing, shifting, fusion,
//! tiling and wavefronting all come from the *access* structure.

use crate::rng::Rng;
use pluto_ir::{Expr, Program, ProgramBuilder, StatementSpec};
use pluto_linalg::Int;

/// Tunables for [`gen_spec`].
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum statement count (1..=3 in the default family).
    pub max_stmts: usize,
    /// Maximum loop depth per statement.
    pub max_depth: usize,
    /// Maximum reads per statement.
    pub max_reads: usize,
    /// Out of 100: chance that a subscript row gets a non-uniform shape
    /// (skew, stride or reversal).
    pub nonuniform_pct: u64,
    /// Out of 100: chance that a subscript row gets a parametric offset.
    pub parametric_pct: u64,
    /// Concrete value of the size parameter `N` used for execution.
    pub exec_n: i64,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            max_stmts: 3,
            max_depth: 3,
            max_reads: 3,
            nonuniform_pct: 25,
            parametric_pct: 10,
            exec_n: 12,
        }
    }
}

/// One affine subscript row, columns `[iters…, N, 1]` in spec form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowSpec {
    /// Primary iterator index (taken modulo the statement depth at build
    /// time, so shrinking depth never invalidates a row).
    pub iter: usize,
    /// Coefficient of the primary iterator (±1 or 2).
    pub coef: i64,
    /// Optional second iterator term `(index, ±1)` — a skewed subscript.
    pub second: Option<(usize, i64)>,
    /// Coefficient of the parameter `N`.
    pub nparam: i64,
    /// Constant offset.
    pub offset: i64,
}

/// One array access in spec form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessSpec {
    /// Index into the spec's array pool.
    pub array: usize,
    /// One row per array dimension.
    pub rows: Vec<RowSpec>,
}

/// One statement in spec form.
#[derive(Debug, Clone)]
pub struct StmtSpec {
    /// Loop depth (1..=3).
    pub depth: usize,
    /// The write access.
    pub write: AccessSpec,
    /// Read accesses (at least one).
    pub reads: Vec<AccessSpec>,
    /// Per-read combining operator: 0 = add, 1 = subtract.
    pub ops: Vec<u8>,
    /// Per-read scale factor index into [`COEFS`].
    pub coefs: Vec<u8>,
}

/// Body scale factors — convex-combination-style so long runs stay in a
/// numerically tame range (the oracle compares bit-exactly; keeping values
/// finite keeps it *discriminating*).
pub const COEFS: [f64; 4] = [0.5, 0.25, 0.375, 0.125];

/// A complete generated kernel in plain-data form.
#[derive(Debug, Clone)]
pub struct KernelSpec {
    /// Per-array dimensionality of the array pool.
    pub arrays: Vec<usize>,
    /// Statements in textual order.
    pub stmts: Vec<StmtSpec>,
    /// When set (and all depths agree), statements share their outermost
    /// loop — the imperfect-nest flavour.
    pub shared_outer: bool,
    /// Concrete `N` for execution.
    pub exec_n: i64,
}

/// A built kernel: the program plus everything needed to execute it.
#[derive(Debug, Clone)]
pub struct BuiltKernel {
    /// The polyhedral program.
    pub program: Program,
    /// Array extents sized for `params` (subscripts shifted in-bounds).
    pub extents: Vec<Vec<usize>>,
    /// Execution parameter values (`[N]`).
    pub params: Vec<i64>,
}

/// Draws a random kernel spec.
pub fn gen_spec(rng: &mut Rng, cfg: &GenConfig) -> KernelSpec {
    let nstmts = rng.range_usize(1, cfg.max_stmts.max(1));
    let narrays = rng.range_usize(1, (nstmts + 1).min(2));
    let arrays: Vec<usize> = (0..narrays)
        .map(|_| rng.range_usize(1, cfg.max_depth.min(2)))
        .collect();
    let uniform_depth = rng.range_usize(1, cfg.max_depth.max(1));
    let shared_outer = rng.bool();
    let stmts: Vec<StmtSpec> = (0..nstmts)
        .map(|_| {
            let depth = if shared_outer {
                uniform_depth
            } else {
                rng.range_usize(1, cfg.max_depth.max(1))
            };
            let write = gen_access(rng, cfg, &arrays, depth);
            let nreads = rng.range_usize(1, cfg.max_reads.max(1));
            let reads: Vec<AccessSpec> = (0..nreads)
                .map(|_| gen_access(rng, cfg, &arrays, depth))
                .collect();
            let ops = (0..nreads).map(|_| rng.below(2) as u8).collect();
            let coefs = (0..nreads)
                .map(|_| rng.below(COEFS.len() as u64) as u8)
                .collect();
            StmtSpec {
                depth,
                write,
                reads,
                ops,
                coefs,
            }
        })
        .collect();
    KernelSpec {
        arrays,
        stmts,
        shared_outer,
        exec_n: cfg.exec_n,
    }
}

fn gen_access(rng: &mut Rng, cfg: &GenConfig, arrays: &[usize], depth: usize) -> AccessSpec {
    let array = rng.range_usize(0, arrays.len() - 1);
    let rows = (0..arrays[array])
        .map(|_| {
            let iter = rng.range_usize(0, depth - 1);
            let mut row = RowSpec {
                iter,
                coef: 1,
                second: None,
                nparam: 0,
                offset: rng.range_i64(-2, 2),
            };
            if rng.chance(cfg.nonuniform_pct, 100) {
                match rng.below(3) {
                    0 if depth >= 2 => {
                        // Skew: i ± j.
                        let mut k2 = rng.range_usize(0, depth - 1);
                        if k2 == iter {
                            k2 = (k2 + 1) % depth;
                        }
                        row.second = Some((k2, if rng.bool() { 1 } else { -1 }));
                    }
                    1 => row.coef = 2,
                    _ => {
                        // Reversal: N − i.
                        row.coef = -1;
                        row.nparam = 1;
                    }
                }
            }
            if rng.chance(cfg.parametric_pct, 100) {
                row.nparam += 1;
            }
            row
        })
        .collect();
    AccessSpec { array, rows }
}

/// Domain box per iterator: `LO <= i_k <= N - 1 - HI_PAD`.
const LO: i64 = 2;
const HI_PAD: i64 = 3;

/// Builds a spec into an executable program plus extents for `exec_n`.
///
/// Out-of-range spec indices (possible only through hand-edited or shrunk
/// specs) are clamped, so every spec builds.
pub fn build(spec: &KernelSpec) -> BuiltKernel {
    let n0 = spec.exec_n.max(8);
    let narr = spec.arrays.len();
    // Per-array, per-dim (min, max) of every subscript over its domain box
    // at N = n0; used to shift subscripts in-bounds and size extents.
    let mut ranges: Vec<Vec<(i64, i64)>> = spec
        .arrays
        .iter()
        .map(|&nd| vec![(0i64, 0i64); nd])
        .collect();
    let mut first: Vec<Vec<bool>> = spec.arrays.iter().map(|&nd| vec![true; nd]).collect();
    for s in &spec.stmts {
        for acc in std::iter::once(&s.write).chain(&s.reads) {
            let a = acc.array.min(narr - 1);
            for (j, row) in acc.rows.iter().enumerate().take(spec.arrays[a]) {
                let (mn, mx) = row_interval(row, s.depth, n0);
                let slot = &mut ranges[a][j];
                if first[a][j] {
                    *slot = (mn, mx);
                    first[a][j] = false;
                } else {
                    slot.0 = slot.0.min(mn);
                    slot.1 = slot.1.max(mx);
                }
            }
        }
    }
    let shifts: Vec<Vec<i64>> = ranges
        .iter()
        .map(|dims| dims.iter().map(|&(mn, _)| (-mn).max(0)).collect())
        .collect();
    let extents: Vec<Vec<usize>> = ranges
        .iter()
        .zip(&shifts)
        .map(|(dims, sh)| {
            dims.iter()
                .zip(sh)
                .map(|(&(_, mx), &s)| (mx + s + 1).max(1) as usize)
                .collect()
        })
        .collect();

    let mut b = ProgramBuilder::new("fuzzkernel", &["N"]);
    b.add_context_ineq(vec![1, -8]); // N >= 8
    for (a, &nd) in spec.arrays.iter().enumerate() {
        b.add_array(&format!("A{a}"), nd);
    }
    let share = spec.shared_outer && spec.stmts.iter().all(|s| s.depth == spec.stmts[0].depth);
    for (si, s) in spec.stmts.iter().enumerate() {
        let d = s.depth;
        let cols = d + 2; // [iters…, N, 1]
        let mut domain_ineqs = Vec::with_capacity(2 * d);
        for k in 0..d {
            let mut lo = vec![0 as Int; cols];
            lo[k] = 1;
            lo[cols - 1] = -(LO as Int);
            domain_ineqs.push(lo); // i_k >= LO
            let mut hi = vec![0 as Int; cols];
            hi[k] = -1;
            hi[d] = 1;
            hi[cols - 1] = -(HI_PAD as Int);
            domain_ineqs.push(hi); // i_k <= N - HI_PAD
        }
        let mut beta = vec![0 as Int; d + 1];
        if share {
            beta[1] = si as Int;
        } else {
            beta[0] = si as Int;
        }
        let to_ir = |acc: &AccessSpec| -> (String, Vec<Vec<Int>>) {
            let a = acc.array.min(narr - 1);
            let rows = acc
                .rows
                .iter()
                .enumerate()
                .take(spec.arrays[a])
                .map(|(j, r)| {
                    let mut row = vec![0 as Int; cols];
                    let k = r.iter % d;
                    row[k] += r.coef as Int;
                    if let Some((k2, c2)) = r.second {
                        row[k2 % d] += c2 as Int;
                    }
                    row[d] += r.nparam as Int;
                    row[cols - 1] += (r.offset + shifts[a][j]) as Int;
                    row
                })
                .collect();
            (format!("A{a}"), rows)
        };
        let nreads = s.reads.len();
        let coef_at =
            |r: usize| COEFS[s.coefs.get(r).map(|&c| c as usize).unwrap_or(0) % COEFS.len()];
        let mut body = Expr::Lit(coef_at(0)) * Expr::Read(0);
        for r in 1..nreads {
            let c = coef_at(r);
            let term = Expr::Lit(c) * Expr::Read(r);
            body = if s.ops.get(r).copied().unwrap_or(0) == 0 {
                body + term
            } else {
                body - term
            };
        }
        b.add_statement(StatementSpec {
            name: format!("S{si}"),
            iters: (0..d).map(|k| format!("i{k}")).collect(),
            domain_ineqs,
            beta,
            write: to_ir(&s.write),
            reads: s.reads.iter().map(&to_ir).collect(),
            body,
        });
    }
    BuiltKernel {
        program: b.build(),
        extents,
        params: vec![n0],
    }
}

/// Exact interval of a subscript row over the domain box at `N = n0`.
fn row_interval(row: &RowSpec, depth: usize, n0: i64) -> (i64, i64) {
    let lo = LO;
    let hi = n0 - HI_PAD;
    let mut mn = row.nparam * n0 + row.offset;
    let mut mx = mn;
    let mut add = |c: i64| {
        let (a, b) = (c * lo, c * hi);
        mn += a.min(b);
        mx += a.max(b);
    };
    add(row.coef);
    if let Some((k2, c2)) = row.second {
        // The second iterator is distinct after the mod-depth clamp only
        // when depth >= 2; either way its range is the same box.
        let _ = k2;
        add(c2);
    }
    let _ = depth;
    (mn, mx)
}

/// Shrink candidates for a kernel spec, simplest first: fewer statements,
/// fewer reads, then structurally simpler access rows.
pub fn shrink_spec(spec: &KernelSpec) -> Vec<KernelSpec> {
    let mut out = Vec::new();
    // Drop a whole statement.
    if spec.stmts.len() > 1 {
        for i in 0..spec.stmts.len() {
            let mut s = spec.clone();
            s.stmts.remove(i);
            out.push(s);
        }
    }
    // Drop a read (keeping at least one) — ops/coefs shrink in lockstep.
    for (si, st) in spec.stmts.iter().enumerate() {
        if st.reads.len() > 1 {
            for r in 0..st.reads.len() {
                let mut s = spec.clone();
                s.stmts[si].reads.remove(r);
                if r < s.stmts[si].ops.len() {
                    s.stmts[si].ops.remove(r);
                }
                if r < s.stmts[si].coefs.len() {
                    s.stmts[si].coefs.remove(r);
                }
                out.push(s);
            }
        }
    }
    // Reduce a statement's depth.
    for (si, st) in spec.stmts.iter().enumerate() {
        if st.depth > 1 {
            let mut s = spec.clone();
            s.stmts[si].depth -= 1;
            s.shared_outer = false;
            out.push(s);
        }
    }
    // Simplify rows: drop skew, normalize coefficient, clear parametric
    // part, then move offsets toward zero.
    for (si, st) in spec.stmts.iter().enumerate() {
        for (ai, acc) in std::iter::once(&st.write).chain(&st.reads).enumerate() {
            for (ri, row) in acc.rows.iter().enumerate() {
                let mut simpler = Vec::new();
                if row.second.is_some() {
                    let mut r = row.clone();
                    r.second = None;
                    simpler.push(r);
                }
                if row.coef != 1 {
                    let mut r = row.clone();
                    r.coef = 1;
                    r.nparam = 0;
                    simpler.push(r);
                }
                if row.nparam != 0 {
                    let mut r = row.clone();
                    r.nparam = 0;
                    if r.coef < 0 {
                        r.coef = 1;
                    }
                    simpler.push(r);
                }
                if row.offset != 0 {
                    let mut r = row.clone();
                    r.offset -= r.offset.signum();
                    simpler.push(r);
                }
                if row.iter != 0 {
                    let mut r = row.clone();
                    r.iter = 0;
                    simpler.push(r);
                }
                for r in simpler {
                    let mut s = spec.clone();
                    let target = if ai == 0 {
                        &mut s.stmts[si].write
                    } else {
                        &mut s.stmts[si].reads[ai - 1]
                    };
                    target.rows[ri] = r;
                    out.push(s);
                }
            }
        }
    }
    // Un-share the outer loop.
    if spec.shared_outer {
        let mut s = spec.clone();
        s.shared_outer = false;
        out.push(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_specs_build_consistently() {
        let cfg = GenConfig::default();
        let mut rng = Rng::new(0xFACE);
        for _ in 0..50 {
            let spec = gen_spec(&mut rng, &cfg);
            let k = build(&spec);
            assert_eq!(k.program.arrays.len(), k.extents.len());
            assert_eq!(k.program.stmts.len(), spec.stmts.len());
            for (decl, ext) in k.program.arrays.iter().zip(&k.extents) {
                assert_eq!(decl.ndim, ext.len());
                assert!(ext.iter().all(|&e| e >= 1));
            }
            // In-bounds execution is checked end-to-end in oracle::tests.
        }
    }

    #[test]
    fn shrink_candidates_always_build() {
        let cfg = GenConfig::default();
        let mut rng = Rng::new(0xBEEF);
        for _ in 0..20 {
            let spec = gen_spec(&mut rng, &cfg);
            for cand in shrink_spec(&spec) {
                let k = build(&cand);
                assert!(!k.program.stmts.is_empty());
            }
        }
    }

    #[test]
    fn shrinking_reaches_a_trivial_kernel() {
        let cfg = GenConfig::default();
        let mut rng = Rng::new(0xC0FFEE);
        let mut spec = gen_spec(&mut rng, &cfg);
        // Greedily take the first candidate until fixpoint: must terminate
        // and end at a small kernel.
        let mut steps = 0;
        while let Some(next) = shrink_spec(&spec).into_iter().next() {
            spec = next;
            steps += 1;
            assert!(steps < 10_000, "shrinking must terminate");
        }
        assert_eq!(spec.stmts.len(), 1);
        assert_eq!(spec.stmts[0].reads.len(), 1);
        assert_eq!(spec.stmts[0].depth, 1);
    }
}
