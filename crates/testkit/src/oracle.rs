//! The differential oracle: run a kernel through the full optimize →
//! codegen pipeline and prove, per kernel, that
//!
//! 1. every transformation the pipeline emits passes the independent
//!    [`validate_legality`] audit (exact ILP emptiness checks, a code path
//!    disjoint from the Farkas-based search), and
//! 2. executing the transformed AST — sequentially, tiled-only, and with
//!    the wavefront-parallel thread team — produces *bit-exact* array
//!    state compared to the original program order.
//!
//! Bit-exactness is the right bar because legality preserves each
//! statement instance's inputs and the per-instance flop order; any
//! divergence at all is a transformation or codegen bug.
//!
//! The fully-optimized variant additionally runs through all four
//! execution engines — tree-walk sequential (the reference), compiled
//! bytecode sequential, legacy scoped-thread parallel, and the
//! persistent-pool compiled parallel engine behind [`run_parallel`] —
//! and every pairing must agree bit-exactly. That four-way battery is
//! what proves the pool + kernel-compiler rework (DESIGN.md §9)
//! equivalent to the reference interpreter on every fuzz kernel.
//!
//! On top of the dynamic checks, the fully-optimized variant is pushed
//! through the `pluto_analyze` static verifier (race detector, bounds
//! prover, lints) and the interpreter's parallel-marker sanitizer — a
//! static-vs-dynamic differential: the static prover and the runtime
//! recorder must *both* find every parallel loop race-free.
//!
//! The search and the fully-optimized apply also run under decision
//! recording: the replayed satisfaction ledger
//! ([`DecisionLog::ledger`](pluto_obs::decision::DecisionLog::ledger))
//! must equal the search's own `satisfied_at` map exactly, and is then
//! handed to the analyzer's PL007 cross-check — so every fuzz kernel
//! also differentially tests the telemetry replay.
//!
//! Finally, every kernel is recompiled with all compile-time shortcuts
//! disabled — the canonicalized emptiness cache, simplex warm-starting,
//! dependence-candidate pruning, and parallel pair analysis
//! (DESIGN.md §11) — and the slow path must reproduce the dependence
//! set, transformation, satisfaction ledger, generated AST, and compiled
//! bytecode bit-for-bit. A divergence here means a shortcut changed an
//! answer instead of just skipping work.

use crate::kernelgen::{build, BuiltKernel, KernelSpec};
use pluto::baselines::validate_legality;
use pluto::{Optimizer, Transformation};
use pluto_analyze::{AnalysisInput, Severity};
use pluto_codegen::{generate, original_schedule};
use pluto_ir::{analyze_dependences, analyze_dependences_with, DepAnalysisOptions};
use pluto_linalg::Int;
use pluto_machine::{
    run_compiled, run_parallel, run_parallel_scoped, run_sanitized, run_sequential, Arrays,
    ParallelConfig,
};

/// Which optimizer configurations the oracle exercises.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Tile size for the tiled variants (small, so tile boundaries are
    /// actually crossed at fuzzing sizes).
    pub tile_size: i128,
    /// Thread count for the parallel run.
    pub threads: usize,
}

impl Default for OracleConfig {
    fn default() -> OracleConfig {
        OracleConfig {
            tile_size: 4,
            threads: 3,
        }
    }
}

/// Deterministic initial value for array cell `(array, offset)` — same
/// hash family as `pluto_frontend::kernels::seed_value`, local so the
/// oracle has no frontend dependency.
pub fn seed_value(array: usize, offset: usize) -> f64 {
    let mut z = (array as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(offset as u64)
        .wrapping_add(0xDEAD_BEEF);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    0.5 + (z % 1_000_000) as f64 / 1_000_000.0
}

fn fresh_arrays(k: &BuiltKernel) -> Arrays {
    let mut a = Arrays::new(k.extents.clone());
    a.seed_with(seed_value);
    a
}

/// Runs one kernel through the full differential check.
///
/// Returns `Err` with a human-readable reason naming the failing variant;
/// the fuzz harness turns that into a shrunk minimal kernel plus seed.
pub fn check_kernel(k: &BuiltKernel, cfg: &OracleConfig) -> Result<(), String> {
    let prog = &k.program;
    let deps = analyze_dependences(prog, true);
    // One hyperplane search feeds every variant (`Optimizer::apply`); the
    // search dominates oracle cost and is identical across them anyway.
    // The search and the fully-optimized apply run under this check's
    // own decision-recording session (per-compile scoping: the fuzz
    // harness runs kernels from several test threads without
    // interleaving logs), so the replayed satisfaction ledger can be
    // differenced against the search's own bookkeeping and fed to the
    // analyzer's PL007 check.
    let obs = pluto_obs::ObsSession::builder().decisions().build();
    let obs_guard = obs.install();
    let searched = match pluto::find_transformation(prog, &deps, &pluto::PlutoOptions::default()) {
        Ok(s) => s,
        Err(e) => {
            return Err(format!("search failed: {e:?}"));
        }
    };

    // Variant 3 (built first so its tiling/wavefront/reorder events land
    // in the same log): the full pipeline — tiling + wavefront
    // parallelism + vectorization reorder.
    let full = Optimizer::new()
        .tile_size(cfg.tile_size)
        .wavefront_degrees(2)
        .apply(prog, deps.clone(), searched.clone());
    drop(obs_guard);
    let decision_log = obs.take_decisions();

    // Replay differential: the event stream folded to final row
    // coordinates must reproduce the search's satisfaction map exactly.
    let ledger = decision_log.ledger(deps.len());
    if ledger != full.result.satisfied_at {
        return Err(format!(
            "full: decision-log ledger diverges from the search's satisfaction map\n\
             ledger:       {ledger:?}\nsatisfied_at: {:?}\n{}",
            full.result.satisfied_at,
            full.result.transform.display(prog)
        ));
    }

    // Reference: the original program order, interpreted sequentially.
    let ref_ast = generate(prog, &original_schedule(prog));
    let mut reference = fresh_arrays(k);
    run_sequential(prog, &ref_ast, &k.params, &mut reference);

    let audit = |label: &str, t: &Transformation| -> Result<(), String> {
        let violations = validate_legality(prog, &deps, t);
        if violations.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "{label}: validate_legality audit failed: {violations:?}\n{}",
                t.display(prog)
            ))
        }
    };
    let run_seq = |label: &str, t: &Transformation| -> Result<(), String> {
        let ast = generate(prog, t);
        let mut got = fresh_arrays(k);
        run_sequential(prog, &ast, &k.params, &mut got);
        if got.bitwise_eq(&reference) {
            Ok(())
        } else {
            Err(format!(
                "{label}: sequential execution diverges from original\n{}",
                t.display(prog)
            ))
        }
    };

    // Variant 1: untiled schedule straight out of the search. This is the
    // one variant the exact audit applies to directly — tiled transforms
    // live in a supernode-augmented space, and their legality follows from
    // the audited band's permutability (the paper's tiling/wavefront
    // theorems), which execution equivalence below then re-checks.
    let untiled = Optimizer::new()
        .tiling(false)
        .parallel(false)
        .vectorization(false)
        .apply(prog, deps.clone(), searched.clone());
    audit("untiled", &untiled.result.transform)?;
    run_seq("untiled", &untiled.result.transform)?;

    // Variant 2: tiled, still sequential.
    let tiled = Optimizer::new()
        .tile_size(cfg.tile_size)
        .parallel(false)
        .vectorization(false)
        .apply(prog, deps.clone(), searched);
    run_seq("tiled", &tiled.result.transform)?;

    // Variant 3 (`full`, built above under recording) executed
    // sequentially and by the thread team (collapse 2 exercises two
    // degrees of pipelined parallelism).
    run_seq("full", &full.result.transform)?;
    let ast = generate(prog, &full.result.transform);
    let pcfg = ParallelConfig {
        threads: cfg.threads,
        collapse: 2,
    };
    // The four-way engine battery on the fully-optimized AST: compiled
    // sequential, scoped tree-walk parallel, and pooled compiled
    // parallel must each match the tree-walk sequential reference
    // bit-exactly (`run_seq("full")` above covered the reference
    // engine itself).
    let mut compiled = fresh_arrays(k);
    run_compiled(prog, &ast, &k.params, &mut compiled);
    if !compiled.bitwise_eq(&reference) {
        return Err(format!(
            "full: compiled sequential execution diverges from original\n{}",
            full.result.transform.display(prog)
        ));
    }
    let mut scoped = fresh_arrays(k);
    run_parallel_scoped(prog, &ast, &k.params, &mut scoped, pcfg);
    if !scoped.bitwise_eq(&reference) {
        return Err(format!(
            "full: scoped parallel execution diverges from original\n{}",
            full.result.transform.display(prog)
        ));
    }
    let mut par = fresh_arrays(k);
    run_parallel(prog, &ast, &k.params, &mut par, pcfg);
    if !par.bitwise_eq(&reference) {
        return Err(format!(
            "full: pooled parallel execution diverges from original\n{}",
            full.result.transform.display(prog)
        ));
    }

    // Static gate: the independent analyzer must find the fully-optimized
    // program clean — no carried dependence under any parallel loop, no
    // out-of-bounds access against the concrete extents at the executed
    // parameter values.
    let extent_rows: Vec<Vec<Vec<Int>>> = k
        .extents
        .iter()
        .map(|dims| {
            dims.iter()
                .map(|&e| {
                    let mut row = vec![0 as Int; prog.num_params() + 1];
                    row[prog.num_params()] = e as Int;
                    row
                })
                .collect()
        })
        .collect();
    let param_values: Vec<Int> = k.params.iter().map(|&p| p as Int).collect();
    let diags = pluto_analyze::analyze(&AnalysisInput {
        program: prog,
        deps: &deps,
        transform: &full.result.transform,
        ast: &ast,
        extents: Some(&extent_rows),
        param_values: Some(&param_values),
        ledger: Some(&ledger),
    });
    if diags.iter().any(|d| d.severity == Severity::Error) {
        return Err(format!(
            "full: static analyzer found errors:\n{}{}",
            pluto_analyze::render_text(&diags),
            full.result.transform.display(prog)
        ));
    }

    // Bytecode gate: the compiled kernel the engines above actually ran
    // must translation-validate against its polyhedral source — access
    // folds, flat bounds, dispatch partition, and body tapes
    // (PL008–PL012; the PL013 stride lint is informational).
    let ck = pluto_machine::compile_kernel_with_extents(prog, &ast, &k.params, &k.extents);
    let bdiags = pluto_analyze::bytecode::check(&pluto_analyze::bytecode::BytecodeInput {
        program: prog,
        transform: &full.result.transform,
        ast: &ast,
        kernel: &ck,
    });
    if bdiags.iter().any(|d| d.severity == Severity::Error) {
        return Err(format!(
            "full: bytecode translation validation failed:\n{}{}",
            pluto_analyze::render_text(&bdiags),
            full.result.transform.display(prog)
        ));
    }

    // Shortcut differential (DESIGN.md §11): recompile with every
    // compile-time shortcut disabled — emptiness cache off,
    // warm-starting off, candidate pruning off, serial pair analysis —
    // and require the slow path to reproduce the dependence set, the
    // transformation, the satisfaction ledger, the generated AST, and
    // the compiled bytecode bit-for-bit. A throwaway session scopes the
    // cache toggle to this block: concurrently running kernels keep
    // their own caches untouched.
    {
        let cold_obs = pluto_obs::ObsSession::builder().build();
        let _cold_guard = cold_obs.install();
        pluto_poly::cache::set_enabled(false);
        let cold = (|| -> Result<(), String> {
            let deps_cold = analyze_dependences_with(
                prog,
                &DepAnalysisOptions {
                    include_input: true,
                    prune: false,
                    threads: 1,
                },
            );
            let same_edges = deps_cold.len() == deps.len()
                && deps_cold.iter().zip(&deps).all(|(a, b)| {
                    a.src == b.src
                        && a.dst == b.dst
                        && a.kind == b.kind
                        && a.level == b.level
                        && a.poly == b.poly
                });
            if !same_edges {
                return Err(format!(
                    "shortcut differential: dependence sets diverge \
                     (pruned: {} edges, unpruned: {} edges)",
                    deps.len(),
                    deps_cold.len()
                ));
            }
            let searched_cold = pluto::find_transformation(
                prog,
                &deps_cold,
                &pluto::PlutoOptions {
                    warm_start: false,
                    ..pluto::PlutoOptions::default()
                },
            )
            .map_err(|e| format!("shortcut differential: uncached search failed: {e:?}"))?;
            let full_cold = Optimizer::new()
                .tile_size(cfg.tile_size)
                .wavefront_degrees(2)
                .apply(prog, deps_cold, searched_cold);
            if full_cold.result.satisfied_at != full.result.satisfied_at {
                return Err(format!(
                    "shortcut differential: satisfaction ledgers diverge\n\
                     cached:   {:?}\nuncached: {:?}",
                    full.result.satisfied_at, full_cold.result.satisfied_at
                ));
            }
            let t_cold = format!("{:?}", full_cold.result.transform);
            let t_warm = format!("{:?}", full.result.transform);
            if t_cold != t_warm {
                return Err(format!(
                    "shortcut differential: transformations diverge\n\
                     cached:\n{}\nuncached:\n{}",
                    full.result.transform.display(prog),
                    full_cold.result.transform.display(prog)
                ));
            }
            let ast_cold = generate(prog, &full_cold.result.transform);
            if ast_cold != ast {
                return Err("shortcut differential: generated ASTs diverge".to_string());
            }
            let ck_cold =
                pluto_machine::compile_kernel_with_extents(prog, &ast_cold, &k.params, &k.extents);
            if format!("{ck_cold:?}") != format!("{ck:?}") {
                return Err("shortcut differential: compiled bytecode diverges".to_string());
            }
            Ok(())
        })();
        cold?;
    }

    // Dynamic gate: the sanitizer re-executes the same AST recording
    // per-iteration read/write sets inside every parallel loop; it must
    // agree with the static verdict (and still produce bit-exact state).
    let mut san = fresh_arrays(k);
    match run_sanitized(prog, &ast, &k.params, &mut san) {
        Ok(_) => {
            if !san.bitwise_eq(&reference) {
                return Err(format!(
                    "full: sanitized execution diverges from original\n{}",
                    full.result.transform.display(prog)
                ));
            }
        }
        Err(violations) => {
            return Err(format!(
                "full: interpreter sanitizer found races:\n  {}\n{}",
                violations.join("\n  "),
                full.result.transform.display(prog)
            ));
        }
    }
    Ok(())
}

/// Builds and checks a spec — the property the fuzz harness runs.
pub fn check_spec(spec: &KernelSpec, cfg: &OracleConfig) -> Result<(), String> {
    check_kernel(&build(spec), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernelgen::{gen_spec, GenConfig};
    use crate::rng::Rng;

    #[test]
    fn generated_kernels_execute_in_bounds() {
        // The interpreter asserts on out-of-bounds subscripts, so simply
        // executing the original schedule validates the extent shifting.
        let cfg = GenConfig::default();
        let mut rng = Rng::new(0x0B5E55);
        for _ in 0..30 {
            let k = build(&gen_spec(&mut rng, &cfg));
            let ast = generate(&k.program, &original_schedule(&k.program));
            let mut arrays = fresh_arrays(&k);
            let stats = run_sequential(&k.program, &ast, &k.params, &mut arrays);
            assert!(stats.instances > 0, "non-degenerate domain");
        }
    }

    #[test]
    fn oracle_passes_a_jacobi_like_spec() {
        use crate::kernelgen::{AccessSpec, RowSpec, StmtSpec};
        // b[i] = 0.5*a[i-1] + 0.25*a[i+1]; a[j] = 0.5*b[j] — the classic
        // stencil shape, hand-written as a spec.
        let row = |offset: i64| RowSpec {
            iter: 0,
            coef: 1,
            second: None,
            nparam: 0,
            offset,
        };
        let spec = KernelSpec {
            arrays: vec![1, 1],
            stmts: vec![
                StmtSpec {
                    depth: 1,
                    write: AccessSpec {
                        array: 1,
                        rows: vec![row(0)],
                    },
                    reads: vec![
                        AccessSpec {
                            array: 0,
                            rows: vec![row(-1)],
                        },
                        AccessSpec {
                            array: 0,
                            rows: vec![row(1)],
                        },
                    ],
                    ops: vec![0, 0],
                    coefs: vec![0, 1],
                },
                StmtSpec {
                    depth: 1,
                    write: AccessSpec {
                        array: 0,
                        rows: vec![row(0)],
                    },
                    reads: vec![AccessSpec {
                        array: 1,
                        rows: vec![row(0)],
                    }],
                    ops: vec![0],
                    coefs: vec![0],
                },
            ],
            shared_outer: false,
            exec_n: 12,
        };
        check_spec(&spec, &OracleConfig::default()).expect("oracle passes");
    }
}
