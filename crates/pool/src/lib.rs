//! The persistent worker pool shared by the execution engine and the
//! parallel dependence analyzer.
//!
//! The paper's OpenMP runtime keeps one thread team alive for the whole
//! program; the old scoped-thread engine instead paid a spawn + join per
//! parallel-loop entry — 755 spawn rounds on the jacobi-1d bench. This
//! crate provides one process-wide [`ThreadPool`] (re-exported as
//! `pluto_machine::pool` for the executor, used directly by `pluto_ir`'s
//! parallel dependence tests — `ir` sits below `machine` in the crate
//! graph, so the pool lives in this leaf crate both can depend on):
//!
//! * workers park on a condvar and are released by bumping a generation
//!   counter (a sense-reversing start barrier: the generation word *is*
//!   the sense, so a worker can never consume the same dispatch twice
//!   or miss one);
//! * completion is an atomic countdown (`active`) with a second condvar
//!   the dispatcher parks on — the join barrier;
//! * the dispatching thread participates in the team as member 0
//!   (timeline tid 0), so a `threads = n` configuration enlists only
//!   `n − 1` pool workers and small dispatches can run entirely inline
//!   without waking anyone;
//! * worker panics are caught, the barrier still completes (no deadlock,
//!   no dangling borrows of the dispatcher's stack), and the payload is
//!   re-raised on the dispatching thread; the worker itself survives for
//!   the next dispatch;
//! * workers inherit the dispatcher's [`ObsSession`](pluto_obs::ObsSession):
//!   [`ThreadPool::run`] captures the session installed on the calling
//!   thread and each enlisted worker re-installs it around its share of
//!   the job, so counters, chunk timings, and trace events recorded
//!   inside a parallel region land in the compile that dispatched it —
//!   even with concurrent compiles sharing the pool.
//!
//! Spawns are counted process-wide ([`spawn_count`]) so the bench harness
//! can assert the acceptance criterion "zero thread spawns after pool
//! init": the count must equal the pool width, once, per process.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;

/// Threads ever spawned by any pool in this process.
static SPAWNED: AtomicUsize = AtomicUsize::new(0);

/// Total worker threads spawned by all pools in this process. With the
/// global pool warmed once, repeated dispatches must not move this.
pub fn spawn_count() -> usize {
    SPAWNED.load(Ordering::Relaxed)
}

/// The dispatch a worker runs: a borrowed `Fn(slot)` made `'static` for
/// the duration of one generation. Safety: [`ThreadPool::run`] does not
/// return (normally or by unwind) until every enlisted worker has
/// finished with the pointer, so the borrow never outlives the callee's
/// frame.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));
unsafe impl Send for JobPtr {}

struct State {
    /// Dispatch generation; bumping it is the start-barrier release.
    generation: u64,
    /// The current generation's job (valid while `active > 0`).
    job: Option<JobPtr>,
    /// The dispatcher's observability session for the current
    /// generation; enlisted workers install a clone around the job.
    session: Option<pluto_obs::ObsSession>,
    /// Worker slots enlisted in the current generation (slots
    /// `1..=team` run; higher slots skip it).
    team: usize,
    /// Enlisted workers still running the current generation.
    active: usize,
    /// First worker panic of the current generation, if any.
    panic_payload: Option<Box<dyn std::any::Any + Send>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here between generations.
    start: Condvar,
    /// The dispatcher parks here until `active` counts down to 0.
    done: Condvar,
}

/// Recover from a poisoned lock: pool state transitions are completed
/// before any user code runs (jobs execute outside the lock and under
/// `catch_unwind`), so the data is consistent even after a panic.
fn lock(m: &Mutex<State>) -> MutexGuard<'_, State> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn worker_loop(shared: Arc<Shared>, slot: usize) {
    let mut seen = 0u64;
    loop {
        let (job, session) = {
            let mut st = lock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen {
                    seen = st.generation;
                    if slot <= st.team {
                        break (
                            st.job.expect("job set for live generation"),
                            st.session.clone(),
                        );
                    }
                    // Not enlisted this generation: skip it and re-park.
                }
                st = shared.start.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        let r = catch_unwind(AssertUnwindSafe(|| {
            // Attribute this worker's recording to the dispatching
            // compile for the duration of the job; the guard restores
            // the (empty) slot even if the job panics.
            let _obs = session.as_ref().map(|s| s.install());
            unsafe { (*job.0)(slot) }
        }));
        let mut st = lock(&shared.state);
        if let Err(p) = r {
            st.panic_payload.get_or_insert(p);
        }
        st.active -= 1;
        if st.active == 0 {
            shared.done.notify_one();
        }
    }
}

/// A persistent team of condvar-parked worker threads.
///
/// Dispatches are serialized per pool (one generation in flight); the
/// dispatching thread always participates as member 0.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Current worker count (monotonic; see [`ensure_width`]).
    ///
    /// [`ensure_width`]: ThreadPool::ensure_width
    width: AtomicUsize,
    /// OS threads this pool has ever spawned (its private share of
    /// [`spawn_count`]); lets tests pin "reuse must not spawn" on one
    /// pool without racing other pools in the process.
    spawned: AtomicUsize,
    /// Serializes dispatches from concurrent callers (the fuzz harness
    /// runs kernels from several test threads against the global pool).
    dispatch: Mutex<()>,
}

impl ThreadPool {
    /// Creates a pool with `width` parked workers (0 is a valid
    /// degenerate pool: every dispatch runs inline on the caller).
    pub fn new(width: usize) -> ThreadPool {
        let pool = ThreadPool {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    generation: 0,
                    job: None,
                    session: None,
                    team: 0,
                    active: 0,
                    panic_payload: None,
                    shutdown: false,
                }),
                start: Condvar::new(),
                done: Condvar::new(),
            }),
            handles: Mutex::new(Vec::new()),
            width: AtomicUsize::new(0),
            spawned: AtomicUsize::new(0),
            dispatch: Mutex::new(()),
        };
        pool.ensure_width(width);
        pool
    }

    /// Parked workers available for enlistment.
    pub fn width(&self) -> usize {
        self.width.load(Ordering::Acquire)
    }

    /// OS threads this pool has spawned over its lifetime. Monotonic:
    /// once the pool is warm, repeated dispatches must not move it.
    pub fn spawned(&self) -> usize {
        self.spawned.load(Ordering::Relaxed)
    }

    /// Grows the pool to at least `width` workers (never shrinks). New
    /// workers take the next slot numbers; existing slots are stable, so
    /// trace timelines stay comparable across runs.
    pub fn ensure_width(&self, width: usize) {
        if self.width() >= width {
            return;
        }
        let mut handles = self.handles.lock().unwrap_or_else(|e| e.into_inner());
        let have = self.width();
        for slot in have + 1..=width {
            let shared = Arc::clone(&self.shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("pluto-worker-{slot}"))
                    .spawn(move || worker_loop(shared, slot))
                    .expect("spawn pool worker"),
            );
            SPAWNED.fetch_add(1, Ordering::Relaxed);
            self.spawned.fetch_add(1, Ordering::Relaxed);
        }
        self.width.store(width.max(have), Ordering::Release);
    }

    /// Runs `job` on `team + 1` members: the calling thread as member 0
    /// plus worker slots `1..=team` (capped at the pool width). Returns
    /// after every member finished — the implicit barrier at parallel
    /// loop exit. If any member panicked, the first payload is re-raised
    /// here after the barrier completes.
    pub fn run(&self, team: usize, job: &(dyn Fn(usize) + Sync)) {
        let team = team.min(self.width());
        let _serial = self.dispatch.lock().unwrap_or_else(|e| e.into_inner());
        if team > 0 {
            let mut st = lock(&self.shared.state);
            // Erase the borrow's lifetime; the join barrier below keeps
            // the pointer from outliving the frame it points into.
            let erased: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(job) };
            st.job = Some(JobPtr(erased));
            st.session = pluto_obs::ObsSession::current();
            st.generation = st.generation.wrapping_add(1);
            st.team = team;
            st.active = team;
            st.panic_payload = None;
            drop(st);
            self.shared.start.notify_all();
        }
        // Member 0 works too; its panic must not unwind past the join
        // while workers still borrow this frame through the job pointer.
        let own = catch_unwind(AssertUnwindSafe(|| job(0)));
        let worker_panic = if team > 0 {
            let mut st = lock(&self.shared.state);
            while st.active > 0 {
                st = self.shared.done.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            st.job = None;
            st.session = None;
            st.panic_payload.take()
        } else {
            None
        };
        if let Err(p) = own {
            resume_unwind(p);
        }
        if let Some(p) = worker_panic {
            resume_unwind(p);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
        }
        self.shared.start.notify_all();
        let handles = std::mem::take(&mut *self.handles.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            let _ = h.join();
        }
    }
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// The process-wide pool shared by the compiled executor
/// (`pluto_machine::run_parallel`) and the parallel dependence analyzer
/// (`pluto_ir`): created on first use, lazily grown to the widest
/// `threads − 1` ever requested, never dropped (workers park until
/// process exit).
pub fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| ThreadPool::new(0))
}
