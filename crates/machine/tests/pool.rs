//! Stress and property tests for the persistent worker pool — the
//! deterministic battery behind the engine swap: uneven chunking,
//! degenerate width, reuse across many dispatches and compiles, panic
//! propagation without deadlock, and shutdown-on-drop.

use pluto_machine::pool::ThreadPool;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// The coordinator always participates as member 0, whatever the team.
#[test]
fn coordinator_is_member_zero() {
    let pool = ThreadPool::new(2);
    let slots = Mutex::new(Vec::new());
    pool.run(0, &|slot| slots.lock().unwrap().push(slot));
    assert_eq!(*slots.lock().unwrap(), vec![0]);
}

/// Every enlisted slot runs the job exactly once per dispatch, with
/// stable slot numbers `0..=team`.
#[test]
fn all_members_run_once() {
    let pool = ThreadPool::new(3);
    for team in 0..=3 {
        let slots = Mutex::new(Vec::new());
        pool.run(team, &|slot| slots.lock().unwrap().push(slot));
        let mut got = slots.lock().unwrap().clone();
        got.sort_unstable();
        assert_eq!(got, (0..=team).collect::<Vec<_>>(), "team {team}");
    }
}

/// Requesting a wider team than the pool has workers caps at the width
/// instead of hanging on slots that do not exist.
#[test]
fn oversized_team_is_capped() {
    let pool = ThreadPool::new(1);
    let ran = AtomicUsize::new(0);
    pool.run(8, &|_| {
        ran.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(ran.load(Ordering::Relaxed), 2); // coordinator + 1 worker
}

/// Uneven dynamic chunking: 97 items over 4 members via a shared atomic
/// counter (the engine's scheduling discipline) — every item claimed
/// exactly once, no matter how the members interleave.
#[test]
fn uneven_chunking_covers_every_item() {
    let pool = ThreadPool::new(3);
    const ITEMS: usize = 97;
    const CHUNK: usize = 5; // 19 chunks of 5 + 1 of 2: uneven tail
    for _ in 0..50 {
        let counter = AtomicUsize::new(0);
        let claimed: Vec<AtomicU64> = (0..ITEMS).map(|_| AtomicU64::new(0)).collect();
        pool.run(3, &|_slot| loop {
            let c = counter.fetch_add(1, Ordering::Relaxed);
            let lo = c * CHUNK;
            if lo >= ITEMS {
                break;
            }
            for item in claimed.iter().take((lo + CHUNK).min(ITEMS)).skip(lo) {
                item.fetch_add(1, Ordering::Relaxed);
            }
        });
        for (i, c) in claimed.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "item {i} claim count");
        }
    }
}

/// A zero-width pool is a valid degenerate configuration: everything
/// runs inline on the caller.
#[test]
fn degenerate_single_thread_pool() {
    let pool = ThreadPool::new(0);
    assert_eq!(pool.width(), 0);
    let hits = AtomicUsize::new(0);
    for _ in 0..100 {
        pool.run(4, &|slot| {
            assert_eq!(slot, 0);
            hits.fetch_add(1, Ordering::Relaxed);
        });
    }
    assert_eq!(hits.load(Ordering::Relaxed), 100);
}

/// Repeated reuse: many dispatches against one pool (the bench pattern:
/// one pool, hundreds of wavefront fronts, several compiled kernels)
/// never lose a generation and never spawn again.
#[test]
fn reuse_across_many_dispatches() {
    // Per-pool spawn counter: immune to other tests creating pools
    // concurrently (the process-wide `spawn_count` is not).
    let pool = ThreadPool::new(2);
    assert_eq!(pool.spawned(), 2);
    let total = AtomicUsize::new(0);
    for round in 0..1000 {
        let team = round % 3;
        pool.run(team, &|_| {
            total.fetch_add(1, Ordering::Relaxed);
        });
    }
    // Σ (team + 1) for team cycling 0,1,2.
    assert_eq!(total.load(Ordering::Relaxed), 334 + 333 * 2 + 333 * 3);
    assert_eq!(pool.spawned(), 2, "reuse must not spawn");
}

/// Growing the pool spawns only the missing workers; existing slots are
/// stable.
#[test]
fn ensure_width_grows_monotonically() {
    let pool = ThreadPool::new(1);
    pool.ensure_width(3);
    pool.ensure_width(2); // never shrinks, no-op
    assert_eq!(pool.width(), 3);
    assert_eq!(pool.spawned(), 3);
    let slots = Mutex::new(Vec::new());
    pool.run(3, &|slot| slots.lock().unwrap().push(slot));
    let mut got = slots.lock().unwrap().clone();
    got.sort_unstable();
    assert_eq!(got, vec![0, 1, 2, 3]);
}

/// A worker panic propagates to the dispatching thread after the join
/// barrier — no deadlock, no hang — and the pool stays usable.
#[test]
fn worker_panic_propagates_without_deadlock() {
    let pool = ThreadPool::new(2);
    let r = catch_unwind(AssertUnwindSafe(|| {
        pool.run(2, &|slot| {
            if slot == 1 {
                panic!("injected worker failure");
            }
        });
    }));
    let msg = *r
        .expect_err("panic must propagate")
        .downcast::<&str>()
        .unwrap();
    assert_eq!(msg, "injected worker failure");
    // The worker survives its own panic; the next dispatch still runs
    // on every member.
    let slots = Mutex::new(Vec::new());
    pool.run(2, &|slot| slots.lock().unwrap().push(slot));
    let mut got = slots.lock().unwrap().clone();
    got.sort_unstable();
    assert_eq!(got, vec![0, 1, 2]);
}

/// A coordinator panic also joins the workers first (they borrow the
/// dispatch frame) and then unwinds.
#[test]
fn coordinator_panic_still_joins_workers() {
    let pool = ThreadPool::new(2);
    let workers_done = AtomicUsize::new(0);
    let r = catch_unwind(AssertUnwindSafe(|| {
        pool.run(2, &|slot| {
            if slot == 0 {
                panic!("coordinator failure");
            }
            workers_done.fetch_add(1, Ordering::Relaxed);
        });
    }));
    assert!(r.is_err());
    assert_eq!(workers_done.load(Ordering::Relaxed), 2);
    // Still usable.
    let ran = AtomicUsize::new(0);
    pool.run(1, &|_| {
        ran.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(ran.load(Ordering::Relaxed), 2);
}

/// Dropping the pool joins every worker (shutdown-on-drop): repeated
/// create/dispatch/drop cycles neither hang nor leak threads that
/// would keep claiming generations.
#[test]
fn shutdown_on_drop_joins_workers() {
    for _ in 0..20 {
        let pool = ThreadPool::new(3);
        let ran = AtomicUsize::new(0);
        pool.run(3, &|_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 4);
        drop(pool); // joins; a leaked worker would deadlock later drops
    }
}

/// Dispatches from concurrent caller threads serialize safely against
/// one pool (the fuzz harness pattern).
#[test]
fn concurrent_dispatchers_serialize() {
    let pool = ThreadPool::new(2);
    let total = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                for _ in 0..100 {
                    pool.run(2, &|_| {
                        total.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
    });
    assert_eq!(total.load(Ordering::Relaxed), 4 * 100 * 3);
}
