//! Runtime-telemetry integration: the `machine.instances` flush
//! discipline (parallel total == sequential total), trace-event
//! emission from `run_parallel`, and the session-free
//! `run_parallel_profiled` aggregate.
//!
//! Sessions and traces are scoped to the test that installs them
//! (worker threads inherit the dispatching session), so these tests run
//! fully parallel with no serialization.

use pluto_codegen::{generate, original_schedule};
use pluto_ir::{Expr, Program, ProgramBuilder, StatementSpec};
use pluto_machine::{
    run_parallel, run_parallel_profiled, run_sequential, run_with_cache_attributed, Arrays,
    CacheConfig, ParallelConfig,
};

/// `for i in 0..N { b[i] = 2 * a[i] }`, i-loop marked parallel.
fn parallel_scale() -> (Program, pluto_codegen::Ast) {
    let mut b = ProgramBuilder::new("scale", &["N"]);
    b.add_context_ineq(vec![1, -1]);
    b.add_array("a", 1);
    b.add_array("b", 1);
    b.add_statement(StatementSpec {
        name: "S1".into(),
        iters: vec!["i".into()],
        domain_ineqs: vec![vec![1, 0, 0], vec![-1, 1, -1]],
        beta: vec![0, 0],
        write: ("b".into(), vec![vec![1, 0, 0]]),
        reads: vec![("a".into(), vec![vec![1, 0, 0]])],
        body: Expr::Lit(2.0) * Expr::Read(0),
    });
    let prog = b.build();
    let mut t = original_schedule(&prog);
    t.rows[1].par = pluto::Parallelism::Parallel;
    for sp in t.stmt_par.iter_mut() {
        sp[1] = pluto::Parallelism::Parallel;
    }
    let ast = generate(&prog, &t);
    (prog, ast)
}

fn fresh_arrays() -> Arrays {
    let mut a = Arrays::new(vec![vec![100], vec![100]]);
    a.seed_with(|ar, o| (ar * 3 + o) as f64);
    a
}

const CFG: ParallelConfig = ParallelConfig {
    threads: 4,
    collapse: 1,
};

/// Satellite: workers count instances into locals and the team flushes
/// once per dispatch — the global counter total must equal the
/// sequential run's, with no double counting from the run epilogue.
#[test]
fn parallel_counter_total_matches_sequential() {
    let (prog, ast) = parallel_scale();

    let session = pluto_obs::Session::start();
    let seq_stats = run_sequential(&prog, &ast, &[100], &mut fresh_arrays());
    let seq = session.finish().counter("machine.instances").unwrap();

    let session = pluto_obs::Session::start();
    let par_stats = run_parallel(&prog, &ast, &[100], &mut fresh_arrays(), CFG);
    let par = session.finish().counter("machine.instances").unwrap();

    assert_eq!(seq_stats.instances, 100);
    assert_eq!(par_stats.instances, 100);
    assert_eq!(seq, 100);
    assert_eq!(par, seq, "parallel counter total must match sequential");
}

/// Acceptance: a traced `run_parallel` produces one timeline per
/// enlisted worker slot plus the coordinator, with paired B/E events.
/// With the pooled engine the coordinator participates as member 0, so
/// `threads = 4` means tids `{0, 1, 2, 3}` — and the worker tids are
/// the stable pool slot numbers, not per-dispatch spawn order.
#[test]
fn run_parallel_emits_trace_spans() {
    let (prog, ast) = parallel_scale();
    let obs = pluto_obs::ObsSession::builder().trace().build();
    {
        let _g = obs.install();
        run_parallel(&prog, &ast, &[100], &mut fresh_arrays(), CFG);
    }
    let trace = obs.take_trace();
    // Coordinator + 3 enlisted pool workers.
    assert_eq!(trace.distinct_tids(), 4);
    for tid in 0..4u32 {
        let begins = trace
            .events
            .iter()
            .filter(|e| e.tid == tid && e.ph == pluto_obs::trace::Phase::Begin)
            .count();
        let ends = trace
            .events
            .iter()
            .filter(|e| e.tid == tid && e.ph == pluto_obs::trace::Phase::End)
            .count();
        assert!(begins >= 1, "tid {tid} has no begin events");
        assert_eq!(begins, ends, "tid {tid} has unpaired span events");
    }
    let doc = pluto_obs::json::parse(&trace.to_chrome_json()).expect("valid chrome trace");
    assert_eq!(doc.get("schema").unwrap().as_str(), Some("trace_event/1"));
}

/// `run_parallel_profiled` returns the dispatch aggregate without any
/// global session, and its per-thread instances partition the total.
#[test]
fn profiled_run_reports_dispatches() {
    let (prog, ast) = parallel_scale();
    let (stats, profile) = run_parallel_profiled(&prog, &ast, &[100], &mut fresh_arrays(), CFG);
    assert_eq!(stats.instances, 100);
    assert_eq!(profile.dispatches, stats.parallel_regions);
    assert_eq!(profile.threads, 4);
    assert_eq!(profile.instances_per_thread.iter().sum::<u64>(), 100);
    assert!(profile.imbalance_max >= 1.0);
    assert!(profile.imbalance_mean >= 1.0);
}

/// A session spanning a parallel run and an attributed cache run gets
/// the full `exec` section: dispatches and per-array attribution keyed
/// by IR array names.
#[test]
fn session_collects_exec_section() {
    let (prog, ast) = parallel_scale();
    let session = pluto_obs::Session::start();
    run_parallel(&prog, &ast, &[100], &mut fresh_arrays(), CFG);
    let (_, totals, per) = run_with_cache_attributed(
        &prog,
        &ast,
        &[100],
        &mut fresh_arrays(),
        CacheConfig::default(),
    );
    let profile = session.finish();
    let exec = profile.exec.expect("exec section recorded");
    assert!(exec.dispatches >= 1);
    assert_eq!(exec.threads, 4);
    let names: Vec<&str> = exec.arrays.iter().map(|a| a.name.as_str()).collect();
    assert_eq!(names, ["a", "b"]);
    // Attributed totals partition the simulator totals, and the obs
    // copy agrees with the returned one.
    assert_eq!(
        per.iter().map(|(_, s)| s.accesses).sum::<u64>(),
        totals.accesses
    );
    assert_eq!(
        exec.arrays.iter().map(|a| a.accesses).sum::<u64>(),
        totals.accesses
    );
}

/// Satellite: telemetry parity between the legacy scoped engine and the
/// pooled compiled engine. The deterministic parts of the `ExecProfile`
/// must agree exactly: dispatch count, observed team width, and total
/// instances. The per-slot instance split is scheduling policy (block
/// vs dynamic chunks), so only its sum is pinned; cache attribution
/// comes from the shared `run_with_cache_attributed` path and is
/// compared via the session in `session_collects_exec_section`.
#[test]
fn scoped_and_pooled_profiles_agree() {
    let (prog, ast) = parallel_scale();
    let mut scoped_arrays = fresh_arrays();
    let mut pooled_arrays = fresh_arrays();
    let (scoped_stats, scoped) =
        pluto_machine::run_parallel_scoped_profiled(&prog, &ast, &[100], &mut scoped_arrays, CFG);
    let (pooled_stats, pooled) =
        run_parallel_profiled(&prog, &ast, &[100], &mut pooled_arrays, CFG);
    assert!(scoped_arrays.bitwise_eq(&pooled_arrays));
    assert_eq!(scoped_stats, pooled_stats);
    assert_eq!(scoped.dispatches, pooled.dispatches);
    assert_eq!(scoped.threads, pooled.threads);
    assert_eq!(
        scoped.instances_per_thread.iter().sum::<u64>(),
        pooled.instances_per_thread.iter().sum::<u64>(),
    );
}

/// Satellite: the zero-cost disabled path extends to the pool and the
/// compiled executor — with no session and no trace, a pooled
/// `run_parallel` allocates no trace buffers and records no dispatches.
#[test]
fn pooled_disabled_path_is_inert() {
    let (prog, ast) = parallel_scale();
    assert!(!pluto_obs::enabled());
    assert!(!pluto_obs::trace::enabled());
    assert!(!pluto_obs::exec_metrics_enabled());
    run_parallel(&prog, &ast, &[100], &mut fresh_arrays(), CFG);
    // Worker-slot and coordinator ring buffers must not exist while
    // tracing is off (the pin that keeps the hot path clock-free).
    for tid in 0..4 {
        assert!(pluto_obs::trace::RingBuf::for_thread(tid).is_none());
    }
    // And nothing leaked into the session accumulator: a session opened
    // *after* the run sees no exec section.
    let session = pluto_obs::Session::start();
    let profile = session.finish();
    assert!(profile.exec.is_none());
}
