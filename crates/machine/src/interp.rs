//! The AST interpreter: sequential, cache-simulated and multi-threaded.
//!
//! Since the pooled/bytecode engine landed (DESIGN.md §9), this module
//! is the *reference* tree-walk: [`run_sequential`] stays the
//! correctness oracle (per-subscript bounds asserts, recursive f64
//! evaluation), the cache and sanitizer runs build on it, and
//! [`run_parallel_scoped`] keeps the legacy spawn-per-dispatch scoped
//! `std::thread` team alive as the differential partner the fuzz
//! battery compares the pooled engine against.

use crate::arrays::Arrays;
use crate::cache::{CacheConfig, CacheSim, CacheStats};
use crate::mem::{Direct, Mem, RawMem, SendPtr};
use pluto_codegen::Ast;
use pluto_ir::{Expr, Program};
use pluto_linalg::Int;

/// Counters accumulated during one execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Statement instances executed.
    pub instances: u64,
    /// Floating-point operations executed (per-body op count).
    pub flops: u64,
    /// Parallel regions entered (≈ barrier count in the OpenMP mapping).
    pub parallel_regions: u64,
}

impl ExecStats {
    pub(crate) fn merge(&mut self, o: ExecStats) {
        self.instances += o.instances;
        self.flops += o.flops;
        self.parallel_regions += o.parallel_regions;
    }
}

/// Thread-team configuration for [`run_parallel`](crate::run_parallel).
#[derive(Debug, Clone, Copy)]
pub struct ParallelConfig {
    /// Worker threads (the paper's "number of cores").
    pub threads: usize,
    /// How many consecutive parallel loops to collapse into one work list
    /// (2 exploits two degrees of pipelined parallelism, as in Fig. 13).
    pub collapse: usize,
}

impl Default for ParallelConfig {
    fn default() -> ParallelConfig {
        ParallelConfig {
            threads: 4,
            collapse: 1,
        }
    }
}

/// Pre-lowered per-statement execution info.
struct StmtInfo {
    write_array: usize,
    write_rows: Vec<Vec<Int>>,
    reads: Vec<(usize, Vec<Vec<Int>>)>,
    body: Expr,
    flops: u64,
    n_iters: usize,
}

struct Ctx {
    stmts: Vec<StmtInfo>,
    extents: Vec<Vec<usize>>,
    bases: Vec<u64>,
    params: Vec<Int>,
}

impl Ctx {
    fn new(prog: &Program, params: &[i64], arrays: &Arrays) -> Ctx {
        assert_eq!(params.len(), prog.num_params(), "parameter count mismatch");
        let stmts = prog
            .stmts
            .iter()
            .map(|s| StmtInfo {
                write_array: s.write.array,
                write_rows: s.write.map.clone(),
                reads: s.reads.iter().map(|r| (r.array, r.map.clone())).collect(),
                body: s.body.clone(),
                flops: s.body.num_ops() as u64,
                n_iters: s.num_iters(),
            })
            .collect();
        let mut bases = Vec::with_capacity(arrays.num_arrays());
        let mut next = 0u64;
        let extents: Vec<Vec<usize>> = (0..arrays.num_arrays())
            .map(|a| arrays.extents(a).to_vec())
            .collect();
        for e in &extents {
            bases.push(next);
            let len: usize = e.iter().product::<usize>().max(1);
            next += (len as u64 * 8).div_ceil(64) * 64;
        }
        Ctx {
            stmts,
            extents,
            bases,
            params: params.iter().map(|&p| p as Int).collect(),
        }
    }
}

struct Cached<'a> {
    arrays: &'a mut Arrays,
    sim: &'a mut CacheSim,
}

impl Mem for Cached<'_> {
    #[inline]
    fn load(&mut self, a: usize, off: usize, addr: u64) -> f64 {
        self.sim.access_for(a, addr);
        self.arrays.load(a, off)
    }
    #[inline]
    fn store(&mut self, a: usize, off: usize, addr: u64, v: f64) {
        self.sim.access_for(a, addr);
        self.arrays.store(a, off, v);
    }
}

/// Scratch buffers reused across statement instances.
struct Scratch {
    iters: Vec<Int>,
    vp: Vec<Int>,
    reads: Vec<f64>,
    iters_i64: Vec<i64>,
    /// Per-statement suppression depth from enclosing `Filter` nodes.
    suppressed: Vec<u32>,
}

impl Scratch {
    fn new() -> Scratch {
        Scratch {
            iters: Vec::new(),
            vp: Vec::new(),
            reads: Vec::new(),
            iters_i64: Vec::new(),
            suppressed: Vec::new(),
        }
    }

    fn with_stmts(n: usize) -> Scratch {
        let mut s = Scratch::new();
        s.suppressed = vec![0; n];
        s
    }
}

fn eval_row(row: &[Int], vp: &[Int]) -> Int {
    let mut v = row[vp.len()];
    for (k, &x) in vp.iter().enumerate() {
        v += row[k] * x;
    }
    v
}

fn exec<M: Mem>(
    ast: &Ast,
    vals: &mut [Int],
    ctx: &Ctx,
    mem: &mut M,
    sc: &mut Scratch,
    stats: &mut ExecStats,
) {
    match ast {
        Ast::Seq(v) => {
            for a in v {
                exec(a, vals, ctx, mem, sc, stats);
            }
        }
        Ast::Loop(l) => {
            let lb = l.lb.eval_lower(vals);
            let ub = l.ub.eval_upper(vals);
            let mut x = lb;
            while x <= ub {
                vals[l.var] = x;
                exec(&l.body, vals, ctx, mem, sc, stats);
                x += 1;
            }
        }
        Ast::Let {
            var, expr, body, ..
        } => {
            vals[*var] = expr.eval_floor(vals);
            exec(body, vals, ctx, mem, sc, stats);
        }
        Ast::Guard { conds, body } => {
            if conds.iter().all(|c| c.holds(vals)) {
                exec(body, vals, ctx, mem, sc, stats);
            }
        }
        Ast::Filter { stmt, conds, body } => {
            let pass = conds.iter().all(|c| c.holds(vals));
            if !pass {
                sc.suppressed[*stmt] += 1;
            }
            exec(body, vals, ctx, mem, sc, stats);
            if !pass {
                sc.suppressed[*stmt] -= 1;
            }
        }
        Ast::Stmt { stmt, orig_dims } => {
            if sc.suppressed[*stmt] == 0 {
                run_stmt(*stmt, orig_dims, vals, ctx, mem, sc, stats);
            }
        }
    }
}

#[inline]
fn run_stmt<M: Mem>(
    stmt: usize,
    orig_dims: &[usize],
    vals: &[Int],
    ctx: &Ctx,
    mem: &mut M,
    sc: &mut Scratch,
    stats: &mut ExecStats,
) {
    let info = &ctx.stmts[stmt];
    debug_assert_eq!(orig_dims.len(), info.n_iters);
    sc.iters.clear();
    sc.iters_i64.clear();
    sc.vp.clear();
    for &v in orig_dims {
        sc.iters.push(vals[v]);
        sc.iters_i64.push(vals[v] as i64);
    }
    sc.vp.extend_from_slice(&sc.iters);
    sc.vp.extend_from_slice(&ctx.params);
    sc.reads.clear();
    for (a, rows) in &info.reads {
        let mut off = 0usize;
        for (k, row) in rows.iter().enumerate() {
            let s = eval_row(row, &sc.vp);
            let e = ctx.extents[*a][k];
            assert!(
                s >= 0 && (s as usize) < e,
                "array {a}: subscript {k} = {s} out of 0..{e}"
            );
            off = off * e + s as usize;
        }
        let addr = ctx.bases[*a] + off as u64 * 8;
        sc.reads.push(mem.load(*a, off, addr));
    }
    let v = info.body.eval(&sc.reads, &sc.iters_i64);
    let a = info.write_array;
    let mut off = 0usize;
    for (k, row) in info.write_rows.iter().enumerate() {
        let s = eval_row(row, &sc.vp);
        let e = ctx.extents[a][k];
        assert!(
            s >= 0 && (s as usize) < e,
            "array {a}: subscript {k} = {s} out of 0..{e}"
        );
        off = off * e + s as usize;
    }
    let addr = ctx.bases[a] + off as u64 * 8;
    mem.store(a, off, addr, v);
    stats.instances += 1;
    stats.flops += info.flops;
}

/// Runs the AST sequentially (parallel markers ignored).
pub fn run_sequential(prog: &Program, ast: &Ast, params: &[i64], arrays: &mut Arrays) -> ExecStats {
    let _span = pluto_obs::span("execute/sequential");
    let ctx = Ctx::new(prog, params, arrays);
    let mut vals = vec![0; ast.num_vars().max(params.len())];
    for (k, &p) in params.iter().enumerate() {
        vals[k] = p as Int;
    }
    let mut stats = ExecStats::default();
    let mut sc = Scratch::with_stmts(prog.stmts.len());
    exec(
        ast,
        &mut vals,
        &ctx,
        &mut Direct(arrays),
        &mut sc,
        &mut stats,
    );
    pluto_obs::counters::MACHINE_INSTANCES.add(stats.instances);
    stats
}

/// Runs the AST sequentially with every access driven through the cache
/// simulator, attributing accesses per array. Shared by
/// [`run_with_cache`] and [`run_with_cache_attributed`].
fn run_cached_impl(
    prog: &Program,
    ast: &Ast,
    params: &[i64],
    arrays: &mut Arrays,
    cfg: CacheConfig,
) -> (ExecStats, CacheSim) {
    let _span = pluto_obs::span("execute/cached");
    let ctx = Ctx::new(prog, params, arrays);
    let mut vals = vec![0; ast.num_vars().max(params.len())];
    for (k, &p) in params.iter().enumerate() {
        vals[k] = p as Int;
    }
    let mut stats = ExecStats::default();
    let mut sim = CacheSim::with_arrays(cfg, prog.arrays.len());
    let mut sc = Scratch::with_stmts(prog.stmts.len());
    {
        let mut mem = Cached {
            arrays,
            sim: &mut sim,
        };
        exec(ast, &mut vals, &ctx, &mut mem, &mut sc, &mut stats);
    }
    pluto_obs::counters::MACHINE_INSTANCES.add(stats.instances);
    // Feed any active profile session the per-array attribution (inert
    // one-load check otherwise), keyed by the IR array names.
    if pluto_obs::enabled() {
        for (i, s) in sim.per_array().iter().enumerate() {
            if s.accesses > 0 {
                pluto_obs::exec::record_array(
                    &prog.arrays[i].name,
                    s.accesses,
                    s.l1_misses,
                    s.l2_misses,
                );
            }
        }
    }
    (stats, sim)
}

/// Runs the AST sequentially with every access driven through the cache
/// simulator.
pub fn run_with_cache(
    prog: &Program,
    ast: &Ast,
    params: &[i64],
    arrays: &mut Arrays,
    cfg: CacheConfig,
) -> (ExecStats, CacheStats) {
    let (stats, sim) = run_cached_impl(prog, ast, params, arrays, cfg);
    (stats, sim.stats)
}

/// Like [`run_with_cache`], additionally returning the per-array
/// attribution as `(array name, stats)` pairs in IR declaration order
/// (arrays the run never touched are included with zero counts).
pub fn run_with_cache_attributed(
    prog: &Program,
    ast: &Ast,
    params: &[i64],
    arrays: &mut Arrays,
    cfg: CacheConfig,
) -> (ExecStats, CacheStats, Vec<(String, CacheStats)>) {
    let (stats, sim) = run_cached_impl(prog, ast, params, arrays, cfg);
    let per = sim
        .per_array()
        .iter()
        .enumerate()
        .map(|(i, s)| (prog.arrays[i].name.clone(), *s))
        .collect();
    (stats, sim.stats, per)
}

/// Per-run telemetry state threaded through the scoped parallel walker.
struct Telemetry<'a> {
    /// Measure chunk wall times and per-thread instance counts at all.
    /// Off (no clock reads) unless a profile session or a trace is
    /// active, or a caller asked for a local [`ExecProfile`]
    /// (pluto_obs::ExecProfile).
    measure: bool,
    /// Local dispatch collector for [`run_parallel_profiled`].
    dispatches: Option<&'a mut Vec<pluto_obs::exec::Dispatch>>,
    /// Instances already flushed to `machine.instances` by per-dispatch
    /// team flushes; the run's epilogue adds only the remainder the
    /// coordinator executed outside any team.
    flushed: u64,
}

/// Runs the AST with the *legacy* scoped thread team: every loop marked
/// parallel distributes its iterations block-wise (collapsed work lists
/// when `collapse >= 2` and the next loop in is parallel too) over
/// `cfg.threads` scoped threads spawned per dispatch, with an implicit
/// barrier at loop exit — the paper's OpenMP `parallel for` semantics.
///
/// [`run_parallel`](crate::run_parallel) routes through the persistent
/// pool + compiled-kernel engine instead; this tree-walk engine is kept
/// as its differential partner (the fuzz battery runs both and demands
/// bit-exact agreement) and as the simplest-possible reference for the
/// team semantics.
///
/// When a [`pluto_obs`] profile session or trace is active, each
/// dispatch additionally records per-thread chunk times, load-imbalance
/// inputs, and (for traces) per-thread begin/end events; with both off
/// the walker takes no clock reads and allocates no trace buffers.
pub fn run_parallel_scoped(
    prog: &Program,
    ast: &Ast,
    params: &[i64],
    arrays: &mut Arrays,
    cfg: ParallelConfig,
) -> ExecStats {
    run_parallel_impl(prog, ast, params, arrays, cfg, None)
}

/// Like [`run_parallel_scoped`], additionally measuring every dispatch
/// and returning the aggregated [`ExecProfile`](pluto_obs::ExecProfile)
/// (load imbalance, barrier wait, per-thread instances) without
/// requiring a global [`Session`](pluto_obs::Session). The profile's
/// `arrays` section is empty — cache attribution comes from
/// [`run_with_cache_attributed`], which simulates a sequential
/// interleaving.
pub fn run_parallel_scoped_profiled(
    prog: &Program,
    ast: &Ast,
    params: &[i64],
    arrays: &mut Arrays,
    cfg: ParallelConfig,
) -> (ExecStats, pluto_obs::ExecProfile) {
    let mut dispatches = Vec::new();
    let stats = run_parallel_impl(prog, ast, params, arrays, cfg, Some(&mut dispatches));
    let profile = pluto_obs::ExecProfile::build(&dispatches, Vec::new());
    (stats, profile)
}

fn run_parallel_impl(
    prog: &Program,
    ast: &Ast,
    params: &[i64],
    arrays: &mut Arrays,
    cfg: ParallelConfig,
    dispatches: Option<&mut Vec<pluto_obs::exec::Dispatch>>,
) -> ExecStats {
    let _span = pluto_obs::span("execute/parallel");
    let ctx = Ctx::new(prog, params, arrays);
    let mut vals = vec![0; ast.num_vars().max(params.len())];
    for (k, &p) in params.iter().enumerate() {
        vals[k] = p as Int;
    }
    let mut stats = ExecStats::default();
    let ptrs: Vec<SendPtr> = arrays.raw().into_iter().map(SendPtr).collect();
    let mut sc = Scratch::with_stmts(prog.stmts.len());
    let mut tel = Telemetry {
        measure: dispatches.is_some() || pluto_obs::exec_metrics_enabled(),
        dispatches,
        flushed: 0,
    };
    exec_outer(
        ast, &mut vals, &ctx, &ptrs, cfg, &mut sc, &mut stats, &mut tel,
    );
    // Teams flushed their instances per dispatch; count only what the
    // coordinator executed outside any team (no double counting).
    pluto_obs::counters::MACHINE_INSTANCES.add(stats.instances - tel.flushed);
    stats
}

/// Sequential walker that dispatches parallel loops onto the thread team.
#[allow(clippy::too_many_arguments)]
fn exec_outer(
    ast: &Ast,
    vals: &mut [Int],
    ctx: &Ctx,
    ptrs: &[SendPtr],
    cfg: ParallelConfig,
    sc: &mut Scratch,
    stats: &mut ExecStats,
    tel: &mut Telemetry,
) {
    match ast {
        Ast::Seq(v) => {
            for a in v {
                exec_outer(a, vals, ctx, ptrs, cfg, sc, stats, tel);
            }
        }
        Ast::Loop(l) if l.parallel && cfg.threads > 1 => {
            run_team(l, vals, ctx, ptrs, cfg, sc, stats, tel);
        }
        Ast::Loop(l) => {
            let lb = l.lb.eval_lower(vals);
            let ub = l.ub.eval_upper(vals);
            let mut x = lb;
            while x <= ub {
                vals[l.var] = x;
                exec_outer(&l.body, vals, ctx, ptrs, cfg, sc, stats, tel);
                x += 1;
            }
        }
        Ast::Let {
            var, expr, body, ..
        } => {
            vals[*var] = expr.eval_floor(vals);
            exec_outer(body, vals, ctx, ptrs, cfg, sc, stats, tel);
        }
        Ast::Guard { conds, body } => {
            if conds.iter().all(|c| c.holds(vals)) {
                exec_outer(body, vals, ctx, ptrs, cfg, sc, stats, tel);
            }
        }
        Ast::Filter { stmt, conds, body } => {
            let pass = conds.iter().all(|c| c.holds(vals));
            if !pass {
                sc.suppressed[*stmt] += 1;
            }
            exec_outer(body, vals, ctx, ptrs, cfg, sc, stats, tel);
            if !pass {
                sc.suppressed[*stmt] -= 1;
            }
        }
        Ast::Stmt { stmt, orig_dims } => {
            if sc.suppressed[*stmt] == 0 {
                let mut mem = RawMem { ptrs };
                run_stmt(*stmt, orig_dims, vals, ctx, &mut mem, sc, stats);
            }
        }
    }
}

/// One parallel region: distribute the loop (or a 2-deep collapsed work
/// list) over the team and join (barrier).
#[allow(clippy::too_many_arguments)]
fn run_team(
    l: &pluto_codegen::LoopNode,
    vals: &mut [Int],
    ctx: &Ctx,
    ptrs: &[SendPtr],
    cfg: ParallelConfig,
    sc: &Scratch,
    stats: &mut ExecStats,
    tel: &mut Telemetry,
) {
    stats.parallel_regions += 1;
    let lb = l.lb.eval_lower(vals);
    let ub = l.ub.eval_upper(vals);
    if lb > ub {
        return;
    }
    // Work items: either single-loop values or collapsed (outer, inner)
    // pairs when two consecutive parallel loops exist.
    let inner: Option<&pluto_codegen::LoopNode> = if cfg.collapse >= 2 {
        match &*l.body {
            Ast::Loop(i) if i.parallel => Some(i),
            _ => None,
        }
    } else {
        None
    };
    let mut items: Vec<(Int, Int)> = Vec::new();
    match inner {
        Some(i) => {
            let mut x = lb;
            while x <= ub {
                vals[l.var] = x;
                let ilb = i.lb.eval_lower(vals);
                let iub = i.ub.eval_upper(vals);
                let mut y = ilb;
                while y <= iub {
                    items.push((x, y));
                    y += 1;
                }
                x += 1;
            }
        }
        None => {
            let mut x = lb;
            while x <= ub {
                items.push((x, 0));
                x += 1;
            }
        }
    }
    let nthreads = cfg.threads.min(items.len().max(1));
    let body: &Ast = match inner {
        Some(i) => &i.body,
        None => &l.body,
    };
    let measure = tel.measure;
    let name: &str = &l.name;
    // Coordinator dispatch span (tid 0): brackets fork to join. `None`
    // (no allocation) whenever tracing is off.
    let mut coord = pluto_obs::trace::RingBuf::for_thread(0);
    if let Some(b) = coord.as_mut() {
        b.begin(
            name,
            &[("items", items.len() as u64), ("threads", nthreads as u64)],
        );
    }
    // Spawned workers inherit the coordinator's session so their trace
    // events and chunk timings land in the dispatching compile.
    let obs_session = pluto_obs::ObsSession::current();
    let results = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nthreads);
        for t in 0..nthreads {
            let chunk_lo = items.len() * t / nthreads;
            let chunk_hi = items.len() * (t + 1) / nthreads;
            let my_items = &items[chunk_lo..chunk_hi];
            let mut my_vals = vals.to_vec();
            let outer_var = l.var;
            let inner_var = inner.map(|i| i.var);
            let suppressed = sc.suppressed.clone();
            let obs_session = &obs_session;
            handles.push(scope.spawn(move || {
                let _obs = obs_session.as_ref().map(|s| s.install());
                // Worker slot t owns timeline tid t+1 (0 = coordinator).
                let mut buf = pluto_obs::trace::RingBuf::for_thread(t as u32 + 1);
                if let Some(b) = buf.as_mut() {
                    b.begin(name, &[("items", my_items.len() as u64)]);
                }
                // Chunk timing is gated with tracing/profiling: the
                // disabled path never reads the clock.
                let started = measure.then(std::time::Instant::now);
                let mut mem = RawMem { ptrs };
                let mut st = ExecStats::default();
                let mut sc = Scratch::new();
                sc.suppressed = suppressed;
                for &(x, y) in my_items {
                    my_vals[outer_var] = x;
                    if let Some(iv) = inner_var {
                        my_vals[iv] = y;
                    }
                    exec(body, &mut my_vals, ctx, &mut mem, &mut sc, &mut st);
                }
                let chunk_ns = started.map_or(0, |s| s.elapsed().as_nanos());
                if let Some(mut b) = buf {
                    b.end(name, &[("instances", st.instances)]);
                    b.submit();
                }
                (st, chunk_ns)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect::<Vec<_>>()
    });
    let mut chunk_ns = Vec::new();
    let mut instances = Vec::new();
    let mut team_total = 0u64;
    for (r, ns) in results {
        team_total += r.instances;
        if measure {
            chunk_ns.push(ns);
            instances.push(r.instances);
        }
        stats.merge(r);
    }
    // Workers counted into locals; flush the team's total to the global
    // counter once per dispatch — same discipline as the simplex hot
    // loop — and remember it so the run's epilogue doesn't recount.
    pluto_obs::counters::MACHINE_INSTANCES.add(team_total);
    tel.flushed += team_total;
    if let Some(mut b) = coord {
        b.end(name, &[("instances", team_total)]);
        b.submit();
    }
    if measure {
        let d = pluto_obs::exec::Dispatch {
            name: l.name.clone(),
            items: items.len() as u64,
            chunk_ns,
            instances,
        };
        if let Some(v) = tel.dispatches.as_deref_mut() {
            v.push(d.clone());
        }
        pluto_obs::exec::record_dispatch(d);
    }
}

/// Access history of one cell inside a parallel region:
/// `(last writer iteration, one reader iteration, multiple-distinct-reader
/// flag)`.
type CellHistory = (Option<Int>, Option<Int>, bool);

/// One parallel loop currently being executed by the sanitizer.
struct SanFrame {
    /// Display name of the loop (for reports).
    name: String,
    /// Iteration value currently executing.
    current: Int,
    /// Per-cell access history within this parallel region, keyed by
    /// `(array, offset)`.
    cells: std::collections::HashMap<(usize, usize), CellHistory>,
}

/// Sanitizing memory backend: every access is checked against the access
/// history of every *active* parallel loop before reaching the arrays.
struct SanMem<'a> {
    arrays: &'a mut Arrays,
    frames: &'a mut Vec<SanFrame>,
    violations: &'a mut Vec<String>,
}

impl SanMem<'_> {
    fn record(&mut self, a: usize, off: usize, is_write: bool) {
        for f in self.frames.iter_mut() {
            let cell = f.cells.entry((a, off)).or_insert((None, None, false));
            let x = f.current;
            if is_write {
                if let Some(w) = cell.0 {
                    if w != x && self.violations.len() < 8 {
                        self.violations.push(format!(
                            "write-write race on array {a} offset {off}: iterations {w} and \
                             {x} of parallel loop `{}` both write it",
                            f.name
                        ));
                    }
                }
                let reader_conflict = match (cell.1, cell.2) {
                    (_, true) => true,
                    (Some(r), _) => r != x,
                    (None, _) => false,
                };
                if reader_conflict && self.violations.len() < 8 {
                    self.violations.push(format!(
                        "read-write race on array {a} offset {off}: iteration {x} of parallel \
                         loop `{}` writes a cell another iteration reads",
                        f.name
                    ));
                }
                cell.0 = Some(x);
            } else {
                if let Some(w) = cell.0 {
                    if w != x && self.violations.len() < 8 {
                        self.violations.push(format!(
                            "read-write race on array {a} offset {off}: iteration {x} of \
                             parallel loop `{}` reads a cell iteration {w} writes",
                            f.name
                        ));
                    }
                }
                match cell.1 {
                    None => cell.1 = Some(x),
                    Some(r) if r != x => cell.2 = true,
                    Some(_) => {}
                }
            }
        }
    }
}

impl Mem for SanMem<'_> {
    #[inline]
    fn load(&mut self, a: usize, off: usize, _addr: u64) -> f64 {
        self.record(a, off, false);
        self.arrays.load(a, off)
    }
    #[inline]
    fn store(&mut self, a: usize, off: usize, _addr: u64, v: f64) {
        self.record(a, off, true);
        self.arrays.store(a, off, v);
    }
}

/// Sanitizer walker: sequential program order, but every loop marked
/// `parallel` opens a fresh access-history frame, and every memory access
/// is checked for cross-iteration conflicts against all open frames.
#[allow(clippy::too_many_arguments)]
fn exec_san(
    ast: &Ast,
    vals: &mut [Int],
    ctx: &Ctx,
    arrays: &mut Arrays,
    frames: &mut Vec<SanFrame>,
    violations: &mut Vec<String>,
    sc: &mut Scratch,
    stats: &mut ExecStats,
) {
    match ast {
        Ast::Seq(v) => {
            for a in v {
                exec_san(a, vals, ctx, arrays, frames, violations, sc, stats);
            }
        }
        Ast::Loop(l) => {
            let lb = l.lb.eval_lower(vals);
            let ub = l.ub.eval_upper(vals);
            if l.parallel {
                stats.parallel_regions += 1;
                frames.push(SanFrame {
                    name: l.name.clone(),
                    current: lb,
                    cells: std::collections::HashMap::new(),
                });
            }
            let depth = frames.len();
            let mut x = lb;
            while x <= ub {
                vals[l.var] = x;
                if l.parallel {
                    frames[depth - 1].current = x;
                }
                exec_san(&l.body, vals, ctx, arrays, frames, violations, sc, stats);
                x += 1;
            }
            if l.parallel {
                frames.pop();
            }
        }
        Ast::Let {
            var, expr, body, ..
        } => {
            vals[*var] = expr.eval_floor(vals);
            exec_san(body, vals, ctx, arrays, frames, violations, sc, stats);
        }
        Ast::Guard { conds, body } => {
            if conds.iter().all(|c| c.holds(vals)) {
                exec_san(body, vals, ctx, arrays, frames, violations, sc, stats);
            }
        }
        Ast::Filter { stmt, conds, body } => {
            let pass = conds.iter().all(|c| c.holds(vals));
            if !pass {
                sc.suppressed[*stmt] += 1;
            }
            exec_san(body, vals, ctx, arrays, frames, violations, sc, stats);
            if !pass {
                sc.suppressed[*stmt] -= 1;
            }
        }
        Ast::Stmt { stmt, orig_dims } => {
            if sc.suppressed[*stmt] == 0 {
                let mut mem = SanMem {
                    arrays,
                    frames,
                    violations,
                };
                run_stmt(*stmt, orig_dims, vals, ctx, &mut mem, sc, stats);
            }
        }
    }
}

/// Runs the AST sequentially while *sanitizing* its parallel markers:
/// inside every loop marked `parallel`, per-iteration read and write sets
/// are recorded and checked for cross-iteration write-write and
/// read-write overlap — the dynamic counterpart of the static `PL001`
/// race check. Results in the arrays are identical to
/// [`run_sequential`].
///
/// # Errors
/// Returns the recorded race reports (capped at 8) if any loop marked
/// parallel has conflicting iterations at the executed parameters.
pub fn run_sanitized(
    prog: &Program,
    ast: &Ast,
    params: &[i64],
    arrays: &mut Arrays,
) -> Result<ExecStats, Vec<String>> {
    let _span = pluto_obs::span("execute/sanitized");
    let ctx = Ctx::new(prog, params, arrays);
    let mut vals = vec![0; ast.num_vars().max(params.len())];
    for (k, &p) in params.iter().enumerate() {
        vals[k] = p as Int;
    }
    let mut stats = ExecStats::default();
    let mut sc = Scratch::with_stmts(prog.stmts.len());
    let mut frames = Vec::new();
    let mut violations = Vec::new();
    exec_san(
        ast,
        &mut vals,
        &ctx,
        arrays,
        &mut frames,
        &mut violations,
        &mut sc,
        &mut stats,
    );
    pluto_obs::counters::MACHINE_INSTANCES.add(stats.instances);
    if violations.is_empty() {
        Ok(stats)
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pluto_codegen::{generate, original_schedule};
    use pluto_ir::{ProgramBuilder, StatementSpec};

    /// `for i in 0..N { b[i] = 2 * a[i] }`
    fn scale_program() -> Program {
        let mut b = ProgramBuilder::new("scale", &["N"]);
        b.add_context_ineq(vec![1, -1]);
        b.add_array("a", 1);
        b.add_array("b", 1);
        b.add_statement(StatementSpec {
            name: "S1".into(),
            iters: vec!["i".into()],
            domain_ineqs: vec![vec![1, 0, 0], vec![-1, 1, -1]],
            beta: vec![0, 0],
            write: ("b".into(), vec![vec![1, 0, 0]]),
            reads: vec![("a".into(), vec![vec![1, 0, 0]])],
            body: Expr::Lit(2.0) * Expr::Read(0),
        });
        b.build()
    }

    #[test]
    fn sequential_scale() {
        let prog = scale_program();
        let ast = generate(&prog, &original_schedule(&prog));
        let mut arrays = Arrays::new(vec![vec![8], vec![8]]);
        arrays.seed_with(|a, o| if a == 0 { o as f64 } else { 0.0 });
        let stats = run_sequential(&prog, &ast, &[8], &mut arrays);
        assert_eq!(stats.instances, 8);
        for i in 0..8 {
            assert_eq!(arrays.load(1, i), 2.0 * i as f64);
        }
    }

    #[test]
    fn cache_run_counts_accesses() {
        let prog = scale_program();
        let ast = generate(&prog, &original_schedule(&prog));
        let mut arrays = Arrays::new(vec![vec![64], vec![64]]);
        let (stats, cs) = run_with_cache(&prog, &ast, &[64], &mut arrays, CacheConfig::default());
        assert_eq!(stats.instances, 64);
        assert_eq!(cs.accesses, 128); // one read + one write per instance
        assert!(cs.l1_misses >= 16); // 2 arrays x 8 lines
    }

    #[test]
    fn parallel_matches_sequential() {
        let prog = scale_program();
        let mut t = original_schedule(&prog);
        // Mark the i-loop parallel (it trivially is).
        t.rows[1].par = pluto::Parallelism::Parallel;
        for sp in t.stmt_par.iter_mut() {
            sp[1] = pluto::Parallelism::Parallel;
        }
        let ast = generate(&prog, &t);
        let mut seq = Arrays::new(vec![vec![100], vec![100]]);
        seq.seed_with(|a, o| (a * 7 + o) as f64);
        let mut par = seq.clone();
        run_sequential(&prog, &ast, &[100], &mut seq);
        let stats = run_parallel_scoped(
            &prog,
            &ast,
            &[100],
            &mut par,
            ParallelConfig {
                threads: 4,
                collapse: 1,
            },
        );
        assert!(seq.bitwise_eq(&par));
        assert_eq!(stats.parallel_regions, 1);
        assert_eq!(stats.instances, 100);
    }

    #[test]
    fn sanitizer_accepts_truly_parallel_loop() {
        let prog = scale_program();
        let mut t = original_schedule(&prog);
        t.rows[1].par = pluto::Parallelism::Parallel;
        for sp in t.stmt_par.iter_mut() {
            sp[1] = pluto::Parallelism::Parallel;
        }
        let ast = generate(&prog, &t);
        let mut arrays = Arrays::new(vec![vec![32], vec![32]]);
        arrays.seed_with(|a, o| (a + o) as f64);
        let mut reference = arrays.clone();
        let stats = run_sanitized(&prog, &ast, &[32], &mut arrays).expect("no races");
        assert_eq!(stats.instances, 32);
        assert_eq!(stats.parallel_regions, 1);
        run_sequential(&prog, &ast, &[32], &mut reference);
        assert!(arrays.bitwise_eq(&reference));
    }

    /// `for i in 0..N { b[0] = b[0] + a[i] }` — a reduction; marking the
    /// i-loop parallel is a race the sanitizer must report.
    #[test]
    fn sanitizer_flags_forced_parallel_reduction() {
        let mut b = ProgramBuilder::new("reduce", &["N"]);
        b.add_context_ineq(vec![1, -1]);
        b.add_array("a", 1);
        b.add_array("b", 1);
        b.add_statement(StatementSpec {
            name: "S1".into(),
            iters: vec!["i".into()],
            domain_ineqs: vec![vec![1, 0, 0], vec![-1, 1, -1]],
            beta: vec![0, 0],
            write: ("b".into(), vec![vec![0, 0, 0]]),
            reads: vec![
                ("b".into(), vec![vec![0, 0, 0]]),
                ("a".into(), vec![vec![1, 0, 0]]),
            ],
            body: Expr::Read(0) + Expr::Read(1),
        });
        let prog = b.build();
        let mut t = original_schedule(&prog);
        t.rows[1].par = pluto::Parallelism::Parallel;
        for sp in t.stmt_par.iter_mut() {
            sp[1] = pluto::Parallelism::Parallel;
        }
        let ast = generate(&prog, &t);
        let mut arrays = Arrays::new(vec![vec![16], vec![1]]);
        arrays.seed_with(|_, o| o as f64);
        let violations = run_sanitized(&prog, &ast, &[16], &mut arrays).unwrap_err();
        assert!(
            violations.iter().any(|v| v.contains("race")),
            "expected race reports, got {violations:?}"
        );
    }
}
