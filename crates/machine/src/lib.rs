//! Execution and measurement substrate — the `pluto-rs` stand-in for the
//! paper's Intel Q6600 quad-core + icc + OpenMP testbed.
//!
//! The paper evaluates transformed code by compiling with icc and running
//! on real hardware. We instead *execute the generated loop ASTs
//! directly*:
//!
//! * [`run_sequential`] — a deterministic interpreter over dense `f64`
//!   arrays; used both as the correctness oracle (original vs transformed
//!   programs must produce bitwise-identical arrays, since legality
//!   preserves each statement instance's inputs and per-instance flop
//!   order) and for wall-clock locality measurements;
//! * [`run_parallel`] — real multi-threaded execution via `std::thread`
//!   scoped threads: the OpenMP `parallel for` of the paper maps to a
//!   block-distributed thread team per parallel loop entry, with the
//!   paper's coarse-grained tile-schedule semantics (one implicit barrier
//!   per outer sequential iteration);
//! * [`run_with_cache`] — the same interpretation with every array access
//!   driven through a two-level set-associative write-allocate [`CacheSim`]
//!   (default geometry mirrors the paper's machine: 32 KB 8-way L1,
//!   4 MB 16-way L2, 64-byte lines), producing the locality metrics behind
//!   the single-core speedups of Figs. 6, 8, 10.
//!
//! DESIGN.md §3.1 justifies this substitution for the paper's hardware testbed.

mod arrays;
mod cache;
mod interp;
mod simulate;

pub use arrays::Arrays;
pub use cache::{CacheConfig, CacheSim, CacheStats};
pub use interp::{
    run_parallel, run_sanitized, run_sequential, run_with_cache, ExecStats, ParallelConfig,
};
pub use simulate::{simulate, MachineConfig, SimStats};
