//! Execution and measurement substrate — the `pluto-rs` stand-in for the
//! paper's Intel Q6600 quad-core + icc + OpenMP testbed.
//!
//! The paper evaluates transformed code by compiling with icc and running
//! on real hardware. We instead *execute the generated loop ASTs
//! directly*:
//!
//! * [`run_sequential`] — a deterministic interpreter over dense `f64`
//!   arrays; used both as the correctness oracle (original vs transformed
//!   programs must produce bitwise-identical arrays, since legality
//!   preserves each statement instance's inputs and per-instance flop
//!   order) and for wall-clock locality measurements;
//! * [`run_parallel`] — real multi-threaded execution over a persistent
//!   worker [`pool`] of condvar-parked threads: the OpenMP `parallel
//!   for` of the paper maps to a chunked dynamically-scheduled team per
//!   parallel loop entry (the dispatching thread participates as member
//!   0), with the paper's coarse-grained tile-schedule semantics (one
//!   implicit barrier per outer sequential iteration). The loop AST is
//!   lowered once to flat bytecode with precomputed affine access
//!   strides ([`compile_kernel`]) instead of being re-walked per
//!   instance; [`run_parallel_scoped`] keeps the legacy
//!   spawn-per-dispatch scoped-thread tree-walk as the differential
//!   reference;
//! * [`run_with_cache`] — the same interpretation with every array access
//!   driven through a two-level set-associative write-allocate [`CacheSim`]
//!   (default geometry mirrors the paper's machine: 32 KB 8-way L1,
//!   4 MB 16-way L2, 64-byte lines), producing the locality metrics behind
//!   the single-core speedups of Figs. 6, 8, 10.
//!
//! The substrate is also the *producer* side of the runtime-telemetry
//! story (`pluto_obs::trace` / `pluto_obs::exec`): when a profile
//! session or trace is active, [`run_parallel`] records per-thread
//! chunk times and begin/end events per dispatch,
//! [`run_with_cache_attributed`] attributes cache misses to the IR
//! arrays, and [`run_parallel_profiled`] returns the derived
//! load-imbalance/barrier-wait aggregate without a global session. With
//! both switches off the instrumentation reduces to one relaxed atomic
//! load per dispatch — no clock reads, no buffers.
//!
//! DESIGN.md §3.1 justifies this substitution for the paper's hardware testbed.

mod arrays;
mod cache;
mod compile;
mod exec;
mod interp;
mod mem;
pub mod pool;
mod simulate;

pub use arrays::Arrays;
pub use cache::{CacheConfig, CacheSim, CacheStats};
pub use compile::{
    compile_kernel, compile_kernel_with_extents, BodyOp, CAccess, CAff, CBound, CCond, CStmt,
    CompiledKernel, Instr, LeafOrigin, LoopOrigin, Provenance,
};
pub use exec::{
    chunk_len, chunk_plan, run_compiled, run_compiled_kernel, run_compiled_parallel,
    run_compiled_parallel_profiled, run_parallel, run_parallel_profiled, CHUNKS_PER_MEMBER,
    MIN_ITEMS_TO_ENLIST,
};
pub use interp::{
    run_parallel_scoped, run_parallel_scoped_profiled, run_sanitized, run_sequential,
    run_with_cache, run_with_cache_attributed, ExecStats, ParallelConfig,
};
pub use simulate::{simulate, MachineConfig, SimStats};
