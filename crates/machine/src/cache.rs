//! A two-level set-associative cache simulator with LRU replacement.
//!
//! Geometry defaults mirror the paper's Intel Core 2 Quad Q6600: 32 KB
//! 8-way L1 data cache and 4 MB 16-way L2, 64-byte lines. The simulator is
//! inclusive and write-allocate: every access touches L1; L1 misses go to
//! L2; L2 misses count as memory accesses.

/// Cache hierarchy geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Line size in bytes.
    pub line: u64,
    /// L1 capacity in bytes.
    pub l1_size: u64,
    /// L1 associativity.
    pub l1_assoc: usize,
    /// L2 capacity in bytes.
    pub l2_size: u64,
    /// L2 associativity.
    pub l2_assoc: usize,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            line: 64,
            l1_size: 32 * 1024,
            l1_assoc: 8,
            l2_size: 4 * 1024 * 1024,
            l2_assoc: 16,
        }
    }
}

/// Miss counts accumulated by a [`CacheSim`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses issued.
    pub accesses: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// L2 misses (memory accesses).
    pub l2_misses: u64,
}

impl CacheStats {
    /// L1 miss ratio.
    pub fn l1_miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.l1_misses as f64 / self.accesses as f64
        }
    }

    /// A simple cost model: cycles per access 1, plus L1-miss and L2-miss
    /// penalties (3 / 165 cycles, Core 2-era figures). Used to convert
    /// miss counts into a single locality score for the reports.
    pub fn cost_cycles(&self) -> u64 {
        self.accesses + 3 * self.l1_misses + 165 * self.l2_misses
    }
}

#[derive(Debug, Clone)]
struct Level {
    sets: Vec<Vec<u64>>, // per set: tags in LRU order (front = MRU)
    assoc: usize,
    num_sets: u64,
}

impl Level {
    fn new(size: u64, assoc: usize, line: u64) -> Level {
        let num_sets = (size / line / assoc as u64).max(1);
        Level {
            sets: vec![Vec::with_capacity(assoc); num_sets as usize],
            assoc,
            num_sets,
        }
    }

    /// Returns true on hit; updates LRU and allocates on miss.
    fn access(&mut self, line_addr: u64) -> bool {
        let set = (line_addr % self.num_sets) as usize;
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&t| t == line_addr) {
            let t = ways.remove(pos);
            ways.insert(0, t);
            true
        } else {
            if ways.len() == self.assoc {
                ways.pop();
            }
            ways.insert(0, line_addr);
            false
        }
    }
}

/// The two-level simulator.
#[derive(Debug, Clone)]
pub struct CacheSim {
    l1: Level,
    l2: Level,
    line: u64,
    /// Accumulated statistics.
    pub stats: CacheStats,
    /// Per-array attribution, indexed by IR array index; empty unless
    /// built with [`CacheSim::with_arrays`].
    per_array: Vec<CacheStats>,
}

impl CacheSim {
    /// Builds a simulator from a geometry.
    pub fn new(cfg: CacheConfig) -> CacheSim {
        CacheSim {
            l1: Level::new(cfg.l1_size, cfg.l1_assoc, cfg.line),
            l2: Level::new(cfg.l2_size, cfg.l2_assoc, cfg.line),
            line: cfg.line,
            stats: CacheStats::default(),
            per_array: Vec::new(),
        }
    }

    /// Builds a simulator that additionally attributes every access to
    /// one of `arrays` program arrays (index = IR array index). Use
    /// [`access_for`](CacheSim::access_for) to issue attributed
    /// accesses and [`per_array`](CacheSim::per_array) to read them
    /// back.
    pub fn with_arrays(cfg: CacheConfig, arrays: usize) -> CacheSim {
        let mut sim = CacheSim::new(cfg);
        sim.per_array = vec![CacheStats::default(); arrays];
        sim
    }

    /// Issues one byte-address access.
    #[inline]
    pub fn access(&mut self, addr: u64) {
        let line = addr / self.line;
        self.stats.accesses += 1;
        if !self.l1.access(line) {
            self.stats.l1_misses += 1;
            if !self.l2.access(line) {
                self.stats.l2_misses += 1;
            }
        }
    }

    /// Issues one access attributed to array `array`. Equivalent to
    /// [`access`](CacheSim::access) for the global totals; additionally
    /// bumps that array's slot when the simulator was built with
    /// [`with_arrays`](CacheSim::with_arrays) (out-of-range indices
    /// fall back to unattributed counting).
    #[inline]
    pub fn access_for(&mut self, array: usize, addr: u64) {
        let line = addr / self.line;
        self.stats.accesses += 1;
        let (mut l1_miss, mut l2_miss) = (0u64, 0u64);
        if !self.l1.access(line) {
            l1_miss = 1;
            if !self.l2.access(line) {
                l2_miss = 1;
            }
        }
        self.stats.l1_misses += l1_miss;
        self.stats.l2_misses += l2_miss;
        if let Some(slot) = self.per_array.get_mut(array) {
            slot.accesses += 1;
            slot.l1_misses += l1_miss;
            slot.l2_misses += l2_miss;
        }
    }

    /// Per-array stats recorded via [`access_for`](CacheSim::access_for);
    /// empty for simulators built with [`new`](CacheSim::new).
    pub fn per_array(&self) -> &[CacheStats] {
        &self.per_array
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_streaming_misses_once_per_line() {
        let mut c = CacheSim::new(CacheConfig::default());
        for i in 0..1024u64 {
            c.access(i * 8);
        }
        assert_eq!(c.stats.accesses, 1024);
        // 1024 doubles = 128 lines.
        assert_eq!(c.stats.l1_misses, 128);
        assert_eq!(c.stats.l2_misses, 128);
    }

    #[test]
    fn reuse_hits_in_l1() {
        let mut c = CacheSim::new(CacheConfig::default());
        for _ in 0..10 {
            c.access(0);
        }
        assert_eq!(c.stats.l1_misses, 1);
    }

    #[test]
    fn capacity_eviction() {
        // Working set of 64 KB > 32 KB L1 but < L2: second sweep misses in
        // L1, hits in L2.
        let mut c = CacheSim::new(CacheConfig::default());
        let lines = (64 * 1024) / 64;
        for _ in 0..2 {
            for l in 0..lines {
                c.access(l as u64 * 64);
            }
        }
        assert_eq!(c.stats.l1_misses, 2 * lines as u64);
        assert_eq!(c.stats.l2_misses, lines as u64);
    }

    #[test]
    fn small_working_set_second_sweep_free() {
        let mut c = CacheSim::new(CacheConfig::default());
        let lines = (16 * 1024) / 64; // 16 KB fits L1
        for _ in 0..2 {
            for l in 0..lines {
                c.access(l as u64 * 64);
            }
        }
        assert_eq!(c.stats.l1_misses, lines as u64);
    }
}

#[cfg(test)]
mod assoc_tests {
    use super::*;

    #[test]
    fn conflict_misses_beyond_associativity() {
        // 9 lines mapping to the same set of an 8-way cache thrash.
        let cfg = CacheConfig::default();
        let mut c = CacheSim::new(cfg);
        let sets = cfg.l1_size / cfg.line / cfg.l1_assoc as u64;
        for round in 0..3 {
            for k in 0..9u64 {
                c.access(k * sets * cfg.line);
            }
            let _ = round;
        }
        // With LRU and 9 > 8 ways, every access misses L1 after warmup.
        assert_eq!(c.stats.l1_misses, 27);
    }

    #[test]
    fn within_associativity_no_thrash() {
        let cfg = CacheConfig::default();
        let mut c = CacheSim::new(cfg);
        let sets = cfg.l1_size / cfg.line / cfg.l1_assoc as u64;
        for _ in 0..3 {
            for k in 0..8u64 {
                c.access(k * sets * cfg.line);
            }
        }
        assert_eq!(c.stats.l1_misses, 8); // cold misses only
    }

    #[test]
    fn per_array_attribution_partitions_totals() {
        let cfg = CacheConfig::default();
        let mut plain = CacheSim::new(cfg);
        let mut attr = CacheSim::with_arrays(cfg, 2);
        // Two interleaved streams in disjoint address ranges.
        for i in 0..512u64 {
            plain.access(i * 8);
            plain.access((1 << 24) | (i * 8));
            attr.access_for(0, i * 8);
            attr.access_for(1, (1 << 24) | (i * 8));
        }
        // Attribution must not change the simulated totals...
        assert_eq!(attr.stats, plain.stats);
        // ...and the per-array slots must partition them exactly.
        let per = attr.per_array();
        assert_eq!(per.len(), 2);
        assert_eq!(per[0].accesses + per[1].accesses, attr.stats.accesses);
        assert_eq!(per[0].l1_misses + per[1].l1_misses, attr.stats.l1_misses);
        assert_eq!(per[0].l2_misses + per[1].l2_misses, attr.stats.l2_misses);
        assert_eq!(per[0].accesses, 512);
        // `new` keeps the unattributed fast path: no slots at all, and
        // out-of-range indices on an attributed sim still count globally.
        assert!(plain.per_array().is_empty());
        attr.access_for(99, 0);
        assert_eq!(attr.stats.accesses, 1025);
    }

    #[test]
    fn cost_model_orders_levels() {
        let a = CacheStats {
            accesses: 100,
            l1_misses: 10,
            l2_misses: 0,
        };
        let b = CacheStats {
            accesses: 100,
            l1_misses: 10,
            l2_misses: 10,
        };
        assert!(b.cost_cycles() > a.cost_cycles());
        assert!((a.l1_miss_rate() - 0.1).abs() < 1e-12);
    }
}
