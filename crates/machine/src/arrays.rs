//! Dense `f64` tensors backing program execution.

use pluto_linalg::Int;

/// The array store for one program execution: one dense row-major `f64`
/// buffer per declared array.
#[derive(Debug, Clone, PartialEq)]
pub struct Arrays {
    data: Vec<Vec<f64>>,
    extents: Vec<Vec<usize>>,
    /// Per-array base byte address in the simulated flat address space
    /// (arrays are laid out back-to-back, line-aligned).
    bases: Vec<u64>,
}

impl Arrays {
    /// Allocates zero-initialized arrays with the given per-array extents.
    pub fn new(extents: Vec<Vec<usize>>) -> Arrays {
        let mut bases = Vec::with_capacity(extents.len());
        let mut next: u64 = 0;
        let data = extents
            .iter()
            .map(|e| {
                let len: usize = e.iter().product::<usize>().max(1);
                bases.push(next);
                // Line-align each array in the simulated address space.
                next += (len as u64 * 8).div_ceil(64) * 64;
                vec![0.0; len]
            })
            .collect();
        Arrays {
            data,
            extents,
            bases,
        }
    }

    /// Number of arrays.
    pub fn num_arrays(&self) -> usize {
        self.data.len()
    }

    /// Extents of array `a`.
    pub fn extents(&self, a: usize) -> &[usize] {
        &self.extents[a]
    }

    /// Seeds every cell with `f(array_index, flat_offset)`.
    pub fn seed_with(&mut self, f: impl Fn(usize, usize) -> f64) {
        for (a, buf) in self.data.iter_mut().enumerate() {
            for (o, v) in buf.iter_mut().enumerate() {
                *v = f(a, o);
            }
        }
    }

    /// Flattens subscripts into an offset.
    ///
    /// # Panics
    /// Panics on out-of-bounds or negative subscripts (always a bug in the
    /// kernel definition or the transformation pipeline).
    #[inline]
    pub fn offset(&self, a: usize, subs: &[Int]) -> usize {
        let ext = &self.extents[a];
        debug_assert_eq!(subs.len(), ext.len());
        let mut off = 0usize;
        for (k, &s) in subs.iter().enumerate() {
            let e = ext[k];
            assert!(
                s >= 0 && (s as usize) < e,
                "array {a}: subscript {k} = {s} out of 0..{e}"
            );
            off = off * e + s as usize;
        }
        off
    }

    /// Reads a cell by precomputed offset.
    #[inline]
    pub fn load(&self, a: usize, off: usize) -> f64 {
        self.data[a][off]
    }

    /// Writes a cell by precomputed offset.
    #[inline]
    pub fn store(&mut self, a: usize, off: usize, v: f64) {
        self.data[a][off] = v;
    }

    /// Simulated byte address of a cell (for the cache simulator).
    #[inline]
    pub fn address(&self, a: usize, off: usize) -> u64 {
        self.bases[a] + off as u64 * 8
    }

    /// Exact comparison against another store (the transformed-vs-original
    /// oracle: results must be bitwise identical).
    pub fn bitwise_eq(&self, other: &Arrays) -> bool {
        self.extents == other.extents
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(x, y)| x.iter().zip(y).all(|(a, b)| a.to_bits() == b.to_bits()))
    }

    /// Raw parts for the parallel executor.
    pub(crate) fn raw(&mut self) -> Vec<*mut f64> {
        self.data.iter_mut().map(|b| b.as_mut_ptr()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_and_indexing() {
        let mut a = Arrays::new(vec![vec![3, 4], vec![5]]);
        assert_eq!(a.offset(0, &[2, 3]), 11);
        assert_eq!(a.offset(1, &[4]), 4);
        a.store(0, 11, 2.5);
        assert_eq!(a.load(0, 11), 2.5);
        // Second array starts on a fresh cache line.
        assert_eq!(a.address(1, 0) % 64, 0);
        assert!(a.address(1, 0) >= 12 * 8);
    }

    #[test]
    #[should_panic(expected = "out of 0..")]
    fn oob_panics() {
        let a = Arrays::new(vec![vec![3]]);
        a.offset(0, &[3]);
    }

    #[test]
    fn bitwise_compare() {
        let mut a = Arrays::new(vec![vec![4]]);
        let mut b = Arrays::new(vec![vec![4]]);
        a.seed_with(|x, o| (x + o) as f64);
        b.seed_with(|x, o| (x + o) as f64);
        assert!(a.bitwise_eq(&b));
        b.store(0, 2, -1.0);
        assert!(!a.bitwise_eq(&b));
    }
}
