//! The persistent worker pool behind [`run_parallel`](crate::run_parallel).
//!
//! The implementation moved to the leaf crate `pluto-pool` so the
//! parallel dependence analyzer in `pluto_ir` (which sits *below* this
//! crate in the dependency graph) can dispatch over the same
//! process-wide team — one pool, one `spawn_count`, whichever layer
//! warms it first. This module re-exports the pieces the executor and
//! its tests use; see `pluto_pool` for the design notes (sense-reversing
//! start barrier, countdown join, member-0 participation, panic
//! propagation).

pub use pluto_pool::{global, spawn_count, ThreadPool};
