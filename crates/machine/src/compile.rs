//! The kernel compiler: lowers a generated loop [`Ast`] once into flat
//! bytecode so execution never re-walks the tree or re-evaluates access
//! matrices per instance.
//!
//! Three things are precomputed at compile time, all per the paper's
//! observation that transformed code must stay cheap at runtime:
//!
//! * **Control flow** becomes a flat `Vec<Instr>` interpreted with a
//!   program counter and a loop-frame stack — no recursion, no
//!   `match` on boxed children per node visit.
//! * **Affine accesses** are folded into strided address polynomials:
//!   the row-major offset `Σ_k row_k(iters, params) · Π_{j>k} extent_j`
//!   is expanded once into `base + Σ_d stride_d · vals[slot_d]`, with
//!   the parameter contribution folded into `base` (the executable
//!   parameters are known at compile time). The inner loop is adds and
//!   multiplies on `i64`, not matrix evaluation on `i128`.
//! * **Statement bodies** become postfix op tapes evaluated on a small
//!   stack. Postfix order is the post-order of the expression tree, so
//!   the f64 operation order — and therefore the result bits — is
//!   identical to the tree-walk interpreter's recursive evaluation.
//!
//! Bounds/guard/let expressions are mirrored into `i64` (`Int = i128`
//! in the rest of the workspace); iteration coordinates and extents at
//! executable sizes are far below `i64` range. Memory safety of the
//! raw-pointer parallel backend is enforced by a per-access check of
//! the *flattened* offset against the array length; the per-subscript
//! range check (which distinguishes "wrapped into the neighboring row"
//! from a true out-of-bounds) remains with the tree-walk interpreter
//! and the static bounds prover, which the differential battery runs
//! against this engine on every fuzz kernel.

use crate::arrays::Arrays;
use pluto_codegen::{AffExpr, Ast, Bound, CondRow};
use pluto_ir::{Expr, Program};

/// An affine expression over variable slots, in `i64`.
///
/// Fields are public so the static bytecode verifier
/// (`pluto-analyze`'s `bytecode` module) can compare compiled
/// expressions coefficient-by-coefficient against their AST source —
/// and so golden tests can corrupt them to prove the checks fire.
#[derive(Debug, Clone)]
pub struct CAff {
    /// `(variable slot, coefficient)` pairs.
    pub terms: Vec<(u32, i64)>,
    /// Constant term.
    pub konst: i64,
    /// Divisor (`>= 1`; rounding direction decided by context).
    pub div: i64,
}

impl CAff {
    fn from_ast(e: &AffExpr) -> CAff {
        CAff {
            terms: e
                .terms
                .iter()
                .map(|&(v, c)| (v as u32, narrow(c)))
                .collect(),
            konst: narrow(e.konst),
            div: narrow(e.div),
        }
    }

    #[inline]
    fn numer(&self, vals: &[i64]) -> i64 {
        let mut v = self.konst;
        for &(var, c) in &self.terms {
            v += c * vals[var as usize];
        }
        v
    }

    /// `floord` evaluation (`div >= 1` by construction).
    #[inline]
    pub(crate) fn eval_floor(&self, vals: &[i64]) -> i64 {
        let n = self.numer(vals);
        if self.div == 1 {
            n
        } else {
            n.div_euclid(self.div)
        }
    }

    /// `ceild` evaluation.
    #[inline]
    fn eval_ceil(&self, vals: &[i64]) -> i64 {
        let n = self.numer(vals);
        if self.div == 1 {
            n
        } else {
            -(-n).div_euclid(self.div)
        }
    }
}

/// A loop bound: min-of-max (`ceild`) lower, max-of-min (`floord`) upper.
#[derive(Debug, Clone)]
pub struct CBound {
    /// One inner list per contributing statement (mirrors
    /// [`Bound::groups`]).
    pub groups: Vec<Vec<CAff>>,
}

impl CBound {
    fn from_ast(b: &Bound) -> CBound {
        CBound {
            groups: b
                .groups
                .iter()
                .map(|g| g.iter().map(CAff::from_ast).collect())
                .collect(),
        }
    }

    #[inline]
    pub(crate) fn eval_lower(&self, vals: &[i64]) -> i64 {
        self.groups
            .iter()
            .map(|g| {
                g.iter()
                    .map(|e| e.eval_ceil(vals))
                    .max()
                    .expect("empty max")
            })
            .min()
            .expect("unbounded lower bound")
    }

    #[inline]
    pub(crate) fn eval_upper(&self, vals: &[i64]) -> i64 {
        self.groups
            .iter()
            .map(|g| {
                g.iter()
                    .map(|e| e.eval_floor(vals))
                    .min()
                    .expect("empty min")
            })
            .max()
            .expect("unbounded upper bound")
    }
}

/// A guard/filter condition row: `Σ terms + konst >= 0` (or `== 0`).
#[derive(Debug, Clone)]
pub struct CCond {
    /// `(variable slot, coefficient)` pairs.
    pub terms: Vec<(u32, i64)>,
    /// Constant term.
    pub konst: i64,
    /// Equality instead of `>=`.
    pub eq: bool,
}

impl CCond {
    fn from_ast(c: &CondRow) -> CCond {
        CCond {
            terms: c
                .terms
                .iter()
                .map(|&(v, k)| (v as u32, narrow(k)))
                .collect(),
            konst: narrow(c.konst),
            eq: c.eq,
        }
    }

    #[inline]
    fn holds(&self, vals: &[i64]) -> bool {
        let mut v = self.konst;
        for &(var, c) in &self.terms {
            v += c * vals[var as usize];
        }
        if self.eq {
            v == 0
        } else {
            v >= 0
        }
    }

    #[inline]
    pub(crate) fn all_hold(conds: &[CCond], vals: &[i64]) -> bool {
        conds.iter().all(|c| c.holds(vals))
    }
}

/// One strided affine access: `off = base + Σ stride_d · vals[slot_d]`,
/// valid iff `0 <= off < len` (checked by the executor before the raw
/// load/store).
#[derive(Debug, Clone)]
pub struct CAccess {
    /// Array id in the program.
    pub array: u32,
    /// Constant offset (parameter and constant contributions folded in).
    pub base: i64,
    /// `(variable slot, stride)` pairs over the statement's original
    /// iterators.
    pub strides: Vec<(u32, i64)>,
    /// Flattened array length the offset is checked against.
    pub len: u32,
}

impl CAccess {
    /// Flattened offset; panics (like the tree-walk interpreter's
    /// subscript assert) when the access leaves the array.
    #[inline]
    pub(crate) fn offset(&self, vals: &[i64]) -> usize {
        let mut off = self.base;
        for &(slot, s) in &self.strides {
            off += s * vals[slot as usize];
        }
        assert!(
            off >= 0 && (off as u64) < self.len as u64,
            "array {}: flattened offset {off} out of 0..{}",
            self.array,
            self.len
        );
        off as usize
    }
}

/// One postfix statement-body operation.
#[derive(Debug, Clone, Copy)]
pub enum BodyOp {
    /// Push the value loaded for read access `k`.
    Read(u16),
    /// Push a literal.
    Lit(f64),
    /// Push `vals[slot] as f64` (the iterator value, pre-resolved to
    /// its variable slot).
    Iter(u32),
    Add,
    Sub,
    Mul,
    Div,
}

/// One compiled statement leaf: strided accesses plus the body tape.
#[derive(Debug, Clone)]
pub struct CStmt {
    /// Statement id (indexes the suppression counters).
    pub stmt: u32,
    /// The folded write access.
    pub write: CAccess,
    /// Folded read accesses, in statement-read order.
    pub reads: Vec<CAccess>,
    /// Postfix body tape (post-order of the expression tree).
    pub body: Vec<BodyOp>,
    /// Flops per executed instance (for [`ExecStats`](crate::ExecStats)).
    pub flops: u64,
}

/// Flat bytecode instruction. `exit` indices point past the matching
/// [`Instr::LoopEnd`] / guarded region, so a failed bound or guard is a
/// single `pc` assignment.
#[derive(Debug, Clone)]
pub enum Instr {
    /// Enter a loop: evaluate bounds, bind `var`, push the upper bound
    /// on the frame stack — or jump to `exit` when empty.
    Loop {
        var: u32,
        lb: u32,
        ub: u32,
        parallel: bool,
        /// Display name id (for dispatch records and trace spans).
        name: u32,
        exit: u32,
    },
    /// Bottom of a loop body: increment and jump to `top + 1`, or pop
    /// the frame and fall through.
    LoopEnd {
        var: u32,
        top: u32,
    },
    /// Bind `var := floord(expr)`.
    Let {
        var: u32,
        expr: u32,
    },
    /// Fall through when conds `[lo, hi)` all hold, else jump to `exit`.
    Guard {
        lo: u32,
        hi: u32,
        exit: u32,
    },
    /// Evaluate conds `[lo, hi)` once; suppress `stmt` in the region up
    /// to the matching [`Instr::FilterExit`] when they fail.
    FilterEnter {
        stmt: u32,
        lo: u32,
        hi: u32,
    },
    FilterExit {
        stmt: u32,
    },
    /// Execute statement leaf `leaf` unless its statement is suppressed.
    Stmt {
        leaf: u32,
    },
}

/// Where one compiled statement leaf came from: the IR statement and the
/// variable slots that hold its original iterator values. Recorded at
/// compile time (instead of being discarded with the AST) so the static
/// bytecode verifier can re-expand every folded access against the IR
/// access matrices, and so `--trace` dispatch events can name the source
/// statements a chunk executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeafOrigin {
    /// IR statement id.
    pub stmt: usize,
    /// Slot ids of the statement's original iterators, in statement
    /// order (a copy of the AST leaf's `orig_dims`).
    pub orig_dims: Vec<usize>,
}

/// Where one compiled loop came from. One entry per [`Instr::Loop`], in
/// bytecode (= lowering) order, keyed by the instruction's `pc`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopOrigin {
    /// Index of the [`Instr::Loop`] in [`CompiledKernel::code`].
    pub pc: usize,
    /// Scattering row the loop scans (`None` for leaf domain-recovery
    /// loops) — a copy of the AST loop's `level`.
    pub level: Option<usize>,
    /// Bitmask of statement ids with a leaf inside the loop body
    /// (statement ids `>= 64` saturate into bit 63).
    pub stmts: u64,
}

/// The AST↔bytecode provenance table: which statement each leaf was
/// compiled from and which scattering row each loop scans.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Provenance {
    /// Per compiled leaf, aligned with [`CompiledKernel::leaves`].
    pub leaves: Vec<LeafOrigin>,
    /// Per compiled loop, in `pc` order.
    pub loops: Vec<LoopOrigin>,
}

impl Provenance {
    /// Looks up the loop origin for the [`Instr::Loop`] at `pc`.
    pub fn loop_at(&self, pc: usize) -> Option<&LoopOrigin> {
        self.loops
            .binary_search_by_key(&pc, |l| l.pc)
            .ok()
            .map(|i| &self.loops[i])
    }
}

/// A kernel lowered to bytecode for specific parameter values and array
/// extents. Execute it with [`run_compiled_kernel`](crate::run_compiled_kernel)
/// or [`run_compiled_parallel`](crate::run_compiled_parallel) against
/// arrays of the same shape.
///
/// All fields are public: the compiled form is itself an auditable
/// artifact — `pluto-analyze`'s bytecode verifier walks it in lockstep
/// with the source AST, and golden tests mutate it to prove each check
/// rejects corrupted bytecode. Mutating a kernel by hand and executing
/// it voids the safety argument of the raw-pointer parallel backend.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// Flat instruction stream.
    pub code: Vec<Instr>,
    /// Lower-bound forest, indexed by [`Instr::Loop`]'s `lb`.
    pub lower: Vec<CBound>,
    /// Upper-bound forest, indexed by [`Instr::Loop`]'s `ub`.
    pub upper: Vec<CBound>,
    /// Let-binding expressions, indexed by [`Instr::Let`]'s `expr`.
    pub exprs: Vec<CAff>,
    /// Guard/filter condition pool, indexed by `[lo, hi)` ranges.
    pub conds: Vec<CCond>,
    /// Statement leaves, indexed by [`Instr::Stmt`]'s `leaf`.
    pub leaves: Vec<CStmt>,
    /// Loop display names, indexed by [`Instr::Loop`]'s `name`.
    pub names: Vec<String>,
    /// Slot-vector size (variables incl. parameters).
    pub num_slots: usize,
    /// Statement count of the source program (sizes the suppression
    /// counters).
    pub num_stmts: usize,
    /// Parameter values baked into bases and the slot prefix.
    pub params: Vec<i64>,
    /// Array extents the strides were derived for (shape-checked at
    /// execution time).
    pub extents: Vec<Vec<usize>>,
    /// AST↔bytecode provenance (which statement each leaf came from,
    /// which scattering row each loop scans).
    pub provenance: Provenance,
}

fn narrow(x: pluto_linalg::Int) -> i64 {
    i64::try_from(x).expect("coefficient exceeds i64 (not reachable at executable sizes)")
}

struct Lowerer<'p> {
    prog: &'p Program,
    params: Vec<i64>,
    extents: Vec<Vec<usize>>,
    code: Vec<Instr>,
    lower: Vec<CBound>,
    upper: Vec<CBound>,
    exprs: Vec<CAff>,
    conds: Vec<CCond>,
    leaves: Vec<CStmt>,
    names: Vec<String>,
    provenance: Provenance,
}

impl Lowerer<'_> {
    fn push_conds(&mut self, conds: &[CondRow]) -> (u32, u32) {
        let lo = self.conds.len() as u32;
        self.conds.extend(conds.iter().map(CCond::from_ast));
        (lo, self.conds.len() as u32)
    }

    fn lower(&mut self, ast: &Ast) {
        match ast {
            Ast::Seq(v) => v.iter().for_each(|a| self.lower(a)),
            Ast::Loop(l) => {
                let lb = self.lower_bound_id(&l.lb);
                let ub = self.upper_bound_id(&l.ub);
                let name = self.names.len() as u32;
                self.names.push(l.name.clone());
                let at = self.code.len();
                self.code.push(Instr::Loop {
                    var: l.var as u32,
                    lb,
                    ub,
                    parallel: l.parallel,
                    name,
                    exit: 0, // patched below
                });
                // Loop provenance entries stay pc-sorted because `at` is
                // allocated before the body's nested loops are lowered.
                let prov_at = self.provenance.loops.len();
                self.provenance.loops.push(LoopOrigin {
                    pc: at,
                    level: l.level,
                    stmts: 0,
                });
                let leaves_before = self.leaves.len();
                self.lower(&l.body);
                let mut mask = 0u64;
                for leaf in &self.leaves[leaves_before..] {
                    mask |= 1u64 << (leaf.stmt as u64).min(63);
                }
                self.provenance.loops[prov_at].stmts = mask;
                self.code.push(Instr::LoopEnd {
                    var: l.var as u32,
                    top: at as u32,
                });
                let exit = self.code.len() as u32;
                if let Instr::Loop { exit: e, .. } = &mut self.code[at] {
                    *e = exit;
                }
            }
            Ast::Let {
                var, expr, body, ..
            } => {
                let id = self.exprs.len() as u32;
                self.exprs.push(CAff::from_ast(expr));
                self.code.push(Instr::Let {
                    var: *var as u32,
                    expr: id,
                });
                self.lower(body);
            }
            Ast::Guard { conds, body } => {
                let (lo, hi) = self.push_conds(conds);
                let at = self.code.len();
                self.code.push(Instr::Guard { lo, hi, exit: 0 });
                self.lower(body);
                let exit = self.code.len() as u32;
                if let Instr::Guard { exit: e, .. } = &mut self.code[at] {
                    *e = exit;
                }
            }
            Ast::Filter { stmt, conds, body } => {
                let (lo, hi) = self.push_conds(conds);
                self.code.push(Instr::FilterEnter {
                    stmt: *stmt as u32,
                    lo,
                    hi,
                });
                self.lower(body);
                self.code.push(Instr::FilterExit { stmt: *stmt as u32 });
            }
            Ast::Stmt { stmt, orig_dims } => {
                let leaf = self.lower_stmt(*stmt, orig_dims);
                self.code.push(Instr::Stmt { leaf });
            }
        }
    }

    fn lower_bound_id(&mut self, b: &Bound) -> u32 {
        self.lower.push(CBound::from_ast(b));
        (self.lower.len() - 1) as u32
    }

    fn upper_bound_id(&mut self, b: &Bound) -> u32 {
        self.upper.push(CBound::from_ast(b));
        (self.upper.len() - 1) as u32
    }

    /// Folds one access map (rows over `[iters..., params..., 1]`) into
    /// a strided polynomial over variable slots, with the parameter and
    /// constant contributions collapsed into `base`.
    fn lower_access(
        &self,
        array: usize,
        rows: &[Vec<pluto_linalg::Int>],
        orig_dims: &[usize],
    ) -> CAccess {
        let ext = &self.extents[array];
        assert_eq!(rows.len(), ext.len(), "access rank mismatch");
        let n_iters = orig_dims.len();
        let n_params = self.params.len();
        // Row-major: row k is scaled by the product of trailing extents.
        let mut rstride = vec![1i64; rows.len()];
        for k in (0..rows.len().saturating_sub(1)).rev() {
            rstride[k] = rstride[k + 1] * ext[k + 1] as i64;
        }
        let mut base = 0i64;
        let mut per_dim = vec![0i64; n_iters];
        for (k, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), n_iters + n_params + 1, "access row width");
            base += narrow(row[n_iters + n_params]) * rstride[k];
            for (p, &pv) in self.params.iter().enumerate() {
                base += narrow(row[n_iters + p]) * pv * rstride[k];
            }
            for d in 0..n_iters {
                per_dim[d] += narrow(row[d]) * rstride[k];
            }
        }
        let strides = per_dim
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c != 0)
            .map(|(d, &c)| (orig_dims[d] as u32, c))
            .collect();
        let len: usize = ext.iter().product::<usize>().max(1);
        CAccess {
            array: array as u32,
            base,
            strides,
            len: u32::try_from(len).expect("array length exceeds u32"),
        }
    }

    /// Emits the postfix tape for a statement body (post-order = the
    /// tree-walk's recursive evaluation order, hence bit-exact f64).
    fn lower_body(&self, e: &Expr, orig_dims: &[usize], out: &mut Vec<BodyOp>) {
        match e {
            Expr::Read(k) => out.push(BodyOp::Read(*k as u16)),
            Expr::Lit(v) => out.push(BodyOp::Lit(*v)),
            Expr::Iter(k) => out.push(BodyOp::Iter(orig_dims[*k] as u32)),
            Expr::Add(a, b) => {
                self.lower_body(a, orig_dims, out);
                self.lower_body(b, orig_dims, out);
                out.push(BodyOp::Add);
            }
            Expr::Sub(a, b) => {
                self.lower_body(a, orig_dims, out);
                self.lower_body(b, orig_dims, out);
                out.push(BodyOp::Sub);
            }
            Expr::Mul(a, b) => {
                self.lower_body(a, orig_dims, out);
                self.lower_body(b, orig_dims, out);
                out.push(BodyOp::Mul);
            }
            Expr::Div(a, b) => {
                self.lower_body(a, orig_dims, out);
                self.lower_body(b, orig_dims, out);
                out.push(BodyOp::Div);
            }
        }
    }

    fn lower_stmt(&mut self, stmt: usize, orig_dims: &[usize]) -> u32 {
        let s = &self.prog.stmts[stmt];
        debug_assert_eq!(orig_dims.len(), s.num_iters());
        let write = self.lower_access(s.write.array, &s.write.map, orig_dims);
        let reads = s
            .reads
            .iter()
            .map(|r| self.lower_access(r.array, &r.map, orig_dims))
            .collect();
        let mut body = Vec::new();
        self.lower_body(&s.body, orig_dims, &mut body);
        self.leaves.push(CStmt {
            stmt: stmt as u32,
            write,
            reads,
            body,
            flops: s.body.num_ops() as u64,
        });
        self.provenance.leaves.push(LeafOrigin {
            stmt,
            orig_dims: orig_dims.to_vec(),
        });
        (self.leaves.len() - 1) as u32
    }
}

/// Lowers `ast` to bytecode for the given parameter values and the
/// extents of `arrays`. One compile serves any number of executions
/// against same-shaped arrays (the bench harness compiles once and
/// samples many runs).
pub fn compile_kernel(
    prog: &Program,
    ast: &Ast,
    params: &[i64],
    arrays: &Arrays,
) -> CompiledKernel {
    let _span = pluto_obs::span("execute/compile");
    let extents: Vec<Vec<usize>> = (0..arrays.num_arrays())
        .map(|a| arrays.extents(a).to_vec())
        .collect();
    compile_kernel_with_extents(prog, ast, params, &extents)
}

/// Like [`compile_kernel`], but taking the array extents directly — for
/// callers that need the compiled form without allocating arrays (the
/// static bytecode verifier compiles the audited AST this way). Emits no
/// `execute/*` phase span, so analysis-time compiles don't masquerade as
/// execution in profiles.
pub fn compile_kernel_with_extents(
    prog: &Program,
    ast: &Ast,
    params: &[i64],
    extents: &[Vec<usize>],
) -> CompiledKernel {
    assert_eq!(params.len(), prog.num_params(), "parameter count mismatch");
    let mut lw = Lowerer {
        prog,
        params: params.to_vec(),
        extents: extents.to_vec(),
        code: Vec::new(),
        lower: Vec::new(),
        upper: Vec::new(),
        exprs: Vec::new(),
        conds: Vec::new(),
        leaves: Vec::new(),
        names: Vec::new(),
        provenance: Provenance::default(),
    };
    lw.lower(ast);
    let num_slots = ast.num_vars().max(params.len());
    CompiledKernel {
        code: lw.code,
        lower: lw.lower,
        upper: lw.upper,
        exprs: lw.exprs,
        conds: lw.conds,
        leaves: lw.leaves,
        names: lw.names,
        num_slots,
        num_stmts: prog.stmts.len(),
        params: params.to_vec(),
        extents: lw.extents,
        provenance: lw.provenance,
    }
}
