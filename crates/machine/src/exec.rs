//! The compiled-kernel executor: runs [`CompiledKernel`] bytecode
//! sequentially or over the persistent worker pool.
//!
//! This is the engine behind [`run_parallel`] / [`run_parallel_profiled`]
//! since the pool/bytecode rework (DESIGN.md §9): one compile per run
//! (or per bench kernel), then a pc/frame-stack interpretation whose
//! inner loop is strided `i64` address arithmetic and a postfix f64
//! tape — no AST recursion, no access-matrix evaluation per instance.
//!
//! Parallel loops dispatch chunked dynamic work lists onto the global
//! [`pool`](crate::pool): members (the coordinator plus enlisted worker
//! slots) grab chunks off a shared atomic counter, which is what erases
//! the block-partition load imbalance the telemetry attributed on the
//! wavefront benches. Small dispatches (fewer than
//! [`MIN_ITEMS_TO_ENLIST`] items) run inline on the coordinator without
//! waking anyone — on the bench kernels most wavefront fronts are tiny
//! and the old engine paid a spawn round for each.
//!
//! Telemetry parity with the scoped engine: one `Dispatch` record per
//! parallel-loop entry (same counting rule, so `bench_diff`'s hard
//! `dispatches` gate is unaffected), per-member chunk times and
//! instance counts, coordinator trace spans on tid 0 and stable
//! worker-slot tids `1..=width`, and the same `machine.instances`
//! flush discipline. All of it is gated exactly like the old path:
//! with no profile session, no trace, and no local profile request the
//! engine takes no clock reads and allocates no buffers.

use crate::arrays::Arrays;
use crate::compile::{compile_kernel, BodyOp, CCond, CompiledKernel, Instr};
use crate::interp::{ExecStats, ParallelConfig};
use crate::mem::{Direct, Mem, RawMem, SendPtr};
use crate::pool;
use pluto_codegen::Ast;
use pluto_ir::Program;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Parallel loops with fewer work items than this run inline on the
/// coordinator: waking a parked worker costs a futex round trip, which
/// a 2-item wavefront front never amortizes.
///
/// Public (rather than a buried literal) because the static bytecode
/// verifier models the dispatch partition with the same constants — the
/// executor and the verifier can't drift apart.
pub const MIN_ITEMS_TO_ENLIST: usize = 4;

/// Chunks per member the dynamic scheduler aims for; more chunks mean
/// finer balancing but more atomic traffic on the shared counter.
/// Shared with the verifier's partition model like
/// [`MIN_ITEMS_TO_ENLIST`].
pub const CHUNKS_PER_MEMBER: usize = 4;

/// Chunk length the dynamic scheduler uses for a dispatch of `n_items`
/// work items over a team of `width + 1` members (the coordinator plus
/// `width` enlisted workers). This is *the* partition rule: both the
/// executor's dispatch claim loop and the verifier's [`chunk_plan`]
/// model call it.
#[inline]
pub fn chunk_len(n_items: usize, width: usize) -> usize {
    (n_items / ((width + 1) * CHUNKS_PER_MEMBER)).max(1)
}

/// The exact chunk ranges a dispatch of `n_items` items over team width
/// `width` carves its work list into: half-open `(lo, hi)` index ranges
/// claimed off the shared counter in order. The static verifier proves
/// this plan is a disjoint exact cover of `0..n_items`; the executor
/// realizes the same arithmetic incrementally in its claim loop.
pub fn chunk_plan(n_items: usize, width: usize) -> Vec<(usize, usize)> {
    if n_items == 0 {
        return Vec::new();
    }
    let chunk = chunk_len(n_items, width);
    let nchunks = n_items.div_ceil(chunk);
    (0..nchunks)
        .map(|c| (c * chunk, ((c + 1) * chunk).min(n_items)))
        .collect()
}

/// Per-member interpreter state (slot vector, loop frames, filter
/// bookkeeping, scratch stacks, stats).
struct State {
    vals: Vec<i64>,
    /// Upper bounds of open loop frames.
    ubs: Vec<i64>,
    /// Pass/fail of open filters (mirrors the suppression counters).
    fstack: Vec<bool>,
    /// Per-statement suppression depth from enclosing filters.
    suppressed: Vec<u32>,
    /// Loaded read values, indexed by read id.
    reads: Vec<f64>,
    /// Postfix evaluation stack.
    stack: Vec<f64>,
    stats: ExecStats,
}

impl State {
    fn new(ck: &CompiledKernel) -> State {
        let mut vals = vec![0i64; ck.num_slots];
        vals[..ck.params.len()].copy_from_slice(&ck.params);
        State {
            vals,
            ubs: Vec::new(),
            fstack: Vec::new(),
            suppressed: vec![0; ck.num_stmts],
            reads: Vec::new(),
            stack: Vec::new(),
            stats: ExecStats::default(),
        }
    }

    /// A team member's state: same bindings and filter context as the
    /// coordinator at the dispatch point, fresh counters.
    fn fork(&self) -> State {
        State {
            vals: self.vals.clone(),
            ubs: Vec::new(),
            fstack: Vec::new(),
            suppressed: self.suppressed.clone(),
            reads: Vec::new(),
            stack: Vec::new(),
            stats: ExecStats::default(),
        }
    }
}

#[inline]
fn eval_body(ops: &[BodyOp], reads: &[f64], vals: &[i64], stack: &mut Vec<f64>) -> f64 {
    stack.clear();
    for op in ops {
        match *op {
            BodyOp::Read(k) => stack.push(reads[k as usize]),
            BodyOp::Lit(v) => stack.push(v),
            BodyOp::Iter(slot) => stack.push(vals[slot as usize] as f64),
            BodyOp::Add => bin(stack, |a, b| a + b),
            BodyOp::Sub => bin(stack, |a, b| a - b),
            BodyOp::Mul => bin(stack, |a, b| a * b),
            BodyOp::Div => bin(stack, |a, b| a / b),
        }
    }
    stack.pop().expect("body tape leaves one value")
}

#[inline]
fn bin(stack: &mut Vec<f64>, f: impl Fn(f64, f64) -> f64) {
    let b = stack.pop().expect("rhs");
    let a = stack.pop().expect("lhs");
    stack.push(f(a, b));
}

#[inline]
fn run_leaf<M: Mem>(ck: &CompiledKernel, leaf: u32, st: &mut State, mem: &mut M) {
    let l = &ck.leaves[leaf as usize];
    if st.suppressed[l.stmt as usize] != 0 {
        return;
    }
    st.reads.clear();
    for r in &l.reads {
        let off = r.offset(&st.vals);
        st.reads.push(mem.load(r.array as usize, off, 0));
    }
    let v = eval_body(&l.body, &st.reads, &st.vals, &mut st.stack);
    let off = l.write.offset(&st.vals);
    mem.store(l.write.array as usize, off, 0, v);
    st.stats.instances += 1;
    st.stats.flops += l.flops;
}

/// Executes bytecode region `[lo, hi)` to completion, ignoring parallel
/// markers (this is what team members and sequential runs execute).
fn run_region<M: Mem>(ck: &CompiledKernel, lo: usize, hi: usize, st: &mut State, mem: &mut M) {
    let mut pc = lo;
    while pc < hi {
        match &ck.code[pc] {
            Instr::Loop {
                var, lb, ub, exit, ..
            } => {
                let lo_v = ck.lower[*lb as usize].eval_lower(&st.vals);
                let hi_v = ck.upper[*ub as usize].eval_upper(&st.vals);
                if lo_v > hi_v {
                    pc = *exit as usize;
                } else {
                    st.vals[*var as usize] = lo_v;
                    st.ubs.push(hi_v);
                    pc += 1;
                }
            }
            Instr::LoopEnd { var, top } => {
                let v = st.vals[*var as usize] + 1;
                if v <= *st.ubs.last().expect("open loop frame") {
                    st.vals[*var as usize] = v;
                    pc = *top as usize + 1;
                } else {
                    st.ubs.pop();
                    pc += 1;
                }
            }
            Instr::Let { var, expr } => {
                st.vals[*var as usize] = ck.exprs[*expr as usize].eval_floor(&st.vals);
                pc += 1;
            }
            Instr::Guard { lo, hi, exit } => {
                if CCond::all_hold(&ck.conds[*lo as usize..*hi as usize], &st.vals) {
                    pc += 1;
                } else {
                    pc = *exit as usize;
                }
            }
            Instr::FilterEnter { stmt, lo, hi } => {
                let pass = CCond::all_hold(&ck.conds[*lo as usize..*hi as usize], &st.vals);
                st.fstack.push(pass);
                if !pass {
                    st.suppressed[*stmt as usize] += 1;
                }
                pc += 1;
            }
            Instr::FilterExit { stmt } => {
                if !st.fstack.pop().expect("open filter frame") {
                    st.suppressed[*stmt as usize] -= 1;
                }
                pc += 1;
            }
            Instr::Stmt { leaf } => {
                run_leaf(ck, *leaf, st, mem);
                pc += 1;
            }
        }
    }
}

/// Per-run telemetry state (same contract as the scoped engine's).
struct Telemetry<'a> {
    measure: bool,
    dispatches: Option<&'a mut Vec<pluto_obs::exec::Dispatch>>,
    flushed: u64,
}

/// The outer walker: interprets bytecode like [`run_region`], but routes
/// every parallel loop (when `threads > 1`) to the pool dispatcher.
#[allow(clippy::too_many_arguments)]
fn run_outer(
    ck: &CompiledKernel,
    lo: usize,
    hi: usize,
    st: &mut State,
    ptrs: &[SendPtr],
    cfg: ParallelConfig,
    tel: &mut Telemetry,
) {
    let mut pc = lo;
    while pc < hi {
        match &ck.code[pc] {
            Instr::Loop {
                var,
                lb,
                ub,
                parallel,
                name,
                exit,
            } if *parallel && cfg.threads > 1 => {
                dispatch(
                    ck,
                    pc,
                    *var,
                    *lb,
                    *ub,
                    *name,
                    *exit as usize,
                    st,
                    ptrs,
                    cfg,
                    tel,
                );
                pc = *exit as usize;
            }
            Instr::Loop {
                var, lb, ub, exit, ..
            } => {
                let lo_v = ck.lower[*lb as usize].eval_lower(&st.vals);
                let hi_v = ck.upper[*ub as usize].eval_upper(&st.vals);
                if lo_v > hi_v {
                    pc = *exit as usize;
                } else {
                    st.vals[*var as usize] = lo_v;
                    st.ubs.push(hi_v);
                    pc += 1;
                }
            }
            Instr::LoopEnd { var, top } => {
                let v = st.vals[*var as usize] + 1;
                if v <= *st.ubs.last().expect("open loop frame") {
                    st.vals[*var as usize] = v;
                    pc = *top as usize + 1;
                } else {
                    st.ubs.pop();
                    pc += 1;
                }
            }
            Instr::Let { var, expr } => {
                st.vals[*var as usize] = ck.exprs[*expr as usize].eval_floor(&st.vals);
                pc += 1;
            }
            Instr::Guard { lo, hi, exit } => {
                if CCond::all_hold(&ck.conds[*lo as usize..*hi as usize], &st.vals) {
                    pc += 1;
                } else {
                    pc = *exit as usize;
                }
            }
            Instr::FilterEnter { stmt, lo, hi } => {
                let pass = CCond::all_hold(&ck.conds[*lo as usize..*hi as usize], &st.vals);
                st.fstack.push(pass);
                if !pass {
                    st.suppressed[*stmt as usize] += 1;
                }
                pc += 1;
            }
            Instr::FilterExit { stmt } => {
                if !st.fstack.pop().expect("open filter frame") {
                    st.suppressed[*stmt as usize] -= 1;
                }
                pc += 1;
            }
            Instr::Stmt { leaf } => {
                let mut mem = RawMem { ptrs };
                run_leaf(ck, *leaf, st, &mut mem);
                pc += 1;
            }
        }
    }
}

/// Member states handed to the team job. Each slot is touched by exactly
/// one thread (slot identity = thread identity for the dispatch), which
/// is what makes the `UnsafeCell` sharing sound.
struct MemberStates(Vec<UnsafeCell<(State, u128)>>);
unsafe impl Sync for MemberStates {}

/// One parallel region over the pool: build the (possibly collapsed)
/// work list, carve it into chunks on a shared counter, run members,
/// join, account.
#[allow(clippy::too_many_arguments)]
fn dispatch(
    ck: &CompiledKernel,
    pc: usize,
    var: u32,
    lb: u32,
    ub: u32,
    name: u32,
    exit: usize,
    st: &mut State,
    ptrs: &[SendPtr],
    cfg: ParallelConfig,
    tel: &mut Telemetry,
) {
    st.stats.parallel_regions += 1;
    let lo_v = ck.lower[lb as usize].eval_lower(&st.vals);
    let hi_v = ck.upper[ub as usize].eval_upper(&st.vals);
    if lo_v > hi_v {
        return;
    }
    // Collapse two consecutive parallel loops into one work list when
    // the outer body is exactly the inner loop (same rule as the scoped
    // engine).
    let inner = if cfg.collapse >= 2 {
        match &ck.code[pc + 1] {
            Instr::Loop {
                var: iv,
                lb: ilb,
                ub: iub,
                parallel: true,
                exit: iexit,
                ..
            } if *iexit as usize == exit - 1 => Some((*iv, *ilb, *iub, *iexit as usize)),
            _ => None,
        }
    } else {
        None
    };
    let mut items: Vec<(i64, i64)> = Vec::new();
    match inner {
        Some((_, ilb, iub, _)) => {
            for x in lo_v..=hi_v {
                st.vals[var as usize] = x;
                let ylo = ck.lower[ilb as usize].eval_lower(&st.vals);
                let yhi = ck.upper[iub as usize].eval_upper(&st.vals);
                for y in ylo..=yhi {
                    items.push((x, y));
                }
            }
        }
        None => items.extend((lo_v..=hi_v).map(|x| (x, 0))),
    }
    // The body region members execute per item.
    let (body_lo, body_hi, inner_var) = match inner {
        Some((iv, _, _, iexit)) => (pc + 2, iexit - 1, Some(iv)),
        None => (pc + 1, exit - 1, None),
    };

    let pool = pool::global();
    // The global pool may have grown wider than this run's config
    // (width never shrinks); never enlist beyond `threads - 1`.
    let width = pool.width().min(cfg.threads.saturating_sub(1));
    let chunk = chunk_len(items.len(), width);
    let nchunks = items.len().div_ceil(chunk);
    let team = if items.len() >= MIN_ITEMS_TO_ENLIST {
        width.min(nchunks.saturating_sub(1))
    } else {
        0
    };

    let measure = tel.measure;
    let loop_name: &str = &ck.names[name as usize];
    // Coordinator dispatch span (tid 0): brackets fork to join. `None`
    // (no allocation) whenever tracing is off. Provenance makes the
    // event attributable to its source: `level` is the scattering row
    // the loop scans (1-based; 0 = domain-recovery loop) and `stmts` is
    // the bitmask of statement ids executing under it.
    let mut coord = pluto_obs::trace::RingBuf::for_thread(0);
    if let Some(b) = coord.as_mut() {
        let origin = ck.provenance.loop_at(pc);
        b.begin(
            loop_name,
            &[
                ("items", items.len() as u64),
                ("threads", team as u64 + 1),
                (
                    "level",
                    origin.and_then(|o| o.level).map_or(0, |l| l as u64 + 1),
                ),
                ("stmts", origin.map_or(0, |o| o.stmts)),
            ],
        );
    }

    let members = MemberStates(
        (0..=team)
            .map(|_| UnsafeCell::new((st.fork(), 0u128)))
            .collect(),
    );
    let counter = AtomicUsize::new(0);
    let items_ref = &items;
    // Capture the `Sync` wrapper, not its inner vector (closure capture
    // is per-field and would lose the wrapper's `Sync` impl).
    let members_ref = &members;
    let job = |slot: usize| {
        // Safety: slot indices are unique per member thread for the
        // whole dispatch; no two threads touch the same cell.
        let (m, chunk_ns) = unsafe { &mut *members_ref.0[slot].get() };
        // Pool worker slots own the matching timeline tids; the
        // coordinator's chunks run inside its dispatch span on tid 0.
        let mut buf = (slot > 0)
            .then(|| pluto_obs::trace::RingBuf::for_thread(slot as u32))
            .flatten();
        if let Some(b) = buf.as_mut() {
            b.begin(loop_name, &[("slot", slot as u64)]);
        }
        // Chunk timing is gated with tracing/profiling: the disabled
        // path never reads the clock.
        let started = measure.then(std::time::Instant::now);
        let mut mem = RawMem { ptrs };
        loop {
            let c = counter.fetch_add(1, Ordering::Relaxed);
            if c >= nchunks {
                break;
            }
            let lo = c * chunk;
            let hi = (lo + chunk).min(items_ref.len());
            for &(x, y) in &items_ref[lo..hi] {
                m.vals[var as usize] = x;
                if let Some(iv) = inner_var {
                    m.vals[iv as usize] = y;
                }
                run_region(ck, body_lo, body_hi, m, &mut mem);
            }
        }
        *chunk_ns = started.map_or(0, |s| s.elapsed().as_nanos());
        if let Some(mut b) = buf {
            b.end(loop_name, &[("instances", m.stats.instances)]);
            b.submit();
        }
    };
    pool.run(team, &job);

    let mut chunk_ns = Vec::new();
    let mut instances = Vec::new();
    let mut team_total = 0u64;
    for cell in members.0 {
        let (m, ns) = cell.into_inner();
        team_total += m.stats.instances;
        if measure {
            chunk_ns.push(ns);
            instances.push(m.stats.instances);
        }
        st.stats.merge(m.stats);
    }
    // Members counted into locals; flush the team's total to the global
    // counter once per dispatch and remember it so the run's epilogue
    // doesn't recount.
    pluto_obs::counters::MACHINE_INSTANCES.add(team_total);
    tel.flushed += team_total;
    if let Some(mut b) = coord {
        b.end(loop_name, &[("instances", team_total)]);
        b.submit();
    }
    if measure {
        let d = pluto_obs::exec::Dispatch {
            name: loop_name.to_string(),
            items: items.len() as u64,
            chunk_ns,
            instances,
        };
        if let Some(v) = tel.dispatches.as_deref_mut() {
            v.push(d.clone());
        }
        pluto_obs::exec::record_dispatch(d);
    }
}

/// Executes a compiled kernel sequentially (parallel markers ignored) —
/// the compiled counterpart of [`run_sequential`](crate::run_sequential),
/// bit-exact with it by construction.
pub fn run_compiled_kernel(ck: &CompiledKernel, arrays: &mut Arrays) -> ExecStats {
    let _span = pluto_obs::span("execute/compiled");
    check_shape(ck, arrays);
    let mut st = State::new(ck);
    let mut mem = Direct(arrays);
    run_region(ck, 0, ck.code.len(), &mut st, &mut mem);
    pluto_obs::counters::MACHINE_INSTANCES.add(st.stats.instances);
    st.stats
}

/// Compiles and runs sequentially in one call.
pub fn run_compiled(prog: &Program, ast: &Ast, params: &[i64], arrays: &mut Arrays) -> ExecStats {
    let ck = compile_kernel(prog, ast, params, arrays);
    run_compiled_kernel(&ck, arrays)
}

/// Executes a compiled kernel with the persistent thread team.
pub fn run_compiled_parallel(
    ck: &CompiledKernel,
    arrays: &mut Arrays,
    cfg: ParallelConfig,
) -> ExecStats {
    run_compiled_parallel_impl(ck, arrays, cfg, None)
}

/// Like [`run_compiled_parallel`], additionally measuring every dispatch
/// and returning the aggregated [`ExecProfile`](pluto_obs::ExecProfile).
pub fn run_compiled_parallel_profiled(
    ck: &CompiledKernel,
    arrays: &mut Arrays,
    cfg: ParallelConfig,
) -> (ExecStats, pluto_obs::ExecProfile) {
    let mut dispatches = Vec::new();
    let stats = run_compiled_parallel_impl(ck, arrays, cfg, Some(&mut dispatches));
    let profile = pluto_obs::ExecProfile::build(&dispatches, Vec::new());
    (stats, profile)
}

pub(crate) fn run_compiled_parallel_impl(
    ck: &CompiledKernel,
    arrays: &mut Arrays,
    cfg: ParallelConfig,
    dispatches: Option<&mut Vec<pluto_obs::exec::Dispatch>>,
) -> ExecStats {
    let _span = pluto_obs::span("execute/parallel");
    check_shape(ck, arrays);
    if cfg.threads > 1 {
        pool::global().ensure_width(cfg.threads - 1);
    }
    let ptrs: Vec<SendPtr> = arrays.raw().into_iter().map(SendPtr).collect();
    let mut st = State::new(ck);
    let mut tel = Telemetry {
        measure: dispatches.is_some() || pluto_obs::exec_metrics_enabled(),
        dispatches,
        flushed: 0,
    };
    run_outer(ck, 0, ck.code.len(), &mut st, &ptrs, cfg, &mut tel);
    // Teams flushed their instances per dispatch; count only what the
    // coordinator executed outside any team (no double counting).
    pluto_obs::counters::MACHINE_INSTANCES.add(st.stats.instances - tel.flushed);
    st.stats
}

/// Runs the AST with the persistent thread team: compiles to bytecode,
/// then every loop marked parallel distributes its (possibly collapsed)
/// work list in dynamic chunks over the process-wide worker pool, with
/// an implicit barrier at loop exit — the paper's OpenMP `parallel for`
/// semantics without the per-dispatch spawn cost.
///
/// The legacy spawn-per-dispatch tree-walk engine survives as
/// [`run_parallel_scoped`](crate::run_parallel_scoped); the differential
/// battery keeps the two bit-exact.
///
/// When a [`pluto_obs`] profile session or trace is active, each
/// dispatch additionally records per-member chunk times, load-imbalance
/// inputs, and per-thread begin/end events on stable worker-slot tids;
/// with both off the engine takes no clock reads and allocates no trace
/// buffers.
pub fn run_parallel(
    prog: &Program,
    ast: &Ast,
    params: &[i64],
    arrays: &mut Arrays,
    cfg: ParallelConfig,
) -> ExecStats {
    let ck = compile_kernel(prog, ast, params, arrays);
    run_compiled_parallel_impl(&ck, arrays, cfg, None)
}

/// Like [`run_parallel`], additionally measuring every dispatch and
/// returning the aggregated [`ExecProfile`](pluto_obs::ExecProfile)
/// (load imbalance, barrier wait, per-member instances) without
/// requiring a global [`Session`](pluto_obs::Session). The profile's
/// `arrays` section is empty — cache attribution comes from
/// [`run_with_cache_attributed`](crate::run_with_cache_attributed),
/// which simulates a sequential interleaving.
pub fn run_parallel_profiled(
    prog: &Program,
    ast: &Ast,
    params: &[i64],
    arrays: &mut Arrays,
    cfg: ParallelConfig,
) -> (ExecStats, pluto_obs::ExecProfile) {
    let ck = compile_kernel(prog, ast, params, arrays);
    run_compiled_parallel_profiled(&ck, arrays, cfg)
}

fn check_shape(ck: &CompiledKernel, arrays: &Arrays) {
    assert_eq!(
        ck.extents.len(),
        arrays.num_arrays(),
        "array count mismatch"
    );
    for (a, ext) in ck.extents.iter().enumerate() {
        assert_eq!(
            ext.as_slice(),
            arrays.extents(a),
            "array {a}: extents differ from the compiled shape"
        );
    }
}
