//! Memory backends shared by the tree-walk interpreter and the compiled
//! executor.

use crate::arrays::Arrays;

/// Abstraction over the different memory backends.
pub(crate) trait Mem {
    fn load(&mut self, a: usize, off: usize, addr: u64) -> f64;
    fn store(&mut self, a: usize, off: usize, addr: u64, v: f64);
}

/// Plain single-threaded backend over the owned arrays.
pub(crate) struct Direct<'a>(pub &'a mut Arrays);

impl Mem for Direct<'_> {
    #[inline]
    fn load(&mut self, a: usize, off: usize, _addr: u64) -> f64 {
        self.0.load(a, off)
    }
    #[inline]
    fn store(&mut self, a: usize, off: usize, _addr: u64, v: f64) {
        self.0.store(a, off, v);
    }
}

/// Raw-pointer backend for the thread team.
///
/// Safety: distinct iterations of a loop marked parallel have disjoint
/// write sets and no read/write overlap — that is exactly the dependence
/// condition the transformation framework establishes (and the test-suite
/// re-verifies with `validate_legality`), so concurrent threads never race.
#[derive(Clone, Copy)]
pub(crate) struct RawMem<'a> {
    pub ptrs: &'a [SendPtr],
}

#[derive(Clone, Copy)]
pub(crate) struct SendPtr(pub *mut f64);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl Mem for RawMem<'_> {
    #[inline]
    fn load(&mut self, a: usize, off: usize, _addr: u64) -> f64 {
        unsafe { *self.ptrs[a].0.add(off) }
    }
    #[inline]
    fn store(&mut self, a: usize, off: usize, _addr: u64, v: f64) {
        unsafe { *self.ptrs[a].0.add(off) = v }
    }
}
