//! The simulated multi-core machine used by the benchmark harness.
//!
//! The paper's evaluation machine (Intel Q6600, 4 cores, 32 KB L1 / 4 MB
//! L2, icc + OpenMP) is replaced by a deterministic performance model:
//!
//! * each core owns a two-level [`CacheSim`] (the paper's geometry);
//! * a statement instance costs `flops` compute cycles plus one cycle per
//!   access, `+l1_penalty` per L1 miss and `+l2_penalty` per L2 miss;
//! * a loop marked parallel distributes its iterations over the cores
//!   exactly like [`run_parallel`](crate::run_parallel) (block
//!   distribution, optional 2-deep collapse); the region's time is the
//!   *maximum* of the participating cores' times plus a barrier cost —
//!   the paper's coarse-grained tile-schedule semantics where
//!   synchronization "happens only here (in tile space)" (Fig. 4);
//! * sequential code runs on core 0.
//!
//! This keeps both effects the paper measures — locality (via the caches)
//! and coarse-grained parallelism (via critical-path max and barrier
//! counts) — while remaining exactly reproducible on any host.

use crate::arrays::Arrays;
use crate::cache::{CacheConfig, CacheSim, CacheStats};
use crate::interp::ExecStats;
use pluto_codegen::Ast;
use pluto_ir::{Expr, Program};
use pluto_linalg::Int;

/// Cost-model parameters of the simulated machine.
#[derive(Debug, Clone, Copy)]
pub struct MachineConfig {
    /// Worker cores.
    pub cores: usize,
    /// Collapse depth for consecutive parallel loops (cf. nested OpenMP
    /// parallelism for two degrees of pipelined parallelism, Fig. 13).
    pub collapse: usize,
    /// Per-core cache geometry.
    pub cache: CacheConfig,
    /// Extra cycles per L1 miss (L2 hit latency).
    pub l1_penalty: u64,
    /// Extra cycles per L2 miss (memory latency).
    pub l2_penalty: u64,
    /// Cycles charged per parallel-region barrier.
    pub barrier: u64,
    /// Cycles charged per loop iteration (bound evaluation, increment).
    pub loop_overhead: u64,
    /// Cycles charged per guard condition evaluated.
    pub guard_overhead: u64,
    /// Cycles charged per `Let` binding (0: a native compiler folds the
    /// recovered-iterator arithmetic into addressing).
    pub let_overhead: u64,
    /// Shared front-side-bus cycles per L2 miss: inside a parallel region
    /// the region time is at least `total L2 misses × bus` — the memory
    /// bandwidth wall that starves non-locality-optimized parallel code.
    pub bus: u64,
    /// Clock frequency used to convert cycles to seconds (the paper's
    /// 2.4 GHz).
    pub ghz: f64,
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig {
            cores: 4,
            collapse: 1,
            cache: CacheConfig::default(),
            l1_penalty: 14,
            l2_penalty: 150,
            barrier: 5_000,
            loop_overhead: 2,
            guard_overhead: 1,
            let_overhead: 0,
            bus: 20,
            ghz: 2.4,
        }
    }
}

impl MachineConfig {
    /// Same machine with a different core count.
    pub fn with_cores(mut self, cores: usize) -> MachineConfig {
        self.cores = cores;
        self
    }

    /// Same machine with a different collapse depth.
    pub fn with_collapse(mut self, collapse: usize) -> MachineConfig {
        self.collapse = collapse;
        self
    }
}

/// Result of a simulated run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimStats {
    /// Modelled execution time in cycles (critical path).
    pub cycles: u64,
    /// Execution counters (all cores).
    pub exec: ExecStats,
    /// Cache counters summed over cores.
    pub cache: CacheStats,
    /// Parallel regions entered (barriers).
    pub regions: u64,
}

impl SimStats {
    /// Modelled GFLOP/s at the configured clock.
    pub fn gflops(&self, cfg: &MachineConfig) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.exec.flops as f64 / (self.cycles as f64 / cfg.ghz)
        // flops / ns = GFLOP/s
    }

    /// Modelled wall time in seconds.
    pub fn seconds(&self, cfg: &MachineConfig) -> f64 {
        self.cycles as f64 / (cfg.ghz * 1e9)
    }
}

struct Core {
    sim: CacheSim,
    cycles: u64,
    exec: ExecStats,
}

struct Machine<'p> {
    cores: Vec<Core>,
    cfg: MachineConfig,
    stmts: Vec<SimStmt>,
    extents: Vec<Vec<usize>>,
    bases: Vec<u64>,
    params: Vec<Int>,
    prog: &'p Program,
    /// Per-statement suppression depth from enclosing `Filter` nodes.
    suppressed: Vec<u32>,
}

struct SimStmt {
    write_array: usize,
    write_rows: Vec<Vec<Int>>,
    reads: Vec<(usize, Vec<Vec<Int>>)>,
    body: Expr,
    flops: u64,
}

impl<'p> Machine<'p> {
    fn new(prog: &'p Program, params: &[i64], arrays: &Arrays, cfg: MachineConfig) -> Machine<'p> {
        let stmts = prog
            .stmts
            .iter()
            .map(|s| SimStmt {
                write_array: s.write.array,
                write_rows: s.write.map.clone(),
                reads: s.reads.iter().map(|r| (r.array, r.map.clone())).collect(),
                body: s.body.clone(),
                flops: s.body.num_ops() as u64,
            })
            .collect();
        let extents: Vec<Vec<usize>> = (0..arrays.num_arrays())
            .map(|a| arrays.extents(a).to_vec())
            .collect();
        let mut bases = Vec::with_capacity(extents.len());
        let mut next = 0u64;
        for e in &extents {
            bases.push(next);
            let len: usize = e.iter().product::<usize>().max(1);
            next += (len as u64 * 8).div_ceil(64) * 64;
        }
        Machine {
            cores: (0..cfg.cores.max(1))
                .map(|_| Core {
                    sim: CacheSim::new(cfg.cache),
                    cycles: 0,
                    exec: ExecStats::default(),
                })
                .collect(),
            cfg,
            stmts,
            extents,
            bases,
            params: params.iter().map(|&p| p as Int).collect(),
            suppressed: vec![0; prog.stmts.len()],
            prog,
        }
    }

    /// Executes one statement instance on a core, charging cycles.
    fn run_stmt(
        &mut self,
        core: usize,
        stmt: usize,
        orig_dims: &[usize],
        vals: &[Int],
        arrays: &mut Arrays,
    ) {
        let info = &self.stmts[stmt];
        let n_it = self.prog.stmts[stmt].num_iters();
        debug_assert_eq!(orig_dims.len(), n_it);
        let mut iters = Vec::with_capacity(n_it);
        let mut iters_i64 = Vec::with_capacity(n_it);
        for &v in orig_dims {
            iters.push(vals[v]);
            iters_i64.push(vals[v] as i64);
        }
        let mut vp = iters.clone();
        vp.extend_from_slice(&self.params);
        let c = &mut self.cores[core];
        let mut cycles = info.flops;
        let mut reads = Vec::with_capacity(info.reads.len());
        for (a, rows) in &info.reads {
            let mut off = 0usize;
            for (k, row) in rows.iter().enumerate() {
                let mut s = row[vp.len()];
                for (i, &x) in vp.iter().enumerate() {
                    s += row[i] * x;
                }
                let e = self.extents[*a][k];
                assert!(s >= 0 && (s as usize) < e, "subscript out of range");
                off = off * e + s as usize;
            }
            let before = c.sim.stats;
            c.sim.access(self.bases[*a] + off as u64 * 8);
            cycles += 1
                + self.cfg.l1_penalty * (c.sim.stats.l1_misses - before.l1_misses)
                + self.cfg.l2_penalty * (c.sim.stats.l2_misses - before.l2_misses);
            reads.push(arrays.load(*a, off));
        }
        let v = info.body.eval(&reads, &iters_i64);
        let a = info.write_array;
        let mut off = 0usize;
        for (k, row) in info.write_rows.iter().enumerate() {
            let mut s = row[vp.len()];
            for (i, &x) in vp.iter().enumerate() {
                s += row[i] * x;
            }
            let e = self.extents[a][k];
            assert!(s >= 0 && (s as usize) < e, "subscript out of range");
            off = off * e + s as usize;
        }
        let before = c.sim.stats;
        c.sim.access(self.bases[a] + off as u64 * 8);
        cycles += 1
            + self.cfg.l1_penalty * (c.sim.stats.l1_misses - before.l1_misses)
            + self.cfg.l2_penalty * (c.sim.stats.l2_misses - before.l2_misses);
        arrays.store(a, off, v);
        c.cycles += cycles;
        c.exec.instances += 1;
        c.exec.flops += info.flops;
    }

    /// Sequential execution of a subtree on one core.
    fn exec_on(&mut self, core: usize, ast: &Ast, vals: &mut [Int], arrays: &mut Arrays) {
        match ast {
            Ast::Seq(v) => {
                for a in v {
                    self.exec_on(core, a, vals, arrays);
                }
            }
            Ast::Loop(l) => {
                let lb = l.lb.eval_lower(vals);
                let ub = l.ub.eval_upper(vals);
                let step = l.unroll.max(1) as Int;
                let mut x = lb;
                while x <= ub {
                    // Loop overhead is paid once per (unrolled) chunk.
                    self.cores[core].cycles += self.cfg.loop_overhead;
                    let end = (x + step - 1).min(ub);
                    while x <= end {
                        vals[l.var] = x;
                        self.exec_on(core, &l.body, vals, arrays);
                        x += 1;
                    }
                }
            }
            Ast::Let {
                var, expr, body, ..
            } => {
                self.cores[core].cycles += self.cfg.let_overhead;
                vals[*var] = expr.eval_floor(vals);
                self.exec_on(core, body, vals, arrays);
            }
            Ast::Guard { conds, body } => {
                // Short-circuit evaluation, charging only evaluated conds
                // (like compiled `&&` chains).
                let mut ok = true;
                for c in conds {
                    self.cores[core].cycles += self.cfg.guard_overhead;
                    if !c.holds(vals) {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.exec_on(core, body, vals, arrays);
                }
            }
            Ast::Filter { stmt, conds, body } => {
                let mut pass = true;
                for c in conds {
                    self.cores[core].cycles += self.cfg.guard_overhead;
                    if !c.holds(vals) {
                        pass = false;
                        break;
                    }
                }
                if !pass {
                    self.suppressed[*stmt] += 1;
                }
                self.exec_on(core, body, vals, arrays);
                if !pass {
                    self.suppressed[*stmt] -= 1;
                }
            }
            Ast::Stmt { stmt, orig_dims } => {
                if self.suppressed[*stmt] == 0 {
                    self.run_stmt(core, *stmt, orig_dims, vals, arrays);
                }
            }
        }
    }

    /// Top-level walk: dispatches parallel loops across cores.
    fn exec_top(&mut self, ast: &Ast, vals: &mut [Int], arrays: &mut Arrays, regions: &mut u64) {
        match ast {
            Ast::Seq(v) => {
                for a in v {
                    self.exec_top(a, vals, arrays, regions);
                }
            }
            Ast::Loop(l) if l.parallel && self.cfg.cores > 1 => {
                self.region(l, vals, arrays);
                *regions += 1;
            }
            Ast::Loop(l) => {
                let lb = l.lb.eval_lower(vals);
                let ub = l.ub.eval_upper(vals);
                let mut x = lb;
                while x <= ub {
                    self.cores[0].cycles += self.cfg.loop_overhead;
                    vals[l.var] = x;
                    self.exec_top(&l.body, vals, arrays, regions);
                    x += 1;
                }
            }
            Ast::Let {
                var, expr, body, ..
            } => {
                self.cores[0].cycles += self.cfg.let_overhead;
                vals[*var] = expr.eval_floor(vals);
                self.exec_top(body, vals, arrays, regions);
            }
            Ast::Guard { conds, body } => {
                let mut ok = true;
                for c in conds {
                    self.cores[0].cycles += self.cfg.guard_overhead;
                    if !c.holds(vals) {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.exec_top(body, vals, arrays, regions);
                }
            }
            Ast::Filter { stmt, conds, body } => {
                let mut pass = true;
                for c in conds {
                    self.cores[0].cycles += self.cfg.guard_overhead;
                    if !c.holds(vals) {
                        pass = false;
                        break;
                    }
                }
                if !pass {
                    self.suppressed[*stmt] += 1;
                }
                self.exec_top(body, vals, arrays, regions);
                if !pass {
                    self.suppressed[*stmt] -= 1;
                }
            }
            Ast::Stmt { stmt, orig_dims } => {
                if self.suppressed[*stmt] == 0 {
                    self.run_stmt(0, *stmt, orig_dims, vals, arrays);
                }
            }
        }
    }

    /// One parallel region: block-distribute iterations, run each core's
    /// share in core order, advance global time by the slowest core plus a
    /// barrier.
    fn region(&mut self, l: &pluto_codegen::LoopNode, vals: &mut [Int], arrays: &mut Arrays) {
        let lb = l.lb.eval_lower(vals);
        let ub = l.ub.eval_upper(vals);
        // Collect items exactly like the threaded executor.
        let inner: Option<&pluto_codegen::LoopNode> = if self.cfg.collapse >= 2 {
            match &*l.body {
                Ast::Loop(i) if i.parallel => Some(i),
                _ => None,
            }
        } else {
            None
        };
        let mut items: Vec<(Int, Int)> = Vec::new();
        let mut x = lb;
        while x <= ub {
            match inner {
                Some(i) => {
                    vals[l.var] = x;
                    let ilb = i.lb.eval_lower(vals);
                    let iub = i.ub.eval_upper(vals);
                    let mut y = ilb;
                    while y <= iub {
                        items.push((x, y));
                        y += 1;
                    }
                }
                None => items.push((x, 0)),
            }
            x += 1;
        }
        let body: &Ast = match inner {
            Some(i) => &i.body,
            None => &l.body,
        };
        let ncores = self.cores.len();
        let start: Vec<u64> = self.cores.iter().map(|c| c.cycles).collect();
        let miss_start: u64 = self.cores.iter().map(|c| c.sim.stats.l2_misses).sum();
        let mut deltas = vec![0u64; ncores];
        for t in 0..ncores {
            let lo = items.len() * t / ncores;
            let hi = items.len() * (t + 1) / ncores;
            let mut my_vals = vals.to_vec();
            for &(x, y) in &items[lo..hi] {
                my_vals[l.var] = x;
                if let Some(i) = inner {
                    my_vals[i.var] = y;
                }
                self.exec_on(t, body, &mut my_vals, arrays);
            }
            deltas[t] = self.cores[t].cycles - start[t];
        }
        // The region takes the slowest core's time, but no less than the
        // shared bus needs to transfer every line missed in the region.
        let miss_total: u64 = self
            .cores
            .iter()
            .map(|c| c.sim.stats.l2_misses)
            .sum::<u64>()
            - miss_start;
        let crit = deltas.iter().copied().max().unwrap_or(0);
        let max = crit.max(miss_total * self.cfg.bus) + self.cfg.barrier;
        for (t, c) in self.cores.iter_mut().enumerate() {
            c.cycles = start[t] + max;
            let _ = t;
        }
        // Keep core 0 as the sequential clock: align all cores to the
        // global maximum so sequential code resumes after the barrier.
        let global = self.cores.iter().map(|c| c.cycles).max().unwrap_or(0);
        for c in self.cores.iter_mut() {
            c.cycles = global;
        }
    }
}

/// Runs the AST on the simulated machine.
pub fn simulate(
    prog: &Program,
    ast: &Ast,
    params: &[i64],
    arrays: &mut Arrays,
    cfg: MachineConfig,
) -> SimStats {
    let _span = pluto_obs::span("execute/simulate");
    let mut m = Machine::new(prog, params, arrays, cfg);
    let mut vals = vec![0; ast.num_vars().max(params.len())];
    for (k, &p) in params.iter().enumerate() {
        vals[k] = p as Int;
    }
    let mut regions = 0;
    m.exec_top(ast, &mut vals, arrays, &mut regions);
    let mut exec = ExecStats::default();
    let mut cache = CacheStats::default();
    let mut cycles = 0;
    for c in &m.cores {
        exec.instances += c.exec.instances;
        exec.flops += c.exec.flops;
        cache.accesses += c.sim.stats.accesses;
        cache.l1_misses += c.sim.stats.l1_misses;
        cache.l2_misses += c.sim.stats.l2_misses;
        cycles = cycles.max(c.cycles);
    }
    exec.parallel_regions = regions;
    pluto_obs::counters::MACHINE_INSTANCES.add(exec.instances);
    SimStats {
        cycles,
        exec,
        cache,
        regions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pluto_codegen::{generate, original_schedule};
    use pluto_ir::{ProgramBuilder, StatementSpec};

    fn scale_program() -> Program {
        let mut b = ProgramBuilder::new("scale", &["N"]);
        b.add_context_ineq(vec![1, -1]);
        b.add_array("a", 1);
        b.add_array("b", 1);
        b.add_statement(StatementSpec {
            name: "S1".into(),
            iters: vec!["i".into()],
            domain_ineqs: vec![vec![1, 0, 0], vec![-1, 1, -1]],
            beta: vec![0, 0],
            write: ("b".into(), vec![vec![1, 0, 0]]),
            reads: vec![("a".into(), vec![vec![1, 0, 0]])],
            body: Expr::Lit(2.0) * Expr::Read(0),
        });
        b.build()
    }

    #[test]
    fn sequential_simulation_counts() {
        let prog = scale_program();
        let ast = generate(&prog, &original_schedule(&prog));
        let mut arrays = Arrays::new(vec![vec![1000], vec![1000]]);
        let cfg = MachineConfig::default().with_cores(1);
        let st = simulate(&prog, &ast, &[1000], &mut arrays, cfg);
        assert_eq!(st.exec.instances, 1000);
        assert_eq!(st.cache.accesses, 2000);
        assert!(st.cycles > 2000); // misses cost extra
                                   // Results are still computed.
        assert_eq!(arrays.load(1, 7), 0.0 * 2.0);
    }

    #[test]
    fn parallel_simulation_speeds_up() {
        let prog = scale_program();
        let mut t = original_schedule(&prog);
        t.rows[1].par = pluto::Parallelism::Parallel;
        for sp in t.stmt_par.iter_mut() {
            sp[1] = pluto::Parallelism::Parallel;
        }
        let ast = generate(&prog, &t);
        let n = 200_000i64;
        let mut a1 = Arrays::new(vec![vec![n as usize], vec![n as usize]]);
        let mut a4 = a1.clone();
        let c1 = simulate(
            &prog,
            &ast,
            &[n],
            &mut a1,
            MachineConfig::default().with_cores(1),
        );
        let c4 = simulate(
            &prog,
            &ast,
            &[n],
            &mut a4,
            MachineConfig::default().with_cores(4),
        );
        let speedup = c1.cycles as f64 / c4.cycles as f64;
        assert!(
            speedup > 2.5 && speedup < 4.5,
            "expected near-4x, got {speedup}"
        );
        assert_eq!(c4.regions, 1);
    }
}

#[cfg(test)]
mod model_tests {
    use super::*;
    use pluto_codegen::{generate, original_schedule};
    use pluto_ir::{ProgramBuilder, StatementSpec};

    /// Streaming kernel: every access misses (array >> caches).
    fn streaming() -> (Program, usize) {
        let n = 200_000usize;
        let mut b = ProgramBuilder::new("stream", &["N"]);
        b.add_context_ineq(vec![1, -1]);
        b.add_array("a", 1);
        b.add_array("b", 1);
        b.add_statement(StatementSpec {
            name: "S1".into(),
            iters: vec!["i".into()],
            domain_ineqs: vec![vec![1, 0, 0], vec![-1, 1, -1]],
            beta: vec![0, 0],
            write: ("b".into(), vec![vec![1, 0, 0]]),
            reads: vec![("a".into(), vec![vec![1, 0, 0]])],
            body: Expr::Lit(2.0) * Expr::Read(0),
        });
        (b.build(), n)
    }

    #[test]
    fn bus_bound_limits_memory_bound_scaling() {
        let (prog, n) = streaming();
        let mut t = original_schedule(&prog);
        t.rows[1].par = pluto::Parallelism::Parallel;
        for sp in t.stmt_par.iter_mut() {
            sp[1] = pluto::Parallelism::Parallel;
        }
        let ast = generate(&prog, &t);
        let mk = |cores, bus| {
            let mut arrays = Arrays::new(vec![vec![n], vec![n]]);
            let mut cfg = MachineConfig::default().with_cores(cores);
            cfg.bus = bus;
            simulate(&prog, &ast, &[n as i64], &mut arrays, cfg)
        };
        // With an expensive bus, 4-core scaling of a pure streaming kernel
        // is capped by bus throughput, not by the core count.
        let c1 = mk(1, 200);
        let c4 = mk(4, 200);
        let speedup = c1.cycles as f64 / c4.cycles as f64;
        assert!(
            speedup < 3.0,
            "bus must cap streaming speedup, got {speedup}"
        );
        // With a free bus the same kernel scales ~4x.
        let f1 = mk(1, 0);
        let f4 = mk(4, 0);
        let free = f1.cycles as f64 / f4.cycles as f64;
        assert!(free > 3.5, "free-bus speedup should be ~4x, got {free}");
    }

    #[test]
    fn guard_overhead_is_charged() {
        let (prog, n) = streaming();
        let ast = generate(&prog, &original_schedule(&prog));
        let run = |loop_overhead| {
            let mut arrays = Arrays::new(vec![vec![n], vec![n]]);
            let mut cfg = MachineConfig::default().with_cores(1);
            cfg.loop_overhead = loop_overhead;
            simulate(&prog, &ast, &[n as i64], &mut arrays, cfg).cycles
        };
        let cheap = run(0);
        let costly = run(10);
        assert_eq!(costly - cheap, 10 * n as u64, "10 cycles per iteration");
    }
}
