//! PL008–PL013: translation validation of the compiled executor.
//!
//! PR 6 lowered codegen loop ASTs into flat bytecode with folded strided
//! accesses and a pooled chunk scheduler (`pluto-machine`'s `compile` /
//! `exec`). Until now all correctness evidence for that layer was
//! dynamic — the differential fuzz battery. This module extends the
//! analyzer's "re-prove from first principles" philosophy down to the
//! bytecode: a [`CompiledKernel`] is checked against its polyhedral
//! source of truth *without executing it*.
//!
//! Four independent checks:
//!
//! 1. **Access equivalence (PL008)** — walk the AST and the instruction
//!    stream in lockstep (loops, lets, guards, filters, leaves must line
//!    up structurally, bounds and conditions coefficient-for-
//!    coefficient), and at every statement leaf symbolically re-expand
//!    the folded `base + Σ stride·iter` access from the IR access
//!    matrix, the array extents and the baked-in parameter values. Any
//!    divergence — in the skeleton, a bound, a provenance record, or a
//!    re-expanded access — is a miscompile.
//! 2. **Static bounds safety (PL009)** — the executor guards each raw
//!    load/store with a *flattened* offset check. Here we prove the
//!    check can never fire: for every compiled access, the set of
//!    in-domain instances whose flat offset leaves `[0, len)` is proved
//!    empty (violation-set emptiness as in [`crate::bounds`]), with an
//!    ILP-sampled witness instance on failure.
//! 3. **Dispatch partition soundness (PL010/PL011)** — the pooled
//!    scheduler carves each parallel dispatch's (possibly collapse-2)
//!    work list into chunks via [`pluto_machine::chunk_plan`]. PL010
//!    proves the plan a disjoint exact cover of the item list for every
//!    length/width in the practical envelope; PL011 proves no two
//!    *distinct work items* of a parallel dispatch can write the same
//!    array cell — a scheduler-level race check over the dispatch's
//!    compiled leaves, independent of the AST race detector (PL001: no
//!    dependence polyhedra are consulted; cell coincidence is encoded
//!    per array dimension, tied to the compiled strides by PL008). Item
//!    distinctness is `δ_r ≠ 0` at the dispatched scattering row `r`
//!    (or, for a collapsed pair, `(δ_r, δ_r2) ≠ (0, 0)`); the check is
//!    deliberately conservative in ignoring [`MIN_ITEMS_TO_ENLIST`]
//!    (tiny dispatches run inline today, but the partition must already
//!    be race-free).
//! 4. **Body-tape equivalence (PL012)** — every postfix body tape is
//!    decompiled on a symbolic stack back into an expression tree and
//!    compared node-for-node (literals bit-for-bit) with the IR
//!    statement body.
//!
//! Plus one locality lint: **PL013** flags innermost compiled loops
//! whose minimum nonzero access stride exceeds 1 — no stride-1 stream
//! for the hardware prefetcher, the static counterpart of the cache
//! simulator's per-array miss attribution and the oracle hook for
//! intra-tile post-optimization.
//!
//! Cost shows up in profiles as the `analyze/bytecode` span and the
//! `analyze.bytecode_*` counters.

use crate::{Code, Diagnostic};
use pluto::Transformation;
use pluto_codegen::{AffExpr, Ast, Bound, CondRow};
use pluto_ir::{Access, Expr, Program};
use pluto_linalg::Int;
use pluto_machine::MIN_ITEMS_TO_ENLIST;
use pluto_machine::{BodyOp, CAccess, CAff, CBound, CCond, CompiledKernel, Instr};
use pluto_poly::ConstraintSet;
use std::collections::{BTreeMap, HashSet};

/// Everything the bytecode verifier consumes — borrowed views of the
/// pipeline's products, never mutated.
pub struct BytecodeInput<'a> {
    /// The source program (access matrices, bodies, arrays).
    pub program: &'a Program,
    /// The transformation the AST was generated from (domains and
    /// scattering rows for the instance-space proofs).
    pub transform: &'a Transformation,
    /// The AST the kernel was compiled from.
    pub ast: &'a Ast,
    /// The compiled kernel under audit.
    pub kernel: &'a CompiledKernel,
}

/// Team widths the PL010 cover sweep quantifies over (0 = coordinator
/// alone, up to 8 enlisted workers — beyond any machine this substrate
/// targets).
const COVER_MAX_WIDTH: usize = 8;

/// Work-list lengths the PL010 cover sweep quantifies over. Chunk
/// arithmetic is scale-free above `(width+1)·CHUNKS_PER_MEMBER`, so the
/// envelope comfortably covers the boundary cases.
const COVER_MAX_ITEMS: usize = 512;

/// Runs translation validation of `kernel` against its program,
/// transformation and AST. Returns *unsorted* findings; callers merging
/// into an [`analyze`](crate::analyze) run re-sort with
/// [`sort_diagnostics`](crate::sort_diagnostics).
pub fn check(input: &BytecodeInput) -> Vec<Diagnostic> {
    let _span = pluto_obs::span("bytecode");
    let mut diags = Vec::new();
    let ck = input.kernel;
    let prog = input.program;

    // Global shape: a desync here makes the lockstep walk meaningless.
    if ck.params.len() != prog.num_params()
        || ck.num_stmts != prog.stmts.len()
        || ck.extents.len() != prog.arrays.len()
    {
        diags.push(Diagnostic::new(
            Code::BytecodeDivergence,
            "kernel".into(),
            format!(
                "compiled kernel shape mismatch: {} params / {} stmts / {} arrays vs program's \
                 {} / {} / {}",
                ck.params.len(),
                ck.num_stmts,
                ck.extents.len(),
                prog.num_params(),
                prog.stmts.len(),
                prog.arrays.len()
            ),
        ));
        return diags;
    }

    let mut w = Walker {
        prog,
        ck,
        pc: 0,
        next_leaf: 0,
        par_depth: 0,
        loops: Vec::new(),
        leaves: Vec::new(),
        diags: Vec::new(),
        desynced: false,
        sens: BTreeMap::new(),
    };
    let mut path = String::new();
    if w.walk(input.ast, &mut path).is_ok() {
        if w.pc != ck.code.len() {
            w.desynced = true;
            w.diags.push(Diagnostic::new(
                Code::BytecodeDivergence,
                "kernel".into(),
                format!(
                    "bytecode has {} trailing instruction(s) past the AST (pc {} of {})",
                    ck.code.len() - w.pc,
                    w.pc,
                    ck.code.len()
                ),
            ));
        }
        if w.next_leaf != ck.leaves.len() {
            w.desynced = true;
            w.diags.push(Diagnostic::new(
                Code::BytecodeDivergence,
                "kernel".into(),
                format!(
                    "compiled kernel has {} leaves but the AST consumes {}",
                    ck.leaves.len(),
                    w.next_leaf
                ),
            ));
        }
    }
    let desynced = w.desynced;
    let loops = std::mem::take(&mut w.loops);
    let leaves = std::mem::take(&mut w.leaves);
    diags.append(&mut w.diags);

    // The instance-space and dispatch proofs need the AST↔leaf mapping
    // the walk established; skip them only on *structural* desync (a
    // mismatched access or tape doesn't invalidate the mapping).
    if !desynced {
        check_flat_bounds(input, &leaves, &mut diags);
        check_dispatches(input, &loops, &leaves, &mut diags);
        check_strides(input, &loops, &leaves, &mut diags);
    }
    diags
}

/// One loop met during the lockstep walk.
struct LoopRec {
    pc: usize,
    exit: usize,
    var: usize,
    name: String,
    parallel: bool,
    level: Option<usize>,
    /// Nested under another `parallel` loop (so never dispatched itself:
    /// team members execute it sequentially, or it is collapse-merged).
    under_parallel: bool,
    path: String,
}

/// One statement leaf met during the lockstep walk.
struct LeafRec {
    pc: usize,
    leaf: usize,
    stmt: usize,
    orig_dims: Vec<usize>,
    path: String,
    /// Per access (write first, then reads in order): the array id and
    /// the access's stride linearized onto *loop-variable* slots —
    /// compiled strides are keyed on `Let`-alias slots, so this chases
    /// each slot's affine definition back to the loops it depends on.
    stride_lin: Vec<(u32, BTreeMap<usize, Int>)>,
}

struct Walker<'a> {
    prog: &'a Program,
    ck: &'a CompiledKernel,
    pc: usize,
    next_leaf: usize,
    par_depth: usize,
    loops: Vec<LoopRec>,
    leaves: Vec<LeafRec>,
    diags: Vec<Diagnostic>,
    /// Structural divergence found — the AST↔bytecode mapping is void.
    desynced: bool,
    /// Slot sensitivities in scope: slot → `{loop-var slot → coeff}`.
    /// Loop vars map to themselves; `Let` slots to the linearization of
    /// their defining expression (empty for floordiv definitions, whose
    /// per-iteration increment is not a constant).
    sens: BTreeMap<usize, BTreeMap<usize, Int>>,
}

impl Walker<'_> {
    /// Records a structural divergence and aborts the walk.
    fn fail(&mut self, path: &str, msg: String) -> Result<(), ()> {
        self.desynced = true;
        self.diags.push(Diagnostic::new(
            Code::BytecodeDivergence,
            if path.is_empty() {
                "kernel".into()
            } else {
                path.to_string()
            },
            format!("{msg} (pc {})", self.pc),
        ));
        Err(())
    }

    fn walk(&mut self, ast: &Ast, path: &mut String) -> Result<(), ()> {
        match ast {
            Ast::Seq(v) => {
                for a in v {
                    self.walk(a, path)?;
                }
                Ok(())
            }
            Ast::Loop(l) => {
                let Some(Instr::Loop {
                    var,
                    lb,
                    ub,
                    parallel,
                    name,
                    exit,
                }) = self.ck.code.get(self.pc).cloned()
                else {
                    return self.fail(
                        path,
                        format!("expected a Loop instruction for `{}`", l.name),
                    );
                };
                let saved = path.len();
                if !path.is_empty() {
                    path.push('/');
                }
                path.push_str(&l.name);
                if l.parallel {
                    path.push_str("[parallel]");
                }
                if var as usize != l.var || parallel != l.parallel {
                    let msg = format!(
                        "Loop instruction binds slot {var} (parallel: {parallel}), AST loop \
                         `{}` binds slot {} (parallel: {})",
                        l.name, l.var, l.parallel
                    );
                    return self.fail(path, msg);
                }
                if self.ck.names.get(name as usize).map(String::as_str) != Some(l.name.as_str()) {
                    return self.fail(path, format!("loop name table diverges at id {name}"));
                }
                if !self
                    .ck
                    .lower
                    .get(lb as usize)
                    .is_some_and(|b| bound_matches(b, &l.lb))
                {
                    return self.fail(path, "compiled lower bound diverges from the AST".into());
                }
                if !self
                    .ck
                    .upper
                    .get(ub as usize)
                    .is_some_and(|b| bound_matches(b, &l.ub))
                {
                    return self.fail(path, "compiled upper bound diverges from the AST".into());
                }
                match self.ck.provenance.loop_at(self.pc) {
                    Some(o) if o.level == l.level => {}
                    Some(o) => {
                        let msg = format!(
                            "loop provenance claims scattering level {:?}, AST says {:?}",
                            o.level, l.level
                        );
                        return self.fail(path, msg);
                    }
                    None => {
                        return self.fail(path, "loop has no provenance record".into());
                    }
                }
                self.loops.push(LoopRec {
                    pc: self.pc,
                    exit: exit as usize,
                    var: l.var,
                    name: l.name.clone(),
                    parallel: l.parallel,
                    level: l.level,
                    under_parallel: self.par_depth > 0,
                    path: path.clone(),
                });
                let top = self.pc;
                self.pc += 1;
                if l.parallel {
                    self.par_depth += 1;
                }
                let shadowed = self.sens.insert(l.var, BTreeMap::from([(l.var, 1 as Int)]));
                self.walk(&l.body, path)?;
                match shadowed {
                    Some(m) => self.sens.insert(l.var, m),
                    None => self.sens.remove(&l.var),
                };
                if l.parallel {
                    self.par_depth -= 1;
                }
                match self.ck.code.get(self.pc) {
                    Some(Instr::LoopEnd { var: v, top: t })
                        if *v as usize == l.var && *t as usize == top =>
                    {
                        self.pc += 1;
                    }
                    _ => {
                        return self.fail(path, "expected the matching LoopEnd instruction".into());
                    }
                }
                if exit as usize != self.pc {
                    let msg = format!(
                        "Loop exit target {} does not point past LoopEnd ({})",
                        exit, self.pc
                    );
                    return self.fail(path, msg);
                }
                path.truncate(saved);
                Ok(())
            }
            Ast::Let {
                var,
                name,
                expr,
                body,
            } => {
                let Some(Instr::Let { var: v, expr: e }) = self.ck.code.get(self.pc).cloned()
                else {
                    return self.fail(path, format!("expected a Let instruction for `{name}`"));
                };
                let saved = path.len();
                if !path.is_empty() {
                    path.push('/');
                }
                path.push_str(name);
                if v as usize != *var {
                    let msg = format!("Let binds slot {v}, AST binds slot {var}");
                    return self.fail(path, msg);
                }
                if !self
                    .ck
                    .exprs
                    .get(e as usize)
                    .is_some_and(|c| aff_matches(c, expr))
                {
                    return self.fail(path, "compiled let expression diverges from the AST".into());
                }
                let mut lin: BTreeMap<usize, Int> = BTreeMap::new();
                if expr.div == 1 {
                    for &(tv, k) in &expr.terms {
                        if let Some(m) = self.sens.get(&tv) {
                            for (&lv, &c) in m {
                                *lin.entry(lv).or_insert(0) += k * c;
                            }
                        }
                    }
                    lin.retain(|_, c| *c != 0);
                }
                let shadowed = self.sens.insert(*var, lin);
                self.pc += 1;
                self.walk(body, path)?;
                match shadowed {
                    Some(m) => self.sens.insert(*var, m),
                    None => self.sens.remove(var),
                };
                path.truncate(saved);
                Ok(())
            }
            Ast::Guard { conds, body } => {
                let Some(Instr::Guard { lo, hi, exit }) = self.ck.code.get(self.pc).cloned() else {
                    return self.fail(path, "expected a Guard instruction".into());
                };
                self.check_conds(lo, hi, conds, path)?;
                self.pc += 1;
                self.walk(body, path)?;
                if exit as usize != self.pc {
                    let msg = format!(
                        "Guard exit target {} does not point past the body ({})",
                        exit, self.pc
                    );
                    return self.fail(path, msg);
                }
                Ok(())
            }
            Ast::Filter { stmt, conds, body } => {
                let Some(Instr::FilterEnter { stmt: s, lo, hi }) =
                    self.ck.code.get(self.pc).cloned()
                else {
                    return self.fail(path, "expected a FilterEnter instruction".into());
                };
                if s as usize != *stmt {
                    let msg = format!("FilterEnter gates statement {s}, AST gates {stmt}");
                    return self.fail(path, msg);
                }
                self.check_conds(lo, hi, conds, path)?;
                self.pc += 1;
                self.walk(body, path)?;
                match self.ck.code.get(self.pc) {
                    Some(Instr::FilterExit { stmt: s2 }) if *s2 as usize == *stmt => {
                        self.pc += 1;
                        Ok(())
                    }
                    _ => self.fail(path, "expected the matching FilterExit instruction".into()),
                }
            }
            Ast::Stmt { stmt, orig_dims } => self.leaf(*stmt, orig_dims, path),
        }
    }

    fn check_conds(&mut self, lo: u32, hi: u32, conds: &[CondRow], path: &str) -> Result<(), ()> {
        let got = self.ck.conds.get(lo as usize..hi as usize);
        let ok = got.is_some_and(|g| {
            g.len() == conds.len() && g.iter().zip(conds).all(|(c, r)| cond_matches(c, r))
        });
        if ok {
            Ok(())
        } else {
            self.fail(
                path,
                "compiled guard conditions diverge from the AST".into(),
            )
        }
    }

    fn leaf(&mut self, stmt: usize, orig_dims: &[usize], path: &str) -> Result<(), ()> {
        let Some(Instr::Stmt { leaf }) = self.ck.code.get(self.pc).cloned() else {
            let name = &self.prog.stmts[stmt].name;
            return self.fail(path, format!("expected a Stmt instruction for `{name}`"));
        };
        let s = &self.prog.stmts[stmt];
        let leaf_path = if path.is_empty() {
            s.name.clone()
        } else {
            format!("{path}/{}", s.name)
        };
        if leaf as usize != self.next_leaf {
            let msg = format!(
                "leaf id {} out of lowering order (expected {})",
                leaf, self.next_leaf
            );
            return self.fail(&leaf_path, msg);
        }
        let Some(cl) = self.ck.leaves.get(leaf as usize) else {
            return self.fail(&leaf_path, format!("leaf id {leaf} out of range"));
        };
        if cl.stmt as usize != stmt {
            let msg = format!(
                "leaf compiled from statement {}, AST says {}",
                cl.stmt, stmt
            );
            return self.fail(&leaf_path, msg);
        }
        match self.ck.provenance.leaves.get(leaf as usize) {
            Some(o) if o.stmt == stmt && o.orig_dims == orig_dims => {}
            _ => {
                return self.fail(
                    &leaf_path,
                    "leaf provenance diverges from the AST leaf".into(),
                );
            }
        }

        // (a) access equivalence — non-fatal: a wrong fold doesn't break
        // the structural mapping, so the remaining checks still run.
        self.check_access(&cl.write, &s.write, orig_dims, "write", &leaf_path);
        if cl.reads.len() != s.reads.len() {
            self.diags.push(Diagnostic::new(
                Code::BytecodeDivergence,
                leaf_path.clone(),
                format!(
                    "leaf has {} compiled reads, statement has {}",
                    cl.reads.len(),
                    s.reads.len()
                ),
            ));
        } else {
            for (i, (got, want)) in cl.reads.iter().zip(&s.reads).enumerate() {
                self.check_access(got, want, orig_dims, &format!("read{i}"), &leaf_path);
            }
        }
        pluto_obs::counters::ANALYZE_BYTECODE_ACCESSES.add(1 + s.reads.len() as u64);

        // (d) body-tape equivalence.
        pluto_obs::counters::ANALYZE_BYTECODE_TAPES.bump();
        match decompile(&cl.body, orig_dims) {
            Ok(tree) => {
                if !expr_eq(&tree, &s.body) {
                    self.diags.push(Diagnostic::new(
                        Code::TapeDivergence,
                        leaf_path.clone(),
                        format!(
                            "postfix body tape decompiles to `{tree:?}`, statement body is `{:?}`",
                            s.body
                        ),
                    ));
                }
            }
            Err(why) => {
                self.diags.push(Diagnostic::new(
                    Code::TapeDivergence,
                    leaf_path.clone(),
                    format!("postfix body tape is malformed: {why}"),
                ));
            }
        }

        let stride_lin = std::iter::once(&cl.write)
            .chain(&cl.reads)
            .map(|acc| {
                let mut m: BTreeMap<usize, Int> = BTreeMap::new();
                for &(slot, c) in &acc.strides {
                    if let Some(sm) = self.sens.get(&(slot as usize)) {
                        for (&lv, &k) in sm {
                            *m.entry(lv).or_insert(0) += c as Int * k;
                        }
                    }
                }
                m.retain(|_, v| *v != 0);
                (acc.array, m)
            })
            .collect();
        self.leaves.push(LeafRec {
            pc: self.pc,
            leaf: leaf as usize,
            stmt,
            orig_dims: orig_dims.to_vec(),
            path: leaf_path,
            stride_lin,
        });
        self.next_leaf += 1;
        self.pc += 1;
        Ok(())
    }

    /// Symbolically re-expands the IR access map into the folded
    /// `base + Σ stride·slot` form (row-major, parameters at the
    /// compiled values) and compares it with what the compiler produced.
    fn check_access(
        &mut self,
        got: &CAccess,
        want: &Access,
        orig_dims: &[usize],
        what: &str,
        path: &str,
    ) {
        let arr_name = &self.prog.arrays[want.array].name;
        let mut divergence = |msg: String| {
            self.diags.push(Diagnostic::new(
                Code::BytecodeDivergence,
                format!("{path}/{what}:{arr_name}"),
                msg,
            ));
        };
        if got.array as usize != want.array {
            divergence(format!(
                "compiled access targets array {}, source accesses `{arr_name}`",
                got.array
            ));
            return;
        }
        let ext = &self.ck.extents[want.array];
        let np = self.prog.num_params();
        let n = orig_dims.len();
        if want.map.len() != ext.len() || want.map.iter().any(|r| r.len() != n + np + 1) {
            divergence("access rank diverges from the array extents".into());
            return;
        }
        let mut rstride = vec![1 as Int; ext.len()];
        for k in (0..ext.len().saturating_sub(1)).rev() {
            rstride[k] = rstride[k + 1] * ext[k + 1] as Int;
        }
        let mut base: Int = 0;
        let mut per_dim = vec![0 as Int; n];
        for (k, row) in want.map.iter().enumerate() {
            base += row[n + np] * rstride[k];
            for (p, &pv) in self.ck.params.iter().enumerate() {
                base += row[n + p] * pv as Int * rstride[k];
            }
            for d in 0..n {
                per_dim[d] += row[d] * rstride[k];
            }
        }
        let mut expect: Vec<(usize, Int)> = per_dim
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c != 0)
            .map(|(d, &c)| (orig_dims[d], c))
            .collect();
        expect.sort_unstable();
        let len: Int = ext.iter().map(|&e| e as Int).product::<Int>().max(1);
        let mut got_strides: Vec<(usize, Int)> = got
            .strides
            .iter()
            .map(|&(s, c)| (s as usize, c as Int))
            .collect();
        got_strides.sort_unstable();
        if got.base as Int != base || got_strides != expect || got.len as Int != len {
            divergence(format!(
                "{what} access to `{arr_name}` re-expands to {} but was compiled as {}",
                fmt_access(base, &expect, len),
                fmt_access(got.base as Int, &got_strides, got.len as Int)
            ));
        }
    }
}

fn fmt_access(base: Int, strides: &[(usize, Int)], len: Int) -> String {
    let mut s = format!("[{base}");
    for &(slot, c) in strides {
        s.push_str(&format!(" + {c}·v{slot}"));
    }
    s.push_str(&format!(" : len {len}]"));
    s
}

fn aff_matches(c: &CAff, a: &AffExpr) -> bool {
    c.konst as Int == a.konst
        && c.div as Int == a.div
        && c.terms.len() == a.terms.len()
        && c.terms
            .iter()
            .zip(&a.terms)
            .all(|(&(v, k), &(av, ak))| v as usize == av && k as Int == ak)
}

fn bound_matches(c: &CBound, b: &Bound) -> bool {
    c.groups.len() == b.groups.len()
        && c.groups.iter().zip(&b.groups).all(|(cg, bg)| {
            cg.len() == bg.len() && cg.iter().zip(bg).all(|(x, y)| aff_matches(x, y))
        })
}

fn cond_matches(c: &CCond, r: &CondRow) -> bool {
    c.eq == r.eq
        && c.konst as Int == r.konst
        && c.terms.len() == r.terms.len()
        && c.terms
            .iter()
            .zip(&r.terms)
            .all(|(&(v, k), &(rv, rk))| v as usize == rv && k as Int == rk)
}

/// Decompiles a postfix tape back into an expression tree. `Iter` slots
/// are mapped back to statement iterator indices through `orig_dims`.
fn decompile(ops: &[BodyOp], orig_dims: &[usize]) -> Result<Expr, String> {
    let mut stack: Vec<Expr> = Vec::new();
    let bin = |stack: &mut Vec<Expr>, f: fn(Box<Expr>, Box<Expr>) -> Expr| {
        let b = stack.pop().ok_or("binary op underflows the stack")?;
        let a = stack.pop().ok_or("binary op underflows the stack")?;
        stack.push(f(Box::new(a), Box::new(b)));
        Ok::<(), String>(())
    };
    for op in ops {
        match *op {
            BodyOp::Read(k) => stack.push(Expr::Read(k as usize)),
            BodyOp::Lit(v) => stack.push(Expr::Lit(v)),
            BodyOp::Iter(slot) => {
                let d = orig_dims
                    .iter()
                    .position(|&s| s == slot as usize)
                    .ok_or_else(|| {
                        format!("Iter slot {slot} is not an original iterator of the statement")
                    })?;
                stack.push(Expr::Iter(d));
            }
            BodyOp::Add => bin(&mut stack, Expr::Add)?,
            BodyOp::Sub => bin(&mut stack, Expr::Sub)?,
            BodyOp::Mul => bin(&mut stack, Expr::Mul)?,
            BodyOp::Div => bin(&mut stack, Expr::Div)?,
        }
    }
    match (stack.pop(), stack.is_empty()) {
        (Some(e), true) => Ok(e),
        (Some(_), false) => Err(format!("tape leaves {} extra value(s)", stack.len() + 1)),
        (None, _) => Err("tape leaves no value".into()),
    }
}

/// Structural equality with literals compared bit-for-bit (the engines'
/// bit-exactness contract makes `0.0 != -0.0` here deliberate).
fn expr_eq(a: &Expr, b: &Expr) -> bool {
    match (a, b) {
        (Expr::Read(x), Expr::Read(y)) => x == y,
        (Expr::Iter(x), Expr::Iter(y)) => x == y,
        (Expr::Lit(x), Expr::Lit(y)) => x.to_bits() == y.to_bits(),
        (Expr::Add(ax, ay), Expr::Add(bx, by))
        | (Expr::Sub(ax, ay), Expr::Sub(bx, by))
        | (Expr::Mul(ax, ay), Expr::Mul(bx, by))
        | (Expr::Div(ax, ay), Expr::Div(bx, by)) => expr_eq(ax, bx) && expr_eq(ay, by),
        _ => false,
    }
}

/// The proof context over `[params…, 1]`: program `assume` constraints
/// with every parameter pinned to its compiled value.
fn pinned_ctx(prog: &Program, params: &[i64]) -> ConstraintSet {
    let np = prog.num_params();
    let mut ctx = prog.context.clone();
    for (p, &v) in params.iter().enumerate().take(np) {
        let mut row = vec![0 as Int; np + 1];
        row[p] = 1;
        row[np] = -(v as Int);
        ctx.add_eq(row);
    }
    ctx
}

/// PL009: proves every compiled access's flattened offset stays inside
/// `[0, len)` for all in-domain instances of its statement.
fn check_flat_bounds(input: &BytecodeInput, leaves: &[LeafRec], diags: &mut Vec<Diagnostic>) {
    let prog = input.program;
    let t = input.transform;
    let ck = input.kernel;
    let np = prog.num_params();
    let ctx = pinned_ctx(prog, &ck.params);
    // Split leaves compile the same statement (hence the same folded
    // accesses) many times; prove each distinct compiled access once.
    type AccessKey = (usize, u32, i64, Vec<(u32, i64)>, u32);
    let mut proven: HashSet<AccessKey> = HashSet::new();

    for lr in leaves {
        let s = lr.stmt;
        let nd = t.domains[s].num_vars() - np;
        let m = t.num_orig_dims[s];
        if m != lr.orig_dims.len() {
            continue; // already flagged by the lockstep walk
        }
        let base_set = t.domains[s].intersect(&ctx.insert_dims(0, nd));
        let cl = &ck.leaves[lr.leaf];
        let accesses = std::iter::once(("write".to_string(), &cl.write)).chain(
            cl.reads
                .iter()
                .enumerate()
                .map(|(i, a)| (format!("read{i}"), a)),
        );
        for (what, acc) in accesses {
            if !proven.insert((s, acc.array, acc.base, acc.strides.clone(), acc.len)) {
                continue;
            }
            // Flat-offset row over the statement's augmented space
            // `[nd dims, params, 1]`: strides land on the trailing-m
            // original dims, the folded base is the constant.
            let mut row = vec![0 as Int; nd + np + 1];
            let mut mapped = true;
            for &(slot, c) in &acc.strides {
                match lr.orig_dims.iter().position(|&x| x == slot as usize) {
                    Some(d) => row[nd - m + d] += c as Int,
                    None => mapped = false,
                }
            }
            if !mapped {
                continue; // unmappable slot — flagged as PL008 already
            }
            row[nd + np] = acc.base as Int;
            let arr_name = &prog.arrays[acc.array as usize].name;
            let offset_at = |point: &[Int]| -> Int {
                let mut v = row[nd + np];
                for (i, &x) in point.iter().enumerate().take(nd) {
                    v += row[i] * x;
                }
                v
            };
            let mut emit = |point: Vec<Int>, under: bool| {
                let val = offset_at(&point);
                let mut d = Diagnostic::new(
                    Code::BytecodeOob,
                    format!("{}/{}:{}[flat]", lr.path, what, arr_name),
                    format!(
                        "flattened offset of the {what} access to `{arr_name}` reaches {val} ({})",
                        if under {
                            "below 0".to_string()
                        } else {
                            format!("array length is {}", acc.len)
                        }
                    ),
                );
                for (i, name) in t.dim_names[s].iter().enumerate() {
                    d.witness.push((name.clone(), point[i]));
                }
                for (p, name) in prog.params.iter().enumerate() {
                    d.witness.push((name.clone(), point[nd + p]));
                }
                diags.push(d);
            };
            // Under-run: offset <= -1.
            let mut under = base_set.clone();
            let mut neg: Vec<Int> = row.iter().map(|&a| -a).collect();
            neg[nd + np] -= 1;
            under.add_ineq(neg);
            if let Some(point) = under.sample_point() {
                emit(point, true);
                continue;
            }
            // Over-run: offset >= len.
            let mut over = base_set.clone();
            let mut pos = row.clone();
            pos[nd + np] -= acc.len as Int;
            over.add_ineq(pos);
            if let Some(point) = over.sample_point() {
                emit(point, false);
            }
        }
    }
}

/// Validates that `plan` is a disjoint exact cover of the item list
/// `0..n_items`. Returns a PL010 diagnostic (path `dispatch`; callers
/// re-anchor it) naming the first uncovered, doubly-covered, or escaping
/// item. Public so golden tests can feed deliberately corrupted plans.
pub fn check_cover(n_items: usize, plan: &[(usize, usize)]) -> Option<Diagnostic> {
    let mut covered = vec![0u32; n_items];
    for (c, &(lo, hi)) in plan.iter().enumerate() {
        if lo > hi || hi > n_items {
            let mut d = Diagnostic::new(
                Code::ChunkCover,
                "dispatch".into(),
                format!("chunk {c} spans ({lo}, {hi}) which escapes the {n_items}-item work list"),
            );
            d.witness.push(("chunk".into(), c as Int));
            d.witness.push(("lo".into(), lo as Int));
            d.witness.push(("hi".into(), hi as Int));
            return Some(d);
        }
        for slot in &mut covered[lo..hi] {
            *slot += 1;
        }
    }
    for (i, &c) in covered.iter().enumerate() {
        if c != 1 {
            let mut d = Diagnostic::new(
                Code::ChunkCover,
                "dispatch".into(),
                format!(
                    "work item {i} of {n_items} is covered by {c} chunk(s) — the plan is not a \
                     disjoint exact cover"
                ),
            );
            d.witness.push(("item".into(), i as Int));
            d.witness.push(("chunks".into(), c as Int));
            return Some(d);
        }
    }
    None
}

/// PL010 + PL011 over every dispatch site (parallel loops not nested
/// under another parallel loop — exactly the loops `machine::exec`
/// routes to the pool).
fn check_dispatches(
    input: &BytecodeInput,
    loops: &[LoopRec],
    leaves: &[LeafRec],
    diags: &mut Vec<Diagnostic>,
) {
    let sites: Vec<&LoopRec> = loops
        .iter()
        .filter(|l| l.parallel && !l.under_parallel)
        .collect();
    if sites.is_empty() {
        return;
    }
    // PL010: the executor's chunk plan, proved a disjoint exact cover
    // for every work-list length and team width in the envelope. The
    // plan depends only on (length, width), so one sweep covers every
    // dispatch.
    let mut cover_fault: Option<Diagnostic> = None;
    'sweep: for width in 0..=COVER_MAX_WIDTH {
        for n in 1..=COVER_MAX_ITEMS {
            if let Some(d) = check_cover(n, &pluto_machine::chunk_plan(n, width)) {
                cover_fault = Some(d);
                break 'sweep;
            }
        }
    }
    let ctx = pinned_ctx(input.program, &input.kernel.params);
    for lp in sites {
        pluto_obs::counters::ANALYZE_BYTECODE_DISPATCHES.bump();
        if let Some(fault) = &cover_fault {
            let mut d = fault.clone();
            d.path = lp.path.clone();
            diags.push(d);
        }
        check_chunk_race(input, lp, loops, leaves, &ctx, diags);
    }
}

/// PL011: no two distinct work items of one parallel dispatch may write
/// the same array cell. Work items are iterations of the dispatched
/// loop's scattering row `r` (pairs of rows `(r, r2)` when the executor
/// collapse-merges the immediately nested parallel loop), so two
/// instances race when they agree on every outer row, differ at `r` (or
/// at `r2` with `δ_r = 0`), and their compiled write offsets coincide.
fn check_chunk_race(
    input: &BytecodeInput,
    lp: &LoopRec,
    loops: &[LoopRec],
    leaves: &[LeafRec],
    ctx: &ConstraintSet,
    diags: &mut Vec<Diagnostic>,
) {
    let Some(r) = lp.level else {
        return; // domain-recovery loops are never marked parallel
    };
    let prog = input.program;
    let t = input.transform;
    let ck = input.kernel;
    let np = prog.num_params();
    // Mirror the executor's collapse-2 rule: the instruction directly
    // after the Loop is itself a parallel Loop ending one instruction
    // before this loop's LoopEnd. (Whether a run actually collapses
    // depends on `ParallelConfig::collapse`; checking the collapsed item
    // space is a strict superset of the uncollapsed one.)
    let r2 = match ck.code.get(lp.pc + 1) {
        Some(Instr::Loop {
            parallel: true,
            exit,
            ..
        }) if *exit as usize == lp.exit - 1 => loops
            .iter()
            .find(|o| o.pc == lp.pc + 1)
            .and_then(|o| o.level),
        _ => None,
    };
    let body: Vec<&LeafRec> = leaves
        .iter()
        .filter(|l| l.pc > lp.pc && l.pc < lp.exit)
        .collect();
    for (i, a) in body.iter().enumerate() {
        for b in &body[i..] {
            let wa = &ck.leaves[a.leaf].write;
            let wb = &ck.leaves[b.leaf].write;
            if wa.array != wb.array {
                continue;
            }
            if let Some(point) = overlap_witness(input, ctx, a, b, r, r2) {
                let mut d = Diagnostic::new(
                    Code::ChunkRace,
                    lp.path.clone(),
                    format!(
                        "two work items of parallel dispatch `{}` (scattering row c{}{}) can \
                         write the same cell of `{}` from {} and {}",
                        lp.name,
                        r + 1,
                        r2.map_or(String::new(), |x| format!(" collapsed with c{}", x + 1)),
                        prog.arrays[wa.array as usize].name,
                        prog.stmts[a.stmt].name,
                        prog.stmts[b.stmt].name,
                    ),
                );
                let nd_s = t.domains[a.stmt].num_vars() - np;
                let nd_t = t.domains[b.stmt].num_vars() - np;
                for (k, name) in t.dim_names[a.stmt].iter().enumerate() {
                    d.witness
                        .push((format!("{name}@{}", prog.stmts[a.stmt].name), point[k]));
                }
                for (k, name) in t.dim_names[b.stmt].iter().enumerate() {
                    d.witness.push((
                        format!("{name}'@{}", prog.stmts[b.stmt].name),
                        point[nd_s + k],
                    ));
                }
                for (p, name) in prog.params.iter().enumerate() {
                    d.witness.push((name.clone(), point[nd_s + nd_t + p]));
                }
                diags.push(d);
            }
        }
    }
}

/// Searches for a same-cell instance pair of leaves `a`/`b` in distinct
/// work items of the dispatch at row `r` (collapsed partner `r2`).
///
/// Cell coincidence is encoded per array dimension from the IR write
/// subscript rows rather than as one flattened compiled-stride equality:
/// PL008 proves the compiled strides are exactly the row-major fold of
/// those same rows, and with in-bounds subscripts (PL002/PL009) the
/// row-major fold is injective, so per-dimension equality and flat
/// equality coincide — while keeping the ILP coefficients small (a
/// single flat row carries extent-sized coefficients that thrash the
/// cut budget on tiled wavefront domains).
fn overlap_witness(
    input: &BytecodeInput,
    ctx: &ConstraintSet,
    a: &LeafRec,
    b: &LeafRec,
    r: usize,
    r2: Option<usize>,
) -> Option<Vec<Int>> {
    let prog = input.program;
    let t = input.transform;
    let np = prog.num_params();
    let (s, d) = (a.stmt, b.stmt);
    let nd_s = t.domains[s].num_vars() - np;
    let nd_t = t.domains[d].num_vars() - np;
    let (ms, mt) = (t.num_orig_dims[s], t.num_orig_dims[d]);
    let joint = nd_s + nd_t + np;
    let ws = &prog.stmts[s].write;
    let wd = &prog.stmts[d].write;
    if ws.array != wd.array || ws.map.len() != wd.map.len() {
        return None; // caller filters by array; rank mismatch is PL008's
    }

    let mut set = t.domains[s].insert_dims(nd_s, nd_t);
    set = set.intersect(&t.domains[d].insert_dims(0, nd_s));
    set = set.intersect(&ctx.insert_dims(0, nd_s + nd_t));
    // Same dispatch instance: every row outside the dispatched loop(s)
    // that encloses them is equal.
    for k in 0..r {
        set.add_eq(crate::race::distance_row(t, s, d, k, np));
    }
    // Same write cell: subscript rows (over `[orig dims, params, 1]`,
    // original dims at the tail of each endpoint's dim block) equal in
    // every array dimension.
    for (row_s, row_d) in ws.map.iter().zip(&wd.map) {
        let mut cell = vec![0 as Int; joint + 1];
        for j in 0..ms {
            cell[nd_s - ms + j] += row_s[j];
        }
        for j in 0..mt {
            cell[nd_s + nd_t - mt + j] -= row_d[j];
        }
        for p in 0..np {
            cell[nd_s + nd_t + p] += row_s[ms + p] - row_d[mt + p];
        }
        cell[joint] = row_s[ms + np] - row_d[mt + np];
        set.add_eq(cell);
    }

    let same_leaf = a.leaf == b.leaf;
    let delta_r = crate::race::distance_row(t, s, d, r, np);
    let feasible = |base: &ConstraintSet, row: &[Int], flip: bool| -> Option<Vec<Int>> {
        let mut probe = base.clone();
        let mut ineq: Vec<Int> = if flip {
            row.iter().map(|&x| -x).collect()
        } else {
            row.to_vec()
        };
        ineq[joint] -= 1;
        probe.add_ineq(ineq);
        probe.sample_point()
    };
    // Different outer item: δ_r >= 1 (and δ_r <= -1 for asymmetric
    // pairs; a same-leaf pair is symmetric under src/dst swap).
    if let Some(p) = feasible(&set, &delta_r, false) {
        return Some(p);
    }
    if !same_leaf {
        if let Some(p) = feasible(&set, &delta_r, true) {
            return Some(p);
        }
    }
    // Collapsed inner item: δ_r = 0 but δ_r2 != 0.
    if let Some(r2) = r2 {
        let mut inner = set.clone();
        inner.add_eq(delta_r);
        let delta_r2 = crate::race::distance_row(t, s, d, r2, np);
        if let Some(p) = feasible(&inner, &delta_r2, false) {
            return Some(p);
        }
        if !same_leaf {
            if let Some(p) = feasible(&inner, &delta_r2, true) {
                return Some(p);
            }
        }
    }
    None
}

/// PL013: innermost loops with no stride-1 access. The minimum nonzero
/// |stride| over every access in the loop body is the best case for the
/// hardware prefetcher; when even that exceeds 1, every iteration
/// changes cache line.
fn check_strides(
    input: &BytecodeInput,
    loops: &[LoopRec],
    leaves: &[LeafRec],
    diags: &mut Vec<Diagnostic>,
) {
    for lp in loops {
        // Innermost: no other loop strictly inside this one's region.
        if loops.iter().any(|o| o.pc > lp.pc && o.pc < lp.exit) {
            continue;
        }
        let mut min_nz: Option<Int> = None;
        let mut per_array: BTreeMap<u32, Vec<Int>> = BTreeMap::new();
        for lr in leaves.iter().filter(|l| l.pc > lp.pc && l.pc < lp.exit) {
            for (array, lin) in &lr.stride_lin {
                let stride = lin.get(&lp.var).copied().unwrap_or(0);
                per_array.entry(*array).or_default().push(stride);
                if stride != 0 {
                    let s = stride.abs();
                    min_nz = Some(min_nz.map_or(s, |m| m.min(s)));
                }
            }
        }
        let Some(min) = min_nz else {
            continue; // every access is invariant in this loop
        };
        if min <= 1 {
            continue;
        }
        let strides: Vec<String> = per_array
            .iter()
            .map(|(arr, v)| {
                let vals: Vec<String> = v.iter().map(Int::to_string).collect();
                format!(
                    "{}: [{}]",
                    input.program.arrays[*arr as usize].name,
                    vals.join(", ")
                )
            })
            .collect();
        diags.push(Diagnostic::new(
            Code::NonUnitStride,
            lp.path.clone(),
            format!(
                "innermost loop `{}` has no stride-1 access (min nonzero stride {min}); \
                 per-array strides: {}",
                lp.name,
                strides.join("; ")
            ),
        ));
    }
}

// `MIN_ITEMS_TO_ENLIST` is referenced by the module docs; keep the
// import live even though the partition proof deliberately ignores it.
const _: usize = MIN_ITEMS_TO_ENLIST;
