//! PL001: independent race detection for `parallel`-marked loops.
//!
//! For every AST loop marked `parallel` that scans scattering row `r`,
//! this module re-derives — without consulting the search's
//! `Parallelism` tags — that no legality dependence between statements
//! active under that loop is carried at `r`. The derivation is the
//! textbook one (paper Sec. 2.3/5.2): compose the dependence polyhedron
//! with both endpoint scatterings, restrict to instance pairs not
//! separated by any outer row (`δ_k = 0` for `k < r`), and ask the ILP
//! core for a point with `δ_r ≥ 1` or `δ_r ≤ −1`. Any such point is two
//! distinct iterations of the parallel loop whose bodies are ordered by a
//! dependence — i.e. a data race under concurrent execution, returned
//! verbatim as the diagnostic's witness.

use crate::{param_context, AnalysisInput, Code, Diagnostic};
use pluto::Transformation;
use pluto_codegen::Ast;
use pluto_ir::{Dependence, Program};
use pluto_linalg::Int;
use pluto_poly::ConstraintSet;
use std::collections::HashMap;

/// A racing instance pair found at one loop level.
#[derive(Debug, Clone)]
pub struct RaceWitness {
    /// Index of the violated dependence in the input slice.
    pub dep: usize,
    /// Joint witness point `[src dims…, dst dims…, params…]` in the
    /// (supernode-augmented) transformed spaces of the two endpoints.
    pub point: Vec<Int>,
}

/// Builds the scattering-distance row `δ_k` between statements `src` and
/// `dst` at scattering row `k`, over the joint space
/// `[src dims (nd_s), dst dims (nd_t), params, 1]`. Shared with the
/// bytecode verifier's chunk-race check, which relates arbitrary
/// statement pairs rather than dependence endpoints.
pub(crate) fn distance_row(
    t: &Transformation,
    src: usize,
    dst: usize,
    k: usize,
    np: usize,
) -> Vec<Int> {
    let nd_s = t.domains[src].num_vars() - np;
    let nd_t = t.domains[dst].num_vars() - np;
    let src_row = &t.stmts[src].rows[k];
    let dst_row = &t.stmts[dst].rows[k];
    debug_assert_eq!(src_row.len(), nd_s + np + 1);
    debug_assert_eq!(dst_row.len(), nd_t + np + 1);
    let mut out = vec![0; nd_s + nd_t + np + 1];
    for i in 0..nd_s {
        out[i] = -src_row[i];
    }
    out[nd_s..nd_s + nd_t].copy_from_slice(&dst_row[..nd_t]);
    for p in 0..np {
        out[nd_s + nd_t + p] = dst_row[nd_t + p] - src_row[nd_s + p];
    }
    out[nd_s + nd_t + np] = dst_row[nd_t + np] - src_row[nd_s + np];
    out
}

/// The joint polyhedron of dependence `dep` in transformed coordinates:
/// both endpoint domains, the parameter context, and the dependence
/// relation itself, with its original-iterator columns embedded into the
/// *trailing* original dims of each endpoint's augmented space.
pub(crate) fn joint_poly(
    prog: &Program,
    t: &Transformation,
    dep: &Dependence,
    param_ctx: &ConstraintSet,
) -> ConstraintSet {
    let np = prog.num_params();
    let nd_s = t.domains[dep.src].num_vars() - np;
    let nd_t = t.domains[dep.dst].num_vars() - np;
    let ms = t.num_orig_dims[dep.src];
    let mt = t.num_orig_dims[dep.dst];
    let joint = nd_s + nd_t + np;

    let mut set = t.domains[dep.src].insert_dims(nd_s, nd_t);
    set = set.intersect(&t.domains[dep.dst].insert_dims(0, nd_s));
    set = set.intersect(&param_ctx.insert_dims(0, nd_s + nd_t));

    // Dependence rows are over [src orig (ms), dst orig (mt), params, 1];
    // original dims sit at the tail of each endpoint's dim block.
    let embed = |row: &[Int]| {
        let mut out = vec![0; joint + 1];
        for j in 0..ms {
            out[nd_s - ms + j] = row[j];
        }
        for j in 0..mt {
            out[nd_s + nd_t - mt + j] = row[ms + j];
        }
        for p in 0..np {
            out[nd_s + nd_t + p] = row[ms + mt + p];
        }
        out[joint] = row[ms + mt + np];
        out
    };
    for row in dep.poly.eqs() {
        set.add_eq(embed(row));
    }
    for row in dep.poly.ineqs() {
        set.add_ineq(embed(row));
    }
    set
}

/// Searches for an instance pair of `dep` that is carried at scattering
/// row `level`: equal on every outer row, separated (in either direction)
/// at `level`. Returns the joint witness point if one exists.
pub fn carried_witness(
    prog: &Program,
    t: &Transformation,
    dep: &Dependence,
    level: usize,
    param_ctx: &ConstraintSet,
) -> Option<Vec<Int>> {
    let np = prog.num_params();
    let mut set = joint_poly(prog, t, dep, param_ctx);
    for k in 0..level {
        set.add_eq(distance_row(t, dep.src, dep.dst, k, np));
    }
    let joint = set.num_vars();
    let delta = distance_row(t, dep.src, dep.dst, level, np);
    // δ_level >= 1 (forward carried) …
    let mut fwd = set.clone();
    let mut row = delta.clone();
    row[joint] -= 1;
    fwd.add_ineq(row);
    if let Some(p) = fwd.sample_point() {
        return Some(p);
    }
    // … or δ_level <= -1 (the transformation *reversed* the pair — an
    // outright legality violation, and still a race at this level).
    let mut row: Vec<Int> = delta.iter().map(|&a| -a).collect();
    row[joint] -= 1;
    set.add_ineq(row);
    set.sample_point()
}

/// Checks one `parallel` loop at scattering row `level` whose subtree
/// contains exactly `active` statements. Returns every violated
/// dependence with its witness.
pub fn check_parallel_loop(
    prog: &Program,
    t: &Transformation,
    deps: &[Dependence],
    level: usize,
    active: &[usize],
    param_ctx: &ConstraintSet,
) -> Vec<RaceWitness> {
    let mut out = Vec::new();
    for (di, dep) in deps.iter().enumerate() {
        if !dep.kind.constrains_legality() {
            continue;
        }
        if !active.contains(&dep.src) || !active.contains(&dep.dst) {
            continue;
        }
        if let Some(point) = carried_witness(prog, t, dep, level, param_ctx) {
            out.push(RaceWitness { dep: di, point });
        }
    }
    out
}

/// Names a joint witness point for display: source dims, primed
/// destination dims, parameters.
fn name_witness(
    prog: &Program,
    t: &Transformation,
    dep: &Dependence,
    point: &[Int],
) -> Vec<(String, Int)> {
    let np = prog.num_params();
    let nd_s = t.domains[dep.src].num_vars() - np;
    let nd_t = t.domains[dep.dst].num_vars() - np;
    let mut out = Vec::with_capacity(point.len());
    for (i, name) in t.dim_names[dep.src].iter().enumerate() {
        out.push((format!("{name}@{}", prog.stmts[dep.src].name), point[i]));
    }
    for (i, name) in t.dim_names[dep.dst].iter().enumerate() {
        out.push((
            format!("{name}'@{}", prog.stmts[dep.dst].name),
            point[nd_s + i],
        ));
    }
    for (p, name) in prog.params.iter().enumerate() {
        out.push((name.clone(), point[nd_s + nd_t + p]));
    }
    out
}

/// Walks the AST and race-checks every `parallel` loop. Verdicts are
/// cached per `(level, active set)` so split regions sharing a level are
/// proved once.
pub fn check(input: &AnalysisInput) -> Vec<Diagnostic> {
    let param_ctx = param_context(input);
    let mut cache: HashMap<(usize, Vec<usize>), Vec<RaceWitness>> = HashMap::new();
    let mut diags = Vec::new();
    walk(
        input.ast,
        &mut String::new(),
        input,
        &param_ctx,
        &mut cache,
        &mut diags,
    );
    diags
}

/// Statement ids at the `Stmt` leaves of a subtree, deduplicated, sorted.
fn active_stmts(ast: &Ast) -> Vec<usize> {
    let mut v = Vec::new();
    fn go(a: &Ast, v: &mut Vec<usize>) {
        match a {
            Ast::Seq(xs) => xs.iter().for_each(|x| go(x, v)),
            Ast::Loop(l) => go(&l.body, v),
            Ast::Let { body, .. } | Ast::Guard { body, .. } | Ast::Filter { body, .. } => {
                go(body, v)
            }
            Ast::Stmt { stmt, .. } => v.push(*stmt),
        }
    }
    go(ast, &mut v);
    v.sort_unstable();
    v.dedup();
    v
}

fn walk(
    ast: &Ast,
    path: &mut String,
    input: &AnalysisInput,
    param_ctx: &ConstraintSet,
    cache: &mut HashMap<(usize, Vec<usize>), Vec<RaceWitness>>,
    diags: &mut Vec<Diagnostic>,
) {
    match ast {
        Ast::Seq(xs) => xs
            .iter()
            .for_each(|x| walk(x, path, input, param_ctx, cache, diags)),
        Ast::Loop(l) => {
            let saved = path.len();
            if !path.is_empty() {
                path.push('/');
            }
            path.push_str(&l.name);
            if l.parallel {
                path.push_str("[parallel]");
                if let Some(level) = l.level {
                    let active = active_stmts(&l.body);
                    let races = cache
                        .entry((level, active.clone()))
                        .or_insert_with(|| {
                            check_parallel_loop(
                                input.program,
                                input.transform,
                                input.deps,
                                level,
                                &active,
                                param_ctx,
                            )
                        })
                        .clone();
                    for r in races {
                        let dep = &input.deps[r.dep];
                        // Flow/output conflict on the source's written
                        // array; anti on the destination's.
                        let arr = if dep.kind == pluto_ir::DepKind::Anti {
                            input.program.stmts[dep.dst].write.array
                        } else {
                            input.program.stmts[dep.src].write.array
                        };
                        let mut d = Diagnostic::new(
                            Code::Race,
                            path.clone(),
                            format!(
                                "loop marked parallel at scattering level {} carries a {} \
                                 dependence {} -> {} on array {}",
                                level + 1,
                                dep.kind,
                                input.program.stmts[dep.src].name,
                                input.program.stmts[dep.dst].name,
                                input.program.arrays[arr].name,
                            ),
                        );
                        d.witness = name_witness(input.program, input.transform, dep, &r.point);
                        diags.push(d);
                    }
                }
            }
            walk(&l.body, path, input, param_ctx, cache, diags);
            path.truncate(saved);
        }
        Ast::Let { name, body, .. } => {
            let saved = path.len();
            if !path.is_empty() {
                path.push('/');
            }
            path.push_str(name);
            walk(body, path, input, param_ctx, cache, diags);
            path.truncate(saved);
        }
        Ast::Guard { body, .. } | Ast::Filter { body, .. } => {
            walk(body, path, input, param_ctx, cache, diags)
        }
        Ast::Stmt { .. } => {}
    }
}
