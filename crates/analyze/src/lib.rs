//! Static verification of generated code — an *independent* audit layer
//! between the optimizer and the emitted program.
//!
//! The paper's central claim (Sec. 5–6) is that every transformation is
//! provably legal and every `parallel` marker provably race-free. This
//! crate re-proves those claims from first principles instead of trusting
//! the search's bookkeeping:
//!
//! - [`race`]: for every AST loop marked `parallel`, composes each
//!   legality dependence polyhedron with the statement scatterings and
//!   asks the ILP core for a carried-dependence witness at that loop's
//!   scattering level. Deliberately ignores `Transformation::stmt_par`.
//! - [`bounds`]: proves every array access of every statement instance in
//!   the transformed iteration space stays inside the declared extents
//!   (emptiness of the parameterized violation set), with a concrete
//!   witness iteration on failure.
//! - [`lints`]: structural checks over the generated AST — provably empty
//!   loops, guards implied by their accumulated context, one-trip
//!   `parallel` loops, shadowed binding names.
//! - [`ledger`]: static/static differential of the optimizer's decision-log
//!   satisfaction ledger against independently re-proved strict
//!   satisfaction at each claimed row.
//! - [`bytecode`]: translation validation of the compiled executor — a
//!   [`CompiledKernel`](pluto_machine::CompiledKernel) is walked in
//!   lockstep with its source AST, every folded access is symbolically
//!   re-expanded against the IR access matrices, every body tape is
//!   decompiled back to an expression tree, every access is proved
//!   in-bounds for *all* in-domain instances, and the pooled scheduler's
//!   chunk partition is proved a disjoint exact cover with
//!   non-overlapping write footprints across chunks.
//!
//! Every finding is a [`Diagnostic`] with a stable code (`PL001`…), a
//! severity, the AST path it anchors to, and — where the underlying proof
//! is an ILP feasibility certificate — the witness point itself.
//!
//! DESIGN.md §6c is the full specification, including the stable diagnostic-code table.

use pluto::Transformation;
use pluto_codegen::Ast;
use pluto_ir::{Dependence, Program};
use pluto_linalg::Int;

pub mod bounds;
pub mod bytecode;
pub mod ledger;
pub mod lints;
pub mod race;

/// Stable diagnostic codes. The numeric part never changes meaning across
/// releases; renderers show the full `PLxxx-slug` form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// A loop marked `parallel` carries a dependence.
    Race,
    /// An array access can leave the declared extents.
    Oob,
    /// A loop whose body can never execute under its context.
    EmptyLoop,
    /// A guard whose conditions are implied by the accumulated context.
    RedundantGuard,
    /// A `parallel` loop that provably runs at most one iteration.
    OneTripParallel,
    /// A binding whose name shadows an enclosing binding.
    ShadowedBinding,
    /// The optimizer's decision-log satisfaction ledger disagrees with
    /// independently re-derived dependence satisfaction.
    LedgerDivergence,
    /// Compiled bytecode diverges from its AST/IR source: a folded
    /// access re-expands to a different affine function, a bound or
    /// guard was compiled wrong, or the control skeleton / provenance
    /// doesn't match the AST.
    BytecodeDivergence,
    /// A compiled access's flattened offset can leave `[0, len)` for
    /// some in-domain instance (ILP-witnessed).
    BytecodeOob,
    /// The pooled scheduler's chunk plan is not a disjoint exact cover
    /// of a dispatch's work-item list.
    ChunkCover,
    /// Two distinct work items of a `parallel` dispatch can write the
    /// same array cell — a race at the scheduler level, proved from the
    /// compiled strides (ILP-witnessed, independent of PL001).
    ChunkRace,
    /// A postfix body tape does not decompile to the statement's IR
    /// expression tree.
    TapeDivergence,
    /// An innermost compiled loop's minimum nonzero access stride
    /// exceeds 1 (no stride-1 access to stream) — a locality lint.
    NonUnitStride,
}

impl Code {
    /// The stable `PLxxx-slug` identifier.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Race => "PL001-race",
            Code::Oob => "PL002-oob",
            Code::EmptyLoop => "PL003-empty-loop",
            Code::RedundantGuard => "PL004-redundant-guard",
            Code::OneTripParallel => "PL005-one-trip-parallel",
            Code::ShadowedBinding => "PL006-shadowed-binding",
            Code::LedgerDivergence => "PL007-ledger-divergence",
            Code::BytecodeDivergence => "PL008-bytecode-divergence",
            Code::BytecodeOob => "PL009-bytecode-oob",
            Code::ChunkCover => "PL010-chunk-cover",
            Code::ChunkRace => "PL011-chunk-race",
            Code::TapeDivergence => "PL012-tape-divergence",
            Code::NonUnitStride => "PL013-nonunit-stride",
        }
    }

    /// Default severity of the code.
    pub fn severity(self) -> Severity {
        match self {
            Code::Race
            | Code::Oob
            | Code::LedgerDivergence
            | Code::BytecodeDivergence
            | Code::BytecodeOob
            | Code::ChunkCover
            | Code::ChunkRace
            | Code::TapeDivergence => Severity::Error,
            Code::EmptyLoop
            | Code::RedundantGuard
            | Code::OneTripParallel
            | Code::ShadowedBinding => Severity::Warning,
            Code::NonUnitStride => Severity::Info,
        }
    }
}

/// How bad a finding is. `Error` means the generated program is wrong
/// (miscompile or undefined behaviour); `Warning` means it is suspicious
/// or wasteful but semantics-preserving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Provable correctness violation.
    Error,
    /// Suspicious or degenerate but not wrong.
    Warning,
    /// Informational.
    Info,
}

impl Severity {
    /// Lower-case display name.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }
}

/// One analyzer finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity (normally `code.severity()`).
    pub severity: Severity,
    /// Slash-joined path of AST nodes from the root to the anchor node
    /// (e.g. `c1/c2[parallel]`), or a statement/access designator for
    /// non-AST findings.
    pub path: String,
    /// Human-readable explanation.
    pub message: String,
    /// Concrete ILP witness point as named values, when the finding rests
    /// on a feasibility certificate (a racing instance pair, an
    /// out-of-bounds iteration).
    pub witness: Vec<(String, Int)>,
}

impl Diagnostic {
    /// Builds a diagnostic with the code's default severity.
    pub fn new(code: Code, path: String, message: String) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            path,
            message,
            witness: Vec::new(),
        }
    }

    /// One-line text rendering: `error[PL001-race] at c1/c2: …`.
    pub fn render(&self) -> String {
        let mut s = format!(
            "{}[{}] at {}: {}",
            self.severity.as_str(),
            self.code.as_str(),
            self.path,
            self.message
        );
        if !self.witness.is_empty() {
            let vals: Vec<String> = self
                .witness
                .iter()
                .map(|(n, v)| format!("{n}={v}"))
                .collect();
            s.push_str(&format!(" [witness: {}]", vals.join(", ")));
        }
        s
    }
}

/// Everything the analyzer consumes. All fields are borrowed views of the
/// pipeline's existing products — analysis never mutates them.
pub struct AnalysisInput<'a> {
    /// The source program.
    pub program: &'a Program,
    /// Its dependence graph (must include at least all legality-relevant
    /// dependences; input deps are ignored by the race check).
    pub deps: &'a [Dependence],
    /// The transformation the AST was generated from.
    pub transform: &'a Transformation,
    /// The generated AST.
    pub ast: &'a Ast,
    /// Per-array, per-dimension symbolic extents: `extents[a][d]` is an
    /// affine row over `[params…, 1]` giving the size of dimension `d` of
    /// array `a` (valid subscripts are `0 ..= extent-1`). `None` disables
    /// the bounds prover (extent information is optional in the IR).
    pub extents: Option<&'a [Vec<Vec<Int>>]>,
    /// Concrete parameter values to pin (`params[i] == value`) in every
    /// proof context. Use when auditing a program for one specific
    /// execution configuration (e.g. the fuzz oracle); leave `None` for
    /// fully parameterized proofs.
    pub param_values: Option<&'a [Int]>,
    /// The optimizer's satisfaction ledger replayed to final row
    /// coordinates (`DecisionLog::ledger`): per dependence, the first row
    /// claimed to strictly satisfy it. `None` (or a `None` entry) skips
    /// the PL007 cross-check for that dependence.
    pub ledger: Option<&'a [Option<usize>]>,
}

/// Runs every analysis and returns the findings, errors first, in a
/// deterministic order.
pub fn analyze(input: &AnalysisInput) -> Vec<Diagnostic> {
    let mut diags = race::check(input);
    diags.extend(bounds::check(input));
    diags.extend(lints::check(input));
    diags.extend(ledger::check(input));
    sort_diagnostics(&mut diags);
    diags
}

/// Sorts findings into the analyzer's canonical order (errors first,
/// then by code, path, message). Callers merging [`bytecode::check`]
/// results into an [`analyze`] run re-sort with this so rendering order
/// stays deterministic.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.severity, a.code, &a.path, &a.message).cmp(&(b.severity, b.code, &b.path, &b.message))
    });
}

/// Renders diagnostics as human-readable text, one per line, with a
/// trailing summary line.
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.render());
        out.push('\n');
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .count();
    out.push_str(&format!(
        "analysis: {} error(s), {} warning(s)\n",
        errors, warnings
    ));
    out
}

/// Renders diagnostics as a JSON array (hand-rolled — the workspace has no
/// external dependencies). Schema per element:
/// `{"code","severity","path","message","witness":{name:value,…}}`.
pub fn render_json(diags: &[Diagnostic]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"code\": \"{}\", \"severity\": \"{}\", \"path\": \"{}\", \"message\": \"{}\", \"witness\": {{",
            d.code.as_str(),
            d.severity.as_str(),
            esc(&d.path),
            esc(&d.message)
        ));
        for (j, (n, v)) in d.witness.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {}", esc(n), v));
        }
        out.push_str("}}");
    }
    out.push_str("\n]\n");
    out
}

/// Whether the findings contain no `Error`-severity diagnostics — the
/// "analyzer-clean" gate used by the pipeline and the fuzz oracle.
pub fn is_clean(diags: &[Diagnostic]) -> bool {
    diags.iter().all(|d| d.severity != Severity::Error)
}

/// The proof context over `[params…, 1]`: the program's `assume`
/// constraints, optionally pinned to concrete parameter values.
pub(crate) fn param_context(input: &AnalysisInput) -> pluto_poly::ConstraintSet {
    let mut ctx = input.program.context.clone();
    if let Some(vals) = input.param_values {
        for (p, &v) in vals.iter().enumerate().take(input.program.num_params()) {
            let mut row = vec![0; input.program.num_params() + 1];
            row[p] = 1;
            row[input.program.num_params()] = -v;
            ctx.add_eq(row);
        }
    }
    ctx
}
