//! PL003–PL006: structural lints over the generated AST.
//!
//! The walker threads an *accumulated context* — a conjunction of affine
//! constraints over the AST's variable ids (parameters constrained by the
//! program's `assume` rows; loop variables by their bounds; `let`
//! bindings by exact floor-division inequalities; guard conditions by
//! their rows) — and asks the ILP core exact questions against it:
//!
//! - **PL003** `empty-loop`: the loop's body can never execute for any
//!   context point (every lower/upper bound-group pair is infeasible).
//! - **PL004** `redundant-guard`: every condition of a guard (or filter)
//!   is implied by the accumulated context — dead branch machinery.
//! - **PL005** `one-trip-parallel`: a loop marked `parallel` provably
//!   runs at most one iteration — parallelization overhead with no
//!   parallelism.
//! - **PL006** `shadowed-binding`: a loop or `let` rebinds a name already
//!   bound on the path — legal for the executor (ids are distinct) but a
//!   reliable symptom of supernode bookkeeping bugs in emitted C.

use crate::{AnalysisInput, Code, Diagnostic};
use pluto_codegen::{AffExpr, Ast, Bound, CondRow, LoopNode};
use pluto_linalg::Int;
use pluto_poly::ConstraintSet;

/// Lint state threaded through the walk.
struct Linter<'a> {
    input: &'a AnalysisInput<'a>,
    /// Accumulated affine context over AST variable ids.
    cs: ConstraintSet,
    /// Names bound on the current path (for PL006).
    bound_names: Vec<String>,
    path: String,
    diags: Vec<Diagnostic>,
}

/// Runs all AST lints.
pub fn check(input: &AnalysisInput) -> Vec<Diagnostic> {
    let np = input.program.num_params();
    let nvars = input.ast.num_vars().max(np);
    let mut cs = ConstraintSet::new(nvars);
    // Program parameters are AST vars 0..np; lift the `assume` context
    // (and any pinned parameter values).
    let param_ctx = crate::param_context(input);
    let lift = |row: &[Int]| {
        let mut out = vec![0; nvars + 1];
        out[..np].copy_from_slice(&row[..np]);
        out[nvars] = row[np];
        out
    };
    for row in param_ctx.eqs() {
        cs.add_eq(lift(row));
    }
    for row in param_ctx.ineqs() {
        cs.add_ineq(lift(row));
    }
    let mut l = Linter {
        input,
        cs,
        bound_names: Vec::new(),
        path: String::new(),
        diags: Vec::new(),
    };
    l.walk(input.ast);
    l.diags
}

/// `var >= ceild(numer, div)` as a context row: `div·var − numer >= 0`.
fn lower_row(var: usize, e: &AffExpr, nvars: usize) -> Vec<Int> {
    let mut row = vec![0; nvars + 1];
    row[var] += e.div;
    for &(v, c) in &e.terms {
        row[v] -= c;
    }
    row[nvars] -= e.konst;
    row
}

/// `var <= floord(numer, div)` as a context row: `numer − div·var >= 0`.
fn upper_row(var: usize, e: &AffExpr, nvars: usize) -> Vec<Int> {
    let mut row = vec![0; nvars + 1];
    row[var] -= e.div;
    for &(v, c) in &e.terms {
        row[v] += c;
    }
    row[nvars] += e.konst;
    row
}

/// A guard condition as a context row.
fn cond_row(c: &CondRow, nvars: usize) -> Vec<Int> {
    let mut row = vec![0; nvars + 1];
    for &(v, coef) in &c.terms {
        row[v] += coef;
    }
    row[nvars] += c.konst;
    row
}

impl Linter<'_> {
    fn nvars(&self) -> usize {
        self.cs.num_vars()
    }

    fn push_path(&mut self, seg: &str) -> usize {
        let saved = self.path.len();
        if !self.path.is_empty() {
            self.path.push('/');
        }
        self.path.push_str(seg);
        saved
    }

    /// PL006 check + binding registration. Returns whether a frame was
    /// pushed (always true; kept for symmetry).
    fn bind_name(&mut self, name: &str, what: &str) {
        if self.bound_names.iter().any(|n| n == name) {
            self.diags.push(Diagnostic::new(
                Code::ShadowedBinding,
                self.path.clone(),
                format!("{what} `{name}` shadows an enclosing binding of the same name"),
            ));
        }
        self.bound_names.push(name.to_string());
    }

    /// Whether the accumulated context (plus `extra` rows) is infeasible.
    fn infeasible_with(&self, extra: &[Vec<Int>]) -> bool {
        let mut s = self.cs.clone();
        for row in extra {
            s.add_ineq(row.clone());
        }
        s.is_empty()
    }

    /// Whether a condition row is implied by the accumulated context
    /// (its negation is infeasible).
    fn implied(&self, c: &CondRow) -> bool {
        let nvars = self.nvars();
        let row = cond_row(c, nvars);
        let neg = |r: &[Int]| {
            let mut n: Vec<Int> = r.iter().map(|&a| -a).collect();
            n[nvars] -= 1;
            n
        };
        if c.eq {
            // ¬(e == 0) is e >= 1 ∨ e <= -1: implied iff both branches
            // are infeasible.
            let mut pos = row.clone();
            pos[nvars] -= 1;
            self.infeasible_with(&[pos]) && self.infeasible_with(&[neg(&row)])
        } else {
            self.infeasible_with(&[neg(&row)])
        }
    }

    /// Whether the loop is provably empty: for *every* pair of a
    /// lower-bound group and an upper-bound group, the conjunction of
    /// their constraints on the loop variable is infeasible. (Lower bound
    /// is min-of-max, upper is max-of-min, so the loop runs iff *some*
    /// pair is jointly satisfiable.)
    fn loop_empty(&self, l: &LoopNode) -> bool {
        let nvars = self.nvars();
        for gl in &l.lb.groups {
            for gu in &l.ub.groups {
                let mut rows: Vec<Vec<Int>> =
                    gl.iter().map(|e| lower_row(l.var, e, nvars)).collect();
                rows.extend(gu.iter().map(|e| upper_row(l.var, e, nvars)));
                if !self.infeasible_with(&rows) {
                    return false;
                }
            }
        }
        true
    }

    /// Adds a bound's constraints on `var` to the context — only sound
    /// when the bound has a single group (no union/disjunction).
    fn add_bound(&mut self, var: usize, b: &Bound, lower: bool) -> bool {
        if b.groups.len() != 1 {
            return false;
        }
        let nvars = self.nvars();
        for e in &b.groups[0] {
            let row = if lower {
                lower_row(var, e, nvars)
            } else {
                upper_row(var, e, nvars)
            };
            self.cs.add_ineq(row);
        }
        true
    }

    /// PL005: under the accumulated context (bounds already added), can
    /// the loop run two distinct iterations? Asks for `var' >= var + 1`
    /// with `var'` satisfying the same single-group bounds.
    fn provably_one_trip(&self, l: &LoopNode) -> bool {
        if l.lb.groups.len() != 1 || l.ub.groups.len() != 1 {
            return false;
        }
        let nvars = self.nvars();
        let mut s = self.cs.insert_dims(nvars, 1); // var' = index nvars
        let wide = nvars + 1;
        for e in &l.lb.groups[0] {
            s.add_ineq(lower_row(nvars, e, wide));
        }
        for e in &l.ub.groups[0] {
            s.add_ineq(upper_row(nvars, e, wide));
        }
        // var' >= var + 1.
        let mut row = vec![0; wide + 1];
        row[nvars] = 1;
        row[l.var] = -1;
        row[wide] = -1;
        s.add_ineq(row);
        s.is_empty()
    }

    fn walk(&mut self, ast: &Ast) {
        match ast {
            Ast::Seq(xs) => xs.iter().for_each(|x| self.walk(x)),
            Ast::Loop(l) => {
                let saved_path = self.push_path(&l.name);
                self.bind_name(&l.name, "loop variable");
                if self.loop_empty(l) {
                    self.diags.push(Diagnostic::new(
                        Code::EmptyLoop,
                        self.path.clone(),
                        format!(
                            "loop `{}` can never execute under its accumulated context",
                            l.name
                        ),
                    ));
                    // The subtree is dead; linting it against an empty
                    // context would flag everything as redundant.
                } else {
                    let saved_cs = self.cs.clone();
                    let lb_added = self.add_bound(l.var, &l.lb, true);
                    let ub_added = self.add_bound(l.var, &l.ub, false);
                    if l.parallel && lb_added && ub_added && self.provably_one_trip(l) {
                        self.diags.push(Diagnostic::new(
                            Code::OneTripParallel,
                            self.path.clone(),
                            format!(
                                "loop `{}` is marked parallel but provably runs at most one \
                                 iteration",
                                l.name
                            ),
                        ));
                    }
                    self.walk(&l.body);
                    self.cs = saved_cs;
                }
                self.bound_names.pop();
                self.path.truncate(saved_path);
            }
            Ast::Let {
                var,
                name,
                expr,
                body,
            } => {
                let saved_path = self.push_path(&format!("let {name}"));
                self.bind_name(name, "let binding");
                let saved_cs = self.cs.clone();
                self.add_let(*var, expr);
                self.walk(body);
                self.cs = saved_cs;
                self.bound_names.pop();
                self.path.truncate(saved_path);
            }
            Ast::Guard { conds, body } => {
                let saved_path = self.push_path("guard");
                if !conds.is_empty() && conds.iter().all(|c| self.implied(c)) {
                    self.diags.push(Diagnostic::new(
                        Code::RedundantGuard,
                        self.path.clone(),
                        format!(
                            "all {} guard condition(s) are implied by the accumulated context",
                            conds.len()
                        ),
                    ));
                }
                let saved_cs = self.cs.clone();
                let nvars = self.nvars();
                for c in conds {
                    let row = cond_row(c, nvars);
                    if c.eq {
                        self.cs.add_eq(row);
                    } else {
                        self.cs.add_ineq(row);
                    }
                }
                self.walk(body);
                self.cs = saved_cs;
                self.path.truncate(saved_path);
            }
            Ast::Filter { stmt, conds, body } => {
                let saved_path =
                    self.push_path(&format!("filter {}", self.input.program.stmts[*stmt].name));
                if !conds.is_empty() && conds.iter().all(|c| self.implied(c)) {
                    self.diags.push(Diagnostic::new(
                        Code::RedundantGuard,
                        self.path.clone(),
                        format!(
                            "all {} filter condition(s) on {} are implied by the accumulated \
                             context",
                            conds.len(),
                            self.input.program.stmts[*stmt].name
                        ),
                    ));
                }
                // Filter conditions gate a single statement, not the
                // subtree — they do not join the context.
                self.walk(body);
                self.path.truncate(saved_path);
            }
            Ast::Stmt { .. } => {}
        }
    }

    /// `var := floord(numer, div)` as exact inequalities:
    /// `numer − div·var >= 0` and `div·var − numer + div − 1 >= 0`
    /// (an equality when `div == 1`).
    fn add_let(&mut self, var: usize, e: &AffExpr) {
        let nvars = self.nvars();
        if e.div == 1 {
            let mut row = vec![0; nvars + 1];
            row[var] += 1;
            for &(v, c) in &e.terms {
                row[v] -= c;
            }
            row[nvars] -= e.konst;
            self.cs.add_eq(row);
            return;
        }
        self.cs.add_ineq(upper_row(var, e, nvars));
        let mut low = lower_row(var, e, nvars);
        low[nvars] += e.div - 1;
        self.cs.add_ineq(low);
    }
}
