//! PL002: the array bounds prover.
//!
//! For every access of every statement, the prover forms the *violation
//! set* — the transformed iteration-space points (parameterized over the
//! program context) whose subscript falls below `0` or at/above the
//! declared extent — and proves it empty. A non-empty set is reported
//! with a concrete witness iteration sampled by the ILP core.
//!
//! Extents are affine rows over `[params…, 1]` per array dimension; the
//! valid subscript range of dimension `d` is `0 ..= extent_d − 1`.

use crate::{param_context, AnalysisInput, Code, Diagnostic};
use pluto_ir::Access;
use pluto_linalg::Int;
use pluto_poly::ConstraintSet;

/// One out-of-bounds finding, before rendering.
struct Violation {
    /// Witness point `[dims…, params…]` in the statement's augmented space.
    point: Vec<Int>,
    /// Subscript value reached at the witness.
    value: Int,
    /// Extent value at the witness parameters (for the message).
    extent: Int,
    /// Whether the violation is below zero (else at/above the extent).
    under: bool,
}

/// Checks one subscript dimension of one access. `ext` is the extent row
/// over `[params…, 1]`.
fn check_subscript(
    base: &ConstraintSet,
    sub: &[Int],
    ext: &[Int],
    nd: usize,
    np: usize,
) -> Option<Violation> {
    let joint = nd + np;
    let eval = |row: &[Int], point: &[Int]| -> Int {
        let mut v = row[joint];
        for (i, &x) in point.iter().enumerate() {
            v += row[i] * x;
        }
        v
    };
    let ext_at = |point: &[Int]| -> Int {
        let mut v = ext[np];
        for p in 0..np {
            v += ext[p] * point[nd + p];
        }
        v
    };
    // Under-run: subscript <= -1.
    let mut under = base.clone();
    let mut row: Vec<Int> = sub.iter().map(|&a| -a).collect();
    row[joint] -= 1;
    under.add_ineq(row);
    if let Some(point) = under.sample_point() {
        let value = eval(sub, &point);
        let extent = ext_at(&point);
        return Some(Violation {
            point,
            value,
            extent,
            under: true,
        });
    }
    // Over-run: subscript >= extent.
    let mut over = base.clone();
    let mut row = sub.to_vec();
    for p in 0..np {
        row[nd + p] -= ext[p];
    }
    row[joint] -= ext[np];
    over.add_ineq(row);
    if let Some(point) = over.sample_point() {
        let value = eval(sub, &point);
        let extent = ext_at(&point);
        return Some(Violation {
            point,
            value,
            extent,
            under: false,
        });
    }
    None
}

/// Embeds an access row (over `[orig iters (m), params, 1]`) into the
/// statement's augmented space (over `[nd dims, params, 1]`), where the
/// original iterators are the trailing `m` dims.
fn embed_access_row(row: &[Int], nd: usize, m: usize, np: usize) -> Vec<Int> {
    let mut out = vec![0; nd + np + 1];
    for j in 0..m {
        out[nd - m + j] = row[j];
    }
    out[nd..nd + np].copy_from_slice(&row[m..m + np]);
    out[nd + np] = row[m + np];
    out
}

/// Proves every access in bounds; returns a PL002 diagnostic per
/// violating subscript dimension. A no-op when the input carries no
/// extent information.
pub fn check(input: &AnalysisInput) -> Vec<Diagnostic> {
    let Some(extents) = input.extents else {
        return Vec::new();
    };
    let prog = input.program;
    let t = input.transform;
    let np = prog.num_params();
    let param_ctx = param_context(input);
    let mut diags = Vec::new();

    for (s, stmt) in prog.stmts.iter().enumerate() {
        let nd = t.domains[s].num_vars() - np;
        let m = t.num_orig_dims[s];
        let base = t.domains[s].intersect(&param_ctx.insert_dims(0, nd));
        let mut visit = |access: &Access, what: &str| {
            let Some(ext_rows) = extents.get(access.array) else {
                return;
            };
            for (k, (sub_row, ext)) in access.map.iter().zip(ext_rows.iter()).enumerate() {
                let sub = embed_access_row(sub_row, nd, m, np);
                if let Some(v) = check_subscript(&base, &sub, ext, nd, np) {
                    let arr = &prog.arrays[access.array].name;
                    let mut d = Diagnostic::new(
                        Code::Oob,
                        format!("{}/{}:{}[dim {}]", stmt.name, what, arr, k),
                        format!(
                            "subscript {} of {} access to `{}` reaches {} ({})",
                            k,
                            what,
                            arr,
                            v.value,
                            if v.under {
                                "below 0".to_string()
                            } else {
                                format!("extent is {}", v.extent)
                            }
                        ),
                    );
                    for (i, name) in t.dim_names[s].iter().enumerate() {
                        d.witness.push((name.clone(), v.point[i]));
                    }
                    for (p, name) in prog.params.iter().enumerate() {
                        d.witness.push((name.clone(), v.point[nd + p]));
                    }
                    diags.push(d);
                }
            }
        };
        visit(&stmt.write, "write");
        for (i, r) in stmt.reads.iter().enumerate() {
            visit(r, &format!("read{i}"));
        }
    }
    diags
}
