//! PL007: static/static differential of the optimizer's satisfaction
//! ledger against independently re-derived dependence satisfaction.
//!
//! The decision log (`pluto_obs::decision`) claims, per dependence, the
//! first row of the final transformation that strictly satisfies it —
//! replayed through tiling row-shifts and the vectorization reorder by
//! `pluto_obs::decision::DecisionLog::ledger` (a crate this one does
//! not depend on — the caller hands us the already-replayed vector).
//! This module re-proves each claim from first principles, exactly as
//! the race check does: compose the dependence polyhedron with both
//! endpoint scatterings in the (possibly supernode-augmented)
//! transformed space and ask the ILP core whether a point with
//! `δ_r <= 0` exists at the claimed row. Any such point contradicts the
//! optimizer's bookkeeping — either the event stream, the replay, or
//! the satisfaction test is wrong — and is reported verbatim as the
//! diagnostic's witness.
//!
//! Claims of `None` (never strictly satisfied) are not checked: the
//! search only relies on positive claims, and proving a universal
//! negative per row adds cost without catching a miscompile class the
//! race and legality checks don't already cover.

use crate::race::{distance_row, joint_poly};
use crate::{param_context, AnalysisInput, Code, Diagnostic};
use pluto_linalg::Int;

/// Checks every positive ledger claim against an independent strict
/// satisfaction proof. No-op when the input carries no ledger.
pub fn check(input: &AnalysisInput) -> Vec<Diagnostic> {
    let Some(ledger) = input.ledger else {
        return Vec::new();
    };
    let param_ctx = param_context(input);
    let np = input.program.num_params();
    let t = input.transform;
    let mut diags = Vec::new();
    for (di, claim) in ledger.iter().enumerate() {
        let Some(r) = *claim else { continue };
        let Some(dep) = input.deps.get(di) else {
            let mut d = Diagnostic::new(
                Code::LedgerDivergence,
                format!("dep[{di}]"),
                format!(
                    "decision log claims satisfaction for dependence {di}, but only {} \
                     dependences exist",
                    input.deps.len()
                ),
            );
            d.witness = Vec::new();
            diags.push(d);
            continue;
        };
        if r >= t.num_rows() {
            diags.push(Diagnostic::new(
                Code::LedgerDivergence,
                format!("dep[{di}]"),
                format!(
                    "decision log claims dependence {di} is satisfied at row c{}, but the \
                     transformation has only {} rows",
                    r + 1,
                    t.num_rows()
                ),
            ));
            continue;
        }
        // Strict satisfaction is a global property (`δ_r >= 1` on the
        // whole dependence polyhedron): refute by finding δ_r <= 0.
        let mut set = joint_poly(input.program, t, dep, &param_ctx);
        let delta = distance_row(t, dep.src, dep.dst, r, np);
        let row: Vec<Int> = delta.iter().map(|&a| -a).collect(); // −δ >= 0
        set.add_ineq(row);
        if let Some(point) = set.sample_point() {
            let mut d = Diagnostic::new(
                Code::LedgerDivergence,
                format!("dep[{di}]"),
                format!(
                    "decision log claims the {} dependence {} -> {} is first strictly \
                     satisfied at row c{}, but an instance pair with distance <= 0 at that \
                     row exists",
                    dep.kind,
                    input.program.stmts[dep.src].name,
                    input.program.stmts[dep.dst].name,
                    r + 1,
                ),
            );
            d.witness = name_witness(input, dep, &point);
            diags.push(d);
        }
    }
    diags
}

/// Names a joint witness point: source dims, primed destination dims,
/// parameters (same convention as the race check).
fn name_witness(
    input: &AnalysisInput,
    dep: &pluto_ir::Dependence,
    point: &[Int],
) -> Vec<(String, Int)> {
    let prog = input.program;
    let t = input.transform;
    let np = prog.num_params();
    let nd_s = t.domains[dep.src].num_vars() - np;
    let nd_t = t.domains[dep.dst].num_vars() - np;
    let mut out = Vec::with_capacity(point.len());
    for (i, name) in t.dim_names[dep.src].iter().enumerate() {
        out.push((format!("{name}@{}", prog.stmts[dep.src].name), point[i]));
    }
    for (i, name) in t.dim_names[dep.dst].iter().enumerate() {
        out.push((
            format!("{name}'@{}", prog.stmts[dep.dst].name),
            point[nd_s + i],
        ));
    }
    for (p, name) in prog.params.iter().enumerate() {
        out.push((name.clone(), point[nd_s + nd_t + p]));
    }
    out
}
