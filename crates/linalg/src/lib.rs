//! Exact integer and rational linear algebra for the `pluto-rs` tool-chain.
//!
//! Every computation in the polyhedral framework — Fourier–Motzkin
//! projection, the lexmin simplex, Farkas elimination, orthogonal sub-space
//! construction (Eq. 6 of the PLDI'08 paper) — must be *exact*: floating
//! point is never acceptable because legality proofs hinge on integer
//! feasibility. This crate provides:
//!
//! * checked [`Int`] (`i128`) helper arithmetic: [`gcd`], [`lcm`],
//!   [`floor_div`], [`ceil_div`];
//! * an exact rational type [`Ratio`] with a positive-denominator invariant;
//! * dense matrices over integers ([`IntMatrix`]) and rationals
//!   ([`RatMatrix`]) with echelon reduction, rank, null-space and the
//!   orthogonal-complement operator `H^⊥ = I - Hᵀ(H Hᵀ)⁻¹ H` used by the
//!   Pluto algorithm to force linear independence of successive hyperplanes.
//!
//! # Examples
//!
//! ```
//! use pluto_linalg::{Ratio, RatMatrix};
//! let h = RatMatrix::from_i64(&[&[1, 0, 0]]);
//! let perp = h.orthogonal_complement();
//! // The orthogonal complement of span{e1} in R^3 is span{e2, e3}.
//! assert_eq!(perp.rank(), 2);
//! ```
//!
//! DESIGN.md §1 and §5 (repo root) place this crate in the tool-chain inventory.

pub mod int;
pub mod matrix;
pub mod ratio;

pub use int::{ceil_div, floor_div, gcd, lcm, Int};
pub use matrix::{IntMatrix, RatMatrix};
pub use ratio::Ratio;
